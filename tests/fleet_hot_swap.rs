//! Hot swap under load: publishing new weights to a running
//! [`FleetService`] must be invisible to tenants — zero degraded
//! forecasts attributable to the swap — and every post-swap answer must
//! match the offline [`Forecaster::predict`] on the new weights bit for
//! bit, exactly as every pre-swap answer matches the old weights.

use enhancenet::prelude::*;
use enhancenet_models::{GruSeq2Seq, ModelDims, TemporalMode};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

const H: usize = 12;
const F: usize = 12;
const N: usize = 8;

/// Same constructor arguments → bit-identical parameters: seed 3 is "the
/// model the fleet was launched with", seed 4 is "the retrained weights"
/// (same architecture, so the snapshot layout contract holds).
fn model(seed: u64) -> GruSeq2Seq {
    let dims =
        ModelDims { num_entities: N, in_features: 1, hidden: 8, input_len: H, output_len: F };
    GruSeq2Seq::rnn(dims, 1, TemporalMode::Shared, seed)
}

#[test]
fn hot_swap_under_load_is_invisible_and_bitwise_correct() {
    let series = generate_traffic(&TrafficConfig::tiny(N, 2));
    let data = WindowDataset::from_series(&series, H, F).unwrap();
    let (n, c) = (series.num_entities(), series.num_features());

    // Generous deadline: this test asserts *zero* degraded responses, so
    // scheduler hiccups on a loaded runner must not masquerade as swap
    // fallout.
    let fleet = ServeConfig::builder()
        .workers(2)
        .deadline(Duration::from_secs(10))
        .spawn_fleet(Box::new(model(3)), data.scaler.clone())
        .unwrap();
    let old = model(3);
    let new = model(4);
    let publisher = fleet.publisher();

    let swap_at = 30;
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        // Background load: a second tenant hammering its (static) window
        // through the whole run, including the swap instant.
        let hammer = scope.spawn(|| {
            let tenant = fleet.tenant("hammer");
            for t in 0..H {
                let row = &series.values.data()[t * n * c..(t + 1) * n * c];
                tenant.ingest_row(t as i64, row).unwrap();
            }
            let mut served = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let forecast = tenant.forecast().expect("forecasts never error");
                assert!(
                    !forecast.is_degraded(),
                    "hammer tenant degraded mid-run: {:?}",
                    forecast.degraded
                );
                served += 1;
            }
            served
        });

        // Foreground stream: every answer compared bitwise against the
        // offline predict on whichever weights are live.
        let tenant = fleet.tenant("stream");
        let mut compared_old = 0;
        let mut compared_new = 0;
        for t in 0..60 {
            if t == swap_at {
                assert_eq!(fleet.epoch(), 0);
                let epoch = publisher.publish(new.store()).unwrap();
                assert_eq!(epoch, 1);
                assert_eq!(fleet.epoch(), 1);
            }
            let row = &series.values.data()[t * n * c..(t + 1) * n * c];
            tenant.ingest_row(t as i64, row).unwrap();
            if !tenant.is_ready() {
                continue;
            }
            let served = tenant.forecast().unwrap();
            assert!(!served.is_degraded(), "degraded at t={t}: {:?}", served.degraded);

            let raw = series.values.slice_axis(0, t + 1 - H, t + 1);
            let scaled = data.scaler.transform(&raw).unwrap();
            let live = if t < swap_at { &old } else { &new };
            let expected = data.scaler.inverse_feature(&live.predict(&scaled).unwrap(), 0);
            assert_eq!(
                served.values.data(),
                expected.data(),
                "served diverged from offline predict on the live weights at t={t}"
            );
            if t >= swap_at {
                // The swap visibly changed the answers: the old weights
                // would have said something else for the same window.
                let stale = data.scaler.inverse_feature(&old.predict(&scaled).unwrap(), 0);
                assert_ne!(served.values.data(), stale.data(), "swap never took effect at t={t}");
                compared_new += 1;
            } else {
                compared_old += 1;
            }
        }
        assert!(compared_old >= 15, "only {compared_old} pre-swap forecasts compared");
        assert!(compared_new >= 25, "only {compared_new} post-swap forecasts compared");

        stop.store(true, Ordering::Relaxed);
        let served = hammer.join().expect("hammer thread ran");
        assert!(served > 0, "background tenant never got a forecast through");
    });

    // No tenant saw ANY degradation or throttling across the swap, and a
    // drain shutdown completes with nothing shed.
    for report in fleet.tenant_reports() {
        assert_eq!(report.degraded, 0, "tenant {} degraded", report.tenant);
        assert_eq!(report.throttled, 0, "tenant {} throttled", report.tenant);
        assert_eq!(report.slo.degraded_rate, 0.0);
    }
    let shutdown = fleet.shutdown(ShutdownMode::Drain);
    assert_eq!(shutdown.shed, 0, "drain shutdown must not shed");
}
