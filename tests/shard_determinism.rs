//! Shard-count invariance of the data-parallel trainer, end to end on a
//! real host model: `data_parallel(1)` and `data_parallel(4)` must produce
//! bit-identical loss curves, validation metrics, and final weights.
//!
//! This is the determinism contract of `trainer::parallel`: work is
//! decomposed per *window* (private graph, private RNG stream, private
//! gradient buffer) and gradients fold in fixed window order, so the shard
//! count only changes which thread runs a window — never any float.

use enhancenet::prelude::*;
use enhancenet_models::{GruSeq2Seq, ModelDims, TemporalMode};

fn train_with_shards(shards: usize) -> (TrainReport, Vec<f32>) {
    let series = generate_traffic(&TrafficConfig::tiny(5, 2));
    let data = WindowDataset::from_series(&series, 12, 12).unwrap();
    let dims =
        ModelDims { num_entities: 5, in_features: 1, hidden: 10, input_len: 12, output_len: 12 };
    let mut model = GruSeq2Seq::rnn(dims, 1, TemporalMode::Shared, 7);
    let cfg = TrainConfig::builder()
        .epochs(3)
        .batch_size(8)
        .max_batches_per_epoch(Some(8))
        .max_eval_batches(Some(4))
        .data_parallel(shards)
        .build()
        .expect("test config is valid");
    let report = Trainer::new(cfg).train(&mut model, &data);
    let weights = model.store().snapshot().iter().flat_map(|t| t.data().to_vec()).collect();
    (report, weights)
}

#[test]
fn gru_host_is_bit_identical_across_shard_counts() {
    let (base_report, base_weights) = train_with_shards(1);
    assert!(
        base_report.train_loss.iter().all(|l| l.is_finite()),
        "reference run diverged: {:?}",
        base_report.train_loss
    );

    let (report, weights) = train_with_shards(4);
    let bits = |xs: &[f32]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(
        bits(&base_report.train_loss),
        bits(&report.train_loss),
        "train losses diverged between 1 and 4 shards"
    );
    assert_eq!(
        bits(&base_report.val_mae),
        bits(&report.val_mae),
        "validation MAE diverged between 1 and 4 shards"
    );
    assert_eq!(base_report.best_epoch, report.best_epoch);
    assert_eq!(
        bits(&base_weights),
        bits(&weights),
        "final weights diverged between 1 and 4 shards"
    );
}
