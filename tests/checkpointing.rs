//! Integration tests for model checkpointing: a trained model's parameters
//! survive a serialize → deserialize round trip bit-for-bit, predictions
//! included.

use enhancenet::prelude::*;
use enhancenet_models::{GruSeq2Seq, ModelDims, TemporalMode};
use enhancenet_tensor::Tensor;

fn setup() -> (WindowDataset, GruSeq2Seq) {
    let series = generate_traffic(&TrafficConfig::tiny(5, 2));
    let data = WindowDataset::from_series(&series, 12, 12).unwrap();
    let dims =
        ModelDims { num_entities: 5, in_features: 1, hidden: 8, input_len: 12, output_len: 12 };
    let model = GruSeq2Seq::rnn(dims, 1, TemporalMode::Shared, 3);
    (data, model)
}

fn predict(model: &GruSeq2Seq, x: &Tensor) -> Tensor {
    model.predict(x).expect("well-shaped window")
}

#[test]
fn checkpoint_roundtrip_preserves_predictions() {
    let (data, mut model) = setup();
    let cfg = TrainConfig::builder()
        .epochs(2)
        .batch_size(8)
        .max_batches_per_epoch(Some(10))
        .build()
        .expect("test config is valid");
    Trainer::new(cfg).train(&mut model, &data);

    let x = data.input_window(0);
    let before = predict(&model, &x);
    let blob = model.store().to_bytes();

    // Scramble every parameter, then restore from the checkpoint.
    model.store_mut().for_each_mut(|_, v, _| v.map_inplace(|x| x * -3.0 + 1.0));
    let scrambled = predict(&model, &x);
    assert!(!scrambled.allclose(&before, 1e-6), "scrambling had no effect");

    model.store_mut().load_bytes(&blob).expect("load checkpoint");
    let after = predict(&model, &x);
    assert!(after.allclose(&before, 0.0), "checkpoint round trip changed predictions");
}

#[test]
fn checkpoint_rejects_model_with_different_architecture() {
    let (_, model) = setup();
    let blob = model.store().to_bytes();
    let dims =
        ModelDims { num_entities: 5, in_features: 1, hidden: 12, input_len: 12, output_len: 12 };
    let mut other = GruSeq2Seq::rnn(dims, 1, TemporalMode::Shared, 3);
    assert!(other.store_mut().load_bytes(&blob).is_err(), "wrong hidden size must be rejected");
}

#[test]
fn checkpoint_is_stable_across_construction_seeds() {
    // Loading a checkpoint into a model constructed with a *different* seed
    // (same architecture) must still reproduce the source predictions:
    // weights come entirely from the blob.
    let (data, model_a) = setup();
    let x = data.input_window(3);
    let blob = model_a.store().to_bytes();
    let dims =
        ModelDims { num_entities: 5, in_features: 1, hidden: 8, input_len: 12, output_len: 12 };
    let mut model_b = GruSeq2Seq::rnn(dims, 1, TemporalMode::Shared, 999);
    assert!(!predict(&model_b, &x).allclose(&predict(&model_a, &x), 1e-6));
    model_b.store_mut().load_bytes(&blob).expect("load");
    assert!(predict(&model_b, &x).allclose(&predict(&model_a, &x), 0.0));
}
