//! Cross-crate integration tests: data generation → windowing → training →
//! evaluation, for representatives of every model family.

use enhancenet::prelude::*;
use enhancenet_graph::{gaussian_kernel_adjacency, AdjacencyConfig};
use enhancenet_models::{
    GraphMode, GruSeq2Seq, LstmSeq2Seq, ModelDims, Stgcn, TemporalMode, WaveNet, WaveNetConfig,
};
use enhancenet_tensor::Tensor;

fn traffic_data(n: usize, days: usize) -> (WindowDataset, Tensor) {
    let series = generate_traffic(&TrafficConfig::tiny(n, days));
    let adjacency = gaussian_kernel_adjacency(&series.distances, AdjacencyConfig::default());
    (WindowDataset::from_series(&series, 12, 12).unwrap(), adjacency)
}

fn dims(n: usize, c: usize, hidden: usize) -> ModelDims {
    ModelDims { num_entities: n, in_features: c, hidden, input_len: 12, output_len: 12 }
}

fn quick_trainer(epochs: usize) -> Trainer {
    let cfg = TrainConfig::builder()
        .epochs(epochs)
        .batch_size(8)
        .max_batches_per_epoch(Some(15))
        .max_eval_batches(Some(6))
        .build()
        .expect("test config is valid");
    Trainer::new(cfg)
}

/// Training must reduce the loss for a GRU model on real windows.
#[test]
fn rnn_loss_decreases_end_to_end() {
    let (data, _) = traffic_data(6, 2);
    let mut model = GruSeq2Seq::rnn(dims(6, 1, 12), 2, TemporalMode::Shared, 1);
    let trainer = quick_trainer(4);
    let report = trainer.train(&mut model, &data);
    let first = report.train_loss[0];
    let best = report.train_loss.iter().copied().fold(f32::INFINITY, f32::min);
    assert!(best < first, "loss never improved: {:?}", report.train_loss);
}

/// A trained model must clearly beat an untrained one of the same shape.
#[test]
fn training_beats_random_initialization() {
    let (data, _) = traffic_data(6, 2);
    let trainer = quick_trainer(5);
    let mut trained = GruSeq2Seq::rnn(dims(6, 1, 12), 1, TemporalMode::Shared, 2);
    trainer.train(&mut trained, &data);
    let untrained = GruSeq2Seq::rnn(dims(6, 1, 12), 1, TemporalMode::Shared, 3);
    let e1 = trainer.evaluate(&trained, &data, data.split.test.clone(), &[3]);
    let e2 = trainer.evaluate(&untrained, &data, data.split.test.clone(), &[3]);
    assert!(
        e1.overall.mae < e2.overall.mae * 0.8,
        "trained {} vs untrained {}",
        e1.overall.mae,
        e2.overall.mae
    );
}

/// Every model family trains one step without panicking and evaluates with
/// finite metrics (smoke coverage for the whole matrix).
#[test]
fn every_family_trains_and_evaluates() {
    let (data, adjacency) = traffic_data(6, 2);
    let trainer = quick_trainer(1);
    let d = dims(6, 1, 8);
    let dfgn = DfgnConfig { memory_dim: 4, hidden1: 6, hidden2: 3 };
    let wn = WaveNetConfig { dilations: vec![1, 2, 4, 4], kernel: 2, end_hidden: 12, dropout: 0.3 };
    let mut models: Vec<Box<dyn Forecaster>> = vec![
        Box::new(GruSeq2Seq::rnn(d, 1, TemporalMode::Shared, 1)),
        Box::new(GruSeq2Seq::rnn(d, 1, TemporalMode::Distinct(dfgn), 1)),
        Box::new(GruSeq2Seq::grnn(
            d,
            1,
            TemporalMode::Shared,
            GraphMode::paper_static(),
            &adjacency,
            1,
        )),
        Box::new(GruSeq2Seq::grnn(
            d,
            1,
            TemporalMode::Distinct(dfgn),
            GraphMode::paper_dynamic(),
            &adjacency,
            1,
        )),
        Box::new(WaveNet::tcn(d, wn.clone(), TemporalMode::Shared, 1)),
        Box::new(WaveNet::tcn(d, wn.clone(), TemporalMode::Distinct(dfgn), 1)),
        Box::new(WaveNet::gtcn(
            d,
            wn.clone(),
            TemporalMode::Shared,
            GraphMode::paper_dynamic(),
            &adjacency,
            1,
        )),
        Box::new(LstmSeq2Seq::new(d, 1, 1)),
        Box::new(Stgcn::new(d, 1, &adjacency, 1)),
    ];
    for model in &mut models {
        let report = trainer.train(model.as_mut(), &data);
        assert!(report.train_loss[0].is_finite(), "{} diverged", model.name());
        let eval = trainer.evaluate(model.as_ref(), &data, data.split.test.clone(), &[3, 6, 12]);
        assert!(eval.overall.mae.is_finite(), "{} produced NaN metrics", model.name());
        assert!(eval.overall.mae > 0.0);
        assert_eq!(eval.horizons.len(), 3);
    }
}

/// The weather pipeline (6 attributes, hourly) works end to end.
#[test]
fn weather_pipeline_end_to_end() {
    let series = generate_weather(&WeatherConfig::tiny(6, 15));
    let adjacency = gaussian_kernel_adjacency(&series.distances, AdjacencyConfig::default());
    let data = WindowDataset::from_series(&series, 12, 12).unwrap();
    let trainer = quick_trainer(2);
    let mut model = WaveNet::gtcn(
        dims(6, 6, 8),
        WaveNetConfig { dilations: vec![1, 2, 4, 4], kernel: 2, end_hidden: 12, dropout: 0.3 },
        TemporalMode::Shared,
        GraphMode::paper_static(),
        &adjacency,
        4,
    );
    let report = trainer.train(&mut model, &data);
    assert!(report.train_loss.iter().all(|l| l.is_finite()));
    let eval = trainer.evaluate(&model, &data, data.split.test.clone(), &[3]);
    // Temperature MAE should be bounded (the series is a few tens of °C).
    assert!(eval.overall.mae < 30.0, "MAE {}", eval.overall.mae);
}

/// Determinism: identical seeds give identical training trajectories.
#[test]
fn training_is_reproducible() {
    let (data, _) = traffic_data(5, 2);
    let run = || {
        let mut model = GruSeq2Seq::rnn(dims(5, 1, 8), 1, TemporalMode::Shared, 9);
        let trainer = quick_trainer(2);
        trainer.train(&mut model, &data).train_loss
    };
    assert_eq!(run(), run());
}

/// Parameter-count ordering claimed by the paper: the DFGN-enhanced model
/// at its smaller hidden size undercuts the base model at its full size.
#[test]
fn parameter_reduction_claim_holds() {
    let base = GruSeq2Seq::rnn(dims(100, 2, 64), 2, TemporalMode::Shared, 1);
    let enhanced =
        GruSeq2Seq::rnn(dims(100, 2, 16), 2, TemporalMode::Distinct(DfgnConfig::default()), 1);
    assert!(
        enhanced.num_parameters() < base.num_parameters() / 2,
        "D-RNN {} should be <50% of RNN {}",
        enhanced.num_parameters(),
        base.num_parameters()
    );
    // And the straightforward per-entity method would be N× the base cost,
    // far above both.
    let straightforward = 100 * (base.num_parameters() - 65); // ignore head bias wiggle
    assert!(enhanced.num_parameters() < straightforward / 10);
}
