//! Validation that the synthetic generators plant the effects the paper's
//! plugins target — the load-bearing assumption behind the substitution of
//! PEMS/METR-LA/Kaggle with synthetic data (DESIGN.md §2).

use enhancenet::prelude::*;

/// Pearson correlation of two equal-length slices.
fn corr(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len() as f32;
    let (ma, mb) = (a.iter().sum::<f32>() / n, b.iter().sum::<f32>() / n);
    let cov: f32 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum();
    let va: f32 = a.iter().map(|x| (x - ma) * (x - ma)).sum();
    let vb: f32 = b.iter().map(|y| (y - mb) * (y - mb)).sum();
    cov / (va.sqrt() * vb.sqrt()).max(1e-9)
}

/// Distinct temporal dynamics: the daily speed profiles of different
/// sensors must *not* be near-identical up to scale — some pairs have to be
/// strongly anti-phased (morning vs evening peaks). Without this, DFGN has
/// nothing to capture.
#[test]
fn traffic_plants_distinct_temporal_dynamics() {
    let mut cfg = TrafficConfig::tiny(12, 14);
    cfg.num_corridors = 2;
    let ds = generate_traffic(&cfg);
    let spd = 288;
    // Average daily profile per sensor (daytime only, weekdays).
    let profile = |e: usize| -> Vec<f32> {
        (60..240)
            .map(|slot| {
                (0..10) // first 10 weekdays-ish
                    .map(|d| ds.values.at(&[d * spd + slot, e, 0]))
                    .sum::<f32>()
                    / 10.0
            })
            .collect()
    };
    let profiles: Vec<Vec<f32>> = (0..12).map(profile).collect();
    let mut min_c = f32::INFINITY;
    let mut max_c = f32::NEG_INFINITY;
    for i in 0..12 {
        for j in (i + 1)..12 {
            let c = corr(&profiles[i], &profiles[j]);
            min_c = min_c.min(c);
            max_c = max_c.max(c);
        }
    }
    assert!(max_c > 0.6, "some sensor pairs should share dynamics, max corr {max_c}");
    assert!(min_c < 0.1, "some sensor pairs should have dissimilar dynamics, min corr {min_c}");
}

/// Spatial correlation: same-corridor same-direction sensors must co-vary
/// more strongly than sensors on different corridors.
#[test]
fn traffic_plants_spatial_correlation_structure() {
    let mut cfg = TrafficConfig::tiny(12, 10);
    cfg.num_corridors = 2;
    cfg.noise_std = 0.5;
    let ds = generate_traffic(&cfg);
    let series =
        |e: usize| -> Vec<f32> { (0..ds.num_steps()).map(|t| ds.values.at(&[t, e, 0])).collect() };
    // Entities 0 and 4 share corridor 0 inbound (slots 0 and 2);
    // entity 1 is corridor 1.
    let same = corr(&series(0), &series(4));
    let cross = corr(&series(0), &series(1));
    assert!(same > cross, "same-corridor corr {same} should exceed cross-corridor corr {cross}");
}

/// Dynamic correlations: the coupling between corridors must differ between
/// the morning and evening regimes (the DAMGN motivation). We compare the
/// morning-window vs evening-window correlation between an inbound sensor
/// and the *previous* corridor's inbound sensor (the morning spill source).
#[test]
fn traffic_plants_time_varying_cross_corridor_coupling() {
    let mut cfg = TrafficConfig::tiny(16, 20);
    cfg.num_corridors = 4;
    cfg.noise_std = 0.5;
    let ds = generate_traffic(&cfg);
    let spd = 288;
    // Corridor of entity i is i % 4; inbound slots are even (slot = i / 4).
    // Entities 0 (corr 0, inbound) and 1 (corr 1, inbound).
    let window = |e: usize, h0: usize, h1: usize| -> Vec<f32> {
        let mut v = Vec::new();
        for d in 0..20 {
            for slot in (h0 * 12)..(h1 * 12) {
                v.push(ds.values.at(&[d * spd + slot, e, 0]));
            }
        }
        v
    };
    // Morning regime: corridor 1 inbound (entity 1) is fed by corridor 0's
    // inbound (entity 0). Evening: the coupling reverses to (corridor 2).
    let morning = corr(&window(0, 6, 11), &window(1, 6, 11));
    let night = corr(&window(0, 0, 5), &window(1, 0, 5));
    assert!(
        morning > night + 0.05,
        "morning coupling {morning} should exceed night coupling {night}"
    );
}

/// Weather fronts couple stations with a longitude-dependent lag, so
/// east-station pressure should correlate better with *lagged* west-station
/// pressure than with the simultaneous one.
#[test]
fn weather_plants_lagged_front_coupling() {
    let cfg = WeatherConfig { num_stations: 9, num_days: 120, front_rate: 8.0, seed: 5 };
    let ds = generate_weather(&cfg);
    let xs: Vec<f32> = (0..9).map(|i| ds.coords.at(&[i, 0])).collect();
    let west = (0..9).min_by(|&a, &b| xs[a].total_cmp(&xs[b])).unwrap();
    let east = (0..9).max_by(|&a, &b| xs[a].total_cmp(&xs[b])).unwrap();
    // Same latitude band matters; just use pressure anomalies (feature 2).
    let series =
        |e: usize| -> Vec<f32> { (0..ds.num_steps()).map(|t| ds.values.at(&[t, e, 2])).collect() };
    let w = series(west);
    let e = series(east);
    let t = w.len();
    let best_lag = (0..48)
        .max_by(|&l1, &l2| {
            let c1 = corr(&w[..t - l1], &e[l1..]);
            let c2 = corr(&w[..t - l2], &e[l2..]);
            c1.total_cmp(&c2)
        })
        .unwrap();
    assert!(best_lag > 0, "east pressure should lag west pressure (best lag {best_lag}h)");
}
