//! End-to-end serving-path coverage: raw observations streamed through a
//! [`ForecastService`] must produce exactly the forecasts the offline
//! [`Forecaster::predict`] path produces on the same windows, and every
//! failure mode must degrade to a persistence forecast instead of hanging
//! or panicking.

use enhancenet::prelude::*;
use enhancenet::ForwardCtx;
use enhancenet_autodiff::{Graph, ParamStore, Var};
use enhancenet_models::{GruSeq2Seq, ModelDims, TemporalMode};
use enhancenet_tensor::Tensor;
use std::time::{Duration, Instant};

const H: usize = 12;
const F: usize = 12;
const N: usize = 8;

fn dims() -> ModelDims {
    ModelDims { num_entities: N, in_features: 1, hidden: 8, input_len: H, output_len: F }
}

/// Same constructor arguments → bit-identical parameters, so a twin model
/// stands in for "the same trained model" on the offline path.
fn model() -> GruSeq2Seq {
    GruSeq2Seq::rnn(dims(), 1, TemporalMode::Shared, 3)
}

#[test]
fn streamed_forecasts_match_offline_predict_bitwise() {
    let series = generate_traffic(&TrafficConfig::tiny(N, 2));
    let data = WindowDataset::from_series(&series, H, F).unwrap();
    let (n, c) = (series.num_entities(), series.num_features());

    let mut service = ServeConfig::builder().spawn(Box::new(model()), data.scaler.clone()).unwrap();
    let offline = model();

    let mut compared = 0;
    for t in 0..60 {
        let row = &series.values.data()[t * n * c..(t + 1) * n * c];
        service.ingest_row(t as i64, row).unwrap();
        if !service.is_ready() {
            continue;
        }
        let served = service.forecast().unwrap();
        assert!(!served.is_degraded(), "model answered within deadline at t={t}");
        assert_eq!(served.anchor, Some(t as i64));

        // Offline: the same H raw rows, scaled with the same scaler.
        let raw = series.values.slice_axis(0, t + 1 - H, t + 1);
        let scaled = data.scaler.transform(&raw).unwrap();
        let expected = data.scaler.inverse_feature(&offline.predict(&scaled).unwrap(), 0);
        assert_eq!(
            served.values.data(),
            expected.data(),
            "served forecast diverged from offline predict at t={t}"
        );
        compared += 1;
    }
    assert!(compared >= 40, "only {compared} forecasts compared");
    service.shutdown(ShutdownMode::Drain);
}

/// A host whose forward pass is far slower than the serving deadline.
struct SlowModel {
    inner: GruSeq2Seq,
    sleep: Duration,
}

impl Forecaster for SlowModel {
    fn name(&self) -> &str {
        "slow"
    }
    fn store(&self) -> &ParamStore {
        self.inner.store()
    }
    fn store_mut(&mut self) -> &mut ParamStore {
        self.inner.store_mut()
    }
    fn horizon(&self) -> usize {
        self.inner.horizon()
    }
    fn input_shape(&self) -> Option<[usize; 3]> {
        self.inner.input_shape()
    }
    fn forward(&self, g: &mut Graph, x: &Tensor, ctx: &mut ForwardCtx) -> Var {
        std::thread::sleep(self.sleep);
        self.inner.forward(g, x, ctx)
    }
}

#[test]
fn missed_deadline_returns_degraded_persistence_not_an_error() {
    let series = generate_traffic(&TrafficConfig::tiny(N, 2));
    let data = WindowDataset::from_series(&series, H, F).unwrap();
    let (n, c) = (series.num_entities(), series.num_features());

    let slow = SlowModel { inner: model(), sleep: Duration::from_millis(300) };
    let mut service = ServeConfig::builder()
        .deadline(Duration::from_millis(5))
        .spawn(Box::new(slow), data.scaler.clone())
        .unwrap();
    for t in 0..H {
        let row = &series.values.data()[t * n * c..(t + 1) * n * c];
        service.ingest_row(t as i64, row).unwrap();
    }

    let started = Instant::now();
    let forecast = service.forecast().expect("degraded forecast, not an error");
    assert_eq!(
        forecast.degraded,
        Some(DegradedCause::Deadline),
        "a missed deadline must be marked degraded with its cause"
    );
    assert!(
        started.elapsed() < Duration::from_millis(200),
        "forecast blocked past its deadline: {:?}",
        started.elapsed()
    );

    // The fallback is a persistence forecast: each entity's last raw
    // observation repeated across the horizon.
    assert_eq!(forecast.values.shape(), &[F, N]);
    for e in 0..N {
        let last = series.values.at(&[H - 1, e, 0]);
        for f in 0..F {
            assert_eq!(forecast.values.at(&[f, e]), last);
        }
    }
    service.shutdown(ShutdownMode::Drain);
}

#[test]
fn warming_service_degrades_instead_of_erroring() {
    let series = generate_traffic(&TrafficConfig::tiny(N, 2));
    let data = WindowDataset::from_series(&series, H, F).unwrap();
    let (n, c) = (series.num_entities(), series.num_features());
    let mut service = ServeConfig::builder().spawn(Box::new(model()), data.scaler.clone()).unwrap();
    // Fewer rows than the window needs: degraded persistence, never a hang.
    for t in 0..H / 2 {
        let row = &series.values.data()[t * n * c..(t + 1) * n * c];
        service.ingest_row(t as i64, row).unwrap();
        let forecast = service.forecast().unwrap();
        assert_eq!(forecast.degraded, Some(DegradedCause::ColdWindow));
        assert_eq!(forecast.values.shape(), &[F, N]);
    }
    service.shutdown(ShutdownMode::Drain);
}

#[test]
fn live_scrape_exposes_slo_and_fallback_series() {
    use std::io::{Read as _, Write as _};

    fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let mut body = String::new();
        stream.read_to_string(&mut body).unwrap();
        body
    }

    // This test owns the process-global telemetry switch; the other tests
    // in this binary never read the global registry, so flipping it here
    // is safe even under the parallel test runner.
    enhancenet_telemetry::set_enabled(true);
    let series = generate_traffic(&TrafficConfig::tiny(N, 2));
    let data = WindowDataset::from_series(&series, H, F).unwrap();
    let (n, c) = (series.num_entities(), series.num_features());
    let mut service = ServeConfig::builder()
        .metrics_addr("127.0.0.1:0")
        .spawn(Box::new(model()), data.scaler.clone())
        .unwrap();
    let addr = service.metrics_addr().expect("ephemeral metrics port bound");

    // Not ready while the window is cold; forecasts degrade but count.
    assert!(http_get(addr, "/readyz").starts_with("HTTP/1.1 503"));
    let mut ids = Vec::new();
    for t in 0..2 * H {
        let row = &series.values.data()[t * n * c..(t + 1) * n * c];
        service.ingest_row(t as i64, row).unwrap();
        ids.push(service.forecast().unwrap().request_id);
    }
    assert!(ids.windows(2).all(|w| w[0] < w[1]), "request ids must be strictly increasing");
    assert!(http_get(addr, "/readyz").starts_with("HTTP/1.1 200"));
    assert!(http_get(addr, "/healthz").starts_with("HTTP/1.1 200"));

    let scrape = http_get(addr, "/metrics");
    for family in [
        "serve_request",
        "serve_fallback_cold",
        "serve_queue_depth",
        "serve_window_fill",
        "serve_slo_p99_ns",
        "serve_slo_deadline_hit_rate",
        "serve_slo_error_budget_burn",
        "serve_latency_ns_count",
        "serve_queue_wait_ns_count",
    ] {
        assert!(scrape.contains(family), "scrape is missing {family}:\n{scrape}");
    }

    // The rolling window saw every request; the cold-window half degraded.
    let report = service.slo_report();
    assert_eq!(report.requests, 2 * H as u64);
    assert!(report.degraded_rate > 0.0 && report.degraded_rate < 1.0);
    service.shutdown(ShutdownMode::Drain);
    enhancenet_telemetry::set_enabled(false);
}
