//! End-to-end telemetry coverage: a quick training run with the global
//! registry enabled must emit one `epoch` event per epoch, populate the
//! kernel counters and stage timers, and render JSONL that round-trips
//! through `serde_json` with the fields `scripts/bench_summary` validates.
//!
//! Runs as its own test binary: the telemetry registry is process-global,
//! and the sibling integration suites must keep seeing it disabled.

use enhancenet::prelude::*;
use enhancenet_models::{GruSeq2Seq, ModelDims, TemporalMode};

#[test]
fn quick_training_run_emits_structured_telemetry() {
    let series = generate_traffic(&TrafficConfig::tiny(6, 2));
    let data = WindowDataset::from_series(&series, 12, 12).unwrap();
    let dims =
        ModelDims { num_entities: 6, in_features: 1, hidden: 12, input_len: 12, output_len: 12 };
    let mut model = GruSeq2Seq::rnn(dims, 1, TemporalMode::Shared, 1);

    enhancenet_telemetry::reset();
    enhancenet_telemetry::set_enabled(true);
    let epochs = 3;
    let trainer = Trainer::new(TrainConfig::quick(epochs, 8));
    let report = trainer.train(&mut model, &data);
    enhancenet_telemetry::set_enabled(false);

    // One structured record per epoch, in the report and on the sink.
    assert_eq!(report.epoch_telemetry.len(), epochs);
    assert_eq!(enhancenet_telemetry::event_count("epoch"), epochs);
    // At least the first epoch improves over +inf, so a best_epoch event
    // must exist.
    assert!(enhancenet_telemetry::event_count("best_epoch") >= 1);

    // The instrumented stack recorded kernel and stage activity.
    assert!(enhancenet_telemetry::counter_value("tensor.matmul.calls") > 0);
    let backward =
        enhancenet_telemetry::timer_stat("autodiff.backward").expect("backward sweeps were timed");
    assert!(backward.calls > 0);
    let forward =
        enhancenet_telemetry::timer_stat("trainer.forward").expect("forward passes were timed");
    assert!(forward.calls as usize >= epochs, "one forward per batch expected");

    // JSONL round-trip: every line is valid JSON; epoch events carry the
    // schema bench_summary --check enforces.
    let jsonl = enhancenet_telemetry::render_jsonl();
    let mut epoch_lines = 0;
    for line in jsonl.lines() {
        let v: serde_json::Value = serde_json::from_str(line).expect("valid JSONL line");
        if v["type"] == "event" && v["kind"] == "epoch" {
            epoch_lines += 1;
            let p = &v["payload"];
            for key in [
                "epoch",
                "secs",
                "windows",
                "windows_per_sec",
                "grad_norm",
                "train_loss",
                "val_mae",
                "lr",
                "full_epoch",
                "best",
            ] {
                assert!(!p[key].is_null(), "epoch event missing {key}: {p}");
            }
            assert!(p["windows"].as_u64().unwrap() > 0);
            assert!(p["secs"].as_f64().unwrap() >= 0.0);
            assert!(p["windows_per_sec"].as_f64().unwrap() > 0.0);
        }
    }
    assert_eq!(epoch_lines, epochs);

    enhancenet_telemetry::reset();
}
