#!/usr/bin/env python3
"""Summarize results/*.json into compact Markdown tables.

Usage: python3 scripts/summarize_results.py [results_dir]

Reads the JSON artifacts written by `cargo run -p enhancenet-experiments`
and prints Markdown suitable for pasting into EXPERIMENTS.md.
"""
import json
import sys
from pathlib import Path


def table_rows(path: Path) -> None:
    results = json.loads(path.read_text())
    print(f"\n### {path.stem}\n")
    datasets = sorted({r["dataset"] for r in results}, key=lambda d: ["EB", "LA", "US"].index(d))
    for ds in datasets:
        print(f"\n**{ds}**\n")
        print("| model | MAE@3 | MAE@6 | MAE@12 | RMSE@12 | # params |")
        print("|---|---|---|---|---|---|")
        for r in [r for r in results if r["dataset"] == ds]:
            h = {hh[0]: hh for hh in r["horizons"]}
            print(
                f"| {r['model']} | {h[3][1]:.3f} | {h[6][1]:.3f} | {h[12][1]:.3f} "
                f"| {h[12][2]:.3f} | {r['num_parameters']} |"
            )


def main() -> None:
    results_dir = Path(sys.argv[1] if len(sys.argv) > 1 else "results")
    for name in ["table1", "table2", "table3"]:
        p = results_dir / f"{name}.json"
        if p.exists():
            table_rows(p)
    ttests = results_dir / "table3_ttests.json"
    if ttests.exists():
        print("\n### t-tests\n")
        for ds, ours, sota, t, p in json.loads(ttests.read_text()):
            sig = "significant (p < 0.01)" if p < 0.01 else "not significant"
            print(f"- {ds}: {ours} vs {sota}: t = {t:+.3f}, p = {p:.4f} — {sig}")


if __name__ == "__main__":
    main()
