//! Integrating the EnhanceNet plugins into **your own** forecasting model.
//!
//! The paper's point is that DFGN and DAMGN are *generic plugins*, not parts
//! of one architecture. This example builds a deliberately simple custom
//! host — a one-layer autoregressive linear model per entity — and enhances
//! it with DFGN-generated per-entity coefficients, implementing the
//! [`Forecaster`] trait from scratch.
//!
//! ```sh
//! cargo run --release --example custom_plugin_host
//! ```

use enhancenet::{Dfgn, DfgnConfig, Forecaster, ForwardCtx, TrainConfig, Trainer};
use enhancenet_autodiff::{Graph, ParamStore, Var};
use enhancenet_data::traffic::{generate_traffic, TrafficConfig};
use enhancenet_data::WindowDataset;
use enhancenet_tensor::{Tensor, TensorRng};

/// A linear autoregressive host: prediction = learned combination of the H
/// input steps, per horizon. With `dfgn: None` all entities share the
/// `[H, F]` coefficient matrix; with a DFGN each entity gets its own
/// generated `[H, F]` matrix from its memory.
struct LinearAr {
    store: ParamStore,
    shared: Option<enhancenet_autodiff::ParamId>,
    dfgn: Option<Dfgn>,
    h: usize,
    f: usize,
    n: usize,
}

impl LinearAr {
    fn new(n: usize, h: usize, f: usize, distinct: bool, seed: u64) -> Self {
        let mut store = ParamStore::new();
        let mut rng = TensorRng::seed(seed);
        let (shared, dfgn) = if distinct {
            let dfgn = Dfgn::new(&mut store, &mut rng, "ar", n, h * f, DfgnConfig::default());
            (None, Some(dfgn))
        } else {
            (Some(store.add("coef", rng.xavier(&[h, f], h, f))), None)
        };
        Self { store, shared, dfgn, h, f, n }
    }
}

impl Forecaster for LinearAr {
    fn name(&self) -> &str {
        if self.dfgn.is_some() {
            "D-LinearAR"
        } else {
            "LinearAR"
        }
    }
    fn store(&self) -> &ParamStore {
        &self.store
    }
    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }
    fn horizon(&self) -> usize {
        self.f
    }

    fn forward(&self, g: &mut Graph, x: &Tensor, _ctx: &mut ForwardCtx) -> Var {
        let (b, h, n, _c) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        // Target-feature history per entity: [B, N, H].
        let hist = x.slice_axis(3, 0, 1).reshape(&[b, h, n]).permute(&[0, 2, 1]);
        let hv = g.constant(hist);
        let y = match (&self.shared, &self.dfgn) {
            (Some(coef), None) => {
                let w = g.param(&self.store, *coef); // [H, F]
                g.matmul_broadcast_right(hv, w) // [B, N, F]
            }
            (None, Some(dfgn)) => {
                // DFGN: per-entity [H, F] coefficients from memories.
                let generated = dfgn.generate(g, &self.store); // [N, H·F]
                let w = g.reshape(generated, &[self.n, self.h, self.f]);
                let xp = g.permute(hv, &[1, 0, 2]); // [N, B, H]
                let per_entity = g.bmm(xp, w); // [N, B, F]
                g.permute(per_entity, &[1, 0, 2]) // [B, N, F]
            }
            _ => unreachable!("exactly one weight source"),
        };
        g.permute(y, &[0, 2, 1]) // [B, F, N]
    }
}

fn main() {
    let series = generate_traffic(&TrafficConfig::tiny(16, 5));
    let data = WindowDataset::from_series(&series, 12, 12);
    let trainer = Trainer::new(TrainConfig::quick(10, 16));

    println!("{:<12} {:>9} {:>9} {:>9} {:>9}", "model", "MAE@3", "MAE@6", "MAE@12", "#params");
    for distinct in [false, true] {
        let mut model = LinearAr::new(16, 12, 12, distinct, 5);
        trainer.train(&mut model, &data);
        let eval = trainer.evaluate(&model, &data, data.split.test.clone(), &[3, 6, 12]);
        println!(
            "{:<12} {:>9.3} {:>9.3} {:>9.3} {:>9}",
            model.name(),
            eval.horizons[0].1.mae,
            eval.horizons[1].1.mae,
            eval.horizons[2].1.mae,
            model.num_parameters()
        );
    }
    println!(
        "\nThe D- variant plugs a DFGN into a model the paper never saw — the\n\
         plugin interface is exactly Eq. 10: W(i) = DFGN(M(i))."
    );
}
