//! Traffic forecasting with the full plugin stack: a graph-convolutional
//! GRU (DCRNN-style) enhanced with both DFGN and DAMGN — the paper's
//! best model, D-DA-GRNN — on a synthetic road network.
//!
//! Demonstrates the intro's motivating scenario: sensors on different
//! corridors have opposite rush-hour profiles, and congestion couples
//! corridors differently in the morning than in the evening.
//!
//! ```sh
//! cargo run --release --example traffic_forecast
//! ```

use enhancenet::prelude::*;
use enhancenet_graph::{gaussian_kernel_adjacency, AdjacencyConfig};
use enhancenet_models::{GruSeq2Seq, ModelDims};

fn main() {
    // A 20-sensor road network over 6 days.
    let mut cfg = TrafficConfig::tiny(20, 6);
    cfg.num_corridors = 4;
    let series = generate_traffic(&cfg);
    let data = WindowDataset::from_series(&series, 12, 12).expect("series is long enough");

    // Distance-derived adjacency A (Gaussian kernel, threshold 0.1 — the
    // paper's §VI-A recipe).
    let adjacency = gaussian_kernel_adjacency(&series.distances, AdjacencyConfig::default());
    let edges = adjacency.data().iter().filter(|&&v| v > 0.0).count();
    println!("adjacency: {} sensors, {} directed edges above threshold", 20, edges);

    let dims =
        ModelDims { num_entities: 20, in_features: 1, hidden: 16, input_len: 12, output_len: 12 };
    let config = TrainConfig::builder()
        .epochs(6)
        .batch_size(8)
        .max_batches_per_epoch(Some(25))
        .max_eval_batches(Some(10))
        .build()
        .expect("training config is valid");
    let trainer = Trainer::new(config);

    // GRNN (the DCRNN architecture) vs the fully enhanced D-DA-GRNN.
    let mut grnn = GruSeq2Seq::paper_grnn(dims, 2, &adjacency, 3);
    println!("training {} ({} params) ...", grnn.name(), grnn.num_parameters());
    trainer.train(&mut grnn, &data);
    let base = trainer.evaluate(&grnn, &data, data.split.test.clone(), &[3, 6, 12]);

    let dims_d = ModelDims { hidden: 10, ..dims };
    let mut enhanced = GruSeq2Seq::paper_d_da_grnn(dims_d, 2, &adjacency, 3);
    println!("training {} ({} params) ...", enhanced.name(), enhanced.num_parameters());
    trainer.train(&mut enhanced, &data);
    let enh = trainer.evaluate(&enhanced, &data, data.split.test.clone(), &[3, 6, 12]);

    println!("\n{:<12} {:>9} {:>9} {:>9}", "model", "MAE@15m", "MAE@30m", "MAE@1h");
    println!(
        "{:<12} {:>9.3} {:>9.3} {:>9.3}",
        grnn.name(),
        base.horizons[0].1.mae,
        base.horizons[1].1.mae,
        base.horizons[2].1.mae
    );
    println!(
        "{:<12} {:>9.3} {:>9.3} {:>9.3}",
        enhanced.name(),
        enh.horizons[0].1.mae,
        enh.horizons[1].1.mae,
        enh.horizons[2].1.mae
    );

    // Peek at what DAMGN learned: the mixing weights of Eq. 13.
    if let Some(damgn) = enhanced.damgn() {
        let (la, lb, lc) = damgn.lambda_ids();
        println!(
            "\nlearned adjacency mix (Eq. 13): lambda_A = {:+.3}, lambda_B = {:+.3}, lambda_C = {:+.3}",
            enhanced.store().value(la).item(),
            enhanced.store().value(lb).item(),
            enhanced.store().value(lc).item(),
        );
    }
}
