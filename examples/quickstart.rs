//! Quickstart: generate a small correlated traffic dataset, train a plain
//! GRU forecaster and its DFGN-enhanced counterpart, and compare them.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use enhancenet::prelude::*;
use enhancenet_models::{GruSeq2Seq, ModelDims};

fn main() {
    // 1. A synthetic correlated time series: 24 traffic sensors on 4
    //    corridors, 8 days of 5-minute speeds, with per-sensor rush-hour
    //    profiles (inbound sensors peak in the morning, outbound in the
    //    evening — the distinct dynamics DFGN targets).
    let mut cfg = TrafficConfig::tiny(24, 8);
    cfg.num_corridors = 4;
    let series = generate_traffic(&cfg);
    println!(
        "dataset: {} sensors × {} timestamps × {} feature(s)",
        series.num_entities(),
        series.num_steps(),
        series.num_features()
    );

    // 2. Window it: 12 past steps -> 12 future steps, 70/10/20 split.
    let data = WindowDataset::from_series(&series, 12, 12).expect("series is long enough");
    println!("windows: {} (train {:?})", data.num_windows(), data.split.train);

    // 3. Train the base model and the DFGN-enhanced model. The enhanced
    //    model learns through the generator indirection, so give both a
    //    moderate budget.
    let config = TrainConfig::builder()
        .epochs(10)
        .batch_size(8)
        .max_batches_per_epoch(Some(40))
        .max_eval_batches(Some(10))
        .build()
        .expect("training config is valid");
    let trainer = Trainer::new(config);
    let dims =
        ModelDims { num_entities: 24, in_features: 1, hidden: 32, input_len: 12, output_len: 12 };

    let mut rnn = GruSeq2Seq::paper_rnn(dims, 2, 7);
    trainer.train(&mut rnn, &data);
    let base = trainer.evaluate(&rnn, &data, data.split.test.clone(), &[3, 6, 12]);

    let dims_d = ModelDims { hidden: 12, ..dims };
    let mut drnn = GruSeq2Seq::paper_d_rnn(dims_d, 2, 7);
    trainer.train(&mut drnn, &data);
    let enhanced = trainer.evaluate(&drnn, &data, data.split.test.clone(), &[3, 6, 12]);

    // 4. Compare, the way the paper's Table I does. At this toy budget the
    //    two trade places run to run; the stable effect (see
    //    `experiments table1` for the full sweep) is that D-RNN reaches the
    //    wide RNN's accuracy with a much smaller hidden size — the paper's
    //    parameter-reduction claim.
    println!("\n{:<8} {:>10} {:>10} {:>10} {:>10}", "model", "MAE@3", "MAE@6", "MAE@12", "#params");
    for (name, eval, params) in
        [("RNN", &base, rnn.num_parameters()), ("D-RNN", &enhanced, drnn.num_parameters())]
    {
        println!(
            "{:<8} {:>10.3} {:>10.3} {:>10.3} {:>10}",
            name, eval.horizons[0].1.mae, eval.horizons[1].1.mae, eval.horizons[2].1.mae, params
        );
    }
}
