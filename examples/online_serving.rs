//! Online forecast serving: wrap a trained model in a [`ForecastService`],
//! stream raw observations into its sliding window, and read 12-step
//! forecasts back — including the graceful-degradation path while the
//! window is still warming up.
//!
//! ```sh
//! cargo run --release --example online_serving
//! ```
//!
//! With live observability — bind an embedded Prometheus endpoint and keep
//! replaying traffic so it can be scraped under load:
//!
//! ```sh
//! cargo run --release --example online_serving -- \
//!     --metrics-addr 127.0.0.1:9898 --serve-secs 10 &
//! curl -s http://127.0.0.1:9898/metrics | grep serve_slo
//! ```
//!
//! `--telemetry-out <path>` additionally dumps the full telemetry
//! registry (training epochs, `serve.*` SLO metrics, `plan.*`
//! compiled-plan counters) as JSONL on exit, for
//! `scripts/bench_summary --check`.

use enhancenet::prelude::*;
use enhancenet_models::{GruSeq2Seq, ModelDims};
use std::time::{Duration, Instant};

fn parse_args() -> (Option<String>, u64, Option<std::path::PathBuf>) {
    let mut metrics_addr = None;
    let mut serve_secs = 0u64;
    let mut telemetry_out = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--metrics-addr" => {
                metrics_addr = Some(args.next().expect("--metrics-addr needs host:port"));
            }
            "--serve-secs" => {
                serve_secs = args
                    .next()
                    .expect("--serve-secs needs a number")
                    .parse()
                    .expect("--serve-secs must be an integer");
            }
            "--telemetry-out" => {
                telemetry_out = Some(std::path::PathBuf::from(
                    args.next().expect("--telemetry-out needs a path"),
                ));
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: online_serving [--metrics-addr host:port] [--serve-secs N] \
                     [--telemetry-out path]"
                );
                std::process::exit(2);
            }
        }
    }
    (metrics_addr, serve_secs, telemetry_out)
}

fn main() {
    let (metrics_addr, serve_secs, telemetry_out) = parse_args();
    if metrics_addr.is_some() || telemetry_out.is_some() {
        // A scrape of a disabled registry would be empty; live exposition
        // (or a JSONL dump) implies live recording.
        enhancenet_telemetry::set_enabled(true);
    }

    // Train a small DFGN-enhanced GRU offline, exactly as in `quickstart`.
    let series = generate_traffic(&TrafficConfig::tiny(16, 5));
    let (n, c) = (series.num_entities(), series.num_features());
    let data = WindowDataset::from_series(&series, 12, 12).expect("series is long enough");
    let config = TrainConfig::builder()
        .epochs(4)
        .batch_size(8)
        .max_batches_per_epoch(Some(20))
        .max_eval_batches(Some(10))
        .build()
        .expect("training config is valid");
    let trainer = Trainer::new(config);
    let dims =
        ModelDims { num_entities: 16, in_features: 1, hidden: 12, input_len: 12, output_len: 12 };
    let mut model = GruSeq2Seq::paper_d_rnn(dims, 2, 7);
    println!("training {} offline ...", model.name());
    trainer.train(&mut model, &data);

    // Hand the model (and the scaler it was trained with) to the service.
    // The model moves to a worker thread that serves micro-batches; this
    // thread keeps the sliding-window state and the raw-scale API.
    let mut builder = ServeConfig::builder();
    if let Some(addr) = metrics_addr {
        builder = builder.metrics_addr(addr);
    }
    let mut service = builder
        .spawn(Box::new(model), data.scaler.clone())
        .expect("model reports its input shape and the metrics address binds");
    println!(
        "serving: window {:?}, horizon {}, deadline {:?}",
        service.input_shape(),
        service.horizon(),
        ServeConfig::default().deadline
    );
    if let Some(addr) = service.metrics_addr() {
        println!("metrics: http://{addr}/metrics  (also /healthz, /readyz)");
    }

    // Replay the held-out tail of the series as a live feed. The first
    // `H - 1` steps are not enough history: the service degrades to a
    // persistence forecast (tagged with its cause) instead of failing.
    let start = series.num_steps() - 24;
    let mut degraded_count = 0;
    for (step, t) in (start..series.num_steps()).enumerate() {
        let row = &series.values.data()[t * n * c..(t + 1) * n * c];
        service.ingest_row(t as i64, row).expect("row has N*C values");
        let forecast = service.forecast().expect("history exists once ingested");
        if forecast.is_degraded() {
            degraded_count += 1;
        }
        if step % 6 == 5 {
            println!(
                "t={t:>4}  id={:<3}  degraded={:<5}  next-step speeds: {:.1} / {:.1} / {:.1} km/h",
                forecast.request_id,
                forecast.is_degraded(),
                forecast.values.at(&[0, 0]),
                forecast.values.at(&[0, 1]),
                forecast.values.at(&[0, 2]),
            );
        }
    }
    println!(
        "\n{} of 24 responses were degraded persistence forecasts (warm-up); \
         the rest came from the model within the deadline.",
        degraded_count
    );

    // Optionally keep the feed looping so an external scraper sees the
    // service under steady load (used by the CI smoke job).
    if serve_secs > 0 {
        println!("replaying traffic for {serve_secs}s so /metrics can be scraped under load ...");
        let until = Instant::now() + Duration::from_secs(serve_secs);
        let mut t = series.num_steps() as i64;
        while Instant::now() < until {
            let src = (t as usize) % series.num_steps();
            let row = &series.values.data()[src * n * c..(src + 1) * n * c];
            service.ingest_row(t, row).expect("row has N*C values");
            let _ = service.forecast().expect("history exists once ingested");
            t += 1;
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    let slo = service.slo_report();
    println!(
        "SLO over the last {:?}: {} requests, p50 {:.2} ms, p99 {:.2} ms, \
         deadline hit-rate {:.3} (target {}), degraded rate {:.3}, budget burn {:.2}",
        slo.window,
        slo.requests,
        slo.latency_p50_ns / 1e6,
        slo.latency_p99_ns / 1e6,
        slo.deadline_hit_rate,
        slo.target,
        slo.degraded_rate,
        slo.error_budget_burn,
    );
    let report = service.shutdown(ShutdownMode::Drain);
    println!("shutdown: drained {} queued requests, shed {}", report.drained, report.shed);

    // Dump everything recorded (training epochs, serve.* SLO metrics, the
    // plan.* cache/compile telemetry) after the worker has drained, so the
    // JSONL carries the full serving story. CI gates on this artifact:
    // `bench_summary --check` plus a nonzero `plan.cache.hits`.
    if let Some(path) = telemetry_out {
        enhancenet_telemetry::write_jsonl(&path).expect("telemetry JSONL is writable");
        println!("telemetry written to {}", path.display());
    }
}
