//! Online forecast serving: wrap a trained model in a [`ForecastService`],
//! stream raw observations into its sliding window, and read 12-step
//! forecasts back — including the graceful-degradation path while the
//! window is still warming up.
//!
//! ```sh
//! cargo run --release --example online_serving
//! ```

use enhancenet::prelude::*;
use enhancenet_models::{GruSeq2Seq, ModelDims};

fn main() {
    // Train a small DFGN-enhanced GRU offline, exactly as in `quickstart`.
    let series = generate_traffic(&TrafficConfig::tiny(16, 5));
    let (n, c) = (series.num_entities(), series.num_features());
    let data = WindowDataset::from_series(&series, 12, 12).expect("series is long enough");
    let config = TrainConfig::builder()
        .epochs(4)
        .batch_size(8)
        .max_batches_per_epoch(Some(20))
        .max_eval_batches(Some(10))
        .build()
        .expect("training config is valid");
    let trainer = Trainer::new(config);
    let dims =
        ModelDims { num_entities: 16, in_features: 1, hidden: 12, input_len: 12, output_len: 12 };
    let mut model = GruSeq2Seq::paper_d_rnn(dims, 2, 7);
    println!("training {} offline ...", model.name());
    trainer.train(&mut model, &data);

    // Hand the model (and the scaler it was trained with) to the service.
    // The model moves to a worker thread that serves micro-batches; this
    // thread keeps the sliding-window state and the raw-scale API.
    let mut service =
        ForecastService::new(Box::new(model), data.scaler.clone(), ServeConfig::default())
            .expect("model reports its input shape");
    println!(
        "serving: window {:?}, horizon {}, deadline {:?}",
        service.input_shape(),
        service.horizon(),
        ServeConfig::default().deadline
    );

    // Replay the held-out tail of the series as a live feed. The first
    // `H - 1` steps are not enough history: the service degrades to a
    // persistence forecast (marked `degraded: true`) instead of failing.
    let start = series.num_steps() - 24;
    let mut degraded_count = 0;
    for (step, t) in (start..series.num_steps()).enumerate() {
        let row = &series.values.data()[t * n * c..(t + 1) * n * c];
        service.ingest_row(t as i64, row).expect("row has N*C values");
        let forecast = service.forecast().expect("history exists once ingested");
        if forecast.degraded {
            degraded_count += 1;
        }
        if step % 6 == 5 {
            println!(
                "t={t:>4}  degraded={:<5}  next-step speeds: {:.1} / {:.1} / {:.1} km/h",
                forecast.degraded,
                forecast.values.at(&[0, 0]),
                forecast.values.at(&[0, 1]),
                forecast.values.at(&[0, 2]),
            );
        }
    }
    println!(
        "\n{} of 24 responses were degraded persistence forecasts (warm-up); \
         the rest came from the model within the deadline.",
        degraded_count
    );
    service.shutdown();
}
