//! Multi-attribute weather forecasting (the paper's *US* setting):
//! 6 attributes per station, hourly sampling, 12-hour forecasts with a
//! WaveNet-style TCN, comparing the static-supports GTCN against the
//! DAMGN-enhanced DA-GTCN as weather fronts sweep the station grid.
//!
//! ```sh
//! cargo run --release --example weather_forecast
//! ```

use enhancenet::prelude::*;
use enhancenet_graph::{gaussian_kernel_adjacency, AdjacencyConfig};
use enhancenet_models::{ModelDims, WaveNet};

fn main() {
    // 9 stations on a grid, ~7 weeks of hourly data with moving fronts.
    let series = generate_weather(&WeatherConfig::tiny(9, 50));
    println!(
        "dataset: {} stations × {} hours × {} attributes",
        series.num_entities(),
        series.num_steps(),
        series.num_features()
    );
    let data = WindowDataset::from_series(&series, 12, 12).expect("series is long enough");
    let adjacency = gaussian_kernel_adjacency(&series.distances, AdjacencyConfig::default());

    let dims =
        ModelDims { num_entities: 9, in_features: 6, hidden: 16, input_len: 12, output_len: 12 };
    let config = TrainConfig::builder()
        .epochs(6)
        .batch_size(8)
        .schedule(LrSchedule::Constant(0.005))
        .max_batches_per_epoch(Some(20))
        .max_eval_batches(Some(10))
        .build()
        .expect("training config is valid");
    let trainer = Trainer::new(config);

    let mut results = Vec::new();
    for dynamic in [false, true] {
        let mut model = if dynamic {
            WaveNet::paper_da_gtcn(dims, &adjacency, 11)
        } else {
            WaveNet::paper_gtcn(dims, &adjacency, 11)
        };
        println!("training {} ...", model.name());
        trainer.train(&mut model, &data);
        let eval = trainer.evaluate(&model, &data, data.split.test.clone(), &[3, 6, 12]);
        results.push((model.name().to_string(), eval));
    }

    println!("\ntemperature forecasting (°C errors):");
    println!("{:<10} {:>9} {:>9} {:>9}", "model", "MAE@3h", "MAE@6h", "MAE@12h");
    for (name, eval) in &results {
        println!(
            "{:<10} {:>9.3} {:>9.3} {:>9.3}",
            name, eval.horizons[0].1.mae, eval.horizons[1].1.mae, eval.horizons[2].1.mae
        );
    }
}
