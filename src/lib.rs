//! Root package: re-exports for the examples and integration tests.
pub use enhancenet_autodiff as autodiff;
pub use enhancenet_data as data;
pub use enhancenet_graph as graph;
pub use enhancenet_models as models;
pub use enhancenet_stats as stats;
pub use enhancenet_tensor as tensor;
