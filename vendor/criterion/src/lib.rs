//! Vendored, dependency-free subset of the `criterion` crate.
//!
//! The registry configured for this repository is unreachable from the build
//! environment, so the workspace vendors the few external crates it uses as
//! minimal in-tree implementations (see `vendor/README.md`). This harness
//! keeps criterion's API shape (`criterion_group!`/`criterion_main!`,
//! `Criterion::benchmark_group`, `bench_function`, `bench_with_input`,
//! `Bencher::iter`) over a simple engine: per-benchmark wall-clock sampling
//! with a short warm-up, reporting median / mean / min per iteration.
//!
//! CLI behavior matches what CI invokes:
//! * `--test` (from `cargo bench -- --test`) runs every benchmark body once
//!   and reports `ok`, without timing loops.
//! * any bare (non-flag) argument filters benchmarks by substring match on
//!   their full `group/name` id.

pub use std::hint::black_box;

use std::time::{Duration, Instant};

/// Top-level benchmark driver, configured once per binary.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 100, test_mode: false, filter: None }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Applies command-line arguments (`--test`, substring filters). Flags
    /// criterion would accept but this harness doesn't implement are ignored
    /// rather than rejected, so `cargo bench` wrappers keep working.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1).peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => self.test_mode = true,
                "--bench" => {
                    // `cargo bench` appends `--bench` to the binary's args;
                    // swallow it (and no value follows from cargo).
                }
                s if s.starts_with("--") => {
                    // Unimplemented criterion flag; skip a value if present.
                    if let Some(next) = args.peek() {
                        if !next.starts_with("--") {
                            args.next();
                        }
                    }
                }
                other => self.filter = Some(other.to_string()),
            }
        }
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: None }
    }

    /// Benchmarks `f` under `id` outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into().0;
        let samples = self.sample_size;
        self.run_one(&id, samples, f);
        self
    }

    /// Prints the end-of-run footer (kept for API compatibility).
    pub fn final_summary(&self) {
        println!("\nbenchmarks complete");
    }

    fn run_one<F>(&mut self, id: &str, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        if self.test_mode {
            let mut b = Bencher { mode: Mode::Once, samples: Vec::new() };
            f(&mut b);
            println!("test {id} ... ok");
            return;
        }
        // Warm-up: run the body until ~50ms have elapsed so caches, pools,
        // and lazy statics settle before timing.
        let warm_deadline = Instant::now() + Duration::from_millis(50);
        while Instant::now() < warm_deadline {
            let mut b = Bencher { mode: Mode::Once, samples: Vec::new() };
            f(&mut b);
        }
        let mut b = Bencher { mode: Mode::Sample(sample_size), samples: Vec::new() };
        f(&mut b);
        b.samples.sort_unstable();
        let median = b.samples[b.samples.len() / 2];
        let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
        let min = b.samples[0];
        println!(
            "{id:<44} median {:>12} mean {:>12} min {:>12} ({} samples)",
            fmt_duration(median),
            fmt_duration(mean),
            fmt_duration(min),
            b.samples.len(),
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// A named set of benchmarks sharing a prefix and optional sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    /// Benchmarks `f` under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().0);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(&full, samples, f);
        self
    }

    /// Benchmarks `f` with a borrowed input under `group/id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (kept for API compatibility; groups need no teardown).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from a displayed parameter value, e.g. a size.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        Self(param.to_string())
    }

    /// Builds a `name/parameter` id.
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
        Self(format!("{}/{}", name.into(), param))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self(s)
    }
}

impl From<&String> for BenchmarkId {
    fn from(s: &String) -> Self {
        Self(s.clone())
    }
}

enum Mode {
    /// Run the body once (test mode and warm-up).
    Once,
    /// Collect N timed samples.
    Sample(usize),
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    mode: Mode,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, whose return value is black-boxed to keep the
    /// optimizer from deleting the measured work.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            Mode::Once => {
                black_box(routine());
            }
            Mode::Sample(n) => {
                // Batch iterations per sample so sub-microsecond bodies are
                // measured above timer resolution.
                let probe = Instant::now();
                black_box(routine());
                let once = probe.elapsed();
                let batch = (Duration::from_micros(100).as_nanos() / once.as_nanos().max(1))
                    .clamp(1, 10_000) as u32;
                self.samples.reserve(n);
                for _ in 0..n {
                    let start = Instant::now();
                    for _ in 0..batch {
                        black_box(routine());
                    }
                    self.samples.push(start.elapsed() / batch);
                }
            }
        }
    }
}

/// Declares a benchmark group function, in either upstream form:
/// `criterion_group!(name, target, ...)` or
/// `criterion_group! { name = n; config = expr; targets = t, ... }`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares `fn main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::Criterion::default().configure_from_args().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(5);
        let mut runs = 0u32;
        let runs_ref = &mut runs;
        c.bench_function("trivial", |b| b.iter(|| *runs_ref += 1));
        assert!(runs > 0, "benchmark body never executed");
    }

    #[test]
    fn groups_compose_ids_and_sample_size() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(4);
        let mut ran = false;
        let ran_ref = &mut ran;
        group.bench_with_input(BenchmarkId::from_parameter(207), &207usize, |b, &n| {
            b.iter(|| {
                *ran_ref = true;
                black_box(n * 2)
            })
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion { sample_size: 3, test_mode: false, filter: Some("other".into()) };
        let mut ran = false;
        let ran_ref = &mut ran;
        c.bench_function("this_one", |b| b.iter(|| *ran_ref = true));
        assert!(!ran, "filtered benchmark must not run");
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion { sample_size: 50, test_mode: true, filter: None };
        let mut runs = 0u32;
        let runs_ref = &mut runs;
        c.bench_function("once", |b| b.iter(|| *runs_ref += 1));
        assert_eq!(runs, 1);
    }
}
