//! Vendored, dependency-free subset of the `serde_json` crate.
//!
//! The registry configured for this repository is unreachable from the build
//! environment, so the workspace vendors the few external crates it uses as
//! minimal in-tree implementations (see `vendor/README.md`). This crate
//! covers the workspace's JSON needs: the [`Value`] tree with an
//! insertion-ordered [`Map`], the [`json!`] constructor macro, a strict
//! RFC 8259 parser ([`from_str`]), compact/pretty printers, and bridges to
//! the vendored `serde::Serialize` trait ([`to_value`], [`to_string`],
//! [`to_string_pretty`]).

use std::fmt;

/// An arbitrary JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON `true`/`false`.
    Bool(bool),
    /// A JSON number (integer or float).
    Number(Number),
    /// A JSON string.
    String(String),
    /// A JSON array.
    Array(Vec<Value>),
    /// A JSON object with insertion-ordered keys.
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    /// Borrows the string content when `self` is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the boolean when `self` is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the value as `u64` when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// Returns the value as `i64` when it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// Returns any number as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// Borrows the elements when `self` is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrows the map when `self` is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Looks up `key` when `self` is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Returns true for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => n.write(out),
            Value::String(s) => serde::write_json_str(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_compact(out);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    serde::write_json_str(k, out);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        const INDENT: &str = "  ";
        match self {
            Value::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&INDENT.repeat(depth + 1));
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                out.push_str(&INDENT.repeat(depth));
                out.push(']');
            }
            Value::Object(map) if !map.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&INDENT.repeat(depth + 1));
                    serde::write_json_str(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                out.push_str(&INDENT.repeat(depth));
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }
}

impl fmt::Display for Value {
    /// Writes the compact (single-line) JSON encoding.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write_compact(&mut s);
        f.write_str(&s)
    }
}

impl serde::Serialize for Value {
    fn write_json(&self, out: &mut String) {
        self.write_compact(out);
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// Returns the member value, or `Null` when `self` is not an object or
    /// lacks the key (matching upstream's forgiving indexing).
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    /// Returns the element, or `Null` when `self` is not an array or the
    /// index is out of bounds.
    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

// Comparisons against bare literals, so tests can write
// `assert_eq!(line["type"], "meta")` without wrapping in `Value`.
impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

macro_rules! eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                match self {
                    Value::Number(n) => n.as_i128() == Some(*other as i128),
                    _ => false,
                }
            }
        }
    )*};
}

eq_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

/// A JSON number: a non-negative integer, negative integer, or float.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Number(N);

#[derive(Debug, Clone, Copy, PartialEq)]
enum N {
    PosInt(u64),
    NegInt(i64),
    Float(f64),
}

impl Number {
    /// Returns the number as `u64` when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self.0 {
            N::PosInt(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the number as `i64` when it is an integer that fits.
    pub fn as_i64(&self) -> Option<i64> {
        match self.0 {
            N::PosInt(v) => i64::try_from(v).ok(),
            N::NegInt(v) => Some(v),
            N::Float(_) => None,
        }
    }

    fn as_i128(&self) -> Option<i128> {
        match self.0 {
            N::PosInt(v) => Some(v as i128),
            N::NegInt(v) => Some(v as i128),
            N::Float(_) => None,
        }
    }

    /// Returns the number as `f64` (lossy for large integers).
    pub fn as_f64(&self) -> f64 {
        match self.0 {
            N::PosInt(v) => v as f64,
            N::NegInt(v) => v as f64,
            N::Float(v) => v,
        }
    }

    fn write(&self, out: &mut String) {
        match self.0 {
            N::PosInt(v) => out.push_str(&v.to_string()),
            N::NegInt(v) => out.push_str(&v.to_string()),
            N::Float(v) => {
                let s = format!("{v}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            }
        }
    }
}

/// An insertion-ordered `String -> Value` map, matching upstream built with
/// the `preserve_order` feature (telemetry relies on key order for readable
/// JSONL lines).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self { entries: Vec::new() }
    }

    /// Inserts, replacing in place (retaining the original position) when
    /// the key already exists; returns the previous value if any.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Returns true when the key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns true when the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterates keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }
}

// ---------------------------------------------------------------------------
// From conversions (also the foundation of the `json!` macro).

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Self {
        Value::String(v.clone())
    }
}

macro_rules! from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self {
                Value::Number(Number(N::PosInt(v as u64)))
            }
        }
    )*};
}

macro_rules! from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self {
                let v = v as i64;
                if v >= 0 {
                    Value::Number(Number(N::PosInt(v as u64)))
                } else {
                    Value::Number(Number(N::NegInt(v)))
                }
            }
        }
    )*};
}

from_unsigned!(u8, u16, u32, u64, usize);
from_signed!(i8, i16, i32, i64, isize);

impl From<f64> for Value {
    /// Non-finite floats become `Null` (JSON has no NaN/∞), matching the
    /// vendored serde's serialization of them.
    fn from(v: f64) -> Self {
        if v.is_finite() {
            Value::Number(Number(N::Float(v)))
        } else {
            Value::Null
        }
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::from(f64::from(v))
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl From<Map> for Value {
    fn from(v: Map) -> Self {
        Value::Object(v)
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map_or(Value::Null, Into::into)
    }
}

impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Self {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone, const N: usize> From<[T; N]> for Value {
    fn from(v: [T; N]) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

// References to scalars, so `json!({"v": value})` works when `value` is a
// `&u64` loop variable. Per-type rather than blanket: a generic `From<&T>`
// would fail coherence against the `From<&String>` impl above.
macro_rules! from_ref {
    ($($t:ty),*) => {$(
        impl From<&$t> for Value {
            fn from(v: &$t) -> Self {
                (*v).into()
            }
        }
    )*};
}

from_ref!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

// ---------------------------------------------------------------------------
// json! macro

/// Builds a [`Value`] from JSON-looking syntax; object values may be nested
/// literals or arbitrary Rust expressions convertible via `Into<Value>`.
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => {
        $crate::json_internal!($($tt)+)
    };
}

/// Recursive token muncher behind [`json!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };

    ([]) => { $crate::Value::Array(::std::vec::Vec::new()) };
    ([ $($tt:tt)+ ]) => {
        $crate::json_internal!(@array [] $($tt)+)
    };

    ({}) => { $crate::Value::Object($crate::Map::new()) };
    ({ $($tt:tt)+ }) => {{
        let mut object = $crate::Map::new();
        $crate::json_internal!(@object object () ($($tt)+));
        $crate::Value::Object(object)
    }};

    ($other:expr) => { $crate::Value::from($other) };

    // ----- array muncher: accumulates element expressions in [..] -----
    (@array [$($elems:expr,)*]) => {
        $crate::Value::Array(<[_]>::into_vec(::std::boxed::Box::new([$($elems,)*])))
    };
    (@array [$($elems:expr,)*] null $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null),] $($($rest)*)?)
    };
    (@array [$($elems:expr,)*] [$($inner:tt)*] $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($inner)*]),] $($($rest)*)?)
    };
    (@array [$($elems:expr,)*] {$($inner:tt)*} $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($inner)*}),] $($($rest)*)?)
    };
    (@array [$($elems:expr,)*] $next:expr $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($($rest)*)?)
    };

    // ----- object muncher: (key tokens) then value, entry by entry -----
    (@object $object:ident () ()) => {};
    // Entry whose value is a nested object literal.
    (@object $object:ident ($($key:tt)+) (: {$($inner:tt)*} $(, $($rest:tt)*)?)) => {
        $object.insert(($($key)+).into(), $crate::json_internal!({$($inner)*}));
        $crate::json_internal!(@object $object () ($($($rest)*)?));
    };
    // Entry whose value is a nested array literal.
    (@object $object:ident ($($key:tt)+) (: [$($inner:tt)*] $(, $($rest:tt)*)?)) => {
        $object.insert(($($key)+).into(), $crate::json_internal!([$($inner)*]));
        $crate::json_internal!(@object $object () ($($($rest)*)?));
    };
    // Entry whose value is `null`.
    (@object $object:ident ($($key:tt)+) (: null $(, $($rest:tt)*)?)) => {
        $object.insert(($($key)+).into(), $crate::Value::Null);
        $crate::json_internal!(@object $object () ($($($rest)*)?));
    };
    // Entry whose value is an expression followed by more entries.
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*)) => {
        $object.insert(($($key)+).into(), $crate::Value::from($value));
        $crate::json_internal!(@object $object () ($($rest)*));
    };
    // Final entry whose value is an expression (optionally no trailing comma).
    (@object $object:ident ($($key:tt)+) (: $value:expr)) => {
        $object.insert(($($key)+).into(), $crate::Value::from($value));
    };
    // Munch one token into the key accumulator.
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*)) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*));
    };
}

// ---------------------------------------------------------------------------
// Serialize bridges

/// Error produced by conversion/parsing; carries a human-readable message.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

/// Serializes any `serde::Serialize` value to compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.write_json(&mut out);
    Ok(out)
}

/// Serializes any `serde::Serialize` value to 2-space-indented JSON text.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let parsed = from_str(&to_string(value)?)?;
    let mut out = String::new();
    parsed.write_pretty(&mut out, 0);
    Ok(out)
}

/// Converts any `serde::Serialize` value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value, Error> {
    from_str(&to_string(&value)?)
}

// ---------------------------------------------------------------------------
// Parser

/// Parses a complete JSON document, rejecting trailing non-whitespace.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy the run of plain bytes in one slice.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_literal("\\u") {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape '\\{}'", other as char)))
                        }
                    }
                }
                Some(b) if b < 0x20 => return Err(Error::new("raw control character in string")),
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(v) = stripped.parse::<u64>() {
                    if let Ok(neg) = i64::try_from(v).map(|v| -v) {
                        return Ok(Value::Number(Number(N::NegInt(neg))));
                    }
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number(N::PosInt(v))));
            }
        }
        text.parse::<f64>()
            .map(|v| Value::Number(Number(N::Float(v))))
            .map_err(|_| Error::new(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_flat_and_nested() {
        let label = "gemm";
        let value = 42u64;
        let v = json!({"type": "counter", "label": label, "value": value});
        assert_eq!(v.to_string(), r#"{"type":"counter","label":"gemm","value":42}"#);

        let depth = 3usize;
        let nested = json!({"name": "span", "args": {"depth": depth}, "dur": 1500_f64 / 1e3});
        assert_eq!(nested["args"]["depth"], 3);
        assert_eq!(nested["dur"].as_f64(), Some(1.5));
    }

    #[test]
    fn json_macro_embedded_array_expr() {
        let events = vec![json!({"a": 1}), json!({"a": 2})];
        let doc = json!({"traceEvents": events, "displayTimeUnit": "ms"});
        assert_eq!(doc["traceEvents"].as_array().unwrap().len(), 2);
        assert_eq!(doc["traceEvents"][1]["a"], 2);
        assert_eq!(doc["displayTimeUnit"], "ms");
    }

    #[test]
    fn parse_round_trip() {
        let src = r#"{"a":[1,-2,3.5,true,null],"b":{"c":"x\ny"},"d":"日本語"}"#;
        let v = from_str(src).unwrap();
        assert_eq!(v["a"][0], 1);
        assert_eq!(v["a"][1], -2);
        assert_eq!(v["a"][2].as_f64(), Some(3.5));
        assert_eq!(v["a"][3], true);
        assert!(v["a"][4].is_null());
        assert_eq!(v["b"]["c"], "x\ny");
        assert_eq!(v["d"], "日本語");
        assert_eq!(from_str(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn parse_unicode_escapes() {
        assert_eq!(from_str(r#""é""#).unwrap(), "é");
        assert_eq!(from_str(r#""😀""#).unwrap(), "😀");
        assert!(from_str(r#""\ud83d""#).is_err());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("1 2").is_err());
        assert!(from_str("nul").is_err());
    }

    #[test]
    fn missing_keys_index_to_null() {
        let v = json!({"a": 1});
        assert!(v["missing"].is_null());
        assert!(v["missing"]["deeper"].is_null());
        assert!(v[5].is_null());
    }

    #[test]
    fn map_preserves_insertion_order_and_replaces_in_place() {
        let mut m = Map::new();
        m.insert("z".into(), json!(1));
        m.insert("a".into(), json!(2));
        assert_eq!(m.insert("z".into(), json!(3)), Some(json!(1)));
        let keys: Vec<&String> = m.keys().collect();
        assert_eq!(keys, ["z", "a"]);
        assert_eq!(Value::Object(m).to_string(), r#"{"z":3,"a":2}"#);
    }

    #[test]
    fn pretty_printer_indents() {
        let v = json!({"a": [1, 2], "b": {"c": true}});
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(
            pretty,
            "{\n  \"a\": [\n    1,\n    2\n  ],\n  \"b\": {\n    \"c\": true\n  }\n}"
        );
    }

    #[test]
    fn to_value_bridges_serialize() {
        let v = to_value((1usize, 2.5f32, "x")).unwrap();
        assert_eq!(v[0], 1);
        assert_eq!(v[1].as_f64(), Some(2.5));
        assert_eq!(v[2], "x");
        // &Value round-trips through the bridge unchanged.
        let original = json!({"k": [1, 2]});
        assert_eq!(to_value(&original).unwrap(), original);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert!(Value::from(f64::NAN).is_null());
        assert!(Value::from(f32::NEG_INFINITY).is_null());
    }
}
