//! Vendored, dependency-free subset of the `serde` crate.
//!
//! The registry configured for this repository is unreachable from the build
//! environment, so the workspace vendors the few external crates it uses as
//! minimal in-tree implementations (see `vendor/README.md`). Upstream
//! serde's format-agnostic data model is collapsed to the one format this
//! workspace serializes to: [`Serialize`] writes JSON text directly, and
//! `serde_json` layers `Value` construction and parsing on top.
//!
//! Non-finite floats serialize as `null` (JSON has no NaN/∞), which keeps
//! telemetry records parseable when a diverged training epoch reports a NaN
//! gradient norm.

#[cfg(feature = "derive")]
pub use serde_derive::Serialize;

/// A type that can write itself as a JSON value.
///
/// Implementations must append exactly one syntactically valid JSON value to
/// `out` — object, array, string, number, boolean, or null.
pub trait Serialize {
    /// Appends `self` as JSON text.
    fn write_json(&self, out: &mut String);
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn write_json(&self, out: &mut String) {
        (**self).write_json(out);
    }
}

/// Appends `s` as a JSON string literal, escaping per RFC 8259 (quote,
/// backslash, and control characters; multi-byte UTF-8 passes through raw).
pub fn write_json_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Serialize for str {
    fn write_json(&self, out: &mut String) {
        write_json_str(self, out);
    }
}

impl Serialize for String {
    fn write_json(&self, out: &mut String) {
        write_json_str(self, out);
    }
}

impl Serialize for bool {
    fn write_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

macro_rules! int_serialize {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn write_json(&self, out: &mut String) {
                out.push_str(itoa_buffer(*self as i128).as_str());
            }
        }
    )*};
}

int_serialize!(i8, i16, i32, i64, isize, u8, u16, u32, usize);

impl Serialize for u64 {
    fn write_json(&self, out: &mut String) {
        // u64::MAX exceeds i128 formatting shortcut's comfort only via cast;
        // u64 -> i128 is lossless.
        out.push_str(itoa_buffer(*self as i128).as_str());
    }
}

impl Serialize for u128 {
    fn write_json(&self, out: &mut String) {
        out.push_str(&self.to_string());
    }
}

impl Serialize for i128 {
    fn write_json(&self, out: &mut String) {
        out.push_str(&self.to_string());
    }
}

fn itoa_buffer(v: i128) -> String {
    v.to_string()
}

/// Appends a finite float in a JSON-compatible spelling (`Display` plus a
/// forced `.0` so integers round-trip as floats); non-finite becomes `null`.
fn write_json_f64(v: f64, out: &mut String) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{v}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

impl Serialize for f32 {
    fn write_json(&self, out: &mut String) {
        write_json_f64(f64::from(*self), out);
    }
}

impl Serialize for f64 {
    fn write_json(&self, out: &mut String) {
        write_json_f64(*self, out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn write_json(&self, out: &mut String) {
        match self {
            Some(v) => v.write_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.write_json(out);
        }
        out.push(']');
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn write_json(&self, out: &mut String) {
        self.as_slice().write_json(out);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn write_json(&self, out: &mut String) {
        self.as_slice().write_json(out);
    }
}

macro_rules! tuple_serialize {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn write_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$idx.write_json(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
    )*};
}

tuple_serialize! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

#[cfg(test)]
mod tests {
    use super::Serialize;

    fn to_json<T: Serialize>(v: T) -> String {
        let mut s = String::new();
        v.write_json(&mut s);
        s
    }

    #[test]
    fn scalars() {
        assert_eq!(to_json(3usize), "3");
        assert_eq!(to_json(-7i64), "-7");
        assert_eq!(to_json(u64::MAX), u64::MAX.to_string());
        assert_eq!(to_json(true), "true");
        assert_eq!(to_json(1.5f32), "1.5");
        assert_eq!(to_json(2.0f64), "2.0");
        assert_eq!(to_json(f32::NAN), "null");
        assert_eq!(to_json(f64::INFINITY), "null");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(to_json("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(to_json("日本語"), "\"日本語\"");
        assert_eq!(to_json("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn containers() {
        assert_eq!(to_json(vec![1, 2, 3]), "[1,2,3]");
        assert_eq!(to_json((1usize, 2.5f32, "x")), "[1,2.5,\"x\"]");
        assert_eq!(to_json(Option::<u32>::None), "null");
        assert_eq!(to_json(Some(4u32)), "4");
    }
}
