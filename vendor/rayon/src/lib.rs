//! Vendored, dependency-free subset of the `rayon` crate.
//!
//! The registry configured for this repository is unreachable from the build
//! environment, so the workspace vendors the few external crates it uses as
//! minimal in-tree implementations (see `vendor/README.md`). This crate
//! covers the surface the GEMM engine consumes — `par_chunks_mut(..)
//! .enumerate().for_each(..)` over output row blocks and
//! `(0..n).into_par_iter().for_each(..)` over column slabs — backed by a
//! persistent global thread pool rather than per-call thread spawns, so the
//! fork point costs a queue push, not a clone+spawn.
//!
//! # Pool design
//!
//! * One detached worker per logical CPU (minus the caller), created lazily
//!   on the first parallel call and kept for the process lifetime.
//! * A fork pushes one boxed job per item onto a shared injector queue and
//!   then **helps**: the calling thread pops and runs queued jobs while it
//!   waits for its own batch to drain. Helping makes nested forks deadlock-
//!   free (a worker blocked on an inner fork keeps executing queued work)
//!   and keeps the caller productive instead of parked.
//! * Jobs are `catch_unwind`-wrapped; the first panic in a batch is resumed
//!   on the forking thread after the batch completes, mirroring rayon.
//!
//! Worker-count override: `RAYON_NUM_THREADS` (upstream-compatible), else
//! `std::thread::available_parallelism()`.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// Re-exports matching `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSliceMut};
}

/// Number of worker threads parallel calls fan out across (callers included).
pub fn current_num_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
    })
}

type Job = Box<dyn FnOnce() + Send>;

struct Injector {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
}

impl Injector {
    fn push(&self, job: Job) {
        self.queue.lock().unwrap_or_else(|e| e.into_inner()).push_back(job);
        self.available.notify_one();
    }

    fn try_pop(&self) -> Option<Job> {
        self.queue.lock().unwrap_or_else(|e| e.into_inner()).pop_front()
    }
}

fn injector() -> &'static Arc<Injector> {
    static POOL: OnceLock<Arc<Injector>> = OnceLock::new();
    POOL.get_or_init(|| {
        let inj =
            Arc::new(Injector { queue: Mutex::new(VecDeque::new()), available: Condvar::new() });
        // The forking thread always helps, so spawn one fewer worker than
        // the target width.
        for i in 0..current_num_threads().saturating_sub(1) {
            let inj = Arc::clone(&inj);
            std::thread::Builder::new()
                .name(format!("rayon-worker-{i}"))
                .spawn(move || worker_loop(&inj))
                .expect("spawn rayon worker");
        }
        inj
    })
}

fn worker_loop(inj: &Injector) {
    loop {
        let job = {
            let mut queue = inj.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                queue = inj.available.wait(queue).unwrap_or_else(|e| e.into_inner());
            }
        };
        job();
    }
}

/// Completion tracker for one fork: counts tasks down and records the first
/// panic payload so the forking thread can resume it.
struct Batch {
    pending: AtomicUsize,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    done: Condvar,
    done_lock: Mutex<()>,
}

impl Batch {
    fn complete(&self, panic: Option<Box<dyn std::any::Any + Send>>) {
        if let Some(p) = panic {
            let mut slot = self.panic.lock().unwrap_or_else(|e| e.into_inner());
            slot.get_or_insert(p);
        }
        if self.pending.fetch_sub(1, Ordering::Release) == 1 {
            let _guard = self.done_lock.lock().unwrap_or_else(|e| e.into_inner());
            self.done.notify_all();
        }
    }
}

/// Runs `tasks` to completion across the pool, helping from the calling
/// thread. Tasks may borrow from the caller's stack: the function does not
/// return until every task has finished, which is what makes the lifetime
/// erasure below sound.
fn run_scoped<'scope>(tasks: Vec<Box<dyn FnOnce() + Send + 'scope>>) {
    if tasks.is_empty() {
        return;
    }
    if tasks.len() == 1 || current_num_threads() == 1 {
        for task in tasks {
            task();
        }
        return;
    }
    let batch = Arc::new(Batch {
        pending: AtomicUsize::new(tasks.len()),
        panic: Mutex::new(None),
        done: Condvar::new(),
        done_lock: Mutex::new(()),
    });
    let inj = injector();
    for task in tasks {
        // SAFETY: `run_scoped` blocks until `batch.pending` hits zero, and
        // every pushed job decrements it exactly once (panic or not), so no
        // task outlives `'scope` borrows held by the caller.
        let task: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(task) };
        let batch = Arc::clone(&batch);
        inj.push(Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(task));
            batch.complete(result.err());
        }));
    }
    // Help: drain queued jobs (ours or another fork's) while waiting.
    while batch.pending.load(Ordering::Acquire) != 0 {
        if let Some(job) = inj.try_pop() {
            job();
        } else {
            let guard = batch.done_lock.lock().unwrap_or_else(|e| e.into_inner());
            if batch.pending.load(Ordering::Acquire) != 0 {
                // Timed wait: a helper running another fork's long job could
                // otherwise miss the notify window.
                let _ = batch.done.wait_timeout(guard, Duration::from_millis(1));
            }
        }
    }
    let mut panic = batch.panic.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(p) = panic.take() {
        resume_unwind(p);
    }
}

/// Parallel mutable chunking of slices, matching `rayon::slice::ParallelSliceMut`.
pub trait ParallelSliceMut<T: Send> {
    /// Splits the slice into `size`-element chunks (last may be shorter)
    /// that `for_each` processes in parallel.
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
        assert!(size > 0, "chunk size must be non-zero");
        ParChunksMut { slice: self, size }
    }
}

/// Parallel iterator over mutable chunks of a slice.
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pairs each chunk with its index.
    pub fn enumerate(self) -> EnumerateChunksMut<'a, T> {
        EnumerateChunksMut { inner: self }
    }

    /// Runs `f` on every chunk, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Send + Sync,
    {
        let f = &f;
        run_scoped(
            self.slice
                .chunks_mut(self.size)
                .map(|chunk| Box::new(move || f(chunk)) as Box<dyn FnOnce() + Send + '_>)
                .collect(),
        );
    }
}

/// Enumerated variant of [`ParChunksMut`].
pub struct EnumerateChunksMut<'a, T> {
    inner: ParChunksMut<'a, T>,
}

impl<T: Send> EnumerateChunksMut<'_, T> {
    /// Runs `f` on every `(index, chunk)` pair, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Send + Sync,
    {
        let f = &f;
        run_scoped(
            self.inner
                .slice
                .chunks_mut(self.inner.size)
                .enumerate()
                .map(|(i, chunk)| Box::new(move || f((i, chunk))) as Box<dyn FnOnce() + Send + '_>)
                .collect(),
        );
    }
}

/// Conversion into a parallel iterator, matching `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// The parallel form of `self`.
    type Iter;

    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Iter = ParRange;

    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

/// Parallel iterator over a `Range<usize>`.
pub struct ParRange {
    range: std::ops::Range<usize>,
}

impl ParRange {
    /// Runs `f` on every index, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(usize) + Send + Sync,
    {
        let f = &f;
        run_scoped(
            self.range.map(|i| Box::new(move || f(i)) as Box<dyn FnOnce() + Send + '_>).collect(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_chunks_mut_writes_every_chunk() {
        let mut data = vec![0usize; 103];
        data.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for v in chunk.iter_mut() {
                *v = i + 1;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i / 10 + 1);
        }
    }

    #[test]
    fn par_chunks_mut_unenumerated() {
        let mut data = vec![1i32; 64];
        data.par_chunks_mut(7).for_each(|chunk| {
            for v in chunk.iter_mut() {
                *v *= 2;
            }
        });
        assert!(data.iter().all(|&v| v == 2));
    }

    #[test]
    fn par_range_visits_every_index() {
        let hits: Vec<AtomicUsize> = (0..57).map(|_| AtomicUsize::new(0)).collect();
        (0..57usize).into_par_iter().for_each(|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn nested_forks_do_not_deadlock() {
        let mut outer = [0usize; 8];
        outer.par_chunks_mut(1).enumerate().for_each(|(i, chunk)| {
            let mut inner = [0usize; 16];
            inner.par_chunks_mut(4).for_each(|c| {
                for v in c.iter_mut() {
                    *v = 1;
                }
            });
            chunk[0] = i + inner.iter().sum::<usize>();
        });
        for (i, &v) in outer.iter().enumerate() {
            assert_eq!(v, i + 16);
        }
    }

    #[test]
    fn panics_propagate_to_forking_thread() {
        let result = std::panic::catch_unwind(|| {
            let mut data = [0u8; 10];
            data.par_chunks_mut(2).enumerate().for_each(|(i, _)| {
                if i == 3 {
                    panic!("boom");
                }
            });
        });
        assert!(result.is_err());
    }

    #[test]
    fn borrowed_captures_are_seen_after_fork() {
        let input: Vec<usize> = (0..100).collect();
        let mut out = vec![0usize; 100];
        out.par_chunks_mut(9).enumerate().for_each(|(ci, chunk)| {
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = input[ci * 9 + j] * 3;
            }
        });
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i * 3);
        }
    }
}
