//! Vendored, dependency-free subset of the `proptest` crate.
//!
//! The registry configured for this repository is unreachable from the build
//! environment, so the workspace vendors the few external crates it uses as
//! minimal in-tree implementations (see `vendor/README.md`). This crate
//! keeps proptest's API shape — [`Strategy`] with `prop_map`/`prop_flat_map`,
//! range and tuple strategies, [`prop::collection::vec`], `Just`,
//! `prop_oneof!`, and the [`proptest!`] test macro — over a much simpler
//! engine: deterministic seeded generation with **no shrinking**. Failures
//! print the case index and seed so a run is reproducible by construction
//! (seeds derive from the test name, not wall-clock entropy).

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Re-exports matching `proptest::prelude::*` as used by this workspace.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Deterministic RNG driving value generation (splitmix64 core).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    fn new(seed: u64) -> Self {
        Self { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, bound)` via widening multiply.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream there is no value tree: `new_value` produces the final
/// value directly and failing cases are reported by seed rather than shrunk.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        MapStrategy { base: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds from it
    /// (dependent generation, e.g. "a length, then a vec of that length").
    fn prop_flat_map<S, F>(self, f: F) -> FlatMapStrategy<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMapStrategy { base: self, f }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (**self).new_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        (**self).new_value(rng)
    }
}

/// Strategy producing a fixed value, matching `proptest::strategy::Just`.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct MapStrategy<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for MapStrategy<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.new_value(rng))
    }
}

/// [`Strategy::prop_flat_map`] adapter.
pub struct FlatMapStrategy<S, F> {
    base: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMapStrategy<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.new_value(rng)).new_value(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty => $wide:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add(rng.below(span) as $wide) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as $wide).wrapping_add(rng.below(span + 1) as $wide) as $t
            }
        }
    )*};
}

int_range_strategy!(
    usize => u64,
    u64 => u64,
    u32 => u64,
    u16 => u64,
    u8 => u64,
    isize => i64,
    i64 => i64,
    i32 => i64,
    i16 => i64,
    i8 => i64
);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let v = self.start + (self.end - self.start) * rng.unit_f64() as $t;
                // Floating rounding can land exactly on `end`; nudge back in.
                if v >= self.end { self.start } else { v }
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                start + (end - start) * rng.unit_f64() as $t
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Equal-weight choice between boxed strategies, backing [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].new_value(rng)
    }
}

/// Builds a [`Union`]; used by [`prop_oneof!`] so element types unify at the
/// `Vec` rather than fighting cast inference in macro output.
pub fn union<T>(options: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
    assert!(!options.is_empty(), "prop_oneof! needs at least one strategy");
    Union { options }
}

/// Boxes a strategy, erasing its concrete type.
pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(strategy)
}

/// Namespace mirror of `proptest::prop`.
pub mod prop {
    /// Collection strategies (`prop::collection::vec`).
    pub mod collection {
        use crate::{SizeRange, Strategy, TestRng};

        /// Generates `Vec`s whose length is drawn from `size` and whose
        /// elements come from `element`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }

        /// Strategy returned by [`vec()`].
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = self.size.sample(rng);
                (0..len).map(|_| self.element.new_value(rng)).collect()
            }
        }
    }
}

/// Length specification for collection strategies: a fixed size or a range.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        self.min + rng.below((self.max - self.min) as u64) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self { min: r.start, max: r.end }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        Self { min: *r.start(), max: *r.end() + 1 }
    }
}

/// Runner configuration, matching the `proptest::test_runner::Config` fields
/// this workspace sets.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Runs `case` once per configured case with deterministic seeds derived
/// from `name` (FNV-1a), reporting the failing seed before re-panicking.
/// Called by the [`proptest!`] macro expansion; not public API.
#[doc(hidden)]
pub fn run_cases(config: &ProptestConfig, name: &str, mut case: impl FnMut(&mut TestRng)) {
    let mut base: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        base ^= u64::from(b);
        base = base.wrapping_mul(0x0000_0100_0000_01B3);
    }
    for i in 0..config.cases {
        let seed = base.wrapping_add(u64::from(i));
        let mut rng = TestRng::new(seed);
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| case(&mut rng))) {
            eprintln!(
                "proptest `{name}`: case {}/{} failed (seed {seed:#018x})",
                i + 1,
                config.cases
            );
            resume_unwind(payload);
        }
    }
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the upstream forms used in this workspace: an optional leading
/// `#![proptest_config(...)]`, then one or more `fn name(pat in strategy,
/// ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($config) $($rest)*);
    };
    (@funcs ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        // Attributes (including `#[test]`) pass through verbatim: upstream
        // proptest expects the caller to write `#[test]` and so does every
        // use in this workspace.
        $(#[$meta])*
        fn $name() {
            let config = $config;
            $crate::run_cases(&config, stringify!($name), |rng| {
                $(let $pat = $crate::Strategy::new_value(&($strat), rng);)*
                $body
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a proptest body (no shrinking: plain assert).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a proptest body (no shrinking: plain assert).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Equal-weight choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::union(vec![$($crate::boxed($strategy)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, f32)> {
        (1usize..10, -1.0f32..1.0)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(n in 3usize..8, x in 0.5f32..5.0, k in 0u64..1000) {
            prop_assert!((3..8).contains(&n));
            prop_assert!((0.5..5.0).contains(&x));
            prop_assert!(k < 1000);
        }

        #[test]
        fn tuple_patterns_bind((n, x) in pair()) {
            prop_assert!((1..10).contains(&n));
            prop_assert!((-1.0..1.0).contains(&x));
        }

        #[test]
        fn vec_respects_size_and_elements(v in prop::collection::vec(0i32..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| (0..5).contains(&e)));
        }

        #[test]
        fn flat_map_dependent_lengths(v in (1usize..5).prop_flat_map(|n| {
            prop::collection::vec(0u8..10, n).prop_map(move |v| (n, v))
        })) {
            prop_assert_eq!(v.0, v.1.len());
        }

        #[test]
        fn oneof_picks_listed_values(v in prop_oneof![Just(1usize), Just(4), Just(9)]) {
            prop_assert!([1, 4, 9].contains(&v));
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let strat = prop::collection::vec(0u64..1_000_000, 8);
        let mut a = Vec::new();
        let mut b = Vec::new();
        crate::run_cases(&ProptestConfig::with_cases(3), "det", |rng| {
            a.push(strat.new_value(rng));
        });
        crate::run_cases(&ProptestConfig::with_cases(3), "det", |rng| {
            b.push(strat.new_value(rng));
        });
        assert_eq!(a, b);
        assert!(a.iter().flatten().any(|&v| v > 0), "degenerate generation");
    }
}
