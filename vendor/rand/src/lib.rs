//! Vendored, dependency-free subset of the `rand` crate.
//!
//! The registry configured for this repository is unreachable from the build
//! environment, so the workspace vendors the few external crates it uses as
//! minimal in-tree implementations (see `vendor/README.md`). This crate
//! covers the surface `enhancenet_tensor::TensorRng` consumes: a seedable
//! generator ([`rngs::StdRng`]) and [`Rng::gen_range`] over the float and
//! integer range types the tensor initializers use.
//!
//! The generator is xoshiro256++ seeded through splitmix64 — not bit-
//! compatible with upstream `StdRng` (ChaCha12), but every consumer in this
//! workspace only requires determinism-given-seed, which the tests here pin.

/// Low-level generator interface: a source of uniform random words.
pub trait RngCore {
    /// The next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// The next uniform 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from an explicit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A half-open or inclusive range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample from `self`.
    fn sample(self, rng: &mut impl RngCore) -> T;
}

/// High-level sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open `lo..hi` or inclusive
    /// `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: RngCore> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed through splitmix64 per the xoshiro authors'
            // recommendation, so nearby seeds give unrelated streams.
            let mut sm = seed;
            Self { s: [0; 4].map(|_| splitmix64(&mut sm)) }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// `[0, 1)` with 24 bits of mantissa entropy — the standard float recipe.
fn unit_f32(rng: &mut impl RngCore) -> f32 {
    (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
}

/// `[0, 1)` with 53 bits of mantissa entropy.
fn unit_f64(rng: &mut impl RngCore) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample(self, rng: &mut impl RngCore) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + unit_f32(rng) * (self.end - self.start);
        // Floating rounding can land exactly on `end` for tight ranges;
        // clamp to keep the half-open contract.
        if v >= self.end {
            self.end - (self.end - self.start) * f32::EPSILON
        } else {
            v
        }
    }
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample(self, rng: &mut impl RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + unit_f64(rng) * (self.end - self.start);
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
}

/// Uniform integer in `[0, bound)` by widening multiply (Lemire reduction
/// without the rejection step; the bias is < 2⁻⁴⁰ for every bound the
/// workspace uses).
fn below(rng: &mut impl RngCore, bound: u64) -> u64 {
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

int_range!(usize, u64, u32, i64, i32);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1_000_000), b.gen_range(0usize..1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen_range(0u64..u64::MAX) == b.gen_range(0u64..u64::MAX));
        assert_eq!(same.count(), 0);
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&v), "{v}");
            let u = rng.gen_range(f32::EPSILON..1.0);
            assert!((f32::EPSILON..1.0).contains(&u), "{u}");
        }
    }

    #[test]
    fn int_ranges_cover_all_values() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..5)] = true;
            seen[rng.gen_range(0usize..=4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(11);
        let mean: f64 = (0..50_000).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / 50_000.0;
        assert!((mean - 0.5).abs() < 0.01, "{mean}");
    }
}
