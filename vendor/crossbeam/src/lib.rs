//! Vendored, dependency-free subset of the `crossbeam` crate.
//!
//! The registry configured for this repository is unreachable from the build
//! environment, so the workspace vendors the few external crates it uses as
//! minimal in-tree implementations (see `vendor/README.md`). This crate
//! covers the surface `enhancenet::serve` consumes: a bounded MPMC channel
//! with `try_send`, blocking `send`/`recv`, `try_recv`, `recv_timeout`, and
//! disconnect detection through sender/receiver reference counts.

/// Bounded MPMC channels, matching `crossbeam::channel`.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        cap: usize,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Creates a bounded channel holding at most `cap` in-flight messages.
    ///
    /// # Panics
    ///
    /// Panics on `cap == 0`: upstream's zero-capacity rendezvous mode is not
    /// implemented (no consumer in this workspace uses it, and the serving
    /// runtime validates its queue capacity to be nonzero).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap > 0, "vendored crossbeam does not implement rendezvous (cap = 0) channels");
        let chan = Arc::new(Chan {
            state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
            cap,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender { chan: Arc::clone(&chan) }, Receiver { chan })
    }

    /// Error for [`Sender::send`] on a channel with no receivers.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error for [`Sender::try_send`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The queue is at capacity; the message is handed back.
        Full(T),
        /// Every receiver is gone; the message is handed back.
        Disconnected(T),
    }

    /// Error for [`Receiver::recv`] on a drained channel with no senders.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error for [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The queue is currently empty.
        Empty,
        /// The queue is empty and every sender is gone.
        Disconnected,
    }

    /// Error for [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the deadline.
        Timeout,
        /// The queue is empty and every sender is gone.
        Disconnected,
    }

    /// The sending half; clonable for multi-producer use.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Enqueues without blocking, failing when full or disconnected.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut state = self.chan.state.lock().unwrap_or_else(|e| e.into_inner());
            if state.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if state.queue.len() >= self.chan.cap {
                return Err(TrySendError::Full(value));
            }
            state.queue.push_back(value);
            drop(state);
            self.chan.not_empty.notify_one();
            Ok(())
        }

        /// Messages currently queued (a point-in-time reading; another
        /// thread may enqueue or drain immediately after). Used by the
        /// serving runtime to sample its `serve.queue.depth` gauge.
        pub fn len(&self) -> usize {
            self.chan.state.lock().unwrap_or_else(|e| e.into_inner()).queue.len()
        }

        /// True when no message is currently queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Enqueues, blocking while the queue is at capacity.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.chan.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                if state.queue.len() < self.chan.cap {
                    state.queue.push_back(value);
                    drop(state);
                    self.chan.not_empty.notify_one();
                    return Ok(());
                }
                state = self.chan.not_full.wait(state).unwrap_or_else(|e| e.into_inner());
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().unwrap_or_else(|e| e.into_inner()).senders += 1;
            Self { chan: Arc::clone(&self.chan) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.chan.state.lock().unwrap_or_else(|e| e.into_inner());
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                // Wake receivers blocked on an empty queue so they observe
                // the disconnect.
                self.chan.not_empty.notify_all();
            }
        }
    }

    /// The receiving half; clonable for multi-consumer use.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.chan.state.lock().unwrap_or_else(|e| e.into_inner());
            match state.queue.pop_front() {
                Some(value) => {
                    drop(state);
                    self.chan.not_full.notify_one();
                    Ok(value)
                }
                None if state.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Dequeues, blocking until a message arrives or every sender drops.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.chan.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(value) = state.queue.pop_front() {
                    drop(state);
                    self.chan.not_full.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.chan.not_empty.wait(state).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Dequeues, blocking up to `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.chan.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(value) = state.queue.pop_front() {
                    drop(state);
                    self.chan.not_full.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (next, timed_out) = self
                    .chan
                    .not_empty
                    .wait_timeout(state, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                state = next;
                if timed_out.timed_out() && state.queue.is_empty() {
                    return if state.senders == 0 {
                        Err(RecvTimeoutError::Disconnected)
                    } else {
                        Err(RecvTimeoutError::Timeout)
                    };
                }
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().unwrap_or_else(|e| e.into_inner()).receivers += 1;
            Self { chan: Arc::clone(&self.chan) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.chan.state.lock().unwrap_or_else(|e| e.into_inner());
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                // Wake senders blocked on a full queue so they observe the
                // disconnect.
                self.chan.not_full.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn send_recv_in_order() {
            let (tx, rx) = bounded(4);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn try_send_full_hands_value_back() {
            let (tx, rx) = bounded(1);
            tx.try_send(10).unwrap();
            assert_eq!(tx.try_send(11), Err(TrySendError::Full(11)));
            assert_eq!(rx.try_recv(), Ok(10));
            tx.try_send(12).unwrap();
        }

        #[test]
        fn drop_receiver_disconnects_sender() {
            let (tx, rx) = bounded(1);
            drop(rx);
            assert_eq!(tx.try_send(1), Err(TrySendError::Disconnected(1)));
            assert_eq!(tx.send(2), Err(SendError(2)));
        }

        #[test]
        fn drop_sender_disconnects_after_drain() {
            let (tx, rx) = bounded(2);
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn recv_timeout_times_out_then_succeeds() {
            let (tx, rx) = bounded(1);
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Err(RecvTimeoutError::Timeout));
            tx.send(3).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(3));
        }

        #[test]
        fn blocking_send_unblocks_on_recv() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            let handle = std::thread::spawn(move || tx.send(2));
            std::thread::sleep(Duration::from_millis(20));
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            handle.join().unwrap().unwrap();
        }

        #[test]
        fn cross_thread_wakeup() {
            let (tx, rx) = bounded(1);
            let handle = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                tx.send(9).unwrap();
            });
            assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(9));
            handle.join().unwrap();
        }
    }
}
