//! Vendored, dependency-free subset of the `bytes` crate.
//!
//! The registry configured for this repository is unreachable from the build
//! environment, so the workspace vendors the few external crates it uses as
//! minimal in-tree implementations (see `vendor/README.md`). This crate
//! covers exactly the surface `enhancenet-autodiff`'s checkpoint wire format
//! consumes: little-endian put/get of `u32`/`f32`, raw slices, and the
//! `BytesMut` → `Bytes` freeze.

use std::ops::Deref;

/// An immutable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data }
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.data.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.data.as_slice() == *other
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Debug, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// A new buffer with at least `cap` bytes of capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self { data: Vec::with_capacity(cap) }
    }

    /// Converts the accumulated bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// Read access to a byte stream, advancing past consumed bytes.
///
/// Matching upstream `bytes`, the `get_*` methods panic when fewer bytes
/// remain than the read requires — callers guard with [`Buf::remaining`].
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Consumes and returns the next `n` bytes.
    fn copy_to_bytes(&mut self, n: usize) -> Bytes;

    /// Consumes 4 bytes as a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;

    /// Consumes 4 bytes as a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        assert!(n <= self.len(), "copy_to_bytes past end of buffer");
        let (head, tail) = self.split_at(n);
        let out = Bytes { data: head.to_vec() };
        *self = tail;
        out
    }

    fn get_u32_le(&mut self) -> u32 {
        assert!(self.len() >= 4, "get_u32_le past end of buffer");
        let (head, tail) = self.split_at(4);
        *self = tail;
        u32::from_le_bytes(head.try_into().unwrap())
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }
}

/// Write access to a growable byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a `u32` in little-endian order.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends an `f32` in little-endian order.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_u32_f32_slice() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_f32_le(1.5);
        buf.put_slice(b"xy");
        let frozen = buf.freeze();
        let mut rd: &[u8] = &frozen;
        assert_eq!(rd.remaining(), 10);
        assert_eq!(rd.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(rd.get_f32_le(), 1.5);
        assert_eq!(rd.copy_to_bytes(2), b"xy"[..]);
        assert_eq!(rd.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "past end")]
    fn get_past_end_panics() {
        let mut rd: &[u8] = &[1, 2];
        let _ = rd.get_u32_le();
    }
}
