//! Vendored, dependency-free `#[derive(Serialize)]` implementation.
//!
//! The registry configured for this repository is unreachable from the build
//! environment, so the workspace vendors the few external crates it uses as
//! minimal in-tree implementations (see `vendor/README.md`). This macro
//! supports exactly what the workspace derives on: non-generic structs with
//! named fields, honoring `#[serde(skip_serializing)]`. It parses the raw
//! `proc_macro::TokenStream` directly instead of pulling in syn/quote.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (the vendored JSON-writer trait) for a struct
/// with named fields, emitting the fields as a JSON object in declaration
/// order. Fields marked `#[serde(skip_serializing)]` are omitted.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();

    let mut idx = 0;
    skip_attrs_and_vis(&tokens, &mut idx);
    match tokens.get(idx) {
        Some(TokenTree::Ident(kw)) if kw.to_string() == "struct" => idx += 1,
        other => panic!(
            "vendored serde_derive only supports structs, found {:?}",
            other.map(|t| t.to_string())
        ),
    }
    let name = match tokens.get(idx) {
        Some(TokenTree::Ident(name)) => name.to_string(),
        other => panic!("expected struct name, found {:?}", other.map(|t| t.to_string())),
    };
    idx += 1;
    if matches!(tokens.get(idx), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("vendored serde_derive does not support generic structs ({name})");
    }
    let body = match tokens.get(idx) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!(
            "vendored serde_derive only supports named-field structs, found {:?}",
            other.map(|t| t.to_string())
        ),
    };

    let fields = parse_named_fields(body);

    let mut out = String::new();
    out.push_str(&format!("impl ::serde::Serialize for {name} {{\n"));
    out.push_str("    fn write_json(&self, out: &mut ::std::string::String) {\n");
    out.push_str("        out.push('{');\n");
    let mut first = true;
    for field in fields.iter().filter(|f| !f.skip) {
        if !first {
            out.push_str("        out.push(',');\n");
        }
        first = false;
        out.push_str(&format!("        ::serde::write_json_str(\"{}\", out);\n", field.name));
        out.push_str("        out.push(':');\n");
        out.push_str(&format!(
            "        ::serde::Serialize::write_json(&self.{}, out);\n",
            field.name
        ));
    }
    out.push_str("        out.push('}');\n");
    out.push_str("    }\n}\n");
    out.parse().expect("serde_derive generated invalid Rust")
}

struct Field {
    name: String,
    skip: bool,
}

/// Advances `idx` past outer attributes (`#[...]`) and a visibility modifier
/// (`pub` with an optional restriction group).
fn skip_attrs_and_vis(tokens: &[TokenTree], idx: &mut usize) {
    loop {
        match tokens.get(*idx) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *idx += 2; // '#' plus the bracket group
            }
            Some(TokenTree::Ident(kw)) if kw.to_string() == "pub" => {
                *idx += 1;
                if matches!(
                    tokens.get(*idx),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *idx += 1; // pub(crate) / pub(super) restriction
                }
            }
            _ => return,
        }
    }
}

/// Parses `name: Type` fields out of a brace-group body, recording whether a
/// `#[serde(skip_serializing)]` attribute precedes each one.
fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut idx = 0;
    while idx < tokens.len() {
        let mut skip = false;
        // Field attributes.
        while matches!(tokens.get(idx), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            if let Some(TokenTree::Group(attr)) = tokens.get(idx + 1) {
                skip |= attr_skips_serializing(attr.stream());
            }
            idx += 2;
        }
        skip_attrs_and_vis(&tokens, &mut idx);
        let name = match tokens.get(idx) {
            Some(TokenTree::Ident(name)) => name.to_string(),
            None => break,
            other => panic!("expected field name, found {:?}", other.map(|t| t.to_string())),
        };
        idx += 1;
        match tokens.get(idx) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => idx += 1,
            other => panic!(
                "expected ':' after field `{name}`, found {:?}",
                other.map(|t| t.to_string())
            ),
        }
        // Skip the type: consume until a comma at angle-bracket depth zero.
        // Commas inside parenthesized/bracketed types are invisible here
        // (groups are single tokens); only generic args need depth tracking.
        let mut angle_depth = 0usize;
        while let Some(tok) = tokens.get(idx) {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    angle_depth = angle_depth.saturating_sub(1);
                }
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    idx += 1;
                    break;
                }
                _ => {}
            }
            idx += 1;
        }
        fields.push(Field { name, skip });
    }
    fields
}

/// Returns true when an attribute body is `serde(...)` containing a
/// `skip_serializing` ident.
fn attr_skips_serializing(attr: TokenStream) -> bool {
    let tokens: Vec<TokenTree> = attr.into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(name)), Some(TokenTree::Group(args)))
            if name.to_string() == "serde" =>
        {
            args.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "skip_serializing"))
        }
        _ => false,
    }
}
