//! Bitwise plan-vs-tape parity for every paper host.
//!
//! `Forecaster::predict` executes a compiled inference [`Plan`] against a
//! preallocated arena; `Forecaster::predict_tape` is the original
//! define-by-run path. Both funnel every op through the same `_into`
//! kernels, so their outputs must be **exactly** equal — not approximately.
//! These tests pin that contract for the four paper hosts (RNN, GRU
//! seq2seq, WaveNet/TCN, D-DA-GTCN) plus their DFGN/DAMGN-wrapped
//! variants, across cold and warm executions, rank-3 and rank-4 windows,
//! and across a parameter hot-swap (which must invalidate cached plans).

use enhancenet::{EnhanceNetError, Forecaster, ForwardCtx};
use enhancenet_autodiff::{Graph, ParamStore, PlanCache, Var};
use enhancenet_models::{GruSeq2Seq, LstmSeq2Seq, ModelDims, Stgcn, WaveNet};
use enhancenet_tensor::{Tensor, TensorRng};

fn ring_adjacency(n: usize) -> Tensor {
    let mut a = Tensor::zeros(&[n, n]);
    for i in 0..n {
        a.set(&[i, (i + 1) % n], 1.0);
        a.set(&[(i + 1) % n, i], 0.5);
    }
    a
}

/// Exercises the full plan lifecycle on one model:
///
/// 1. two distinct rank-3 windows (the second hits the **warm** executor,
///    catching any input-derived value baked into the plan as a constant),
/// 2. a rank-4 batched window (a second cache entry),
/// 3. a parameter hot-swap, after which the stale plans must be evicted
///    and the recompiled plan must still match the tape bitwise.
fn check_parity(m: &mut dyn Forecaster, seed: u64) {
    let [h, n, c] = m.input_shape().expect("paper hosts declare an input shape");
    let name = m.name().to_string();
    assert!(m.plan_cache().is_some(), "{name}: host should expose a plan cache");

    let w1 = TensorRng::seed(seed).normal(&[h, n, c], 0.0, 1.0);
    let w2 = TensorRng::seed(seed + 1).normal(&[h, n, c], 0.0, 1.0);
    for (i, w) in [&w1, &w2].into_iter().enumerate() {
        let plan = m.predict(w).expect("plan predict");
        let tape = m.predict_tape(w).expect("tape predict");
        assert_eq!(plan.shape(), tape.shape(), "{name}: rank-3 shape, window {i}");
        assert_eq!(plan.data(), tape.data(), "{name}: rank-3 parity, window {i}");
    }
    let cache = m.plan_cache().expect("checked above");
    assert!(!cache.is_unplannable(), "{name}: eval trace should compile");
    assert_eq!(cache.entry_count(), 1, "{name}: both rank-3 windows share one plan");

    let wb = TensorRng::seed(seed + 2).normal(&[2, h, n, c], 0.0, 1.0);
    let plan = m.predict(&wb).expect("plan predict (batched)");
    let tape = m.predict_tape(&wb).expect("tape predict (batched)");
    assert_eq!(plan.shape(), tape.shape(), "{name}: rank-4 shape");
    assert_eq!(plan.data(), tape.data(), "{name}: rank-4 parity");
    assert_eq!(m.plan_cache().expect("cache").entry_count(), 2);

    // Hot swap: nudge one weight through the version-bumping accessor. The
    // next predict must recompile (stale entries evicted) and the fresh
    // plan must read the *new* value — i.e. still match the tape exactly.
    let id = m.store().ids().next().expect("hosts have parameters");
    m.store_mut().value_mut(id).data_mut()[0] += 0.25;
    let plan = m.predict(&w1).expect("plan predict (post-swap)");
    let tape = m.predict_tape(&w1).expect("tape predict (post-swap)");
    assert_eq!(plan.data(), tape.data(), "{name}: parity after hot swap");
    assert_eq!(
        m.plan_cache().expect("cache").entry_count(),
        1,
        "{name}: stale-version plans must be evicted on recompile"
    );
}

fn gru_dims(n: usize, c: usize) -> ModelDims {
    ModelDims { num_entities: n, in_features: c, hidden: 8, input_len: 4, output_len: 3 }
}

fn conv_dims(n: usize, c: usize) -> ModelDims {
    ModelDims { num_entities: n, in_features: c, hidden: 6, input_len: 8, output_len: 4 }
}

#[test]
fn rnn_plan_matches_tape() {
    check_parity(&mut GruSeq2Seq::paper_rnn(gru_dims(5, 2), 2, 1), 10);
}

#[test]
fn d_rnn_plan_matches_tape() {
    check_parity(&mut GruSeq2Seq::paper_d_rnn(gru_dims(5, 2), 2, 2), 11);
}

#[test]
fn d_da_grnn_plan_matches_tape() {
    let a = ring_adjacency(5);
    check_parity(&mut GruSeq2Seq::paper_d_da_grnn(gru_dims(5, 2), 2, &a, 3), 12);
}

#[test]
fn tcn_plan_matches_tape() {
    check_parity(&mut WaveNet::paper_tcn(conv_dims(4, 1), 4), 13);
}

#[test]
fn d_da_gtcn_plan_matches_tape() {
    let a = ring_adjacency(4);
    check_parity(&mut WaveNet::paper_d_da_gtcn(conv_dims(4, 1), &a, 5), 14);
}

#[test]
fn adaptive_wavenet_plan_matches_tape() {
    let a = ring_adjacency(4);
    check_parity(&mut WaveNet::paper_adaptive_baseline(conv_dims(4, 1), &a, 6), 15);
}

#[test]
fn lstm_plan_matches_tape() {
    let dims =
        ModelDims { num_entities: 4, in_features: 2, hidden: 6, input_len: 5, output_len: 3 };
    check_parity(&mut LstmSeq2Seq::new(dims, 2, 7), 16);
}

#[test]
fn stgcn_plan_matches_tape() {
    let dims =
        ModelDims { num_entities: 4, in_features: 2, hidden: 6, input_len: 8, output_len: 3 };
    check_parity(&mut Stgcn::new(dims, 2, &ring_adjacency(4), 8), 17);
}

/// A model whose eval forward never marks an input leaf: the compiler must
/// reject it once (`plan.fallback`), cache the failure, and route every
/// predict through the tape — with identical results.
struct NoInputModel {
    store: ParamStore,
    plan_cache: PlanCache,
}

impl Forecaster for NoInputModel {
    fn name(&self) -> &str {
        "no-input"
    }
    fn store(&self) -> &ParamStore {
        &self.store
    }
    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }
    fn horizon(&self) -> usize {
        2
    }
    fn plan_cache(&self) -> Option<&PlanCache> {
        Some(&self.plan_cache)
    }
    fn forward(&self, g: &mut Graph, x: &Tensor, _ctx: &mut ForwardCtx) -> Var {
        // Window data enters only through constants — unplannable.
        let last = g.constant(x.index_axis(1, x.shape()[1] - 1));
        let last = g.reshape(last, &[x.shape()[0], 1, x.shape()[2]]);
        g.concat(&[last, last], 1)
    }
}

#[test]
fn unplannable_model_falls_back_to_tape() {
    let m = NoInputModel { store: ParamStore::new(), plan_cache: PlanCache::new() };
    let w = TensorRng::seed(20).normal(&[1, 6, 3, 1], 0.0, 1.0);
    for _ in 0..2 {
        let plan: Result<Tensor, EnhanceNetError> = m.predict(&w);
        let tape = m.predict_tape(&w).expect("tape predict");
        assert_eq!(plan.expect("fallback predict").data(), tape.data());
    }
    let cache = m.plan_cache().expect("cache");
    assert!(cache.is_unplannable(), "compile failure should be cached");
    assert_eq!(cache.entry_count(), 0, "no executable plan should be stored");
}
