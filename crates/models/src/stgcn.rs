//! The STGCN baseline (Yu, Yin & Zhu, IJCAI 2018 \[34\]): "spatial-temporal
//! graph convolution network that combines 1D convolution with GC in a
//! non-hierarchical way" (§VI-A).
//!
//! Two ST-Conv blocks, each a *sandwich* of a gated (GLU) temporal
//! convolution, a spatial graph convolution over the symmetric-normalized
//! adjacency, a second gated temporal convolution and a closing layer
//! normalization. A final head maps
//! the last timestamp's features to all `F` horizons. We keep the temporal
//! length constant with causal padding (the original shrinks it with valid
//! convolutions; with `H = 12` the receptive field is equivalent).

use crate::config::ModelDims;
use enhancenet::gconv::gc_input_dim;
use enhancenet::{graph_conv, Forecaster, ForwardCtx, GcSupport};
use enhancenet_autodiff::{Graph, ParamId, ParamStore, PlanCache, Var};
use enhancenet_graph::{build_supports, SupportKind};
use enhancenet_nn::conv::causal_conv_taps;
use enhancenet_nn::{LayerNorm, Linear};
use enhancenet_tensor::{Tensor, TensorRng};

/// A gated temporal convolution: `GLU(conv(x)) = P ⊙ σ(Q)` where the
/// convolution produces `2·C'` channels split into `P` and `Q`.
struct GatedTemporalConv {
    taps: Vec<ParamId>,
    bias: ParamId,
    kernel: usize,
    c_out: usize,
}

impl GatedTemporalConv {
    fn new(
        store: &mut ParamStore,
        rng: &mut TensorRng,
        name: &str,
        c_in: usize,
        c_out: usize,
        kernel: usize,
    ) -> Self {
        let taps = (0..kernel)
            .map(|t| {
                store.add(format!("{name}.tap{t}"), rng.xavier(&[c_in, 2 * c_out], c_in, 2 * c_out))
            })
            .collect();
        let bias = store.add(format!("{name}.b"), Tensor::zeros(&[2 * c_out]));
        Self { taps, bias, kernel, c_out }
    }

    /// `x` is `[B, N, T, C]`; output `[B, N, T, C']`.
    fn forward(&self, g: &mut Graph, store: &ParamStore, x: Var) -> Var {
        let s = g.value(x).shape().to_vec();
        let (b, n, t, c) = (s[0], s[1], s[2], s[3]);
        let taps = causal_conv_taps(g, x, 2, self.kernel, 1);
        let mut acc: Option<Var> = None;
        for (j, &tap) in taps.iter().enumerate() {
            let w = g.param(store, self.taps[j]);
            let flat = g.reshape(tap, &[b * n * t, c]);
            let y = g.matmul(flat, w);
            acc = Some(match acc {
                Some(a) => g.add(a, y),
                None => y,
            });
        }
        let bias = g.param(store, self.bias);
        let pre = g.add(acc.expect("kernel >= 1"), bias);
        let p = g.slice_axis(pre, 1, 0, self.c_out);
        let q = g.slice_axis(pre, 1, self.c_out, 2 * self.c_out);
        let gate = g.sigmoid(q);
        let glu = g.mul(p, gate);
        g.reshape(glu, &[b, n, t, self.c_out])
    }
}

struct StBlock {
    temporal1: GatedTemporalConv,
    gc: ParamId,
    gc_bias: ParamId,
    temporal2: GatedTemporalConv,
    /// Layer norm closing each ST-Conv block, as in the original STGCN.
    norm: LayerNorm,
}

/// The STGCN forecaster.
pub struct Stgcn {
    store: ParamStore,
    dims: ModelDims,
    support: Tensor,
    blocks: Vec<StBlock>,
    head: Linear,
    plan_cache: PlanCache,
}

impl Stgcn {
    /// Builds STGCN with `num_blocks` ST-Conv blocks (original: 2) over the
    /// raw distance adjacency.
    pub fn new(dims: ModelDims, num_blocks: usize, adjacency: &Tensor, seed: u64) -> Self {
        let mut store = ParamStore::new();
        let mut rng = TensorRng::seed(seed);
        let ch = dims.hidden;
        let support = build_supports(adjacency, SupportKind::SymmetricWithSelfLoops)
            .pop()
            .expect("one symmetric support");
        let blocks = (0..num_blocks)
            .map(|i| {
                let c_in = if i == 0 { dims.in_features } else { ch };
                let gin = gc_input_dim(ch, 1, 1);
                StBlock {
                    temporal1: GatedTemporalConv::new(
                        &mut store,
                        &mut rng,
                        &format!("block{i}.t1"),
                        c_in,
                        ch,
                        3,
                    ),
                    gc: store.add(format!("block{i}.gc"), rng.xavier(&[gin, ch], gin, ch)),
                    gc_bias: store.add(format!("block{i}.gcb"), Tensor::zeros(&[ch])),
                    temporal2: GatedTemporalConv::new(
                        &mut store,
                        &mut rng,
                        &format!("block{i}.t2"),
                        ch,
                        ch,
                        3,
                    ),
                    norm: LayerNorm::new(&mut store, &format!("block{i}.ln"), ch),
                }
            })
            .collect();
        let head = Linear::new(&mut store, &mut rng, "head", ch, dims.output_len, true);
        Self { store, dims, support, blocks, head, plan_cache: PlanCache::new() }
    }
}

impl Forecaster for Stgcn {
    fn name(&self) -> &str {
        "STGCN"
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn horizon(&self) -> usize {
        self.dims.output_len
    }

    fn input_shape(&self) -> Option<[usize; 3]> {
        Some([self.dims.input_len, self.dims.num_entities, self.dims.in_features])
    }

    fn plan_cache(&self) -> Option<&PlanCache> {
        Some(&self.plan_cache)
    }

    fn forward(&self, g: &mut Graph, x: &Tensor, ctx: &mut ForwardCtx) -> Var {
        let (b, t, n, c) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        assert_eq!(n, self.dims.num_entities);
        assert_eq!(c, self.dims.in_features);
        let ch = self.dims.hidden;

        let support = g.constant(self.support.clone());
        // Eval traces read the window through one input leaf (compilable to
        // a plan); training binds it as a constant.
        let xin = if ctx.training { g.constant(x.clone()) } else { g.input(x.clone()) };
        let mut h = g.permute(xin, &[0, 2, 1, 3]); // [B, N, T, C]

        for block in &self.blocks {
            h = block.temporal1.forward(g, &self.store, h);
            // Spatial GC per timestep: [B, N, T, C'] -> [B·T, N, C'].
            let hp = g.permute(h, &[0, 2, 1, 3]);
            let flat = g.reshape(hp, &[b * t, n, ch]);
            let w = g.param(&self.store, block.gc);
            let bias = g.param(&self.store, block.gc_bias);
            let conv = graph_conv(g, &[GcSupport::Static(support)], flat, w, Some(bias), 1);
            let act = g.relu(conv);
            let back = g.reshape(act, &[b, t, n, ch]);
            h = g.permute(back, &[0, 2, 1, 3]);
            h = block.temporal2.forward(g, &self.store, h);
            h = block.norm.forward(g, &self.store, h);
        }

        // Head from the final timestamp.
        let last = g.slice_axis(h, 2, t - 1, t);
        let last = g.reshape(last, &[b, n, ch]);
        let out = self.head.forward(g, &self.store, last); // [B, N, F]
        g.permute(out, &[0, 2, 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dims() -> ModelDims {
        ModelDims { num_entities: 4, in_features: 2, hidden: 6, input_len: 8, output_len: 3 }
    }

    fn ring(n: usize) -> Tensor {
        let mut a = Tensor::zeros(&[n, n]);
        for i in 0..n {
            a.set(&[i, (i + 1) % n], 1.0);
            a.set(&[(i + 1) % n, i], 1.0);
        }
        a
    }

    #[test]
    fn forward_shape() {
        let m = Stgcn::new(dims(), 2, &ring(4), 1);
        assert_eq!(m.name(), "STGCN");
        let x = TensorRng::seed(2).normal(&[3, 8, 4, 2], 0.0, 1.0);
        let mut g = Graph::new();
        let mut rng = TensorRng::seed(3);
        let mut ctx = ForwardCtx::eval(&mut rng);
        let y = m.forward(&mut g, &x, &mut ctx);
        assert_eq!(g.value(y).shape(), &[3, 3, 4]);
        assert!(!g.value(y).has_non_finite());
    }

    #[test]
    fn gradients_flow_everywhere() {
        let mut m = Stgcn::new(dims(), 2, &ring(4), 2);
        let x = TensorRng::seed(4).normal(&[2, 8, 4, 2], 0.0, 1.0);
        let mut g = Graph::new();
        let mut rng = TensorRng::seed(5);
        let pred = {
            let mut ctx = ForwardCtx::eval(&mut rng);
            m.forward(&mut g, &x, &mut ctx)
        };
        let target = Tensor::ones(&[2, 3, 4]);
        let mask = Tensor::ones(&[2, 3, 4]);
        let loss = g.masked_mae(pred, &target, &mask);
        g.backward(loss);
        m.store_mut().zero_grad();
        g.write_grads(m.store_mut());
        for id in m.store().ids() {
            assert!(m.store().grad(id).norm() > 0.0, "no grad for {}", m.store().name(id));
        }
    }

    #[test]
    fn spatial_conv_mixes_neighbors() {
        // Zero input except one entity: graph conv must spread non-zero
        // activations to its ring neighbours by the head.
        let m = Stgcn::new(dims(), 1, &ring(4), 3);
        let x0 = Tensor::zeros(&[1, 8, 4, 2]);
        let mut x1 = x0.clone();
        for t in 0..8 {
            x1.set(&[0, t, 0, 0], 3.0);
        }
        let run = |xx: &Tensor| {
            let mut g = Graph::new();
            let mut rng = TensorRng::seed(1);
            let mut ctx = ForwardCtx::eval(&mut rng);
            let y = m.forward(&mut g, xx, &mut ctx);
            g.value(y).clone()
        };
        let base = run(&x0);
        let spiked = run(&x1);
        // Neighbour entity 1's forecast changes even though its own input
        // did not.
        let d: f32 = (0..3).map(|h| (spiked.at(&[0, h, 1]) - base.at(&[0, h, 1])).abs()).sum();
        assert!(d > 1e-6, "no spatial mixing detected");
    }
}
