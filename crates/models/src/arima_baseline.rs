//! The ARIMA baseline wrapped as a [`Forecaster`], so the shared harness
//! can evaluate it alongside the deep models.
//!
//! ARIMA is not trained by gradient descent: [`ArimaBaseline::fit`] fits
//! one per-entity model on the training split (classic practice for this
//! baseline), and `forward` produces forecasts by Kalman-filtering each
//! window's history. The `ParamStore` stays empty — the parameter count
//! reported for ARIMA is the (p + q) coefficients per entity, exposed via
//! [`ArimaBaseline::num_coefficients`].

use crate::config::ModelDims;
use enhancenet::{Forecaster, ForwardCtx};
use enhancenet_arima::{Arima, ArimaConfig};
use enhancenet_autodiff::{Graph, ParamStore, Var};
use enhancenet_data::{StandardScaler, WindowDataset};
use enhancenet_tensor::Tensor;

/// Per-entity ARIMA models behind the [`Forecaster`] interface.
pub struct ArimaBaseline {
    store: ParamStore,
    dims: ModelDims,
    config: ArimaConfig,
    models: Vec<Arima>,
    scaler: StandardScaler,
}

impl ArimaBaseline {
    /// Fits one ARIMA per entity on the dataset's training timestamps.
    pub fn fit(dims: ModelDims, config: ArimaConfig, data: &WindowDataset) -> Self {
        let n = data.num_entities();
        assert_eq!(n, dims.num_entities, "entity count mismatch");
        let train_steps = data.split.train.end + data.h;
        let models = (0..n)
            .map(|e| {
                let series: Vec<f32> =
                    (0..train_steps).map(|t| data.raw.at(&[t, e, data.target_feature])).collect();
                Arima::fit(&series, config)
            })
            .collect();
        Self { store: ParamStore::new(), dims, config, models, scaler: data.scaler.clone() }
    }

    /// Total fitted coefficients (p + q per entity) — ARIMA's analogue of
    /// the "# Para" column.
    pub fn num_coefficients(&self) -> usize {
        self.models.iter().map(|m| m.phi().len() + m.theta().len()).sum()
    }

    /// The fitted orders.
    pub fn config(&self) -> ArimaConfig {
        self.config
    }
}

impl Forecaster for ArimaBaseline {
    fn name(&self) -> &str {
        "ARIMA"
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn horizon(&self) -> usize {
        self.dims.output_len
    }

    fn input_shape(&self) -> Option<[usize; 3]> {
        Some([self.dims.input_len, self.dims.num_entities, self.dims.in_features])
    }

    /// Forecasts each window by filtering its (raw-scale) history. The
    /// input arrives scaled, so it is inverted through the stored scaler
    /// first; outputs are re-scaled to match the harness contract.
    fn forward(&self, g: &mut Graph, x: &Tensor, _ctx: &mut ForwardCtx) -> Var {
        let (b, h, n, _c) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        let f = self.dims.output_len;
        let mut out = Tensor::zeros(&[b, f, n]);
        for bi in 0..b {
            for e in 0..n {
                let history: Vec<f32> = (0..h)
                    .map(|t| {
                        let scaled = x.at(&[bi, t, e, 0]);
                        scaled * self.scaler.std(0) + self.scaler.mean(0)
                    })
                    .collect();
                let forecast = self.models[e].forecast(&history, f);
                for (t, v) in forecast.iter().enumerate() {
                    let rescaled = (v - self.scaler.mean(0)) / self.scaler.std(0);
                    out.set(&[bi, t, e], rescaled);
                }
            }
        }
        g.constant(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enhancenet_data::traffic::{generate_traffic, TrafficConfig};
    use enhancenet_tensor::TensorRng;

    fn setup() -> (WindowDataset, ArimaBaseline) {
        let ds = generate_traffic(&TrafficConfig::tiny(4, 3));
        let data = WindowDataset::from_series(&ds, 12, 12).unwrap();
        let dims =
            ModelDims { num_entities: 4, in_features: 1, hidden: 0, input_len: 12, output_len: 12 };
        let model = ArimaBaseline::fit(dims, ArimaConfig::paper_default(), &data);
        (data, model)
    }

    #[test]
    fn fits_one_model_per_entity() {
        let (_, model) = setup();
        assert_eq!(model.models.len(), 4);
        assert_eq!(model.num_coefficients(), 4 * 4); // p=3 + q=1 each
        assert_eq!(model.name(), "ARIMA");
    }

    #[test]
    fn forward_shape_and_scale() {
        let (data, model) = setup();
        let x = data.input_window(0).unsqueeze(0);
        let mut g = Graph::new();
        let mut rng = TensorRng::seed(1);
        let mut ctx = ForwardCtx::eval(&mut rng);
        let y = model.forward(&mut g, &x, &mut ctx);
        assert_eq!(g.value(y).shape(), &[1, 12, 4]);
        // Back in the raw scale, forecasts must be plausible speeds.
        let raw = data.scaler.inverse_feature(g.value(y), 0);
        assert!(raw.min_all() > -20.0 && raw.max_all() < 120.0, "{:?}", raw);
    }

    #[test]
    fn forecasts_beat_global_mean_on_test_windows() {
        let (data, model) = setup();
        let mut rng = TensorRng::seed(2);
        let mut err_arima = 0.0f32;
        let mut err_mean = 0.0f32;
        let global_mean = data.scaler.mean(0);
        for start in data.split.test.clone().step_by(97).take(8) {
            let x = data.input_window(start).unsqueeze(0);
            let truth = data.target_window(start);
            let mut g = Graph::new();
            let mut ctx = ForwardCtx::eval(&mut rng);
            let y = model.forward(&mut g, &x, &mut ctx);
            let raw = data.scaler.inverse_feature(g.value(y), 0).reshape(&[12, 4]);
            err_arima += raw.sub_t(&truth).abs_t().mean_all();
            err_mean += truth.map(|v| (v - global_mean).abs()).mean_all();
        }
        assert!(
            err_arima < err_mean,
            "ARIMA {err_arima} should beat the global-mean predictor {err_mean}"
        );
    }
}
