//! Gated WaveNet forecasters: the TCN and GTCN families and their plugin
//! variants, plus the Graph WaveNet baseline.
//!
//! Architecture (§VI-A "Model Configurations"): `L = 8` dilated causal
//! convolution layers with dilations `1,2,1,2,1,2,1,2`, kernel `K = 2`,
//! `C' = 32` channels, gating `tanh ⊙ σ` after each convolution (the
//! WaveNet mechanism), residual and skip 1×1 convolutions, dropout 0.3, and
//! a two-layer output head predicting all `F` horizons from the final
//! timestamp's skip features.
//!
//! Plugin integration:
//!
//! * **D-TCN** — each layer owns a DFGN (all sharing one entity-memory
//!   table, Figure 8) that generates the layer's per-entity filter and gate
//!   taps (`o = 2·K·C_l·C'`, §IV-C2).
//! * **GTCN** — ordinary graph convolution over static supports is applied
//!   to each layer's gated output (§V-C2), as in Graph WaveNet \[31\].
//! * **DA-GTCN** — the adjacency fed to the GC is DAMGN's `A'`, whose
//!   time-specific term `C_t` is computed from the input signal at each of
//!   the `T` aligned timestamps.
//! * **Graph WaveNet** — GTCN plus a learned *static* self-adaptive
//!   adjacency `softmax(relu(E₁E₂ᵀ))` as an extra support; unlike DAMGN it
//!   cannot change across time, which is exactly the gap the paper's §II
//!   identifies.

use crate::config::{GraphMode, ModelDims, TemporalMode};
use enhancenet::dfgn::{split_tcn_filters, tcn_filter_dim, FilterCache};
use enhancenet::gconv::gc_input_dim;
use enhancenet::{graph_conv, Damgn, Dfgn, Forecaster, ForwardCtx, GcSupport, StaticFoldCache};
use enhancenet_autodiff::{Graph, ParamId, ParamStore, PlanCache, Var};
use enhancenet_graph::build_supports;
use enhancenet_nn::conv::{causal_conv_taps, receptive_field};
use enhancenet_nn::{Dropout, Linear};
use enhancenet_tensor::{CsrMatrix, Tensor, TensorRng};
use std::sync::Arc;

/// WaveNet hyper-parameters (defaults are the paper's TCN settings).
#[derive(Debug, Clone)]
pub struct WaveNetConfig {
    /// Per-layer dilation factors (paper: `1,2,1,2,1,2,1,2`).
    pub dilations: Vec<usize>,
    /// Causal kernel size `K` (paper: 2).
    pub kernel: usize,
    /// Hidden width of the output head.
    pub end_hidden: usize,
    /// Dropout rate after each gated layer (paper: 0.3).
    pub dropout: f32,
}

impl Default for WaveNetConfig {
    fn default() -> Self {
        Self { dilations: vec![1, 2, 1, 2, 1, 2, 1, 2], kernel: 2, end_hidden: 64, dropout: 0.3 }
    }
}

/// Dilated-convolution weights for one layer: `2K` taps (K filter taps then
/// K gate taps), shared or DFGN-generated.
enum ConvWeights {
    Shared { taps: Vec<ParamId> },
    Generated(Dfgn),
}

struct WaveLayer {
    conv: ConvWeights,
    /// Prediction-phase cache of DFGN-generated taps (§VI-B4).
    cache: FilterCache,
    bias_filter: ParamId,
    bias_gate: ParamId,
    /// Residual 1×1 projection; `None` on the last layer, whose residual
    /// output would be dead (only skip connections feed the head).
    residual: Option<Linear>,
    skip: Linear,
    /// Graph-convolution mixing weight `[(1+S·k)·C', C']`, present in graph
    /// modes.
    gc_weight: Option<ParamId>,
    dilation: usize,
}

/// Applies a filter to a 4-D signal `[B, N, T, C]`:
/// rank-2 `w` is shared, rank-3 `[N, C, C']` is per-entity.
fn apply_filter_4d(g: &mut Graph, x: Var, w: Var) -> Var {
    let s = g.value(x).shape().to_vec();
    let (b, n, t, c) = (s[0], s[1], s[2], s[3]);
    match g.value(w).rank() {
        2 => {
            let flat = g.reshape(x, &[b * n * t, c]);
            let y = g.matmul(flat, w);
            let c_out = g.value(y).shape()[1];
            g.reshape(y, &[b, n, t, c_out])
        }
        3 => {
            let xp = g.permute(x, &[1, 0, 2, 3]); // [N, B, T, C]
            let flat = g.reshape(xp, &[n, b * t, c]);
            let y = g.bmm(flat, w);
            let c_out = g.value(y).shape()[2];
            let y4 = g.reshape(y, &[n, b, t, c_out]);
            g.permute(y4, &[1, 0, 2, 3])
        }
        r => panic!("apply_filter_4d: unsupported filter rank {r}"),
    }
}

/// Static graph pieces.
struct GraphParts {
    supports: Vec<Tensor>,
    /// CSR base supports (with transposes) for the sub-quadratic top-k
    /// DAMGN path; empty when the dense path is in use.
    sparse_supports: Vec<(Arc<CsrMatrix>, Arc<CsrMatrix>)>,
    k_hops: usize,
    damgn: Option<Damgn>,
    /// Graph WaveNet's self-adaptive node embeddings `(E₁, E₂)`.
    adaptive: Option<(ParamId, ParamId)>,
    /// Eval-path cache of the DAMGN static fold `λ_A·A_s + λ_B·B`,
    /// invalidated by weight updates via the store version.
    fold_cache: StaticFoldCache,
}

/// Gated WaveNet forecaster (TCN / GTCN family).
pub struct WaveNet {
    name: String,
    store: ParamStore,
    dims: ModelDims,
    config: WaveNetConfig,
    input_proj: Linear,
    layers: Vec<WaveLayer>,
    head1: Linear,
    head2: Linear,
    dropout: Dropout,
    graph: Option<GraphParts>,
    memory: Option<ParamId>,
    /// Compiled eval-forward plans, keyed by input shape and store version.
    plan_cache: PlanCache,
}

impl WaveNet {
    /// A pure temporal model: `TCN` (shared) or `D-TCN` (DFGN).
    pub fn tcn(dims: ModelDims, config: WaveNetConfig, temporal: TemporalMode, seed: u64) -> Self {
        Self::build(dims, config, temporal, GraphMode::None, None, None, seed)
    }

    /// A graph model: `GTCN` / `D-GTCN` / `DA-GTCN` / `D-DA-GTCN`, or the
    /// `Graph WaveNet` baseline with `GraphMode::AdaptiveStatic`.
    pub fn gtcn(
        dims: ModelDims,
        config: WaveNetConfig,
        temporal: TemporalMode,
        graph_mode: GraphMode,
        adjacency: &Tensor,
        seed: u64,
    ) -> Self {
        assert!(graph_mode.uses_graph(), "gtcn requires a graph mode");
        Self::build(dims, config, temporal, graph_mode, Some(adjacency), None, seed)
    }

    /// A dynamic-graph model over **pre-built sparse base supports** — the
    /// large-`N` entry point that never materializes an `[N, N]` tensor.
    /// `base_supports` are already-normalized CSR transitions (e.g. from
    /// [`enhancenet_graph::build_supports_csr`]); `graph_mode` must be
    /// [`GraphMode::Dynamic`] with `DamgnConfig::top_k` set so both the
    /// learned `B` and the time-varying `C_t` stay row-sparse.
    pub fn gtcn_sparse(
        dims: ModelDims,
        config: WaveNetConfig,
        temporal: TemporalMode,
        graph_mode: GraphMode,
        base_supports: Vec<CsrMatrix>,
        seed: u64,
    ) -> Self {
        match graph_mode {
            GraphMode::Dynamic { damgn, .. } => assert!(
                damgn.top_k.is_some(),
                "gtcn_sparse requires DamgnConfig::top_k (dense DAMGN would be O(N²))"
            ),
            _ => panic!("gtcn_sparse requires GraphMode::Dynamic"),
        }
        assert!(!base_supports.is_empty(), "gtcn_sparse needs at least one base support");
        for s in &base_supports {
            assert_eq!(s.rows(), dims.num_entities, "base support rows must match entities");
            assert_eq!(s.cols(), dims.num_entities, "base support must be square");
        }
        Self::build(dims, config, temporal, graph_mode, None, Some(base_supports), seed)
    }

    /// Paper preset `TCN`: shared filters, no graph convolution.
    pub fn paper_tcn(dims: ModelDims, seed: u64) -> Self {
        Self::tcn(dims, WaveNetConfig::default(), TemporalMode::Shared, seed)
    }

    /// Paper preset `D-TCN`: DFGN per-entity taps, no graph convolution.
    pub fn paper_d_tcn(dims: ModelDims, seed: u64) -> Self {
        Self::tcn(
            dims,
            WaveNetConfig::default(),
            TemporalMode::Distinct(enhancenet::DfgnConfig::default()),
            seed,
        )
    }

    /// Paper preset `GTCN`: shared taps, static dual-transition supports.
    pub fn paper_gtcn(dims: ModelDims, adjacency: &Tensor, seed: u64) -> Self {
        Self::gtcn(
            dims,
            WaveNetConfig::default(),
            TemporalMode::Shared,
            GraphMode::paper_static(),
            adjacency,
            seed,
        )
    }

    /// Paper preset `D-GTCN`: DFGN taps over static supports.
    pub fn paper_d_gtcn(dims: ModelDims, adjacency: &Tensor, seed: u64) -> Self {
        Self::gtcn(
            dims,
            WaveNetConfig::default(),
            TemporalMode::Distinct(enhancenet::DfgnConfig::default()),
            GraphMode::paper_static(),
            adjacency,
            seed,
        )
    }

    /// Paper preset `DA-GTCN`: shared taps over DAMGN dynamic adjacencies.
    pub fn paper_da_gtcn(dims: ModelDims, adjacency: &Tensor, seed: u64) -> Self {
        Self::gtcn(
            dims,
            WaveNetConfig::default(),
            TemporalMode::Shared,
            GraphMode::paper_dynamic(),
            adjacency,
            seed,
        )
    }

    /// Paper preset `D-DA-GTCN`: both plugins — the paper's strongest TCN
    /// variant.
    pub fn paper_d_da_gtcn(dims: ModelDims, adjacency: &Tensor, seed: u64) -> Self {
        Self::gtcn(
            dims,
            WaveNetConfig::default(),
            TemporalMode::Distinct(enhancenet::DfgnConfig::default()),
            GraphMode::paper_dynamic(),
            adjacency,
            seed,
        )
    }

    /// Baseline preset: static supports plus the learned self-adaptive
    /// adjacency of \[31\] (embedding width 10, as in that paper).
    pub fn paper_adaptive_baseline(dims: ModelDims, adjacency: &Tensor, seed: u64) -> Self {
        Self::gtcn(
            dims,
            WaveNetConfig::default(),
            TemporalMode::Shared,
            GraphMode::AdaptiveStatic {
                kind: enhancenet_graph::SupportKind::DoubleTransition,
                k_hops: 2,
                embed_dim: 10,
            },
            adjacency,
            seed,
        )
    }

    fn build(
        dims: ModelDims,
        config: WaveNetConfig,
        temporal: TemporalMode,
        graph_mode: GraphMode,
        adjacency: Option<&Tensor>,
        sparse_bases: Option<Vec<CsrMatrix>>,
        seed: u64,
    ) -> Self {
        assert!(
            receptive_field(config.kernel, &config.dilations) >= dims.input_len,
            "receptive field {} does not cover the input window {}",
            receptive_field(config.kernel, &config.dilations),
            dims.input_len
        );
        let mut store = ParamStore::new();
        let mut rng = TensorRng::seed(seed);
        let n = dims.num_entities;
        let ch = dims.hidden;
        let k = config.kernel;

        let memory = match &temporal {
            TemporalMode::Distinct(cfg) => {
                let bound = 1.0 / (cfg.memory_dim as f32).sqrt();
                Some(store.add("memory", rng.uniform(&[n, cfg.memory_dim], -bound, bound)))
            }
            TemporalMode::Shared | TemporalMode::Straightforward => None,
        };

        let (graph, num_supports, k_hops) = match graph_mode {
            GraphMode::None => (None, 0, 0),
            GraphMode::Static { kind, k_hops } => {
                let a = adjacency.expect("static graph mode requires an adjacency");
                let supports = build_supports(a, kind);
                let count = supports.len();
                (
                    Some(GraphParts {
                        supports,
                        sparse_supports: Vec::new(),
                        k_hops,
                        damgn: None,
                        adaptive: None,
                        fold_cache: StaticFoldCache::new(),
                    }),
                    count,
                    k_hops,
                )
            }
            GraphMode::Dynamic { kind, k_hops, damgn } => {
                let topk = damgn.top_k.is_some();
                let (supports, sparse_supports): (Vec<Tensor>, Vec<_>) = match sparse_bases {
                    // Large-N path: pre-built CSR bases, no dense [N, N].
                    Some(bases) => (
                        Vec::new(),
                        bases
                            .into_iter()
                            .map(|c| {
                                let t = Arc::new(c.transpose());
                                (Arc::new(c), t)
                            })
                            .collect(),
                    ),
                    None => {
                        let a = adjacency.expect("dynamic graph mode requires an adjacency");
                        let supports = build_supports(a, kind);
                        if topk {
                            // top_k on a dense adjacency: convert the bases
                            // to CSR once; the dense copies are dropped.
                            let sparse = supports
                                .iter()
                                .map(|s| {
                                    let csr = CsrMatrix::from_dense(s);
                                    let t = Arc::new(csr.transpose());
                                    (Arc::new(csr), t)
                                })
                                .collect();
                            (Vec::new(), sparse)
                        } else {
                            (supports, Vec::new())
                        }
                    }
                };
                let count = if topk { sparse_supports.len() } else { supports.len() };
                let damgn = Damgn::new(&mut store, &mut rng, "damgn", n, 1, damgn);
                (
                    Some(GraphParts {
                        supports,
                        sparse_supports,
                        k_hops,
                        damgn: Some(damgn),
                        adaptive: None,
                        fold_cache: StaticFoldCache::new(),
                    }),
                    count,
                    k_hops,
                )
            }
            GraphMode::AdaptiveStatic { kind, k_hops, embed_dim } => {
                let a = adjacency.expect("adaptive mode requires an adjacency");
                let supports = build_supports(a, kind);
                let count = supports.len() + 1; // + the adaptive support
                let bound = 1.0 / (embed_dim as f32).sqrt();
                let e1 = store.add("adaptive.e1", rng.uniform(&[n, embed_dim], -bound, bound));
                let e2 = store.add("adaptive.e2", rng.uniform(&[n, embed_dim], -bound, bound));
                (
                    Some(GraphParts {
                        supports,
                        sparse_supports: Vec::new(),
                        k_hops,
                        damgn: None,
                        adaptive: Some((e1, e2)),
                        fold_cache: StaticFoldCache::new(),
                    }),
                    count,
                    k_hops,
                )
            }
        };

        let input_proj = Linear::new(&mut store, &mut rng, "input", dims.in_features, ch, true);
        let layers = config
            .dilations
            .iter()
            .enumerate()
            .map(|(l, &d)| {
                let conv = match &temporal {
                    TemporalMode::Shared => ConvWeights::Shared {
                        taps: (0..2 * k)
                            .map(|t| {
                                store.add(format!("layer{l}.tap{t}"), rng.xavier(&[ch, ch], ch, ch))
                            })
                            .collect(),
                    },
                    // Straightforward method (§IV-B2): stored per-entity
                    // taps, N·2K·C·C' parameters per layer.
                    TemporalMode::Straightforward => ConvWeights::Shared {
                        taps: (0..2 * k)
                            .map(|t| {
                                store.add(
                                    format!("layer{l}.tap{t}"),
                                    rng.xavier(&[n, ch, ch], ch, ch),
                                )
                            })
                            .collect(),
                    },
                    TemporalMode::Distinct(cfg) => {
                        // One DFGN per layer (Figure 8), 2K taps of C×C'.
                        let o = 2 * tcn_filter_dim(ch, ch, k);
                        ConvWeights::Generated(Dfgn::with_shared_memory(
                            &mut store,
                            &mut rng,
                            &format!("layer{l}.dfgn"),
                            memory.expect("distinct mode has a memory"),
                            o,
                            *cfg,
                        ))
                    }
                };
                let gc_weight = (num_supports > 0).then(|| {
                    let gin = gc_input_dim(ch, num_supports, k_hops);
                    store.add(format!("layer{l}.gc"), rng.xavier(&[gin, ch], gin, ch))
                });
                let is_last = l + 1 == config.dilations.len();
                WaveLayer {
                    conv,
                    cache: FilterCache::new(),
                    bias_filter: store.add(format!("layer{l}.bf"), Tensor::zeros(&[ch])),
                    bias_gate: store.add(format!("layer{l}.bg"), Tensor::zeros(&[ch])),
                    residual: (!is_last).then(|| {
                        Linear::new(&mut store, &mut rng, &format!("layer{l}.res"), ch, ch, true)
                    }),
                    skip: Linear::new(
                        &mut store,
                        &mut rng,
                        &format!("layer{l}.skip"),
                        ch,
                        ch,
                        true,
                    ),
                    gc_weight,
                    dilation: d,
                }
            })
            .collect();
        let head1 = Linear::new(&mut store, &mut rng, "head1", ch, config.end_hidden, true);
        let head2 =
            Linear::new(&mut store, &mut rng, "head2", config.end_hidden, dims.output_len, true);

        let name = match graph_mode {
            GraphMode::None => format!("{}TCN", temporal.prefix()),
            GraphMode::AdaptiveStatic { .. } => "Graph WaveNet".to_string(),
            _ => format!("{}{}GTCN", temporal.prefix(), graph_mode.prefix()),
        };
        Self {
            name,
            store,
            dims,
            dropout: Dropout::new(config.dropout),
            config,
            input_proj,
            layers,
            head1,
            head2,
            graph,
            memory,
            plan_cache: PlanCache::new(),
        }
    }

    /// The DFGN memory parameter for `D-` variants (Figures 10–11).
    pub fn memory_id(&self) -> Option<ParamId> {
        self.memory
    }

    /// The DAMGN module for `DA-` variants (Figure 12).
    pub fn damgn(&self) -> Option<&Damgn> {
        self.graph.as_ref()?.damgn.as_ref()
    }

    /// Binds the supports used by every layer's GC. For DAMGN models this
    /// produces one `[B·T, N, N]` dynamic adjacency per base support,
    /// derived from the input's target feature at each aligned timestamp.
    /// During evaluation the DAMGN static fold is served from the
    /// version-keyed [`StaticFoldCache`].
    /// `xv` is the window bound as the graph's input leaf during eval: the
    /// DAMGN signal is sliced graph-side from it, so compiled plans rebind
    /// it per request. Training passes `None` and keeps the cheaper
    /// pre-sliced constant (no gradient flows into the window anyway).
    fn bind_supports(
        &self,
        g: &mut Graph,
        x: &Tensor,
        xv: Option<Var>,
        training: bool,
    ) -> Option<Vec<GcSupport>> {
        let parts = self.graph.as_ref()?;
        let (b, t, n) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        if let Some(damgn) = &parts.damgn {
            // Signal: [B, T, N, 1] -> [B*T, N, 1].
            let sig = match xv {
                Some(xv) => {
                    let sig_c = g.slice_axis(xv, 3, 0, 1);
                    g.reshape(sig_c, &[b * t, n, 1])
                }
                None => g.constant(x.slice_axis(3, 0, 1).reshape(&[b * t, n, 1])),
            };
            // Top-k mode: row-sparse B and C_t over the shared pattern,
            // CSR bases handled by the linearity split in `GcSupport`.
            if let Some(k) = damgn.top_k() {
                let binding =
                    damgn.bind_sparse_cached(g, &self.store, k, &parts.fold_cache, training);
                return Some(damgn.sparse_supports_at(g, &binding, &parts.sparse_supports, sig));
            }
            let base: Vec<Var> = parts.supports.iter().map(|s| g.constant(s.clone())).collect();
            let binding = damgn.bind_cached(g, &self.store, &base, &parts.fold_cache, training);
            let dyn_supports = damgn.dynamic_supports_at(g, &binding, sig);
            return Some(dyn_supports.into_iter().map(GcSupport::Dynamic).collect());
        }
        let mut out: Vec<GcSupport> =
            parts.supports.iter().map(|s| GcSupport::Static(g.constant(s.clone()))).collect();
        if let Some((e1, e2)) = parts.adaptive {
            let v1 = g.param(&self.store, e1);
            let v2 = g.param(&self.store, e2);
            let raw = g.matmul_nt(v1, v2);
            let act = g.relu(raw);
            out.push(GcSupport::Static(g.softmax(act, -1)));
        }
        Some(out)
    }
}

impl Forecaster for WaveNet {
    fn name(&self) -> &str {
        &self.name
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn horizon(&self) -> usize {
        self.dims.output_len
    }

    fn input_shape(&self) -> Option<[usize; 3]> {
        Some([self.dims.input_len, self.dims.num_entities, self.dims.in_features])
    }

    fn damgn(&self) -> Option<&Damgn> {
        WaveNet::damgn(self)
    }

    fn memory_id(&self) -> Option<ParamId> {
        WaveNet::memory_id(self)
    }

    fn plan_cache(&self) -> Option<&PlanCache> {
        Some(&self.plan_cache)
    }

    fn forward(&self, g: &mut Graph, x: &Tensor, ctx: &mut ForwardCtx) -> Var {
        let (b, t, n, c) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        assert_eq!(n, self.dims.num_entities, "entity count mismatch");
        assert_eq!(c, self.dims.in_features, "feature count mismatch");
        assert_eq!(t, self.dims.input_len, "input length mismatch");
        let k = self.config.kernel;
        let ch = self.dims.hidden;

        // Eval traces read the window through one input leaf (compilable to
        // a plan); training binds it as a constant.
        let xin = if ctx.training { g.constant(x.clone()) } else { g.input(x.clone()) };
        let supports = self.bind_supports(g, x, (!ctx.training).then_some(xin), ctx.training);
        let k_hops = self.graph.as_ref().map_or(0, |p| p.k_hops);

        // [B, T, N, C] -> [B, N, T, C'] with the input projection.
        let xp = g.permute(xin, &[0, 2, 1, 3]);
        let mut h = self.input_proj.forward(g, &self.store, xp);

        let mut skip_sum: Option<Var> = None;
        for layer in &self.layers {
            // Bind this layer's 2K tap filters.
            let tap_w: Vec<Var> = match &layer.conv {
                ConvWeights::Shared { taps } => {
                    taps.iter().map(|&id| g.param(&self.store, id)).collect()
                }
                ConvWeights::Generated(dfgn) => {
                    let generated =
                        dfgn.generate_cached(g, &self.store, &layer.cache, ctx.training);
                    let half = g.value(generated).shape()[1] / 2;
                    let filt = g.slice_axis(generated, 1, 0, half);
                    let gate = g.slice_axis(generated, 1, half, 2 * half);
                    let mut v = split_tcn_filters(g, filt, ch, ch, k);
                    v.extend(split_tcn_filters(g, gate, ch, ch, k));
                    v
                }
            };

            // Dilated causal convolution (Eq. 8): K taps, filter + gate.
            let taps = causal_conv_taps(g, h, 2, k, layer.dilation);
            let mut filter_acc: Option<Var> = None;
            let mut gate_acc: Option<Var> = None;
            for (j, &tap) in taps.iter().enumerate() {
                let f = apply_filter_4d(g, tap, tap_w[j]);
                let ga = apply_filter_4d(g, tap, tap_w[k + j]);
                filter_acc = Some(match filter_acc {
                    Some(acc) => g.add(acc, f),
                    None => f,
                });
                gate_acc = Some(match gate_acc {
                    Some(acc) => g.add(acc, ga),
                    None => ga,
                });
            }
            let bf = g.param(&self.store, layer.bias_filter);
            let bg = g.param(&self.store, layer.bias_gate);
            let fpre = g.add(filter_acc.expect("k >= 1"), bf);
            let gpre = g.add(gate_acc.expect("k >= 1"), bg);
            // WaveNet gating: tanh ⊙ σ.
            let ft = g.tanh(fpre);
            let gs = g.sigmoid(gpre);
            let mut z = g.mul(ft, gs);

            // Graph convolution on the gated output (§V-C2).
            if let Some(sup) = &supports {
                let w = g.param(
                    &self.store,
                    layer.gc_weight.expect("graph mode layers have gc weights"),
                );
                // [B, N, T, C'] -> [B·T, N, C'] so each timestep is one
                // batched graph signal (aligning with dynamic supports).
                let zp = g.permute(z, &[0, 2, 1, 3]);
                let zflat = g.reshape(zp, &[b * t, n, ch]);
                let zc = graph_conv(g, sup, zflat, w, None, k_hops);
                let z4 = g.reshape(zc, &[b, t, n, ch]);
                z = g.permute(z4, &[0, 2, 1, 3]);
            }

            z = self.dropout.apply(g, ctx.rng, z, ctx.training);
            if let Some(residual) = &layer.residual {
                let res = residual.forward(g, &self.store, z);
                h = g.add(h, res);
            }
            let sk = layer.skip.forward(g, &self.store, z);
            skip_sum = Some(match skip_sum {
                Some(acc) => g.add(acc, sk),
                None => sk,
            });
        }

        // Output head from the final timestamp's skip features.
        let skip = skip_sum.expect("at least one layer");
        let last = g.slice_axis(skip, 2, t - 1, t); // [B, N, 1, C']
        let last = g.reshape(last, &[b, n, ch]);
        let a1 = g.relu(last);
        let h1 = self.head1.forward(g, &self.store, a1);
        let a2 = g.relu(h1);
        let out = self.head2.forward(g, &self.store, a2); // [B, N, F]
        g.permute(out, &[0, 2, 1]) // [B, F, N]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enhancenet::DfgnConfig;

    fn dims(n: usize, c: usize) -> ModelDims {
        ModelDims { num_entities: n, in_features: c, hidden: 6, input_len: 8, output_len: 4 }
    }

    fn cfg() -> WaveNetConfig {
        WaveNetConfig { dilations: vec![1, 2, 4], kernel: 2, end_hidden: 10, dropout: 0.3 }
    }

    fn small_dfgn() -> DfgnConfig {
        DfgnConfig { memory_dim: 4, hidden1: 6, hidden2: 3 }
    }

    fn ring_adjacency(n: usize) -> Tensor {
        let mut a = Tensor::zeros(&[n, n]);
        for i in 0..n {
            a.set(&[i, (i + 1) % n], 1.0);
            a.set(&[(i + 1) % n, i], 0.5);
        }
        a
    }

    fn forward_shape(model: &WaveNet, b: usize, n: usize, c: usize) {
        let x = TensorRng::seed(9).normal(&[b, 8, n, c], 0.0, 1.0);
        let mut g = Graph::new();
        let mut rng = TensorRng::seed(1);
        let mut ctx = ForwardCtx::eval(&mut rng);
        let y = model.forward(&mut g, &x, &mut ctx);
        assert_eq!(g.value(y).shape(), &[b, 4, n]);
        assert!(!g.value(y).has_non_finite());
    }

    #[test]
    fn tcn_name_and_shape() {
        let m = WaveNet::tcn(dims(5, 2), cfg(), TemporalMode::Shared, 1);
        assert_eq!(m.name(), "TCN");
        assert!(m.memory_id().is_none());
        forward_shape(&m, 3, 5, 2);
    }

    #[test]
    fn dtcn_name_and_shape() {
        let m = WaveNet::tcn(dims(5, 2), cfg(), TemporalMode::Distinct(small_dfgn()), 1);
        assert_eq!(m.name(), "D-TCN");
        assert!(m.memory_id().is_some());
        forward_shape(&m, 2, 5, 2);
    }

    #[test]
    fn gtcn_variants_name_and_shape() {
        let a = ring_adjacency(5);
        let combos: Vec<(TemporalMode, GraphMode, &str)> = vec![
            (TemporalMode::Shared, GraphMode::paper_static(), "GTCN"),
            (TemporalMode::Distinct(small_dfgn()), GraphMode::paper_static(), "D-GTCN"),
            (TemporalMode::Shared, GraphMode::paper_dynamic(), "DA-GTCN"),
            (TemporalMode::Distinct(small_dfgn()), GraphMode::paper_dynamic(), "D-DA-GTCN"),
        ];
        for (t, gm, expected) in combos {
            let m = WaveNet::gtcn(dims(5, 2), cfg(), t, gm, &a, 1);
            assert_eq!(m.name(), expected);
            forward_shape(&m, 2, 5, 2);
        }
    }

    #[test]
    fn graph_wavenet_baseline() {
        let a = ring_adjacency(5);
        let m = WaveNet::gtcn(
            dims(5, 2),
            cfg(),
            TemporalMode::Shared,
            GraphMode::AdaptiveStatic {
                kind: enhancenet_graph::SupportKind::DoubleTransition,
                k_hops: 2,
                embed_dim: 4,
            },
            &a,
            1,
        );
        assert_eq!(m.name(), "Graph WaveNet");
        forward_shape(&m, 2, 5, 2);
    }

    #[test]
    fn gradients_flow_everywhere_d_da_gtcn() {
        let a = ring_adjacency(4);
        let mut m = WaveNet::gtcn(
            dims(4, 1),
            cfg(),
            TemporalMode::Distinct(small_dfgn()),
            GraphMode::paper_dynamic(),
            &a,
            2,
        );
        let x = TensorRng::seed(3).normal(&[2, 8, 4, 1], 0.0, 1.0);
        let mut g = Graph::new();
        let mut rng = TensorRng::seed(4);
        let pred = {
            let mut ctx = ForwardCtx::eval(&mut rng);
            m.forward(&mut g, &x, &mut ctx)
        };
        let target = Tensor::ones(&[2, 4, 4]);
        let mask = Tensor::ones(&[2, 4, 4]);
        let loss = g.masked_mae(pred, &target, &mask);
        g.backward(loss);
        m.store_mut().zero_grad();
        g.write_grads(m.store_mut());
        let mut missing = Vec::new();
        for id in m.store().ids() {
            if m.store().grad(id).norm() == 0.0 {
                missing.push(m.store().name(id).to_string());
            }
        }
        assert!(missing.is_empty(), "params with zero grad: {missing:?}");
    }

    #[test]
    fn dropout_only_active_in_training() {
        let m = WaveNet::tcn(dims(4, 1), cfg(), TemporalMode::Shared, 5);
        let x = TensorRng::seed(6).normal(&[1, 8, 4, 1], 0.0, 1.0);
        // Two eval forwards are identical.
        let run = |training: bool, seed: u64| -> Tensor {
            let mut g = Graph::new();
            let mut rng = TensorRng::seed(seed);
            let teacher = Tensor::zeros(&[1, 4, 4]);
            let mut ctx = if training {
                ForwardCtx::train(&mut rng, &teacher, 0.0)
            } else {
                ForwardCtx::eval(&mut rng)
            };
            let y = m.forward(&mut g, &x, &mut ctx);
            g.value(y).clone()
        };
        assert!(run(false, 1).allclose(&run(false, 2), 0.0));
        assert!(!run(true, 1).allclose(&run(true, 2), 1e-7));
    }

    #[test]
    fn dtcn_has_fewer_parameters_than_straightforward() {
        // Per-entity taps stored directly would cost N × (2K·C'·C') per
        // layer; the DFGN variant must be much smaller for realistic N.
        let n = 100;
        let d = dims(n, 1);
        let m = WaveNet::tcn(d, cfg(), TemporalMode::Distinct(small_dfgn()), 1);
        let straightforward_taps = 3 * n * 2 * 2 * 6 * 6; // L·N·2K·C'·C'
        let shared = WaveNet::tcn(d, cfg(), TemporalMode::Shared, 1);
        let conv_params_in_d = m.num_parameters() - (shared.num_parameters() - 3 * 2 * 2 * 6 * 6);
        assert!(
            conv_params_in_d < straightforward_taps,
            "DFGN conv params {conv_params_in_d} should be below straightforward {straightforward_taps}"
        );
    }

    #[test]
    fn straightforward_tcn_runs_and_outweighs_dfgn() {
        let n = 60;
        let d =
            ModelDims { num_entities: n, in_features: 1, hidden: 6, input_len: 8, output_len: 4 };
        let s = WaveNet::tcn(d, cfg(), TemporalMode::Straightforward, 1);
        assert_eq!(s.name(), "S-TCN");
        let dfgn = WaveNet::tcn(d, cfg(), TemporalMode::Distinct(small_dfgn()), 1);
        assert!(dfgn.num_parameters() < s.num_parameters());
        forward_shape(&s, 2, n, 1);
    }

    #[test]
    fn paper_presets_match_explicit_modes() {
        let a = ring_adjacency(5);
        let cases: Vec<(WaveNet, &str)> = vec![
            (WaveNet::paper_tcn(dims(5, 2), 1), "TCN"),
            (WaveNet::paper_d_tcn(dims(5, 2), 1), "D-TCN"),
            (WaveNet::paper_gtcn(dims(5, 2), &a, 1), "GTCN"),
            (WaveNet::paper_d_gtcn(dims(5, 2), &a, 1), "D-GTCN"),
            (WaveNet::paper_da_gtcn(dims(5, 2), &a, 1), "DA-GTCN"),
            (WaveNet::paper_d_da_gtcn(dims(5, 2), &a, 1), "D-DA-GTCN"),
            (WaveNet::paper_adaptive_baseline(dims(5, 2), &a, 1), "Graph WaveNet"),
        ];
        for (m, expected) in cases {
            assert_eq!(m.name(), expected);
            assert_eq!(m.input_shape(), Some([8, 5, 2]));
            forward_shape(&m, 2, 5, 2);
        }
    }

    #[test]
    fn eval_damgn_fold_cache_matches_tracked_path() {
        // The first eval forward populates the static-fold cache; the
        // second is served from it and must be bit-identical.
        let a = ring_adjacency(4);
        let m = WaveNet::gtcn(
            dims(4, 1),
            cfg(),
            TemporalMode::Shared,
            GraphMode::paper_dynamic(),
            &a,
            3,
        );
        let x = TensorRng::seed(11).normal(&[2, 8, 4, 1], 0.0, 1.0);
        let run = || {
            let mut g = Graph::new();
            let mut rng = TensorRng::seed(1);
            let mut ctx = ForwardCtx::eval(&mut rng);
            let y = m.forward(&mut g, &x, &mut ctx);
            g.value(y).clone()
        };
        let first = run();
        let second = run();
        assert!(first.allclose(&second, 0.0));
    }

    #[test]
    fn sparse_topk_matches_dense_at_full_width() {
        // top_k = N retains every entry, so the sparse path must agree with
        // the dense DAMGN model built from the same seed (same parameters).
        let a = ring_adjacency(5);
        let d = dims(5, 2);
        let dense =
            WaveNet::gtcn(d, cfg(), TemporalMode::Shared, GraphMode::paper_dynamic(), &a, 7);
        let sparse = WaveNet::gtcn(
            dims(5, 2),
            cfg(),
            TemporalMode::Shared,
            GraphMode::paper_dynamic_topk(5),
            &a,
            7,
        );
        assert_eq!(sparse.name(), "DA-GTCN");
        let x = TensorRng::seed(9).normal(&[2, 8, 5, 2], 0.0, 1.0);
        let run = |m: &WaveNet| {
            let mut g = Graph::new();
            let mut rng = TensorRng::seed(1);
            let mut ctx = ForwardCtx::eval(&mut rng);
            let y = m.forward(&mut g, &x, &mut ctx);
            g.value(y).clone()
        };
        assert!(run(&dense).allclose(&run(&sparse), 1e-4));
    }

    #[test]
    fn gtcn_sparse_runs_from_csr_bases_without_dense_adjacency() {
        let n = 6;
        let csr = enhancenet_tensor::CsrMatrix::from_dense(&ring_adjacency(n));
        let bases = enhancenet_graph::build_supports_csr(
            &csr,
            enhancenet_graph::SupportKind::DoubleTransition,
        );
        let mut m = WaveNet::gtcn_sparse(
            dims(n, 1),
            cfg(),
            TemporalMode::Distinct(small_dfgn()),
            GraphMode::paper_dynamic_topk(3),
            bases,
            2,
        );
        assert_eq!(m.name(), "D-DA-GTCN");

        // Every parameter — DAMGN memories, θ/φ, λs, DFGN, taps — gets a
        // gradient through the sparse path. (Grad check runs before any
        // other eval forward so the fold/filter caches are still cold and
        // the binding is tracked.)
        let x = TensorRng::seed(3).normal(&[2, 8, n, 1], 0.0, 1.0);
        let mut g = Graph::new();
        let mut rng = TensorRng::seed(4);
        let pred = {
            let mut ctx = ForwardCtx::eval(&mut rng);
            m.forward(&mut g, &x, &mut ctx)
        };
        let target = Tensor::ones(&[2, 4, n]);
        let mask = Tensor::ones(&[2, 4, n]);
        let loss = g.masked_mae(pred, &target, &mask);
        g.backward(loss);
        m.store_mut().zero_grad();
        g.write_grads(m.store_mut());
        let mut missing = Vec::new();
        for id in m.store().ids() {
            if m.store().grad(id).norm() == 0.0 {
                missing.push(m.store().name(id).to_string());
            }
        }
        assert!(missing.is_empty(), "params with zero grad: {missing:?}");
        forward_shape(&m, 2, n, 1);
    }

    #[test]
    fn eval_sparse_fold_cache_matches_tracked_path() {
        // First eval forward populates the sparse fold cache (pattern +
        // folded λ_B·B); the second is served from it, bit-identically.
        let a = ring_adjacency(4);
        let m = WaveNet::gtcn(
            dims(4, 1),
            cfg(),
            TemporalMode::Shared,
            GraphMode::paper_dynamic_topk(2),
            &a,
            3,
        );
        let x = TensorRng::seed(11).normal(&[2, 8, 4, 1], 0.0, 1.0);
        let run = || {
            let mut g = Graph::new();
            let mut rng = TensorRng::seed(1);
            let mut ctx = ForwardCtx::eval(&mut rng);
            let y = m.forward(&mut g, &x, &mut ctx);
            g.value(y).clone()
        };
        let first = run();
        let second = run();
        assert!(first.allclose(&second, 0.0));
    }

    #[test]
    #[should_panic(expected = "gtcn_sparse requires DamgnConfig::top_k")]
    fn gtcn_sparse_rejects_dense_damgn_config() {
        let csr = enhancenet_tensor::CsrMatrix::from_dense(&ring_adjacency(4));
        let bases = enhancenet_graph::build_supports_csr(
            &csr,
            enhancenet_graph::SupportKind::DoubleTransition,
        );
        let _ = WaveNet::gtcn_sparse(
            dims(4, 1),
            cfg(),
            TemporalMode::Shared,
            GraphMode::paper_dynamic(),
            bases,
            1,
        );
    }

    #[test]
    fn predict_serves_eval_forward_without_tape_access() {
        let m = WaveNet::paper_tcn(dims(4, 1), 5);
        let window = TensorRng::seed(2).normal(&[8, 4, 1], 0.0, 1.0);
        let out = m.predict(&window).expect("well-shaped window predicts");
        assert_eq!(out.shape(), &[4, 4]);
        let bad = TensorRng::seed(2).normal(&[8, 3, 1], 0.0, 1.0);
        match m.predict(&bad) {
            Err(enhancenet::EnhanceNetError::InputShape { expected, .. }) => {
                assert_eq!(expected, vec![8, 4, 1]);
            }
            other => panic!("expected InputShape error, got {other:?}"),
        }
    }

    #[test]
    fn causality_last_input_step_affects_output() {
        // Perturbing the most recent timestamp must change the forecast.
        let m = WaveNet::tcn(dims(4, 1), cfg(), TemporalMode::Shared, 8);
        let x = TensorRng::seed(7).normal(&[1, 8, 4, 1], 0.0, 1.0);
        let mut x2 = x.clone();
        x2.set(&[0, 7, 0, 0], x.at(&[0, 7, 0, 0]) + 1.0);
        let run = |xx: &Tensor| {
            let mut g = Graph::new();
            let mut rng = TensorRng::seed(1);
            let mut ctx = ForwardCtx::eval(&mut rng);
            let y = m.forward(&mut g, xx, &mut ctx);
            g.value(y).clone()
        };
        assert!(!run(&x).allclose(&run(&x2), 1e-7));
    }
}
