//! The LSTM baseline: an encoder–decoder with LSTM units and shared
//! filters ("LSTM \[13\]: … Like GRU, an encoder-decoder architecture is used
//! to make predictions", §VI-A).

use crate::config::ModelDims;
use enhancenet::{Forecaster, ForwardCtx};
use enhancenet_autodiff::{Graph, ParamId, ParamStore, PlanCache, Var};
use enhancenet_nn::cell::{lstm_step, Gate};
use enhancenet_nn::{apply_entity_filter, Linear};
use enhancenet_tensor::{Tensor, TensorRng};

fn gate_index(gate: Gate) -> usize {
    match gate {
        Gate::Reset => 0,     // forget
        Gate::Update => 1,    // input
        Gate::Candidate => 2, // cell candidate
        Gate::Output => 3,
    }
}

struct LstmLayer {
    w: [ParamId; 4],
    u: [ParamId; 4],
    b: [ParamId; 4],
}

impl LstmLayer {
    fn new(
        store: &mut ParamStore,
        rng: &mut TensorRng,
        name: &str,
        c_in: usize,
        c_h: usize,
    ) -> Self {
        let gates = ["f", "i", "c", "o"];
        let w = std::array::from_fn(|i| {
            store.add(format!("{name}.w_{}", gates[i]), rng.xavier(&[c_in, c_h], c_in, c_h))
        });
        let u = std::array::from_fn(|i| {
            store.add(format!("{name}.u_{}", gates[i]), rng.xavier(&[c_h, c_h], c_h, c_h))
        });
        let b = std::array::from_fn(|i| {
            // Forget-gate bias starts at 1 (the standard LSTM trick).
            let init = if i == 0 { Tensor::ones(&[c_h]) } else { Tensor::zeros(&[c_h]) };
            store.add(format!("{name}.b_{}", gates[i]), init)
        });
        Self { w, u, b }
    }

    fn bind(&self, g: &mut Graph, store: &ParamStore) -> ([Var; 4], [Var; 4], [Var; 4]) {
        (
            std::array::from_fn(|i| g.param(store, self.w[i])),
            std::array::from_fn(|i| g.param(store, self.u[i])),
            std::array::from_fn(|i| g.param(store, self.b[i])),
        )
    }
}

/// LSTM encoder–decoder forecaster.
pub struct LstmSeq2Seq {
    store: ParamStore,
    dims: ModelDims,
    enc: Vec<LstmLayer>,
    dec: Vec<LstmLayer>,
    head: Linear,
    plan_cache: PlanCache,
}

impl LstmSeq2Seq {
    /// Builds the baseline with `num_layers` stacked LSTM layers on both
    /// sides.
    pub fn new(dims: ModelDims, num_layers: usize, seed: u64) -> Self {
        assert!(num_layers >= 1);
        let mut store = ParamStore::new();
        let mut rng = TensorRng::seed(seed);
        let hidden = dims.hidden;
        let stack = |store: &mut ParamStore, rng: &mut TensorRng, tag: &str, c0: usize| {
            (0..num_layers)
                .map(|l| {
                    let c_in = if l == 0 { c0 } else { hidden };
                    LstmLayer::new(store, rng, &format!("{tag}{l}"), c_in, hidden)
                })
                .collect::<Vec<_>>()
        };
        let enc = stack(&mut store, &mut rng, "enc", dims.in_features);
        let dec = stack(&mut store, &mut rng, "dec", 1);
        let head = Linear::new(&mut store, &mut rng, "head", hidden, 1, true);
        Self { store, dims, enc, dec, head, plan_cache: PlanCache::new() }
    }
}

impl Forecaster for LstmSeq2Seq {
    fn name(&self) -> &str {
        "LSTM"
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn horizon(&self) -> usize {
        self.dims.output_len
    }

    fn input_shape(&self) -> Option<[usize; 3]> {
        Some([self.dims.input_len, self.dims.num_entities, self.dims.in_features])
    }

    fn plan_cache(&self) -> Option<&PlanCache> {
        Some(&self.plan_cache)
    }

    fn forward(&self, g: &mut Graph, x: &Tensor, ctx: &mut ForwardCtx) -> Var {
        let (b, h_len, n, c) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        assert_eq!(n, self.dims.num_entities);
        assert_eq!(c, self.dims.in_features);
        let f_len = self.dims.output_len;
        let hidden = self.dims.hidden;

        let enc_bound: Vec<_> = self.enc.iter().map(|l| l.bind(g, &self.store)).collect();
        let dec_bound: Vec<_> = self.dec.iter().map(|l| l.bind(g, &self.store)).collect();

        let zeros = Tensor::zeros(&[b, n, hidden]);
        let mut hs: Vec<Var> = (0..self.enc.len()).map(|_| g.constant(zeros.clone())).collect();
        let mut cs: Vec<Var> = (0..self.enc.len()).map(|_| g.constant(zeros.clone())).collect();

        let run_step = |g: &mut Graph,
                        bound: &[([Var; 4], [Var; 4], [Var; 4])],
                        hs: &mut Vec<Var>,
                        cs: &mut Vec<Var>,
                        mut input: Var| {
            for (l, (w, u, bias)) in bound.iter().enumerate() {
                let (h_new, c_new) = lstm_step(
                    g,
                    input,
                    hs[l],
                    cs[l],
                    |g, v, gate| apply_entity_filter(g, v, w[gate_index(gate)]),
                    |g, v, gate| apply_entity_filter(g, v, u[gate_index(gate)]),
                    |_, gate| Some(bias[gate_index(gate)]),
                );
                hs[l] = h_new;
                cs[l] = c_new;
                input = h_new;
            }
            input
        };

        // Eval traces read the window through one input leaf (compilable
        // to a plan); training keeps per-timestep constants.
        let xin = (!ctx.training).then(|| g.input(x.clone()));
        for t in 0..h_len {
            let xt = match xin {
                Some(xv) => g.index_axis(xv, 1, t),
                None => g.constant(x.index_axis(1, t)),
            };
            run_step(g, &enc_bound, &mut hs, &mut cs, xt);
        }

        let mut dec_in = g.constant(Tensor::zeros(&[b, n, 1]));
        let mut outputs = Vec::with_capacity(f_len);
        for t in 0..f_len {
            let top = run_step(g, &dec_bound, &mut hs, &mut cs, dec_in);
            let pred = self.head.forward(g, &self.store, top);
            outputs.push(g.reshape(pred, &[b, 1, n]));
            dec_in = if ctx.use_teacher() {
                let teacher = ctx.teacher.expect("use_teacher implies teacher");
                g.constant(teacher.index_axis(1, t).reshape(&[b, n, 1]))
            } else {
                pred
            };
        }
        g.concat(&outputs, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dims() -> ModelDims {
        ModelDims { num_entities: 4, in_features: 2, hidden: 6, input_len: 5, output_len: 3 }
    }

    #[test]
    fn forward_shape() {
        let m = LstmSeq2Seq::new(dims(), 2, 1);
        let x = TensorRng::seed(2).normal(&[3, 5, 4, 2], 0.0, 1.0);
        let mut g = Graph::new();
        let mut rng = TensorRng::seed(3);
        let mut ctx = ForwardCtx::eval(&mut rng);
        let y = m.forward(&mut g, &x, &mut ctx);
        assert_eq!(g.value(y).shape(), &[3, 3, 4]);
        assert!(!g.value(y).has_non_finite());
    }

    #[test]
    fn forget_bias_initialized_to_one() {
        let m = LstmSeq2Seq::new(dims(), 1, 1);
        let forget_bias = m
            .store()
            .ids()
            .find(|&id| m.store().name(id) == "enc0.b_f")
            .expect("forget bias exists");
        assert_eq!(m.store().value(forget_bias).data()[0], 1.0);
    }

    #[test]
    fn gradients_flow_everywhere() {
        let mut m = LstmSeq2Seq::new(dims(), 2, 4);
        let x = TensorRng::seed(5).normal(&[2, 5, 4, 2], 0.0, 1.0);
        let mut g = Graph::new();
        let mut rng = TensorRng::seed(6);
        let pred = {
            let mut ctx = ForwardCtx::eval(&mut rng);
            m.forward(&mut g, &x, &mut ctx)
        };
        let target = Tensor::ones(&[2, 3, 4]);
        let mask = Tensor::ones(&[2, 3, 4]);
        let loss = g.masked_mae(pred, &target, &mask);
        g.backward(loss);
        m.store_mut().zero_grad();
        g.write_grads(m.store_mut());
        for id in m.store().ids() {
            assert!(m.store().grad(id).norm() > 0.0, "no grad for {}", m.store().name(id));
        }
    }

    #[test]
    fn name_and_params() {
        let m = LstmSeq2Seq::new(dims(), 2, 1);
        assert_eq!(m.name(), "LSTM");
        // 4 gates × (W + U + b) per layer per side + head.
        assert!(m.num_parameters() > 0);
        assert_eq!(m.horizon(), 3);
    }
}
