//! # enhancenet-models
//!
//! The host forecasting models the paper evaluates (§VI-A "Experiment
//! Design") and the deep baselines it compares against, all built on the
//! `enhancenet` plugin crate:
//!
//! | Paper name | Constructor |
//! |---|---|
//! | RNN / D-RNN | [`GruSeq2Seq`] with `GraphMode::None` |
//! | GRNN / D-GRNN / DA-GRNN / D-DA-GRNN | [`GruSeq2Seq`] with static / dynamic graph modes |
//! | TCN (WaveNet) / D-TCN | [`WaveNet`] with `GraphMode::None` |
//! | GTCN / D-GTCN / DA-GTCN / D-DA-GTCN | [`WaveNet`] with graph modes |
//! | LSTM | [`LstmSeq2Seq`] |
//! | DCRNN | [`GruSeq2Seq::grnn`] (diffusion-convolutional GRU seq2seq — the GRNN base *is* the DCRNN architecture \[21\]) |
//! | STGCN | [`Stgcn`] |
//! | Graph WaveNet | [`WaveNet`] with `GraphMode::AdaptiveStatic` |
//! | ARIMA | [`ArimaBaseline`] |
//!
//! Every model implements [`enhancenet::Forecaster`], so the shared
//! [`enhancenet::Trainer`] trains and evaluates them uniformly.

pub mod arima_baseline;
pub mod config;
pub mod lstm;
pub mod seq2seq;
pub mod stgcn;
pub mod wavenet;

pub use arima_baseline::ArimaBaseline;
pub use config::{GraphMode, ModelDims, TemporalMode};
pub use lstm::LstmSeq2Seq;
pub use seq2seq::GruSeq2Seq;
pub use stgcn::Stgcn;
pub use wavenet::{WaveNet, WaveNetConfig};
