//! GRU encoder–decoder forecasters: the RNN and GRNN families and all
//! their plugin-enhanced variants.
//!
//! One struct covers six of the paper's models, switched by two
//! orthogonal modes:
//!
//! * [`TemporalMode`] — shared filters vs DFGN-generated per-entity filters
//!   (the `D-` prefix),
//! * [`GraphMode`] — no graph convolution (RNN), ordinary GC over static
//!   supports (GRNN — this is exactly the DCRNN architecture \[21\]), or GC
//!   over DAMGN-generated dynamic adjacencies (the `DA-` prefix).
//!
//! The decoder consumes its own previous prediction (or, with scheduled
//! sampling during training, the ground truth) and is initialized with the
//! encoder's final hidden states, as in the paper's encoder–decoder setup.

use crate::config::{GraphMode, ModelDims, TemporalMode};
use enhancenet::dfgn::{gru_filter_dim_general, split_gru_filters_general, FilterCache};
use enhancenet::{graph_conv, Damgn, Dfgn, Forecaster, ForwardCtx, GcSupport, StaticFoldCache};
use enhancenet_autodiff::{Graph, ParamId, ParamStore, PlanCache, Var};
use enhancenet_graph::build_supports;
use enhancenet_nn::cell::{gru_step, Gate};
use enhancenet_nn::{apply_entity_filter, Linear};
use enhancenet_tensor::{Tensor, TensorRng};

/// Per-layer GRU weights: plain parameters (shared or per-entity) or a
/// DFGN generator.
enum CellWeights {
    Shared {
        w: [ParamId; 3],
        u: [ParamId; 3],
    },
    /// Stored per-entity filters `[N, c, C']` — the straightforward method.
    Straightforward {
        w: [ParamId; 3],
        u: [ParamId; 3],
    },
    Generated(Dfgn),
}

struct GruLayer {
    weights: CellWeights,
    /// Prediction-phase cache of DFGN-generated filters (§VI-B4).
    cache: FilterCache,
    biases: [ParamId; 3],
    /// Effective x-side input width (includes GC hop expansion).
    c_x: usize,
    /// Effective h-side input width.
    c_h: usize,
    /// Output (hidden) width.
    c_out: usize,
}

/// Weights bound into the active tape.
struct BoundLayer {
    w: [Var; 3],
    u: [Var; 3],
    b: [Var; 3],
}

fn gate_index(gate: Gate) -> usize {
    match gate {
        Gate::Reset => 0,
        Gate::Update => 1,
        Gate::Candidate => 2,
        Gate::Output => unreachable!("GRU has no output gate"),
    }
}

impl GruLayer {
    #[allow(clippy::too_many_arguments)]
    fn new(
        store: &mut ParamStore,
        rng: &mut TensorRng,
        name: &str,
        c_x: usize,
        c_h: usize,
        c_out: usize,
        temporal: &TemporalMode,
        shared_memory: Option<ParamId>,
        num_entities: Option<usize>,
    ) -> Self {
        let weights = match temporal {
            TemporalMode::Shared => {
                let gates = ["r", "u", "h"];
                let w = std::array::from_fn(|i| {
                    store.add(
                        format!("{name}.w_{}", gates[i]),
                        rng.xavier(&[c_x, c_out], c_x, c_out),
                    )
                });
                let u = std::array::from_fn(|i| {
                    store.add(
                        format!("{name}.u_{}", gates[i]),
                        rng.xavier(&[c_h, c_out], c_h, c_out),
                    )
                });
                CellWeights::Shared { w, u }
            }
            TemporalMode::Straightforward => {
                let n = num_entities.expect("straightforward mode requires the entity count");
                let gates = ["r", "u", "h"];
                let w = std::array::from_fn(|i| {
                    store.add(
                        format!("{name}.w_{}", gates[i]),
                        rng.xavier(&[n, c_x, c_out], c_x, c_out),
                    )
                });
                let u = std::array::from_fn(|i| {
                    store.add(
                        format!("{name}.u_{}", gates[i]),
                        rng.xavier(&[n, c_h, c_out], c_h, c_out),
                    )
                });
                CellWeights::Straightforward { w, u }
            }
            TemporalMode::Distinct(cfg) => {
                let o = gru_filter_dim_general(c_x, c_h, c_out);
                let memory = shared_memory.expect("distinct mode requires a shared memory table");
                CellWeights::Generated(Dfgn::with_shared_memory(
                    store,
                    rng,
                    &format!("{name}.dfgn"),
                    memory,
                    o,
                    *cfg,
                ))
            }
        };
        let gates = ["r", "u", "h"];
        let biases = std::array::from_fn(|i| {
            store.add(format!("{name}.b_{}", gates[i]), Tensor::zeros(&[c_out]))
        });
        Self { weights, cache: FilterCache::new(), biases, c_x, c_h, c_out }
    }

    fn bind(&self, g: &mut Graph, store: &ParamStore, training: bool) -> BoundLayer {
        let b = std::array::from_fn(|i| g.param(store, self.biases[i]));
        match &self.weights {
            CellWeights::Shared { w, u } | CellWeights::Straightforward { w, u } => BoundLayer {
                w: std::array::from_fn(|i| g.param(store, w[i])),
                u: std::array::from_fn(|i| g.param(store, u[i])),
                b,
            },
            CellWeights::Generated(dfgn) => {
                let generated = dfgn.generate_cached(g, store, &self.cache, training);
                let f = split_gru_filters_general(g, generated, self.c_x, self.c_h, self.c_out);
                BoundLayer { w: f.w, u: f.u, b }
            }
        }
    }

    /// One GRU step for `x ∈ [B, N, c_in]`, `h ∈ [B, N, C']`. When
    /// `supports` is given, every filter application is a graph convolution
    /// (§V-C1's replacement of matrix multiplication by `⋆_G`).
    fn step(
        &self,
        g: &mut Graph,
        bound: &BoundLayer,
        x: Var,
        h: Var,
        supports: Option<(&[GcSupport], usize)>,
    ) -> Var {
        gru_step(
            g,
            x,
            h,
            |g, v, gate| match supports {
                None => apply_entity_filter(g, v, bound.w[gate_index(gate)]),
                Some((s, k)) => graph_conv(g, s, v, bound.w[gate_index(gate)], None, k),
            },
            |g, v, gate| match supports {
                None => apply_entity_filter(g, v, bound.u[gate_index(gate)]),
                Some((s, k)) => graph_conv(g, s, v, bound.u[gate_index(gate)], None, k),
            },
            |_, gate| Some(bound.b[gate_index(gate)]),
        )
    }
}

/// Static graph pieces owned by the model.
struct GraphParts {
    /// Normalized base supports (constants bound per tape).
    supports: Vec<Tensor>,
    k_hops: usize,
    damgn: Option<Damgn>,
    /// Eval-path cache of the DAMGN static fold `λ_A·A_s + λ_B·B`,
    /// invalidated by weight updates via the store version.
    fold_cache: StaticFoldCache,
}

/// GRU encoder–decoder forecaster (RNN / GRNN family).
pub struct GruSeq2Seq {
    name: String,
    store: ParamStore,
    dims: ModelDims,
    enc: Vec<GruLayer>,
    dec: Vec<GruLayer>,
    head: Linear,
    graph: Option<GraphParts>,
    /// Compiled eval-forward plans, keyed by input shape and store version.
    plan_cache: PlanCache,
}

impl GruSeq2Seq {
    /// A pure temporal model: `RNN` (shared filters) or `D-RNN` (DFGN).
    pub fn rnn(dims: ModelDims, num_layers: usize, temporal: TemporalMode, seed: u64) -> Self {
        Self::build(dims, num_layers, temporal, GraphMode::None, None, seed)
    }

    /// A graph-convolutional model: `GRNN`, `D-GRNN`, `DA-GRNN` or
    /// `D-DA-GRNN` depending on the modes. `adjacency` is the raw
    /// distance-derived matrix `A`; supports are derived per `graph_mode`.
    pub fn grnn(
        dims: ModelDims,
        num_layers: usize,
        temporal: TemporalMode,
        graph_mode: GraphMode,
        adjacency: &Tensor,
        seed: u64,
    ) -> Self {
        assert!(graph_mode.uses_graph(), "grnn requires a graph mode");
        Self::build(dims, num_layers, temporal, graph_mode, Some(adjacency), seed)
    }

    /// Paper preset `RNN`: shared filters, no graph convolution.
    pub fn paper_rnn(dims: ModelDims, num_layers: usize, seed: u64) -> Self {
        Self::rnn(dims, num_layers, TemporalMode::Shared, seed)
    }

    /// Paper preset `D-RNN`: DFGN per-entity filters, no graph convolution.
    pub fn paper_d_rnn(dims: ModelDims, num_layers: usize, seed: u64) -> Self {
        Self::rnn(dims, num_layers, TemporalMode::Distinct(enhancenet::DfgnConfig::default()), seed)
    }

    /// Paper preset `GRNN` (DCRNN): shared filters, static dual-transition
    /// supports.
    pub fn paper_grnn(dims: ModelDims, num_layers: usize, adjacency: &Tensor, seed: u64) -> Self {
        Self::grnn(
            dims,
            num_layers,
            TemporalMode::Shared,
            GraphMode::paper_static(),
            adjacency,
            seed,
        )
    }

    /// Paper preset `D-GRNN`: DFGN filters over static supports.
    pub fn paper_d_grnn(dims: ModelDims, num_layers: usize, adjacency: &Tensor, seed: u64) -> Self {
        Self::grnn(
            dims,
            num_layers,
            TemporalMode::Distinct(enhancenet::DfgnConfig::default()),
            GraphMode::paper_static(),
            adjacency,
            seed,
        )
    }

    /// Paper preset `DA-GRNN`: shared filters over DAMGN dynamic
    /// adjacencies.
    pub fn paper_da_grnn(
        dims: ModelDims,
        num_layers: usize,
        adjacency: &Tensor,
        seed: u64,
    ) -> Self {
        Self::grnn(
            dims,
            num_layers,
            TemporalMode::Shared,
            GraphMode::paper_dynamic(),
            adjacency,
            seed,
        )
    }

    /// Paper preset `D-DA-GRNN`: both plugins — the paper's strongest RNN
    /// variant.
    pub fn paper_d_da_grnn(
        dims: ModelDims,
        num_layers: usize,
        adjacency: &Tensor,
        seed: u64,
    ) -> Self {
        Self::grnn(
            dims,
            num_layers,
            TemporalMode::Distinct(enhancenet::DfgnConfig::default()),
            GraphMode::paper_dynamic(),
            adjacency,
            seed,
        )
    }

    fn build(
        dims: ModelDims,
        num_layers: usize,
        temporal: TemporalMode,
        graph_mode: GraphMode,
        adjacency: Option<&Tensor>,
        seed: u64,
    ) -> Self {
        assert!(num_layers >= 1, "need at least one GRU layer");
        let mut store = ParamStore::new();
        let mut rng = TensorRng::seed(seed);
        let n = dims.num_entities;

        // Shared entity-memory table for all DFGNs in this model.
        let shared_memory = match &temporal {
            TemporalMode::Distinct(cfg) => {
                let bound = 1.0 / (cfg.memory_dim as f32).sqrt();
                Some(store.add("memory", rng.uniform(&[n, cfg.memory_dim], -bound, bound)))
            }
            TemporalMode::Shared | TemporalMode::Straightforward => None,
        };

        // Graph pieces.
        let (graph, num_supports, k_hops) = match graph_mode {
            GraphMode::None => (None, 0, 0),
            GraphMode::Static { kind, k_hops } => {
                let a = adjacency.expect("static graph mode requires an adjacency");
                let supports = build_supports(a, kind);
                let count = supports.len();
                let parts = GraphParts {
                    supports,
                    k_hops,
                    damgn: None,
                    fold_cache: StaticFoldCache::new(),
                };
                (Some(parts), count, k_hops)
            }
            GraphMode::Dynamic { kind, k_hops, damgn } => {
                let a = adjacency.expect("dynamic graph mode requires an adjacency");
                let supports = build_supports(a, kind);
                let count = supports.len();
                // DAMGN attends over the target feature (see DESIGN.md):
                // one embedding size works for both encoder and decoder.
                let damgn = Damgn::new(&mut store, &mut rng, "damgn", n, 1, damgn);
                let parts = GraphParts {
                    supports,
                    k_hops,
                    damgn: Some(damgn),
                    fold_cache: StaticFoldCache::new(),
                };
                (Some(parts), count, k_hops)
            }
            GraphMode::AdaptiveStatic { .. } => {
                panic!("AdaptiveStatic is a WaveNet-family mode (Graph WaveNet baseline)")
            }
        };
        let expand = |c: usize| {
            if num_supports == 0 {
                c
            } else {
                (1 + num_supports * k_hops) * c
            }
        };

        let hidden = dims.hidden;
        let make_stack = |store: &mut ParamStore, rng: &mut TensorRng, tag: &str, c0: usize| {
            (0..num_layers)
                .map(|l| {
                    let c_in = if l == 0 { c0 } else { hidden };
                    GruLayer::new(
                        store,
                        rng,
                        &format!("{tag}{l}"),
                        expand(c_in),
                        expand(hidden),
                        hidden,
                        &temporal,
                        shared_memory,
                        Some(n),
                    )
                })
                .collect::<Vec<_>>()
        };
        let enc = make_stack(&mut store, &mut rng, "enc", dims.in_features);
        let dec = make_stack(&mut store, &mut rng, "dec", 1);
        let head = Linear::new(&mut store, &mut rng, "head", hidden, 1, true);

        let name = match graph_mode {
            GraphMode::None => format!("{}RNN", temporal.prefix()),
            _ => format!("{}{}GRNN", temporal.prefix(), graph_mode.prefix()),
        };
        Self { name, store, dims, enc, dec, head, graph, plan_cache: PlanCache::new() }
    }

    /// Builds the per-timestep supports (static constants or DAMGN dynamic
    /// adjacencies derived from the target-feature signal `signal_t`).
    fn supports_at(
        &self,
        g: &mut Graph,
        base: &Option<Vec<Var>>,
        binding: &Option<enhancenet::DamgnBinding>,
        signal_t: Var,
    ) -> Option<Vec<GcSupport>> {
        let parts = self.graph.as_ref()?;
        let base = base.as_ref().expect("supports bound with graph parts");
        match (&parts.damgn, binding) {
            (Some(damgn), Some(binding)) => Some(
                damgn
                    .dynamic_supports_at(g, binding, signal_t)
                    .into_iter()
                    .map(GcSupport::Dynamic)
                    .collect(),
            ),
            _ => Some(base.iter().map(|&v| GcSupport::Static(v)).collect()),
        }
    }

    /// The DFGN memory parameter, when this is a `D-` variant (Figure 10).
    pub fn memory_id(&self) -> Option<ParamId> {
        match &self.enc[0].weights {
            CellWeights::Generated(dfgn) => Some(dfgn.memory_id()),
            _ => None,
        }
    }

    /// The DAMGN module, when this is a `DA-` variant (Figure 12).
    pub fn damgn(&self) -> Option<&Damgn> {
        self.graph.as_ref()?.damgn.as_ref()
    }
}

impl Forecaster for GruSeq2Seq {
    fn name(&self) -> &str {
        &self.name
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn horizon(&self) -> usize {
        self.dims.output_len
    }

    fn input_shape(&self) -> Option<[usize; 3]> {
        Some([self.dims.input_len, self.dims.num_entities, self.dims.in_features])
    }

    fn damgn(&self) -> Option<&Damgn> {
        GruSeq2Seq::damgn(self)
    }

    fn memory_id(&self) -> Option<ParamId> {
        GruSeq2Seq::memory_id(self)
    }

    fn plan_cache(&self) -> Option<&PlanCache> {
        Some(&self.plan_cache)
    }

    fn forward(&self, g: &mut Graph, x: &Tensor, ctx: &mut ForwardCtx) -> Var {
        let (b, h_len, n, c) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        assert_eq!(n, self.dims.num_entities, "entity count mismatch");
        assert_eq!(c, self.dims.in_features, "feature count mismatch");
        assert_eq!(h_len, self.dims.input_len, "input length mismatch");
        let f_len = self.dims.output_len;

        // Bind graph constants and the DAMGN static mix once per tape.
        let base_supports: Option<Vec<Var>> = self
            .graph
            .as_ref()
            .map(|parts| parts.supports.iter().map(|s| g.constant(s.clone())).collect());
        let damgn_binding = match (&self.graph, &base_supports) {
            (Some(parts), Some(base)) => parts.damgn.as_ref().map(|damgn| {
                damgn.bind_cached(g, &self.store, base, &parts.fold_cache, ctx.training)
            }),
            _ => None,
        };
        let enc_bound: Vec<BoundLayer> =
            self.enc.iter().map(|l| l.bind(g, &self.store, ctx.training)).collect();
        let dec_bound: Vec<BoundLayer> =
            self.dec.iter().map(|l| l.bind(g, &self.store, ctx.training)).collect();
        let k_hops = self.graph.as_ref().map_or(0, |p| p.k_hops);

        // Eval traces read the window through a single input leaf so the
        // trace compiles to a reusable plan ([`PlanCache`]); training keeps
        // the cheaper per-timestep constants (graph-level slicing would
        // drag the whole window through every backward step).
        let xin = (!ctx.training).then(|| g.input(x.clone()));

        // ---------------------------------------------------------- encoder
        let mut hidden: Vec<Var> = (0..self.enc.len())
            .map(|_| g.constant(Tensor::zeros(&[b, n, self.dims.hidden])))
            .collect();
        for t in 0..h_len {
            let xt = match xin {
                Some(xv) => g.index_axis(xv, 1, t), // [B, N, C]
                None => g.constant(x.index_axis(1, t)),
            };
            let signal = g.slice_axis(xt, -1, 0, 1); // target feature
            let sup = self.supports_at(g, &base_supports, &damgn_binding, signal);
            let mut input = xt;
            for (l, layer) in self.enc.iter().enumerate() {
                hidden[l] = layer.step(
                    g,
                    &enc_bound[l],
                    input,
                    hidden[l],
                    sup.as_ref().map(|s| (s.as_slice(), k_hops)),
                );
                input = hidden[l];
            }
        }

        // ---------------------------------------------------------- decoder
        let mut dec_hidden = hidden; // warm start from the encoder
        let mut dec_in = g.constant(Tensor::zeros(&[b, n, 1])); // GO token
        let mut outputs = Vec::with_capacity(f_len);
        for t in 0..f_len {
            let sup = self.supports_at(g, &base_supports, &damgn_binding, dec_in);
            let mut input = dec_in;
            for (l, layer) in self.dec.iter().enumerate() {
                dec_hidden[l] = layer.step(
                    g,
                    &dec_bound[l],
                    input,
                    dec_hidden[l],
                    sup.as_ref().map(|s| (s.as_slice(), k_hops)),
                );
                input = dec_hidden[l];
            }
            let pred = self.head.forward(g, &self.store, input); // [B, N, 1]
            outputs.push(g.reshape(pred, &[b, 1, n]));
            dec_in = if ctx.use_teacher() {
                let teacher = ctx.teacher.expect("use_teacher implies teacher");
                g.constant(teacher.index_axis(1, t).reshape(&[b, n, 1]))
            } else {
                pred
            };
        }
        g.concat(&outputs, 1) // [B, F, N]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enhancenet::{DamgnConfig, DfgnConfig};
    use enhancenet_graph::SupportKind;

    fn dims(n: usize, c: usize) -> ModelDims {
        ModelDims { num_entities: n, in_features: c, hidden: 8, input_len: 4, output_len: 3 }
    }

    fn small_dfgn() -> DfgnConfig {
        DfgnConfig { memory_dim: 4, hidden1: 8, hidden2: 3 }
    }

    fn ring_adjacency(n: usize) -> Tensor {
        let mut a = Tensor::zeros(&[n, n]);
        for i in 0..n {
            a.set(&[i, (i + 1) % n], 1.0);
            a.set(&[(i + 1) % n, i], 0.5);
        }
        a
    }

    fn forward_shape(model: &GruSeq2Seq, b: usize) {
        let x = TensorRng::seed(9).normal(&[b, 4, 5, 2], 0.0, 1.0);
        let mut g = Graph::new();
        let mut rng = TensorRng::seed(1);
        let mut ctx = ForwardCtx::eval(&mut rng);
        let y = model.forward(&mut g, &x, &mut ctx);
        assert_eq!(g.value(y).shape(), &[b, 3, 5]);
        assert!(!g.value(y).has_non_finite());
    }

    #[test]
    fn rnn_forward_shape_and_name() {
        let m = GruSeq2Seq::rnn(dims(5, 2), 2, TemporalMode::Shared, 1);
        assert_eq!(m.name(), "RNN");
        assert!(m.memory_id().is_none());
        forward_shape(&m, 3);
    }

    #[test]
    fn drnn_forward_shape_and_name() {
        let m = GruSeq2Seq::rnn(dims(5, 2), 2, TemporalMode::Distinct(small_dfgn()), 1);
        assert_eq!(m.name(), "D-RNN");
        assert!(m.memory_id().is_some());
        forward_shape(&m, 2);
    }

    #[test]
    fn grnn_variants_name_and_shape() {
        let a = ring_adjacency(5);
        let combos: Vec<(TemporalMode, GraphMode, &str)> = vec![
            (TemporalMode::Shared, GraphMode::paper_static(), "GRNN"),
            (TemporalMode::Distinct(small_dfgn()), GraphMode::paper_static(), "D-GRNN"),
            (TemporalMode::Shared, GraphMode::paper_dynamic(), "DA-GRNN"),
            (TemporalMode::Distinct(small_dfgn()), GraphMode::paper_dynamic(), "D-DA-GRNN"),
        ];
        for (t, gm, expected) in combos {
            let m = GruSeq2Seq::grnn(dims(5, 2), 2, t, gm, &a, 1);
            assert_eq!(m.name(), expected);
            forward_shape(&m, 2);
        }
    }

    #[test]
    fn da_variant_exposes_damgn() {
        let a = ring_adjacency(5);
        let m = GruSeq2Seq::grnn(
            dims(5, 2),
            1,
            TemporalMode::Shared,
            GraphMode::Dynamic {
                kind: SupportKind::SingleTransition,
                k_hops: 1,
                damgn: DamgnConfig { b_memory_dim: 3, embed_dim: 2, top_k: None },
            },
            &a,
            1,
        );
        assert!(m.damgn().is_some());
    }

    #[test]
    fn dfgn_reduces_parameters_vs_wide_shared() {
        // The paper's Table I point: D-RNN with C' = 16 has far fewer
        // parameters than RNN with C' = 64.
        let mut wide = dims(50, 2);
        wide.hidden = 64;
        let mut narrow = dims(50, 2);
        narrow.hidden = 16;
        let base = GruSeq2Seq::rnn(wide, 2, TemporalMode::Shared, 1);
        let d = GruSeq2Seq::rnn(narrow, 2, TemporalMode::Distinct(DfgnConfig::default()), 1);
        assert!(
            d.num_parameters() < base.num_parameters(),
            "D-RNN {} should be smaller than RNN {}",
            d.num_parameters(),
            base.num_parameters()
        );
    }

    #[test]
    fn gradients_flow_to_every_parameter_rnn() {
        let m = GruSeq2Seq::rnn(dims(4, 1), 2, TemporalMode::Shared, 2);
        check_all_grads(m);
    }

    #[test]
    fn gradients_flow_to_every_parameter_d_da_grnn() {
        let a = ring_adjacency(4);
        let m = GruSeq2Seq::grnn(
            ModelDims { num_entities: 4, in_features: 1, hidden: 6, input_len: 4, output_len: 3 },
            2,
            TemporalMode::Distinct(small_dfgn()),
            GraphMode::paper_dynamic(),
            &a,
            // Seed 2 draws generator weights whose tiny (8->3) ReLU stack is
            // fully dead for this 4-entity config, making zero generator
            // grads a property of the draw rather than a bug; seed 3 keeps
            // every unit alive so the test checks what it means to.
            3,
        );
        check_all_grads(m);
    }

    fn check_all_grads(mut m: GruSeq2Seq) {
        let n = m.dims.num_entities;
        let c = m.dims.in_features;
        let x = TensorRng::seed(3).normal(&[2, 4, n, c], 0.0, 1.0);
        let mut g = Graph::new();
        let mut rng = TensorRng::seed(4);
        let pred = {
            let mut ctx = ForwardCtx::eval(&mut rng);
            m.forward(&mut g, &x, &mut ctx)
        };
        let target = Tensor::ones(&[2, 3, n]);
        let mask = Tensor::ones(&[2, 3, n]);
        let loss = g.masked_mae(pred, &target, &mask);
        g.backward(loss);
        m.store_mut().zero_grad();
        g.write_grads(m.store_mut());
        let mut missing = Vec::new();
        for id in m.store().ids() {
            if m.store().grad(id).norm() == 0.0 {
                missing.push(m.store().name(id).to_string());
            }
        }
        assert!(missing.is_empty(), "params with zero grad: {missing:?}");
    }

    #[test]
    fn teacher_forcing_changes_training_forward() {
        let m = GruSeq2Seq::rnn(dims(5, 2), 1, TemporalMode::Shared, 5);
        let x = TensorRng::seed(10).normal(&[1, 4, 5, 2], 0.0, 1.0);
        let teacher = TensorRng::seed(11).normal(&[1, 3, 5], 0.0, 1.0);

        let mut g1 = Graph::new();
        let mut rng1 = TensorRng::seed(12);
        let mut ctx1 = ForwardCtx::train(&mut rng1, &teacher, 1.0);
        let y_forced = m.forward(&mut g1, &x, &mut ctx1);

        let mut g2 = Graph::new();
        let mut rng2 = TensorRng::seed(12);
        let mut ctx2 = ForwardCtx::train(&mut rng2, &teacher, 0.0);
        let y_free = m.forward(&mut g2, &x, &mut ctx2);

        // First step is identical (GO token), later steps diverge.
        assert!(!g1.value(y_forced).allclose(g2.value(y_free), 1e-6));
        let first_forced = g1.value(y_forced).index_axis(1, 0);
        let first_free = g2.value(y_free).index_axis(1, 0);
        assert!(first_forced.allclose(&first_free, 1e-6));
    }

    #[test]
    fn straightforward_mode_name_shape_and_param_ordering() {
        // §IV's three methods at a realistic N: naive < DFGN < straightforward.
        let n = 80;
        let d =
            ModelDims { num_entities: n, in_features: 1, hidden: 8, input_len: 4, output_len: 3 };
        let naive = GruSeq2Seq::rnn(d, 1, TemporalMode::Shared, 1);
        let dfgn = GruSeq2Seq::rnn(d, 1, TemporalMode::Distinct(small_dfgn()), 1);
        let straightforward = GruSeq2Seq::rnn(d, 1, TemporalMode::Straightforward, 1);
        assert_eq!(straightforward.name(), "S-RNN");
        assert!(naive.num_parameters() < dfgn.num_parameters());
        assert!(dfgn.num_parameters() < straightforward.num_parameters());
        // And it runs.
        let x = TensorRng::seed(2).normal(&[2, 4, n, 1], 0.0, 1.0);
        let mut g = Graph::new();
        let mut rng = TensorRng::seed(3);
        let mut ctx = ForwardCtx::eval(&mut rng);
        let y = straightforward.forward(&mut g, &x, &mut ctx);
        assert_eq!(g.value(y).shape(), &[2, 3, n]);
    }

    #[test]
    fn eval_filter_cache_matches_tracked_path() {
        // Two eval forwards (second served from the cache) must agree
        // bit-for-bit, and training afterwards must still move parameters.
        let m = GruSeq2Seq::rnn(dims(5, 1), 2, TemporalMode::Distinct(small_dfgn()), 13);
        let x = TensorRng::seed(20).normal(&[1, 4, 5, 1], 0.0, 1.0);
        let run = || {
            let mut g = Graph::new();
            let mut rng = TensorRng::seed(21);
            let mut ctx = ForwardCtx::eval(&mut rng);
            let y = m.forward(&mut g, &x, &mut ctx);
            g.value(y).clone()
        };
        let first = run();
        let second = run(); // cache hit
        assert!(first.allclose(&second, 0.0));
    }

    #[test]
    fn paper_presets_match_explicit_modes() {
        let a = ring_adjacency(5);
        let cases: Vec<(GruSeq2Seq, &str)> = vec![
            (GruSeq2Seq::paper_rnn(dims(5, 2), 2, 1), "RNN"),
            (GruSeq2Seq::paper_d_rnn(dims(5, 2), 2, 1), "D-RNN"),
            (GruSeq2Seq::paper_grnn(dims(5, 2), 2, &a, 1), "GRNN"),
            (GruSeq2Seq::paper_d_grnn(dims(5, 2), 2, &a, 1), "D-GRNN"),
            (GruSeq2Seq::paper_da_grnn(dims(5, 2), 2, &a, 1), "DA-GRNN"),
            (GruSeq2Seq::paper_d_da_grnn(dims(5, 2), 2, &a, 1), "D-DA-GRNN"),
        ];
        for (m, expected) in cases {
            assert_eq!(m.name(), expected);
            assert_eq!(m.input_shape(), Some([4, 5, 2]));
            forward_shape(&m, 2);
        }
    }

    #[test]
    fn eval_damgn_fold_cache_matches_tracked_path() {
        // Second eval forward serves the folded static mix from the cache;
        // outputs must agree bit-for-bit with the first (tracked) pass.
        let a = ring_adjacency(5);
        let m = GruSeq2Seq::paper_da_grnn(dims(5, 2), 1, &a, 17);
        let x = TensorRng::seed(22).normal(&[1, 4, 5, 2], 0.0, 1.0);
        let run = || {
            let mut g = Graph::new();
            let mut rng = TensorRng::seed(23);
            let mut ctx = ForwardCtx::eval(&mut rng);
            let y = m.forward(&mut g, &x, &mut ctx);
            g.value(y).clone()
        };
        let first = run();
        let second = run();
        assert!(first.allclose(&second, 0.0));
    }

    #[test]
    fn predict_serves_eval_forward_without_tape_access() {
        let a = ring_adjacency(5);
        let m = GruSeq2Seq::paper_da_grnn(dims(5, 2), 1, &a, 19);
        let x = TensorRng::seed(24).normal(&[4, 5, 2], 0.0, 1.0);
        let p = m.predict(&x).unwrap();
        assert_eq!(p.shape(), &[3, 5]);
        match m.predict(&TensorRng::seed(25).normal(&[4, 9, 2], 0.0, 1.0)) {
            Err(enhancenet::EnhanceNetError::InputShape { expected, .. }) => {
                assert_eq!(expected, vec![4, 5, 2]);
            }
            other => panic!("expected InputShape, got {other:?}"),
        }
    }

    #[test]
    fn per_entity_filters_give_entity_specific_behaviour() {
        // With distinct filters, feeding identical series to every entity
        // must still produce different predictions per entity, which shared
        // filters cannot do (they are permutation-equivariant).
        let m_shared = GruSeq2Seq::rnn(dims(5, 1), 1, TemporalMode::Shared, 7);
        let m_distinct = GruSeq2Seq::rnn(dims(5, 1), 1, TemporalMode::Distinct(small_dfgn()), 7);
        let mut x = Tensor::zeros(&[1, 4, 5, 1]);
        for t in 0..4 {
            for e in 0..5 {
                x.set(&[0, t, e, 0], (t as f32 * 0.4).sin());
            }
        }
        let spread = |m: &GruSeq2Seq| -> f32 {
            let mut g = Graph::new();
            let mut rng = TensorRng::seed(8);
            let mut ctx = ForwardCtx::eval(&mut rng);
            let y = m.forward(&mut g, &x, &mut ctx);
            // Std over the entity axis at the last horizon.
            let last = g.value(y).index_axis(1, 2);
            let mean = last.mean_all();
            last.map(|v| (v - mean) * (v - mean)).mean_all().sqrt()
        };
        assert!(spread(&m_shared) < 1e-6, "shared filters must be entity-symmetric");
        assert!(spread(&m_distinct) > 1e-6, "distinct filters must break symmetry");
    }
}
