//! # enhancenet-arima
//!
//! ARIMA(p, d, q) forecasting with Kalman filtering — the paper's
//! non-deep-learning baseline ("ARIMA: Auto-Regressive Integrated Moving
//! Average model with Kalman filter", §VI-A).
//!
//! Pipeline:
//!
//! 1. difference the series `d` times;
//! 2. estimate ARMA(p, q) coefficients with the Hannan–Rissanen two-stage
//!    procedure (long-AR residual proxy, then least squares on lagged values
//!    and lagged residuals);
//! 3. put the fitted ARMA in Harvey state-space form and run a [`kalman`]
//!    filter over the observed window to obtain the filtered state;
//! 4. iterate the state transition for multi-step forecasts and invert the
//!    differencing.
//!
//! Each entity's series is modelled independently, as is standard for the
//! ARIMA baseline in this literature.

pub mod ar;
pub mod kalman;
pub mod model;
pub mod solve;

pub use ar::{levinson_durbin, yule_walker};
pub use kalman::KalmanFilter;
pub use model::{Arima, ArimaConfig};
