//! A generic Kalman filter for linear-Gaussian state-space models, plus the
//! Harvey state-space form of an ARMA(p, q) process.
//!
//! Model:
//! ```text
//! α_{t+1} = T α_t + R η_t,   η_t ~ N(0, σ²)
//! y_t     = Z α_t + ε_t,     ε_t ~ N(0, h)
//! ```

#![allow(clippy::needless_range_loop)] // index loops mirror the matrix math

use crate::solve::solve;

/// A linear-Gaussian state-space model with scalar observations.
#[derive(Debug, Clone)]
pub struct KalmanFilter {
    /// State dimension.
    pub dim: usize,
    /// Transition matrix `T`, row-major `[dim, dim]`.
    pub transition: Vec<f64>,
    /// State-noise loading `R`, `[dim]` (rank-1 process noise).
    pub noise_loading: Vec<f64>,
    /// Process-noise variance σ².
    pub sigma2: f64,
    /// Observation vector `Z`, `[dim]`.
    pub observation: Vec<f64>,
    /// Observation-noise variance `h`.
    pub obs_noise: f64,
    /// Filtered state mean `α̂`.
    pub state: Vec<f64>,
    /// Filtered state covariance `P`, row-major `[dim, dim]`.
    pub cov: Vec<f64>,
}

impl KalmanFilter {
    /// Builds a filter with a diffuse-ish initial covariance `kappa · I`.
    pub fn new(
        transition: Vec<f64>,
        noise_loading: Vec<f64>,
        sigma2: f64,
        observation: Vec<f64>,
        obs_noise: f64,
        kappa: f64,
    ) -> Self {
        let dim = noise_loading.len();
        assert_eq!(transition.len(), dim * dim, "transition must be dim x dim");
        assert_eq!(observation.len(), dim, "observation must be dim");
        let mut cov = vec![0.0; dim * dim];
        for i in 0..dim {
            cov[i * dim + i] = kappa;
        }
        Self {
            dim,
            transition,
            noise_loading,
            sigma2,
            observation,
            obs_noise,
            state: vec![0.0; dim],
            cov,
        }
    }

    /// The Harvey representation of ARMA(p, q): state dimension
    /// `r = max(p, q + 1)`, transition has φ down the first column and an
    /// upper shift, `R = (1, θ₁, …, θ_q, 0, …)`, `Z = e₁`.
    pub fn arma(phi: &[f64], theta: &[f64], sigma2: f64) -> Self {
        let p = phi.len();
        let q = theta.len();
        let r = p.max(q + 1);
        let mut transition = vec![0.0f64; r * r];
        for (i, &c) in phi.iter().enumerate() {
            transition[i * r] = c; // first column = phi
        }
        for i in 0..r - 1 {
            transition[i * r + i + 1] = 1.0; // superdiagonal shift
        }
        let mut loading = vec![0.0f64; r];
        loading[0] = 1.0;
        for (i, &t) in theta.iter().enumerate() {
            loading[i + 1] = t;
        }
        let mut observation = vec![0.0f64; r];
        observation[0] = 1.0;
        Self::new(transition, loading, sigma2, observation, 0.0, 1e4)
    }

    /// Time update: `α ← Tα`, `P ← TPTᵀ + σ²RRᵀ`.
    pub fn predict(&mut self) {
        let d = self.dim;
        // α ← Tα
        let mut new_state = vec![0.0f64; d];
        for i in 0..d {
            for j in 0..d {
                new_state[i] += self.transition[i * d + j] * self.state[j];
            }
        }
        self.state = new_state;
        // P ← T P Tᵀ + σ² R Rᵀ
        let mut tp = vec![0.0f64; d * d];
        for i in 0..d {
            for k in 0..d {
                let t = self.transition[i * d + k];
                if t == 0.0 {
                    continue;
                }
                for j in 0..d {
                    tp[i * d + j] += t * self.cov[k * d + j];
                }
            }
        }
        let mut new_cov = vec![0.0f64; d * d];
        for i in 0..d {
            for j in 0..d {
                let mut s = 0.0;
                for k in 0..d {
                    s += tp[i * d + k] * self.transition[j * d + k];
                }
                new_cov[i * d + j] =
                    s + self.sigma2 * self.noise_loading[i] * self.noise_loading[j];
            }
        }
        self.cov = new_cov;
    }

    /// Measurement update with observation `y`. Returns the innovation.
    pub fn update(&mut self, y: f64) -> f64 {
        let d = self.dim;
        // Innovation v = y − Zα ; S = ZPZᵀ + h ; K = PZᵀ/S.
        let mut zp = vec![0.0f64; d];
        for i in 0..d {
            for j in 0..d {
                zp[i] += self.cov[i * d + j] * self.observation[j];
            }
        }
        let s: f64 =
            self.observation.iter().zip(&zp).map(|(z, pz)| z * pz).sum::<f64>() + self.obs_noise;
        let s = s.max(1e-12);
        let pred: f64 = self.observation.iter().zip(&self.state).map(|(z, a)| z * a).sum();
        let v = y - pred;
        for i in 0..d {
            self.state[i] += zp[i] / s * v;
        }
        // P ← P − K S Kᵀ = P − (PZᵀ)(PZᵀ)ᵀ / S
        for i in 0..d {
            for j in 0..d {
                self.cov[i * d + j] -= zp[i] * zp[j] / s;
            }
        }
        v
    }

    /// One filter step (predict then update). Returns the innovation.
    pub fn step(&mut self, y: f64) -> f64 {
        self.predict();
        self.update(y)
    }

    /// Runs the filter over a window of observations.
    pub fn filter(&mut self, ys: &[f64]) {
        for &y in ys {
            self.step(y);
        }
    }

    /// Multi-step point forecasts from the current filtered state, without
    /// mutating the filter.
    pub fn forecast(&self, horizon: usize) -> Vec<f64> {
        let d = self.dim;
        let mut alpha = self.state.clone();
        let mut out = Vec::with_capacity(horizon);
        for _ in 0..horizon {
            let mut next = vec![0.0f64; d];
            for i in 0..d {
                for j in 0..d {
                    next[i] += self.transition[i * d + j] * alpha[j];
                }
            }
            alpha = next;
            out.push(self.observation.iter().zip(&alpha).map(|(z, a)| z * a).sum());
        }
        out
    }

    /// Solves `(I − T) x = α` to obtain the long-run state (diagnostic for
    /// stationary models); `None` when `I − T` is singular (unit roots).
    pub fn steady_state(&self) -> Option<Vec<f64>> {
        let d = self.dim;
        let mut a = vec![0.0f64; d * d];
        for i in 0..d {
            for j in 0..d {
                a[i * d + j] = -self.transition[i * d + j];
            }
            a[i * d + i] += 1.0;
        }
        solve(&a, &vec![0.0; d], d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arma_state_space_dimensions() {
        let kf = KalmanFilter::arma(&[0.5, 0.2], &[0.3], 1.0);
        assert_eq!(kf.dim, 2);
        let kf2 = KalmanFilter::arma(&[0.5], &[0.3, 0.1], 1.0);
        assert_eq!(kf2.dim, 3);
    }

    #[test]
    fn filter_tracks_constant_signal() {
        // Random-walk state observed with noise converges to the constant.
        let mut kf = KalmanFilter::new(vec![1.0], vec![1.0], 1e-4, vec![1.0], 0.25, 100.0);
        for _ in 0..200 {
            kf.step(5.0);
        }
        assert!((kf.state[0] - 5.0).abs() < 0.05, "state = {}", kf.state[0]);
    }

    #[test]
    fn innovations_shrink_as_filter_converges() {
        let mut kf = KalmanFilter::new(vec![1.0], vec![1.0], 1e-6, vec![1.0], 1.0, 100.0);
        let first = kf.step(3.0).abs();
        let mut last = 0.0;
        for _ in 0..50 {
            last = kf.step(3.0).abs();
        }
        assert!(last < first * 0.1);
    }

    #[test]
    fn ar1_forecast_decays_geometrically() {
        let mut kf = KalmanFilter::arma(&[0.5], &[], 1.0);
        // Feed a spike then forecast: AR(1) forecasts halve each step.
        kf.filter(&[0.0, 0.0, 0.0, 4.0]);
        let f = kf.forecast(3);
        assert!((f[0] / kf.state[0] - 0.5).abs() < 1e-9);
        assert!((f[1] / f[0] - 0.5).abs() < 1e-9);
        assert!((f[2] / f[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn filter_with_exact_ar1_observations_predicts_next() {
        // With no observation noise, the filtered state equals the series
        // and the 1-step forecast is φ·y_t.
        let mut kf = KalmanFilter::arma(&[0.8], &[], 1.0);
        let mut y = vec![1.0f64];
        for _ in 0..30 {
            let last = *y.last().unwrap();
            y.push(0.8 * last);
        }
        kf.filter(&y);
        let f = kf.forecast(1);
        assert!((f[0] - 0.8 * y.last().unwrap()).abs() < 1e-6);
    }

    #[test]
    fn forecast_does_not_mutate_filter() {
        let mut kf = KalmanFilter::arma(&[0.6], &[0.2], 1.0);
        kf.filter(&[1.0, -0.5, 0.7]);
        let state_before = kf.state.clone();
        let _ = kf.forecast(10);
        assert_eq!(kf.state, state_before);
    }
}
