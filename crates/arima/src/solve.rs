//! Small dense linear algebra: Gaussian elimination with partial pivoting
//! and least squares via normal equations. System sizes here are tiny
//! (p + q ≤ ~10), so simplicity beats sophistication.

/// Solves `A x = b` for a square row-major `A` (`n × n`) in place.
///
/// Returns `None` when the matrix is numerically singular.
pub fn solve(a: &[f64], b: &[f64], n: usize) -> Option<Vec<f64>> {
    assert_eq!(a.len(), n * n, "matrix size mismatch");
    assert_eq!(b.len(), n, "rhs size mismatch");
    let mut m = a.to_vec();
    let mut rhs = b.to_vec();
    for col in 0..n {
        // Partial pivot.
        let pivot_row =
            (col..n).max_by(|&r1, &r2| m[r1 * n + col].abs().total_cmp(&m[r2 * n + col].abs()))?;
        if m[pivot_row * n + col].abs() < 1e-12 {
            return None;
        }
        if pivot_row != col {
            for k in 0..n {
                m.swap(col * n + k, pivot_row * n + k);
            }
            rhs.swap(col, pivot_row);
        }
        let pivot = m[col * n + col];
        for row in (col + 1)..n {
            let factor = m[row * n + col] / pivot;
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                m[row * n + k] -= factor * m[col * n + k];
            }
            rhs[row] -= factor * rhs[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0f64; n];
    for row in (0..n).rev() {
        let mut s = rhs[row];
        for k in (row + 1)..n {
            s -= m[row * n + k] * x[k];
        }
        x[row] = s / m[row * n + row];
    }
    Some(x)
}

/// Least squares `min ‖X β − y‖²` via ridge-stabilized normal equations
/// (`XᵀX + λI`). `x` is row-major `rows × cols`.
pub fn least_squares(
    x: &[f64],
    y: &[f64],
    rows: usize,
    cols: usize,
    ridge: f64,
) -> Option<Vec<f64>> {
    assert_eq!(x.len(), rows * cols);
    assert_eq!(y.len(), rows);
    let mut xtx = vec![0.0f64; cols * cols];
    let mut xty = vec![0.0f64; cols];
    for r in 0..rows {
        let row = &x[r * cols..(r + 1) * cols];
        for i in 0..cols {
            xty[i] += row[i] * y[r];
            for j in i..cols {
                xtx[i * cols + j] += row[i] * row[j];
            }
        }
    }
    for i in 0..cols {
        for j in 0..i {
            xtx[i * cols + j] = xtx[j * cols + i];
        }
        xtx[i * cols + i] += ridge;
    }
    solve(&xtx, &xty, cols)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_identity() {
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let b = vec![3.0, 4.0];
        assert_eq!(solve(&a, &b, 2).unwrap(), vec![3.0, 4.0]);
    }

    #[test]
    fn solve_known_system() {
        // 2x + y = 5 ; x + 3y = 10  =>  x = 1, y = 3
        let a = vec![2.0, 1.0, 1.0, 3.0];
        let b = vec![5.0, 10.0];
        let x = solve(&a, &b, 2).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero on the leading diagonal forces a row swap.
        let a = vec![0.0, 1.0, 1.0, 0.0];
        let b = vec![7.0, 9.0];
        let x = solve(&a, &b, 2).unwrap();
        assert!((x[0] - 9.0).abs() < 1e-10);
        assert!((x[1] - 7.0).abs() < 1e-10);
    }

    #[test]
    fn solve_detects_singularity() {
        let a = vec![1.0, 2.0, 2.0, 4.0];
        assert!(solve(&a, &[1.0, 2.0], 2).is_none());
    }

    #[test]
    fn least_squares_recovers_line() {
        // y = 2x + 1 with exact data.
        let rows = 5;
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..rows {
            x.push(i as f64);
            x.push(1.0);
            y.push(2.0 * i as f64 + 1.0);
        }
        let beta = least_squares(&x, &y, rows, 2, 0.0).unwrap();
        assert!((beta[0] - 2.0).abs() < 1e-8);
        assert!((beta[1] - 1.0).abs() < 1e-8);
    }

    #[test]
    fn least_squares_with_noise_is_close() {
        let rows = 100;
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..rows {
            let xi = i as f64 * 0.1;
            x.push(xi);
            x.push(1.0);
            // Deterministic pseudo-noise.
            let noise = ((i * 37 % 11) as f64 - 5.0) * 0.01;
            y.push(3.0 * xi - 0.5 + noise);
        }
        let beta = least_squares(&x, &y, rows, 2, 1e-9).unwrap();
        assert!((beta[0] - 3.0).abs() < 0.05);
        assert!((beta[1] + 0.5).abs() < 0.1);
    }
}
