//! Autoregressive estimation: sample autocovariances, Yule–Walker
//! equations, and the Levinson–Durbin recursion.

/// Sample autocovariance `γ(k)` for lags `0..=max_lag` (biased estimator,
/// divides by `n`, which keeps the autocovariance sequence positive
//  semi-definite).
pub fn autocovariance(x: &[f64], max_lag: usize) -> Vec<f64> {
    let n = x.len();
    assert!(n > max_lag, "series length {n} must exceed max lag {max_lag}");
    let mean = x.iter().sum::<f64>() / n as f64;
    (0..=max_lag)
        .map(|k| (0..n - k).map(|t| (x[t] - mean) * (x[t + k] - mean)).sum::<f64>() / n as f64)
        .collect()
}

/// Levinson–Durbin recursion: solves the Yule–Walker equations for an AR(p)
/// model given autocovariances `γ(0..=p)`.
///
/// Returns `(phi, sigma2)` — the AR coefficients and innovation variance.
pub fn levinson_durbin(gamma: &[f64], p: usize) -> (Vec<f64>, f64) {
    assert!(gamma.len() > p, "need {p}+1 autocovariances");
    if p == 0 {
        return (vec![], gamma[0]);
    }
    let mut phi = vec![0.0f64; p];
    let mut prev = vec![0.0f64; p];
    let mut sigma2 = gamma[0].max(1e-12);
    for k in 1..=p {
        let mut acc = gamma[k];
        for j in 1..k {
            acc -= prev[j - 1] * gamma[k - j];
        }
        let reflection = acc / sigma2;
        phi[k - 1] = reflection;
        for j in 1..k {
            phi[j - 1] = prev[j - 1] - reflection * prev[k - 1 - j];
        }
        sigma2 *= 1.0 - reflection * reflection;
        sigma2 = sigma2.max(1e-12);
        prev[..k].copy_from_slice(&phi[..k]);
    }
    (phi, sigma2)
}

/// Fits an AR(p) by Yule–Walker. Returns `(phi, sigma2)`.
pub fn yule_walker(x: &[f64], p: usize) -> (Vec<f64>, f64) {
    let gamma = autocovariance(x, p);
    levinson_durbin(&gamma, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Simulates a stationary AR process with deterministic pseudo-noise.
    fn simulate_ar(phi: &[f64], n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next_noise = move || {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let u = (state.wrapping_mul(0x2545F4914F6CDD1D) >> 40) as f64 / (1u64 << 24) as f64;
            (u - 0.5) * 2.0
        };
        let p = phi.len();
        let mut x = vec![0.0f64; n + 200];
        for t in p..x.len() {
            let mut v = next_noise();
            for (j, &c) in phi.iter().enumerate() {
                v += c * x[t - 1 - j];
            }
            x[t] = v;
        }
        x.split_off(200)
    }

    #[test]
    fn autocovariance_lag0_is_variance() {
        let x = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let g = autocovariance(&x, 1);
        assert!((g[0] - 2.0).abs() < 1e-10); // biased variance of 1..5
    }

    #[test]
    fn white_noise_has_near_zero_lag_covariance() {
        let x = simulate_ar(&[], 5000, 1);
        let g = autocovariance(&x, 3);
        assert!(g[1].abs() < 0.05 * g[0]);
        assert!(g[2].abs() < 0.05 * g[0]);
    }

    #[test]
    fn recovers_ar1_coefficient() {
        let x = simulate_ar(&[0.7], 8000, 2);
        let (phi, sigma2) = yule_walker(&x, 1);
        assert!((phi[0] - 0.7).abs() < 0.05, "phi = {:?}", phi);
        assert!(sigma2 > 0.0);
    }

    #[test]
    fn recovers_ar2_coefficients() {
        let x = simulate_ar(&[0.5, -0.3], 10000, 3);
        let (phi, _) = yule_walker(&x, 2);
        assert!((phi[0] - 0.5).abs() < 0.07, "phi = {:?}", phi);
        assert!((phi[1] + 0.3).abs() < 0.07, "phi = {:?}", phi);
    }

    #[test]
    fn sigma2_decreases_with_model_order_on_ar2_data() {
        let x = simulate_ar(&[0.5, -0.3], 6000, 4);
        let (_, s1) = yule_walker(&x, 1);
        let (_, s2) = yule_walker(&x, 2);
        assert!(s2 <= s1 + 1e-9);
    }

    #[test]
    fn order_zero_returns_variance() {
        let x = vec![2.0, 4.0, 6.0, 8.0];
        let (phi, s) = yule_walker(&x, 0);
        assert!(phi.is_empty());
        assert!((s - 5.0).abs() < 1e-9);
    }
}
