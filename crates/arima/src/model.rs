//! ARIMA(p, d, q): differencing + Hannan–Rissanen ARMA estimation +
//! Kalman-filter forecasting.

use crate::ar::yule_walker;
use crate::kalman::KalmanFilter;
use crate::solve::least_squares;

/// ARIMA orders.
#[derive(Debug, Clone, Copy)]
pub struct ArimaConfig {
    /// Autoregressive order.
    pub p: usize,
    /// Differencing order.
    pub d: usize,
    /// Moving-average order.
    pub q: usize,
}

impl ArimaConfig {
    /// The traffic-forecasting literature's usual choice, ARIMA(3, 0, 1)
    /// (DCRNN's baseline uses (3,0,1) with a Kalman filter).
    pub fn paper_default() -> Self {
        Self { p: 3, d: 0, q: 1 }
    }
}

/// A fitted ARIMA model for one univariate series.
#[derive(Debug, Clone)]
pub struct Arima {
    config: ArimaConfig,
    phi: Vec<f64>,
    theta: Vec<f64>,
    sigma2: f64,
    mean: f64,
}

impl Arima {
    /// Fits ARIMA(p, d, q) to `series` with Hannan–Rissanen.
    ///
    /// # Panics
    ///
    /// Panics when the series is too short for the requested orders.
    pub fn fit(series: &[f32], config: ArimaConfig) -> Self {
        let ArimaConfig { p, d, q } = config;
        let x: Vec<f64> = series.iter().map(|&v| v as f64).collect();
        let w = difference(&x, d);
        assert!(
            w.len() > (p + q + 1).max(20.min(w.len())),
            "series too short ({}) for ARIMA({p},{d},{q})",
            series.len()
        );
        let mean = w.iter().sum::<f64>() / w.len() as f64;
        let centered: Vec<f64> = w.iter().map(|v| v - mean).collect();

        let (phi, theta, sigma2) = if q == 0 {
            let (phi, sigma2) = yule_walker(&centered, p);
            (phi, vec![], sigma2)
        } else {
            hannan_rissanen(&centered, p, q)
        };
        Self { config, phi, theta, sigma2, mean }
    }

    /// Automatic order selection: fits every `(p, q)` with `p ≤ max_p`,
    /// `q ≤ max_q` (and the given `d`) and keeps the model minimizing the
    /// Akaike information criterion `AIC = n·ln(σ̂²) + 2(p + q)`.
    ///
    /// # Panics
    ///
    /// Panics when the series is too short for the largest candidate
    /// orders, or when `max_p = max_q = 0`.
    pub fn fit_auto(series: &[f32], d: usize, max_p: usize, max_q: usize) -> Self {
        assert!(max_p + max_q > 0, "need at least one candidate order");
        let n = (series.len() - d) as f64;
        let mut best: Option<(f64, Arima)> = None;
        for p in 0..=max_p {
            for q in 0..=max_q {
                if p + q == 0 {
                    continue;
                }
                let model = Self::fit(series, ArimaConfig { p, d, q });
                let aic = n * model.sigma2().max(1e-12).ln() + 2.0 * (p + q) as f64;
                if best.as_ref().is_none_or(|(b, _)| aic < *b) {
                    best = Some((aic, model));
                }
            }
        }
        best.expect("at least one candidate").1
    }

    /// AR coefficients of the fitted (differenced) process.
    pub fn phi(&self) -> &[f64] {
        &self.phi
    }

    /// MA coefficients.
    pub fn theta(&self) -> &[f64] {
        &self.theta
    }

    /// Innovation variance.
    pub fn sigma2(&self) -> f64 {
        self.sigma2
    }

    /// Forecasts `horizon` future values given the recent `history`
    /// (in the original, un-differenced scale). Runs the Kalman filter over
    /// the differenced, centered history, forecasts the state, and inverts
    /// the differencing.
    pub fn forecast(&self, history: &[f32], horizon: usize) -> Vec<f32> {
        let d = self.config.d;
        let x: Vec<f64> = history.iter().map(|&v| v as f64).collect();
        assert!(x.len() > d, "history too short for differencing order {d}");
        let w = difference(&x, d);
        let centered: Vec<f64> = w.iter().map(|v| v - self.mean).collect();

        let mut kf = KalmanFilter::arma(&self.phi, &self.theta, self.sigma2.max(1e-9));
        kf.filter(&centered);
        let fw: Vec<f64> = kf.forecast(horizon).iter().map(|v| v + self.mean).collect();

        // Invert differencing: rebuild the level from the last d values.
        undifference(&x, &fw, d).iter().map(|&v| v as f32).collect()
    }
}

/// Applies `d`-th order differencing.
fn difference(x: &[f64], d: usize) -> Vec<f64> {
    let mut w = x.to_vec();
    for _ in 0..d {
        w = w.windows(2).map(|p| p[1] - p[0]).collect();
    }
    w
}

/// Integrates forecasts of the `d`-times differenced series back to levels.
fn undifference(history: &[f64], fw: &[f64], d: usize) -> Vec<f64> {
    if d == 0 {
        return fw.to_vec();
    }
    // Track the last value of each differencing level.
    let mut lasts = Vec::with_capacity(d + 1);
    let mut cur = history.to_vec();
    lasts.push(*cur.last().expect("non-empty history"));
    for _ in 0..d {
        cur = cur.windows(2).map(|p| p[1] - p[0]).collect();
        lasts.push(*cur.last().expect("history longer than d"));
    }
    // lasts[k] = last value of k-th difference; integrate d times.
    let mut out = Vec::with_capacity(fw.len());
    let mut levels = lasts[..d].to_vec(); // running levels for orders 0..d-1
    for &f in fw {
        // Start from the innovation at order d and cascade down.
        let mut value = f;
        for k in (0..d).rev() {
            value += levels[k];
            levels[k] = value;
        }
        out.push(value);
    }
    out
}

/// Hannan–Rissanen: long-AR residual proxy, then LS on p lags of x and q
/// lags of residuals. Returns `(phi, theta, sigma2)`.
fn hannan_rissanen(x: &[f64], p: usize, q: usize) -> (Vec<f64>, Vec<f64>, f64) {
    let n = x.len();
    // Stage 1: long AR (order grows slowly with n).
    let long_order = ((n as f64).ln().ceil() as usize * 2 + p + q).min(n / 4).max(p + q);
    let (long_phi, _) = yule_walker(x, long_order);
    let mut resid = vec![0.0f64; n];
    for t in long_order..n {
        let mut pred = 0.0;
        for (j, &c) in long_phi.iter().enumerate() {
            pred += c * x[t - 1 - j];
        }
        resid[t] = x[t] - pred;
    }
    // Stage 2: regress x_t on x_{t-1..t-p} and e_{t-1..t-q}.
    let start = long_order + q.max(1);
    let rows = n - start;
    let cols = p + q;
    if rows < cols + 2 {
        // Not enough data — fall back to pure AR.
        let (phi, sigma2) = yule_walker(x, p);
        return (phi, vec![0.0; q], sigma2);
    }
    let mut design = Vec::with_capacity(rows * cols);
    let mut target = Vec::with_capacity(rows);
    for t in start..n {
        for j in 0..p {
            design.push(x[t - 1 - j]);
        }
        for j in 0..q {
            design.push(resid[t - 1 - j]);
        }
        target.push(x[t]);
    }
    match least_squares(&design, &target, rows, cols, 1e-8) {
        Some(beta) => {
            let phi = beta[..p].to_vec();
            let theta = beta[p..].to_vec();
            // Innovation variance from the final residuals.
            let mut ss = 0.0;
            for (r, t) in (start..n).enumerate() {
                let pred: f64 =
                    design[r * cols..(r + 1) * cols].iter().zip(&beta).map(|(a, b)| a * b).sum();
                ss += (x[t] - pred).powi(2);
            }
            (phi, theta, ss / rows as f64)
        }
        None => {
            let (phi, sigma2) = yule_walker(x, p);
            (phi, vec![0.0; q], sigma2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simulate_arma(phi: &[f64], theta: &[f64], n: usize, seed: u64) -> Vec<f32> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut noise = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let u = (state.wrapping_mul(0x2545F4914F6CDD1D) >> 40) as f64 / (1u64 << 24) as f64;
            (u - 0.5) * 2.0
        };
        let p = phi.len();
        let q = theta.len();
        let mut x = vec![0.0f64; n + 300];
        let mut e = vec![0.0f64; n + 300];
        for t in p.max(q)..x.len() {
            e[t] = noise();
            let mut v = e[t];
            for (j, &c) in phi.iter().enumerate() {
                v += c * x[t - 1 - j];
            }
            for (j, &c) in theta.iter().enumerate() {
                v += c * e[t - 1 - j];
            }
            x[t] = v;
        }
        x.split_off(300).iter().map(|&v| v as f32).collect()
    }

    #[test]
    fn difference_and_undifference_roundtrip() {
        let x: Vec<f64> = (0..10).map(|i| (i * i) as f64).collect();
        let w = difference(&x, 1);
        assert_eq!(w.len(), 9);
        assert_eq!(w[0], 1.0);
        // Forecast the next true differences and integrate back.
        let truth: Vec<f64> = (10..13).map(|i| (i * i) as f64).collect();
        let fw: Vec<f64> = vec![19.0, 21.0, 23.0]; // x[10]-x[9] etc.
        let rebuilt = undifference(&x, &fw, 1);
        assert_eq!(rebuilt, truth);
    }

    #[test]
    fn second_order_undifference() {
        let x: Vec<f64> = (0..12).map(|i| (i * i) as f64).collect();
        // Second difference of i² is constant 2.
        let fw = vec![2.0, 2.0];
        let rebuilt = undifference(&x, &fw, 2);
        assert_eq!(rebuilt, vec![144.0, 169.0]);
    }

    #[test]
    fn fits_ar1_and_forecasts_geometric_decay() {
        let series = simulate_arma(&[0.8], &[], 4000, 1);
        let model = Arima::fit(&series, ArimaConfig { p: 1, d: 0, q: 0 });
        assert!((model.phi()[0] - 0.8).abs() < 0.06, "phi = {:?}", model.phi());
        let f = model.forecast(&series[3950..], 5);
        // Successive forecast ratios approach phi as the mean is ~0.
        assert_eq!(f.len(), 5);
        assert!(f.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn hannan_rissanen_recovers_arma11_signs() {
        let series = simulate_arma(&[0.6], &[0.4], 8000, 2);
        let model = Arima::fit(&series, ArimaConfig { p: 1, d: 0, q: 1 });
        assert!((model.phi()[0] - 0.6).abs() < 0.12, "phi = {:?}", model.phi());
        assert!((model.theta()[0] - 0.4).abs() < 0.15, "theta = {:?}", model.theta());
    }

    #[test]
    fn forecast_of_trending_series_continues_trend_with_d1() {
        // Linear trend: first difference is constant, so an ARIMA(1,1,0)
        // forecast should continue the line closely.
        let series: Vec<f32> = (0..200).map(|i| 2.0 * i as f32 + 5.0).collect();
        let model = Arima::fit(&series, ArimaConfig { p: 1, d: 1, q: 0 });
        let f = model.forecast(&series, 4);
        for (k, v) in f.iter().enumerate() {
            let expected = 2.0 * (200 + k) as f32 + 5.0;
            assert!((v - expected).abs() < 1.0, "step {k}: {v} vs {expected}");
        }
    }

    #[test]
    fn forecast_mean_reverts_for_stationary_series() {
        let series = simulate_arma(&[0.5], &[], 3000, 7);
        let mean: f32 = series.iter().sum::<f32>() / series.len() as f32;
        let model = Arima::fit(&series, ArimaConfig::paper_default());
        let f = model.forecast(&series[2950..], 50);
        // Far-horizon forecast approaches the series mean.
        assert!((f[49] - mean).abs() < 0.3, "f = {}, mean = {mean}", f[49]);
    }

    #[test]
    fn auto_order_selection_prefers_parsimonious_fit() {
        // AR(1) data: AIC should not pick a large (p, q) over small ones by
        // a wide margin, and the chosen model must forecast sanely.
        let series = simulate_arma(&[0.7], &[], 4000, 11);
        let model = Arima::fit_auto(&series, 0, 3, 2);
        let complexity = model.phi().len() + model.theta().len();
        assert!(complexity <= 4, "chose an overweight model: {complexity} coefficients");
        // Leading AR coefficient should be near the true 0.7 regardless of
        // the exact order picked.
        assert!((model.phi()[0] - 0.7).abs() < 0.15, "phi = {:?}", model.phi());
        let f = model.forecast(&series[3950..], 3);
        assert!(f.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn auto_order_beats_or_matches_white_noise_model() {
        // On ARMA(1,1) data the selected model's innovation variance should
        // be well below the raw series variance.
        let series = simulate_arma(&[0.6], &[0.3], 5000, 12);
        let model = Arima::fit_auto(&series, 0, 2, 2);
        let mean: f32 = series.iter().sum::<f32>() / series.len() as f32;
        let var: f64 =
            series.iter().map(|v| ((v - mean) as f64).powi(2)).sum::<f64>() / series.len() as f64;
        assert!(model.sigma2() < 0.8 * var, "sigma2 {} vs var {var}", model.sigma2());
    }

    #[test]
    fn beats_naive_on_ar_process() {
        // One-step ARIMA forecasts should beat last-value persistence on a
        // strongly autocorrelated but mean-reverting process.
        let series = simulate_arma(&[0.9], &[], 3000, 9);
        let model = Arima::fit(&series[..2000], ArimaConfig { p: 2, d: 0, q: 0 });
        let mut err_model = 0.0f32;
        let mut err_naive = 0.0f32;
        let mut count = 0;
        for t in (2000..2900).step_by(10) {
            let f = model.forecast(&series[t - 100..t], 5);
            err_model += (f[4] - series[t + 4]).abs();
            err_naive += (series[t - 1] - series[t + 4]).abs();
            count += 1;
        }
        assert!(
            err_model < err_naive,
            "model {} vs naive {} over {count} forecasts",
            err_model,
            err_naive
        );
    }
}
