//! Scheduled sampling (Bengio et al.), used by the paper's encoder–decoder
//! RNN training ("In addition, scheduled sampling is used", §VI-A).
//!
//! During decoding, the probability of feeding the *ground truth* (rather
//! than the model's own previous prediction) decays over training with an
//! inverse-sigmoid curve, exactly as in the DCRNN reference implementation:
//! `p(i) = τ / (τ + exp(i / τ))` where `i` counts global batches.

use enhancenet_tensor::TensorRng;

/// Inverse-sigmoid scheduled sampler.
#[derive(Debug, Clone)]
pub struct ScheduledSampler {
    tau: f32,
    step: u64,
}

impl ScheduledSampler {
    /// `tau` controls how slowly teacher forcing decays (DCRNN uses 2000
    /// for full-scale training; small values suit scaled-down runs).
    pub fn new(tau: f32) -> Self {
        assert!(tau > 0.0, "tau must be positive");
        Self { tau, step: 0 }
    }

    /// Probability of teacher forcing at the current step.
    pub fn teacher_forcing_prob(&self) -> f32 {
        self.tau / (self.tau + (self.step as f32 / self.tau).exp())
    }

    /// Advances the global batch counter.
    pub fn advance(&mut self) {
        self.step += 1;
    }

    /// Samples whether to use the ground truth this decode step.
    pub fn use_ground_truth(&self, rng: &mut TensorRng) -> bool {
        rng.bernoulli(self.teacher_forcing_prob())
    }

    /// Current global step.
    pub fn step_count(&self) -> u64 {
        self.step
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_near_certain_teacher_forcing() {
        let s = ScheduledSampler::new(2000.0);
        assert!(s.teacher_forcing_prob() > 0.99);
    }

    #[test]
    fn decays_monotonically() {
        let mut s = ScheduledSampler::new(10.0);
        let mut prev = s.teacher_forcing_prob();
        for _ in 0..100 {
            s.advance();
            let p = s.teacher_forcing_prob();
            assert!(p <= prev + 1e-9);
            prev = p;
        }
        assert!(prev < 0.01, "after many steps prob should be near 0, got {prev}");
    }

    #[test]
    fn half_probability_at_tau_ln_tau() {
        // p = 0.5 when exp(i/τ) = τ, i.e. i = τ·ln(τ).
        let tau = 50.0f32;
        let mut s = ScheduledSampler::new(tau);
        let target = (tau * tau.ln()) as u64;
        for _ in 0..target {
            s.advance();
        }
        assert!((s.teacher_forcing_prob() - 0.5).abs() < 0.02);
    }

    #[test]
    fn sampling_rate_tracks_probability() {
        let s = ScheduledSampler::new(2000.0);
        let mut rng = TensorRng::seed(1);
        let hits = (0..1000).filter(|_| s.use_ground_truth(&mut rng)).count();
        assert!(hits > 950);
    }
}
