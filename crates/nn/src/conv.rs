//! Dilated causal convolution support (Eq. 8 of the paper).
//!
//! A dilated causal convolution with kernel size `K` and dilation `d`
//! computes `y[t] = Σ_{j=0}^{K-1} W_j · x[t − d·j]`, looking only backwards
//! in time. [`causal_conv_taps`] extracts the `K` time-shifted views
//! (zero-padded at the front so the output keeps length `T`); the caller
//! applies a filter to each tap and sums — which lets the same helper serve
//! shared filters, per-entity DFGN filters, and gated WaveNet variants.

use enhancenet_autodiff::{Graph, Var};

/// Extracts the `k` causal taps of `x` along `time_axis` with dilation `d`.
///
/// `taps[0]` is the current timestamp (`x[t]`), `taps[j]` is `x[t − d·j]`
/// with zeros before the start of the series. Every tap has the shape of
/// `x`.
pub fn causal_conv_taps(g: &mut Graph, x: Var, time_axis: isize, k: usize, d: usize) -> Vec<Var> {
    assert!(k >= 1, "kernel size must be >= 1");
    assert!(d >= 1, "dilation must be >= 1");
    let rank = g.value(x).rank() as isize;
    let ax = if time_axis < 0 { time_axis + rank } else { time_axis };
    let t_len = g.value(x).shape()[ax as usize];
    let pad = d * (k - 1);
    if pad == 0 {
        return vec![x];
    }
    let padded = g.pad_front(x, ax, pad);
    (0..k)
        .map(|j| {
            let start = d * (k - 1 - j);
            g.slice_axis(padded, ax, start, start + t_len)
        })
        .collect()
}

/// The receptive field (in timestamps) of a stack of causal convolutions
/// with kernel `k` and the given per-layer dilations.
pub fn receptive_field(k: usize, dilations: &[usize]) -> usize {
    1 + dilations.iter().map(|d| d * (k - 1)).sum::<usize>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use enhancenet_autodiff::Graph;
    use enhancenet_tensor::Tensor;

    #[test]
    fn taps_shift_correctly_d1() {
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]));
        let taps = causal_conv_taps(&mut g, x, 0, 2, 1);
        assert_eq!(g.value(taps[0]).data(), &[1.0, 2.0, 3.0, 4.0]); // current
        assert_eq!(g.value(taps[1]).data(), &[0.0, 1.0, 2.0, 3.0]); // t-1
    }

    #[test]
    fn taps_shift_correctly_d2() {
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0], &[5]));
        let taps = causal_conv_taps(&mut g, x, 0, 2, 2);
        assert_eq!(g.value(taps[0]).data(), &[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(g.value(taps[1]).data(), &[0.0, 0.0, 1.0, 2.0, 3.0]); // t-2
    }

    #[test]
    fn k1_is_identity() {
        let mut g = Graph::new();
        let x = g.constant(Tensor::arange(3));
        let taps = causal_conv_taps(&mut g, x, 0, 1, 4);
        assert_eq!(taps.len(), 1);
        assert_eq!(g.value(taps[0]).data(), g.value(x).data());
    }

    #[test]
    fn k3_produces_three_taps() {
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_vec(vec![10.0, 20.0, 30.0], &[3]));
        let taps = causal_conv_taps(&mut g, x, 0, 3, 1);
        assert_eq!(taps.len(), 3);
        assert_eq!(g.value(taps[2]).data(), &[0.0, 0.0, 10.0]); // t-2
    }

    #[test]
    fn works_on_inner_time_axis() {
        // [B=1, N=2, T=3, C=1]
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[1, 2, 3, 1]));
        let taps = causal_conv_taps(&mut g, x, 2, 2, 1);
        // entity 0: [1,2,3] -> shifted [0,1,2]; entity 1: [4,5,6] -> [0,4,5]
        assert_eq!(g.value(taps[1]).data(), &[0.0, 1.0, 2.0, 0.0, 4.0, 5.0]);
    }

    #[test]
    fn convolution_via_taps_matches_manual() {
        // y[t] = 2*x[t] + 1*x[t-1]
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]));
        let taps = causal_conv_taps(&mut g, x, 0, 2, 1);
        let cur = g.mul_scalar(taps[0], 2.0);
        let prev = g.mul_scalar(taps[1], 1.0);
        let y = g.add(cur, prev);
        assert_eq!(g.value(y).data(), &[2.0, 5.0, 8.0]);
    }

    #[test]
    fn gradient_flows_through_taps() {
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]));
        let taps = causal_conv_taps(&mut g, x, 0, 2, 1);
        let y = g.add(taps[0], taps[1]);
        let loss = g.sum_all(y);
        g.backward(loss);
        // x[0] and x[1] feed two outputs, x[2] feeds one (x[2] only appears
        // as the "current" tap of t=2).
        assert_eq!(g.grad(x).unwrap().data(), &[2.0, 2.0, 1.0]);
    }

    #[test]
    fn receptive_field_wavenet_pattern() {
        // Paper config: K=2, dilations 1,2,1,2,1,2,1,2 -> RF = 1 + 12 = 13,
        // enough to cover the H=12 input window.
        assert_eq!(receptive_field(2, &[1, 2, 1, 2, 1, 2, 1, 2]), 13);
        assert_eq!(receptive_field(2, &[1, 2, 4]), 8);
        assert_eq!(receptive_field(1, &[5, 5]), 1);
    }
}
