//! Fully-connected layer with optional bias.

use enhancenet_autodiff::{Graph, ParamId, ParamStore, Var};
use enhancenet_tensor::TensorRng;

/// A linear map `y = x · W + b` for 2-D or batched 3-D inputs.
///
/// Weights are Xavier-initialized at construction; parameters are owned by
/// the caller's [`ParamStore`].
pub struct Linear {
    w: ParamId,
    b: Option<ParamId>,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Registers a `[in_dim, out_dim]` weight (and a zero bias unless
    /// `bias` is false) under `name.{w,b}`.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut TensorRng,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        bias: bool,
    ) -> Self {
        let w = store.add(format!("{name}.w"), rng.xavier(&[in_dim, out_dim], in_dim, out_dim));
        let b = bias
            .then(|| store.add(format!("{name}.b"), enhancenet_tensor::Tensor::zeros(&[out_dim])));
        Self { w, b, in_dim, out_dim }
    }

    /// Applies the layer. `x` may be `[M, in]` or `[B, M, in]`; the output
    /// keeps the leading shape with the trailing axis mapped to `out`.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: Var) -> Var {
        let w = g.param(store, self.w);
        let shape = g.value(x).shape().to_vec();
        assert_eq!(
            *shape.last().expect("linear input must have rank >= 1"),
            self.in_dim,
            "linear expects trailing dim {}, got {:?}",
            self.in_dim,
            shape
        );
        // The shared-filter kernel folds any leading axes into one GEMM, so
        // higher-rank inputs no longer need flatten/restore reshape nodes.
        let y = match shape.len() {
            2 => g.matmul(x, w),
            _ => g.matmul_broadcast_right(x, w),
        };
        match self.b {
            Some(b) => {
                let bv = g.param(store, b);
                g.add(y, bv)
            }
            None => y,
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// The weight parameter id (exposed for regularizers / reporting).
    pub fn weight_id(&self) -> ParamId {
        self.w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enhancenet_tensor::Tensor;

    #[test]
    fn forward_2d_shape_and_bias() {
        let mut store = ParamStore::new();
        let mut rng = TensorRng::seed(1);
        let lin = Linear::new(&mut store, &mut rng, "l", 3, 2, true);
        // Overwrite with known values.
        *store.value_mut(lin.w) =
            Tensor::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]]);
        *store.value_mut(lin.b.unwrap()) = Tensor::from_vec(vec![10.0, 20.0], &[2]);
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]));
        let y = lin.forward(&mut g, &store, x);
        assert_eq!(g.value(y).data(), &[14.0, 25.0]);
    }

    #[test]
    fn forward_3d_batches() {
        let mut store = ParamStore::new();
        let mut rng = TensorRng::seed(2);
        let lin = Linear::new(&mut store, &mut rng, "l", 2, 4, false);
        let mut g = Graph::new();
        let x = g.constant(Tensor::ones(&[3, 5, 2]));
        let y = lin.forward(&mut g, &store, x);
        assert_eq!(g.value(y).shape(), &[3, 5, 4]);
    }

    #[test]
    fn forward_4d_flattens_leading() {
        let mut store = ParamStore::new();
        let mut rng = TensorRng::seed(3);
        let lin = Linear::new(&mut store, &mut rng, "l", 2, 3, true);
        let mut g = Graph::new();
        let x = g.constant(Tensor::ones(&[2, 3, 4, 2]));
        let y = lin.forward(&mut g, &store, x);
        assert_eq!(g.value(y).shape(), &[2, 3, 4, 3]);
    }

    #[test]
    fn gradients_flow_to_weight_and_bias() {
        let mut store = ParamStore::new();
        let mut rng = TensorRng::seed(4);
        let lin = Linear::new(&mut store, &mut rng, "l", 2, 2, true);
        let mut g = Graph::new();
        let x = g.constant(Tensor::ones(&[3, 2]));
        let y = lin.forward(&mut g, &store, x);
        let loss = g.sum_all(y);
        g.backward(loss);
        g.write_grads(&mut store);
        assert!(store.grad(lin.w).norm() > 0.0);
        assert!(store.grad(lin.b.unwrap()).norm() > 0.0);
    }

    #[test]
    #[should_panic(expected = "trailing dim")]
    fn rejects_wrong_input_width() {
        let mut store = ParamStore::new();
        let mut rng = TensorRng::seed(5);
        let lin = Linear::new(&mut store, &mut rng, "l", 3, 2, false);
        let mut g = Graph::new();
        let x = g.constant(Tensor::ones(&[1, 4]));
        lin.forward(&mut g, &store, x);
    }
}
