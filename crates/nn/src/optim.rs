//! Optimizers (SGD with momentum, Adam), global-norm gradient clipping, and
//! the learning-rate schedules the paper trains with (§VI-A "Model
//! Configurations": RNNs start at 0.01 and decay ×0.1 every 10 epochs from
//! epoch 20; TCNs train at a fixed 0.001).

use enhancenet_autodiff::ParamStore;
use enhancenet_tensor::Tensor;

/// Common optimizer interface: one `step` consumes the accumulated
/// gradients in the store and updates values in place.
pub trait Optimizer {
    /// Applies one update with the given learning rate.
    fn step(&mut self, store: &mut ParamStore, lr: f32);
}

/// Stochastic gradient descent with optional classical momentum.
pub struct Sgd {
    momentum: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Plain SGD (`momentum = 0`) or SGD with momentum.
    pub fn new(momentum: f32) -> Self {
        Self { momentum, velocity: Vec::new() }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, store: &mut ParamStore, lr: f32) {
        let momentum = self.momentum;
        let velocity = &mut self.velocity;
        store.for_each_mut(|i, value, grad| {
            if momentum == 0.0 {
                value.axpy(-lr, grad);
            } else {
                if velocity.len() <= i {
                    velocity.resize_with(i + 1, || Tensor::zeros(grad.shape()));
                }
                if velocity[i].shape() != grad.shape() {
                    velocity[i] = Tensor::zeros(grad.shape());
                }
                let v = &mut velocity[i];
                v.map_inplace(|x| x * momentum);
                v.add_assign_t(grad);
                value.axpy(-lr, v);
            }
        });
    }
}

/// Adam (Kingma & Ba) with bias correction — the optimizer used by DCRNN /
/// Graph WaveNet reference implementations and by our trainer.
pub struct Adam {
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: i32,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Adam with the standard defaults (β₁=0.9, β₂=0.999, ε=1e-8).
    pub fn new() -> Self {
        Self::with_betas(0.9, 0.999, 1e-8)
    }

    /// Adam with explicit hyper-parameters.
    pub fn with_betas(beta1: f32, beta2: f32, eps: f32) -> Self {
        Self { beta1, beta2, eps, t: 0, m: Vec::new(), v: Vec::new() }
    }
}

impl Default for Adam {
    fn default() -> Self {
        Self::new()
    }
}

impl Optimizer for Adam {
    fn step(&mut self, store: &mut ParamStore, lr: f32) {
        self.t += 1;
        let (b1, b2, eps, t) = (self.beta1, self.beta2, self.eps, self.t);
        let bc1 = 1.0 - b1.powi(t);
        let bc2 = 1.0 - b2.powi(t);
        let (ms, vs) = (&mut self.m, &mut self.v);
        store.for_each_mut(|i, value, grad| {
            if ms.len() <= i {
                ms.resize_with(i + 1, || Tensor::zeros(grad.shape()));
                vs.resize_with(i + 1, || Tensor::zeros(grad.shape()));
            }
            if ms[i].shape() != grad.shape() {
                ms[i] = Tensor::zeros(grad.shape());
                vs[i] = Tensor::zeros(grad.shape());
            }
            let m = &mut ms[i];
            let v = &mut vs[i];
            for ((mv, vv), (g, x)) in m
                .data_mut()
                .iter_mut()
                .zip(v.data_mut())
                .zip(grad.data().iter().zip(value.data_mut()))
            {
                *mv = b1 * *mv + (1.0 - b1) * g;
                *vv = b2 * *vv + (1.0 - b2) * g * g;
                let mhat = *mv / bc1;
                let vhat = *vv / bc2;
                *x -= lr * mhat / (vhat.sqrt() + eps);
            }
        });
    }
}

/// Clips the global gradient norm to `max_norm`; returns the pre-clip norm.
/// No-op when the norm is already within bounds.
pub fn clip_grad_norm(store: &mut ParamStore, max_norm: f32) -> f32 {
    let norm = store.grad_norm();
    if norm > max_norm && norm > 0.0 {
        store.scale_grads(max_norm / norm);
    }
    norm
}

/// Learning-rate schedules used in the paper's training setups.
#[derive(Debug, Clone)]
pub enum LrSchedule {
    /// Fixed rate (TCN models: 0.001).
    Constant(f32),
    /// `base` until `start_epoch`, then ×`gamma` every `every` epochs
    /// (RNN models: base 0.01, gamma 0.1, start 20, every 10).
    StepDecay {
        /// Initial learning rate.
        base: f32,
        /// Multiplicative decay factor.
        gamma: f32,
        /// First epoch (0-indexed) at which decay applies.
        start_epoch: usize,
        /// Decay period in epochs.
        every: usize,
    },
}

impl LrSchedule {
    /// The paper's RNN schedule: 0.01, ×0.1 every 10 epochs from epoch 20.
    pub fn paper_rnn() -> Self {
        LrSchedule::StepDecay { base: 0.01, gamma: 0.1, start_epoch: 20, every: 10 }
    }

    /// The paper's TCN schedule: fixed 0.001.
    pub fn paper_tcn() -> Self {
        LrSchedule::Constant(0.001)
    }

    /// Learning rate at a (0-indexed) epoch.
    pub fn lr_at(&self, epoch: usize) -> f32 {
        match *self {
            LrSchedule::Constant(lr) => lr,
            LrSchedule::StepDecay { base, gamma, start_epoch, every } => {
                if epoch < start_epoch {
                    base
                } else {
                    let steps = (epoch - start_epoch) / every + 1;
                    base * gamma.powi(steps as i32)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enhancenet_autodiff::Graph;

    /// Minimizes (w - 3)^2 and returns the final w.
    fn optimize(opt: &mut dyn Optimizer, lr: f32, steps: usize) -> f32 {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(vec![0.0], &[1]));
        for _ in 0..steps {
            store.zero_grad();
            let mut g = Graph::new();
            let wv = g.param(&store, w);
            let c = g.constant(Tensor::from_vec(vec![3.0], &[1]));
            let d = g.sub(wv, c);
            let sq = g.square(d);
            let loss = g.sum_all(sq);
            g.backward(loss);
            g.write_grads(&mut store);
            opt.step(&mut store, lr);
        }
        store.value(w).data()[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let w = optimize(&mut Sgd::new(0.0), 0.1, 100);
        assert!((w - 3.0).abs() < 1e-3, "w = {w}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let w = optimize(&mut Sgd::new(0.9), 0.02, 200);
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let w = optimize(&mut Adam::new(), 0.1, 300);
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        // With bias correction the first Adam step ≈ lr regardless of grad
        // magnitude.
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(vec![0.0], &[1]));
        store.accumulate_grad(w, &Tensor::from_vec(vec![123.0], &[1]));
        let mut adam = Adam::new();
        adam.step(&mut store, 0.5);
        assert!((store.value(w).data()[0] + 0.5).abs() < 1e-3);
    }

    #[test]
    fn clip_grad_norm_scales_down() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::zeros(&[2]));
        store.accumulate_grad(w, &Tensor::from_vec(vec![3.0, 4.0], &[2]));
        let pre = clip_grad_norm(&mut store, 1.0);
        assert!((pre - 5.0).abs() < 1e-5);
        assert!((store.grad_norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn clip_grad_norm_noop_when_small() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::zeros(&[2]));
        store.accumulate_grad(w, &Tensor::from_vec(vec![0.3, 0.4], &[2]));
        clip_grad_norm(&mut store, 1.0);
        assert!((store.grad_norm() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn paper_rnn_schedule_decays() {
        let s = LrSchedule::paper_rnn();
        assert!((s.lr_at(0) - 0.01).abs() < 1e-9);
        assert!((s.lr_at(19) - 0.01).abs() < 1e-9);
        assert!((s.lr_at(20) - 0.001).abs() < 1e-9);
        assert!((s.lr_at(29) - 0.001).abs() < 1e-9);
        assert!((s.lr_at(30) - 0.0001).abs() < 1e-9);
    }

    #[test]
    fn paper_tcn_schedule_constant() {
        let s = LrSchedule::paper_tcn();
        assert_eq!(s.lr_at(0), s.lr_at(99));
        assert!((s.lr_at(0) - 0.001).abs() < 1e-9);
    }
}
