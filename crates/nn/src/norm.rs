//! Layer normalization over the trailing feature axis, with learnable gain
//! and bias — used by STGCN's ST-Conv blocks and available to any host.

use enhancenet_autodiff::{Graph, ParamId, ParamStore, Var};
use enhancenet_tensor::Tensor;

/// LayerNorm: `y = γ ⊙ (x − μ) / sqrt(σ² + ε) + β`, statistics computed
/// along the last axis of the input.
pub struct LayerNorm {
    gamma: ParamId,
    beta: ParamId,
    dim: usize,
    eps: f32,
}

impl LayerNorm {
    /// A layer norm over a trailing axis of width `dim`.
    pub fn new(store: &mut ParamStore, name: &str, dim: usize) -> Self {
        Self {
            gamma: store.add(format!("{name}.gamma"), Tensor::ones(&[dim])),
            beta: store.add(format!("{name}.beta"), Tensor::zeros(&[dim])),
            dim,
            eps: 1e-5,
        }
    }

    /// Applies the normalization. The input's last axis must equal `dim`.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: Var) -> Var {
        let shape = g.value(x).shape().to_vec();
        assert_eq!(
            *shape.last().expect("layernorm input must have rank >= 1"),
            self.dim,
            "layernorm expects trailing dim {}, got {:?}",
            self.dim,
            shape
        );
        let rank = shape.len() as isize;
        let mean = g.mean_axis(x, rank - 1);
        let mean_keep = g.reshape(mean, &keepdim(&shape));
        let centered = g.sub(x, mean_keep);
        let sq = g.square(centered);
        let var = g.mean_axis(sq, rank - 1);
        let var_keep = g.reshape(var, &keepdim(&shape));
        let var_eps = g.add_scalar(var_keep, self.eps);
        let std = g.sqrt(var_eps);
        let normed = g.div(centered, std);
        let gamma = g.param(store, self.gamma);
        let beta = g.param(store, self.beta);
        let scaled = g.mul(normed, gamma);
        g.add(scaled, beta)
    }

    /// Feature width.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

fn keepdim(shape: &[usize]) -> Vec<usize> {
    let mut s = shape.to_vec();
    *s.last_mut().expect("rank >= 1") = 1;
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use enhancenet_tensor::TensorRng;

    #[test]
    fn output_rows_are_standardized_at_identity_params() {
        let mut store = ParamStore::new();
        let ln = LayerNorm::new(&mut store, "ln", 8);
        let mut g = Graph::new();
        let x = g.constant(TensorRng::seed(1).normal(&[4, 8], 3.0, 2.0));
        let y = ln.forward(&mut g, &store, x);
        let out = g.value(y);
        for r in 0..4 {
            let row: Vec<f32> = (0..8).map(|c| out.at(&[r, c])).collect();
            let mean: f32 = row.iter().sum::<f32>() / 8.0;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-4, "row {r} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "row {r} var {var}");
        }
    }

    #[test]
    fn gamma_beta_shift_and_scale() {
        let mut store = ParamStore::new();
        let ln = LayerNorm::new(&mut store, "ln", 4);
        *store.value_mut(ln.gamma) = Tensor::full(&[4], 2.0);
        *store.value_mut(ln.beta) = Tensor::full(&[4], 10.0);
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 4]));
        let y = ln.forward(&mut g, &store, x);
        let out = g.value(y);
        let mean: f32 = (0..4).map(|c| out.at(&[0, c])).sum::<f32>() / 4.0;
        assert!((mean - 10.0).abs() < 1e-4);
    }

    #[test]
    fn works_on_higher_rank_inputs() {
        let mut store = ParamStore::new();
        let ln = LayerNorm::new(&mut store, "ln", 6);
        let mut g = Graph::new();
        let x = g.constant(TensorRng::seed(2).normal(&[2, 3, 4, 6], -1.0, 5.0));
        let y = ln.forward(&mut g, &store, x);
        assert_eq!(g.value(y).shape(), &[2, 3, 4, 6]);
        assert!(!g.value(y).has_non_finite());
    }

    #[test]
    fn constant_rows_map_to_beta() {
        // Zero variance must not blow up thanks to ε.
        let mut store = ParamStore::new();
        let ln = LayerNorm::new(&mut store, "ln", 3);
        let mut g = Graph::new();
        let x = g.constant(Tensor::full(&[2, 3], 7.0));
        let y = ln.forward(&mut g, &store, x);
        assert!(g.value(y).allclose(&Tensor::zeros(&[2, 3]), 1e-3));
    }

    #[test]
    fn gradients_flow_to_gain_bias_and_input() {
        let mut store = ParamStore::new();
        let ln = LayerNorm::new(&mut store, "ln", 4);
        let mut g = Graph::new();
        let x = g.constant(TensorRng::seed(3).normal(&[3, 4], 0.0, 1.0));
        let y = ln.forward(&mut g, &store, x);
        let sq = g.square(y);
        let loss = g.sum_all(sq);
        g.backward(loss);
        g.write_grads(&mut store);
        assert!(store.grad(ln.gamma).norm() > 0.0);
        assert!(g.grad(x).unwrap().norm() > 0.0);
        // Beta's gradient for sum(y²) is 2Σy = 0 for standardized rows with
        // γ=1, β=0 — perturb beta so it becomes nonzero.
        *store.value_mut(ln.beta) = Tensor::full(&[4], 0.5);
        let mut g2 = Graph::new();
        let x2 = g2.constant(TensorRng::seed(3).normal(&[3, 4], 0.0, 1.0));
        let y2 = ln.forward(&mut g2, &store, x2);
        let sq2 = g2.square(y2);
        let loss2 = g2.sum_all(sq2);
        g2.backward(loss2);
        store.zero_grad();
        g2.write_grads(&mut store);
        assert!(store.grad(ln.beta).norm() > 0.0);
    }

    #[test]
    fn numeric_gradient_check() {
        let mut store = ParamStore::new();
        let ln = LayerNorm::new(&mut store, "ln", 3);
        let x = TensorRng::seed(4).normal(&[2, 3], 0.0, 1.0);
        let r = enhancenet_autodiff::check::check_gradient(
            |g, v| {
                let y = ln.forward(g, &store, v);
                let w = g.constant(Tensor::from_vec(vec![1.0, -2.0, 0.5, 3.0, 1.0, -1.0], &[2, 3]));
                let wy = g.mul(y, w);
                g.sum_all(wy)
            },
            &x,
            1e-3,
        );
        assert!(r.passes(5e-2), "{r:?}");
    }
}
