//! Multi-layer perceptron — the architecture used for the DFGN itself
//! ("a simple feed-forward neural network with two hidden layers", §IV-C).

use crate::linear::Linear;
use enhancenet_autodiff::{Graph, ParamStore, Var};
use enhancenet_tensor::TensorRng;

/// Activation applied between MLP layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

impl Activation {
    fn apply(self, g: &mut Graph, x: Var) -> Var {
        match self {
            Activation::Relu => g.relu(x),
            Activation::Tanh => g.tanh(x),
            Activation::Sigmoid => g.sigmoid(x),
        }
    }
}

/// A feed-forward network: `dims[0] → dims[1] → … → dims.last()`, with the
/// chosen activation between layers and a linear final layer.
pub struct Mlp {
    layers: Vec<Linear>,
    activation: Activation,
}

impl Mlp {
    /// Builds an MLP through the widths in `dims` (at least input and
    /// output). Layer `i` is named `name.fc{i}`.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut TensorRng,
        name: &str,
        dims: &[usize],
        activation: Activation,
    ) -> Self {
        assert!(dims.len() >= 2, "MLP needs at least input and output widths, got {dims:?}");
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(store, rng, &format!("{name}.fc{i}"), w[0], w[1], true))
            .collect();
        Self { layers, activation }
    }

    /// Forward pass; activation after every layer except the last.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: Var) -> Var {
        let last = self.layers.len() - 1;
        let mut h = x;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(g, store, h);
            if i != last {
                h = self.activation.apply(g, h);
            }
        }
        h
    }

    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Output width of the final layer.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("MLP has at least one layer").out_dim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enhancenet_tensor::Tensor;

    #[test]
    fn shapes_flow_through() {
        let mut store = ParamStore::new();
        let mut rng = TensorRng::seed(1);
        let mlp = Mlp::new(&mut store, &mut rng, "m", &[16, 16, 4, 32], Activation::Relu);
        assert_eq!(mlp.depth(), 3);
        assert_eq!(mlp.out_dim(), 32);
        let mut g = Graph::new();
        let x = g.constant(Tensor::ones(&[5, 16]));
        let y = mlp.forward(&mut g, &store, x);
        assert_eq!(g.value(y).shape(), &[5, 32]);
    }

    #[test]
    fn parameter_count_matches_formula() {
        // The paper's DFGN parameter analysis (§IV-C): m·n1 + n1·n2 + n2·o
        // weights plus n1 + n2 + o biases.
        let (m, n1, n2, o) = (16, 16, 4, 24);
        let mut store = ParamStore::new();
        let mut rng = TensorRng::seed(2);
        let _ = Mlp::new(&mut store, &mut rng, "dfgn", &[m, n1, n2, o], Activation::Relu);
        let expected = m * n1 + n1 * n2 + n2 * o + n1 + n2 + o;
        assert_eq!(store.num_scalars(), expected);
    }

    #[test]
    fn gradients_reach_all_layers() {
        let mut store = ParamStore::new();
        let mut rng = TensorRng::seed(3);
        let mlp = Mlp::new(&mut store, &mut rng, "m", &[4, 8, 2], Activation::Tanh);
        let mut g = Graph::new();
        let x = g.constant(Tensor::ones(&[3, 4]));
        let y = mlp.forward(&mut g, &store, x);
        let loss = g.sum_all(y);
        g.backward(loss);
        g.write_grads(&mut store);
        for id in store.ids() {
            // Biases of the last layer always receive gradient; weights do
            // unless an activation zeroed everything — tanh won't.
            assert!(
                store.grad(id).norm() > 0.0 || store.name(id).contains("fc1.b"),
                "no grad for {}",
                store.name(id)
            );
        }
    }

    #[test]
    fn deep_relu_mlp_is_nonlinear() {
        let mut store = ParamStore::new();
        let mut rng = TensorRng::seed(4);
        let mlp = Mlp::new(&mut store, &mut rng, "m", &[1, 8, 1], Activation::Relu);
        let eval = |store: &ParamStore, v: f32| {
            let mut g = Graph::new();
            let x = g.constant(Tensor::from_vec(vec![v], &[1, 1]));
            let y = mlp.forward(&mut g, store, x);
            g.value(y).item()
        };
        let (a, b, c) = (eval(&store, -1.0), eval(&store, 0.0), eval(&store, 1.0));
        // Nonlinearity: midpoint differs from average of endpoints.
        assert!((b - 0.5 * (a + c)).abs() > 1e-6);
    }
}
