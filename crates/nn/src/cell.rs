//! Recurrent-cell gate algebra, written once and reused by every model
//! flavour.
//!
//! The paper's Eq. 3–6 define a GRU in terms of a *fundamental operation* —
//! multiplying an input (or hidden state) by a filter. The host models
//! differ only in what that operation is:
//!
//! * RNN — shared matmul,
//! * D-RNN — per-entity matmul with DFGN-generated filters (Eq. 10),
//! * GRNN — graph convolution `W ⋆_G x` (Section V-C1),
//! * DA-GRNN — graph convolution over the DAMGN adjacency (Eq. 14).
//!
//! [`gru_step`] and [`lstm_step`] therefore take closures for the x-side and
//! h-side transforms, indexed by which [`Gate`] is being computed.

use enhancenet_autodiff::{Graph, Var};

/// Which gate a transform is computing; appliers use this to select the
/// corresponding filter (e.g. `W_r` vs `W_u` vs `W_h`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gate {
    /// Reset gate `r_t` (Eq. 3).
    Reset,
    /// Update gate `u_t` (Eq. 4).
    Update,
    /// Candidate state `ĥ_t` (Eq. 5) — also the LSTM cell candidate.
    Candidate,
    /// Output gate (LSTM only).
    Output,
}

/// One GRU step (Eq. 3–6):
///
/// ```text
/// r_t = σ(Wr·x_t + Ur·h_{t-1} [+ br])
/// u_t = σ(Wu·x_t + Uu·h_{t-1} [+ bu])
/// ĥ_t = tanh(Wh·x_t + Uh·(r_t ⊙ h_{t-1}) [+ bh])
/// h_t = u_t ⊙ h_{t-1} + (1 − u_t) ⊙ ĥ_t
/// ```
///
/// `apply_x(g, x, gate)` must return the x-side transform for `gate`, and
/// `apply_h` the h-side transform. `bias(g, gate)` may return `None` for an
/// unbiased cell. All transforms must produce the hidden shape.
pub fn gru_step(
    g: &mut Graph,
    x: Var,
    h_prev: Var,
    mut apply_x: impl FnMut(&mut Graph, Var, Gate) -> Var,
    mut apply_h: impl FnMut(&mut Graph, Var, Gate) -> Var,
    mut bias: impl FnMut(&mut Graph, Gate) -> Option<Var>,
) -> Var {
    let mut pre_gate = |g: &mut Graph, xin: Var, hin: Var, gate: Gate| {
        let xa = apply_x(g, xin, gate);
        let hb = apply_h(g, hin, gate);
        let mut pre = g.add(xa, hb);
        if let Some(b) = bias(g, gate) {
            pre = g.add(pre, b);
        }
        pre
    };

    let r_pre = pre_gate(g, x, h_prev, Gate::Reset);
    let r = g.sigmoid(r_pre);
    let u_pre = pre_gate(g, x, h_prev, Gate::Update);
    let u = g.sigmoid(u_pre);

    let rh = g.mul(r, h_prev);
    let c_pre = pre_gate(g, x, rh, Gate::Candidate);
    let c = g.tanh(c_pre);

    // h = u ⊙ h_prev + (1 − u) ⊙ c  =  c + u ⊙ (h_prev − c)
    let diff = g.sub(h_prev, c);
    let scaled = g.mul(u, diff);
    g.add(c, scaled)
}

/// One LSTM step (Hochreiter & Schmidhuber, the paper's LSTM baseline):
///
/// ```text
/// i = σ(Wi·x + Ui·h [+ bi])        (Gate::Update slot)
/// f = σ(Wf·x + Uf·h [+ bf])        (Gate::Reset slot)
/// o = σ(Wo·x + Uo·h [+ bo])        (Gate::Output slot)
/// ĉ = tanh(Wc·x + Uc·h [+ bc])     (Gate::Candidate slot)
/// c' = f ⊙ c + i ⊙ ĉ
/// h' = o ⊙ tanh(c')
/// ```
///
/// Returns `(h', c')`.
pub fn lstm_step(
    g: &mut Graph,
    x: Var,
    h_prev: Var,
    c_prev: Var,
    mut apply_x: impl FnMut(&mut Graph, Var, Gate) -> Var,
    mut apply_h: impl FnMut(&mut Graph, Var, Gate) -> Var,
    mut bias: impl FnMut(&mut Graph, Gate) -> Option<Var>,
) -> (Var, Var) {
    let mut pre_gate = |g: &mut Graph, gate: Gate| {
        let xa = apply_x(g, x, gate);
        let hb = apply_h(g, h_prev, gate);
        let mut pre = g.add(xa, hb);
        if let Some(b) = bias(g, gate) {
            pre = g.add(pre, b);
        }
        pre
    };
    let f_pre = pre_gate(g, Gate::Reset);
    let i_pre = pre_gate(g, Gate::Update);
    let o_pre = pre_gate(g, Gate::Output);
    let c_pre = pre_gate(g, Gate::Candidate);

    let f = g.sigmoid(f_pre);
    let i = g.sigmoid(i_pre);
    let o = g.sigmoid(o_pre);
    let chat = g.tanh(c_pre);

    let keep = g.mul(f, c_prev);
    let write = g.mul(i, chat);
    let c_new = g.add(keep, write);
    let ct = g.tanh(c_new);
    let h_new = g.mul(o, ct);
    (h_new, c_new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use enhancenet_autodiff::Graph;
    use enhancenet_tensor::Tensor;

    /// Reference GRU computed with plain tensor math for a 1-dim state,
    /// scalar weights wx (x side) and uh (h side), no bias.
    fn reference_gru(x: f32, h: f32, wx: f32, uh: f32) -> f32 {
        let sig = |v: f32| 1.0 / (1.0 + (-v).exp());
        let r = sig(wx * x + uh * h);
        let u = sig(wx * x + uh * h);
        let c = (wx * x + uh * (r * h)).tanh();
        u * h + (1.0 - u) * c
    }

    #[test]
    fn gru_step_matches_reference_scalar() {
        let (x_val, h_val, wx, uh) = (0.7f32, -0.3f32, 0.5f32, 1.25f32);
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_vec(vec![x_val], &[1]));
        let h = g.constant(Tensor::from_vec(vec![h_val], &[1]));
        let out = gru_step(
            &mut g,
            x,
            h,
            |g, v, _| g.mul_scalar(v, wx),
            |g, v, _| g.mul_scalar(v, uh),
            |_, _| None,
        );
        let expected = reference_gru(x_val, h_val, wx, uh);
        assert!((g.value(out).item() - expected).abs() < 1e-5);
    }

    #[test]
    fn gru_zero_update_gate_keeps_candidate() {
        // With apply_* returning strongly negative update-gate pre-activation
        // the gate closes and h ≈ candidate.
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_vec(vec![2.0], &[1]));
        let h = g.constant(Tensor::from_vec(vec![5.0], &[1]));
        let out = gru_step(
            &mut g,
            x,
            h,
            |g, v, gate| match gate {
                Gate::Update => g.mul_scalar(v, -100.0), // u → 0
                _ => g.mul_scalar(v, 0.0),
            },
            |g, v, _| g.mul_scalar(v, 0.0),
            |_, _| None,
        );
        // candidate = tanh(0) = 0, so h_new ≈ 0 regardless of h_prev = 5.
        assert!(g.value(out).item().abs() < 1e-4);
    }

    #[test]
    fn gru_full_update_gate_keeps_history() {
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_vec(vec![2.0], &[1]));
        let h = g.constant(Tensor::from_vec(vec![5.0], &[1]));
        let out = gru_step(
            &mut g,
            x,
            h,
            |g, v, gate| match gate {
                Gate::Update => g.mul_scalar(v, 100.0), // u → 1
                _ => g.mul_scalar(v, 0.0),
            },
            |g, v, _| g.mul_scalar(v, 0.0),
            |_, _| None,
        );
        assert!((g.value(out).item() - 5.0).abs() < 1e-4);
    }

    #[test]
    fn gru_output_bounded_by_tanh_and_history() {
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_vec(vec![10.0, -10.0], &[1, 2]));
        let h = g.constant(Tensor::from_vec(vec![0.5, -0.5], &[1, 2]));
        let out = gru_step(
            &mut g,
            x,
            h,
            |g, v, _| g.mul_scalar(v, 1.0),
            |g, v, _| g.mul_scalar(v, 1.0),
            |_, _| None,
        );
        // New state is a convex combination of h_prev (|.|<=0.5) and tanh
        // candidate (|.|<=1), so bounded by 1.
        assert!(g.value(out).data().iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    fn lstm_step_gates_behave() {
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_vec(vec![1.0], &[1]));
        let h = g.constant(Tensor::from_vec(vec![0.2], &[1]));
        let c = g.constant(Tensor::from_vec(vec![0.8], &[1]));
        // Forget gate forced open, input gate forced shut: c' = c.
        let (h2, c2) = lstm_step(
            &mut g,
            x,
            h,
            c,
            |g, v, gate| match gate {
                Gate::Reset => g.mul_scalar(v, 100.0),   // f → 1
                Gate::Update => g.mul_scalar(v, -100.0), // i → 0
                Gate::Output => g.mul_scalar(v, 100.0),  // o → 1
                Gate::Candidate => g.mul_scalar(v, 0.0),
            },
            |g, v, _| g.mul_scalar(v, 0.0),
            |_, _| None,
        );
        assert!((g.value(c2).item() - 0.8).abs() < 1e-4);
        assert!((g.value(h2).item() - 0.8f32.tanh()).abs() < 1e-4);
    }

    #[test]
    fn gradients_flow_through_gru_chain() {
        // Unroll 3 steps and confirm the input at t=0 still receives grad.
        let mut g = Graph::new();
        let x0 = g.constant(Tensor::from_vec(vec![0.5], &[1]));
        let mut h = g.constant(Tensor::zeros(&[1]));
        for _ in 0..3 {
            h = gru_step(
                &mut g,
                x0,
                h,
                |g, v, _| g.mul_scalar(v, 0.8),
                |g, v, _| g.mul_scalar(v, 0.9),
                |_, _| None,
            );
        }
        let loss = g.sum_all(h);
        g.backward(loss);
        assert!(g.grad(x0).unwrap().norm() > 0.0);
    }
}
