//! Inverted dropout.
//!
//! During training each element is zeroed with probability `p` and the
//! survivors are scaled by `1/(1−p)`, so the expected activation is
//! unchanged and evaluation needs no rescaling.

use enhancenet_autodiff::{Graph, Var};
use enhancenet_tensor::{Tensor, TensorRng};

/// Dropout layer. Stateless apart from the rate; the mask is sampled from
/// the RNG passed at application time so training remains reproducible.
#[derive(Debug, Clone, Copy)]
pub struct Dropout {
    p: f32,
}

impl Dropout {
    /// A dropout layer with drop probability `p ∈ [0, 1)`.
    pub fn new(p: f32) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout rate must be in [0,1), got {p}");
        Self { p }
    }

    /// Applies dropout. When `training` is false (or `p == 0`) this is the
    /// identity and records no extra nodes beyond the input.
    pub fn apply(&self, g: &mut Graph, rng: &mut TensorRng, x: Var, training: bool) -> Var {
        if !training || self.p == 0.0 {
            return x;
        }
        let shape = g.value(x).shape().to_vec();
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mask_t = rng.uniform(&shape, 0.0, 1.0).map(|v| if v < keep { scale } else { 0.0 });
        let mask = g.constant(mask_t);
        g.mul(x, mask)
    }

    /// The drop probability.
    pub fn rate(&self) -> f32 {
        self.p
    }
}

/// Samples a raw dropout mask tensor (used by tests and by layers that need
/// the same mask at several points, e.g. variational RNN dropout).
pub fn dropout_mask(rng: &mut TensorRng, shape: &[usize], p: f32) -> Tensor {
    let keep = 1.0 - p;
    rng.uniform(shape, 0.0, 1.0).map(|v| if v < keep { 1.0 / keep } else { 0.0 })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let mut g = Graph::new();
        let mut rng = TensorRng::seed(1);
        let x = g.constant(Tensor::ones(&[8]));
        let y = Dropout::new(0.5).apply(&mut g, &mut rng, x, false);
        assert_eq!(g.value(y).data(), g.value(x).data());
    }

    #[test]
    fn zero_rate_is_identity_in_training() {
        let mut g = Graph::new();
        let mut rng = TensorRng::seed(1);
        let x = g.constant(Tensor::ones(&[8]));
        let y = Dropout::new(0.0).apply(&mut g, &mut rng, x, true);
        assert_eq!(g.value(y).data(), g.value(x).data());
    }

    #[test]
    fn training_mode_zeroes_and_rescales() {
        let mut g = Graph::new();
        let mut rng = TensorRng::seed(2);
        let x = g.constant(Tensor::ones(&[10000]));
        let y = Dropout::new(0.3).apply(&mut g, &mut rng, x, true);
        let data = g.value(y).data();
        let zeros = data.iter().filter(|&&v| v == 0.0).count();
        let scaled = data.iter().filter(|&&v| (v - 1.0 / 0.7).abs() < 1e-5).count();
        assert_eq!(zeros + scaled, 10000);
        assert!((zeros as f32 / 10000.0 - 0.3).abs() < 0.03);
        // Expectation approximately preserved.
        assert!((g.value(y).mean_all() - 1.0).abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "dropout rate")]
    fn rejects_rate_one() {
        Dropout::new(1.0);
    }

    #[test]
    fn mask_values_are_zero_or_scale() {
        let mut rng = TensorRng::seed(3);
        let m = dropout_mask(&mut rng, &[100], 0.5);
        assert!(m.data().iter().all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
    }
}
