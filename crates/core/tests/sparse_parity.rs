//! Property-based parity between the sparse and dense graph-convolution
//! paths. All generated tensors are integer-valued and small enough that
//! every intermediate sum stays below 2²⁴, where f32 arithmetic is exact —
//! so the linearity split `λ_A·(A_s·x) + (vals·x)` must match the dense
//! `(λ_A·A + scatter(vals))·x` **bitwise**, regardless of summation order,
//! on odd/prime `N`, 1–2 hops, and `top_k ∈ {1, N/2, N}` (at `top_k = N`
//! the pattern retains every entry, so sparse equals dense by definition).

use enhancenet::gconv::{gc_input_dim, graph_conv, GcSupport};
use enhancenet_autodiff::Graph;
use enhancenet_tensor::{CsrMatrix, Tensor, TopkPattern};
use proptest::prelude::*;
use std::sync::Arc;

const B: usize = 2;
const C_IN: usize = 2;
const C_OUT: usize = 3;
const LAMBDA_A: f32 = 2.0;

fn int_vec(len: usize, max: u8) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(0..=max, len).prop_map(|v| v.into_iter().map(f32::from).collect())
}

type Params = (usize, usize, usize, Vec<f32>, Vec<f32>, Vec<f32>, Vec<f32>, Vec<f32>);

fn params() -> impl Strategy<Value = Params> {
    (prop_oneof![Just(5usize), Just(7), Just(11), Just(13)], 1..=2usize, 0..3usize)
        .prop_flat_map(|(n, k_hops, topk_sel)| {
            let gin = gc_input_dim(C_IN, 1, k_hops);
            (
                Just((n, k_hops, topk_sel)),
                int_vec(n * n, 2),                          // base adjacency A
                prop::collection::vec(-1.0f32..1.0, n * n), // pattern scores
                int_vec(B * n * n, 3),                      // dense value source V
                int_vec(B * n * C_IN, 3),                   // signal x
                int_vec(gin * C_OUT, 2),                    // gc weight w
            )
        })
        .prop_map(|((n, k_hops, topk_sel), a, s, v, x, w)| (n, k_hops, topk_sel, a, s, v, x, w))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `GcSupport::SparseDynamic` vs the densified `GcSupport::Dynamic`.
    #[test]
    fn sparse_dynamic_graph_conv_matches_dense_bitwise(
        (n, k_hops, topk_sel, a_v, scores_v, v_v, x_v, w_v) in params()
    ) {
        let top_k = match topk_sel { 0 => 1, 1 => (n / 2).max(1), _ => n };
        let a_t = Tensor::from_vec(a_v, &[n, n]);
        let scores = Tensor::from_vec(scores_v, &[n, n]);
        let pattern = Arc::new(TopkPattern::from_dense_topk(&scores, top_k));

        // Sparse vals: gather the integer source V onto the pattern.
        let mut vals_v = vec![0.0f32; B * n * top_k];
        for b in 0..B {
            for i in 0..n {
                for (s, &j) in pattern.row_cols(i).iter().enumerate() {
                    vals_v[(b * n + i) * top_k + s] = v_v[(b * n + i) * n + j as usize];
                }
            }
        }
        // Dense reference: λ_A·A + scatter(vals) per batch element.
        let mut dense_v = vec![0.0f32; B * n * n];
        for b in 0..B {
            for i in 0..n {
                for j in 0..n {
                    dense_v[(b * n + i) * n + j] = LAMBDA_A * a_t.at(&[i, j]);
                }
                for (s, &j) in pattern.row_cols(i).iter().enumerate() {
                    dense_v[(b * n + i) * n + j as usize] += vals_v[(b * n + i) * top_k + s];
                }
            }
        }

        let mut g = Graph::new();
        let x = g.constant(Tensor::from_vec(x_v, &[B, n, C_IN]));
        let w = g.constant(Tensor::from_vec(w_v, &[gc_input_dim(C_IN, 1, k_hops), C_OUT]));
        let da = g.constant(Tensor::from_vec(dense_v, &[B, n, n]));
        let dense = graph_conv(&mut g, &[GcSupport::Dynamic(da)], x, w, None, k_hops);

        let csr = Arc::new(CsrMatrix::from_dense(&a_t));
        let csr_t = Arc::new(csr.transpose());
        let lambda_a = g.constant(Tensor::scalar(LAMBDA_A));
        let vals = g.constant(Tensor::from_vec(vals_v, &[B, n, top_k]));
        let support = GcSupport::SparseDynamic { csr, csr_t, lambda_a, vals, pattern };
        let sparse = graph_conv(&mut g, &[support], x, w, None, k_hops);

        prop_assert_eq!(
            g.value(sparse).data(),
            g.value(dense).data(),
            "sparse/dense diverge at n={} hops={} top_k={}", n, k_hops, top_k
        );
    }

    /// `GcSupport::Sparse` (CSR SpMM) vs `GcSupport::Static` (dense matmul).
    #[test]
    fn sparse_static_graph_conv_matches_dense_bitwise(
        (n, k_hops, _sel, a_v, _s, _v, x_v, w_v) in params()
    ) {
        let a_t = Tensor::from_vec(a_v, &[n, n]);
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_vec(x_v, &[B, n, C_IN]));
        let w = g.constant(Tensor::from_vec(w_v, &[gc_input_dim(C_IN, 1, k_hops), C_OUT]));
        let a = g.constant(a_t.clone());
        let dense = graph_conv(&mut g, &[GcSupport::Static(a)], x, w, None, k_hops);
        let csr = Arc::new(CsrMatrix::from_dense(&a_t));
        let csr_t = Arc::new(csr.transpose());
        let sparse =
            graph_conv(&mut g, &[GcSupport::Sparse { csr, csr_t }], x, w, None, k_hops);
        prop_assert_eq!(g.value(sparse).data(), g.value(dense).data());
    }
}

/// Backward parity: gradients w.r.t. `x`, `w`, and the adjacency content
/// agree between the sparse linearity-split path and the densified path.
#[test]
fn sparse_dynamic_gradients_match_dense_path() {
    let n = 7;
    let top_k = 3;
    let mut rng = enhancenet_tensor::TensorRng::seed(17);
    let a_t = rng.uniform(&[n, n], 0.0, 1.0);
    let scores = rng.normal(&[n, n], 0.0, 1.0);
    let pattern = Arc::new(TopkPattern::from_dense_topk(&scores, top_k));
    let vals_t = rng.uniform(&[B, n, top_k], 0.1, 1.0);
    let x_t = rng.normal(&[B, n, C_IN], 0.0, 1.0);
    let w_t = rng.normal(&[gc_input_dim(C_IN, 1, 2), C_OUT], 0.0, 0.5);
    let lam = 0.6f32;

    // Dense run.
    let (dense_gx, dense_gw, dense_ga) = {
        let mut g = Graph::new();
        let x = g.constant(x_t.clone());
        let w = g.constant(w_t.clone());
        let scat = pattern.scatter_to_dense(&vals_t);
        let mut dense_v = vec![0.0f32; B * n * n];
        for b in 0..B {
            for i in 0..n {
                for j in 0..n {
                    dense_v[(b * n + i) * n + j] = lam * a_t.at(&[i, j]) + scat.at(&[b, i, j]);
                }
            }
        }
        let da = g.constant(Tensor::from_vec(dense_v, &[B, n, n]));
        let y = graph_conv(&mut g, &[GcSupport::Dynamic(da)], x, w, None, 2);
        let sq = g.square(y);
        let loss = g.sum_all(sq);
        g.backward(loss);
        (g.grad(x).unwrap().clone(), g.grad(w).unwrap().clone(), g.grad(da).unwrap().clone())
    };

    // Sparse run.
    let mut g = Graph::new();
    let x = g.constant(x_t);
    let w = g.constant(w_t);
    let csr = Arc::new(CsrMatrix::from_dense(&a_t));
    let csr_t = Arc::new(csr.transpose());
    let lambda_a = g.constant(Tensor::scalar(lam));
    let vals = g.constant(vals_t);
    let support = GcSupport::SparseDynamic { csr, csr_t, lambda_a, vals, pattern: pattern.clone() };
    let y = graph_conv(&mut g, &[support], x, w, None, 2);
    let sq = g.square(y);
    let loss = g.sum_all(sq);
    g.backward(loss);

    assert!(g.grad(x).unwrap().allclose(&dense_gx, 1e-4), "x grads diverge");
    assert!(g.grad(w).unwrap().allclose(&dense_gw, 1e-4), "w grads diverge");
    // The vals gradient is the dense adjacency gradient gathered at the
    // retained entries; λ_A's gradient is ⟨grad_A', A⟩ over the whole batch.
    let ga_sparse = g.grad(vals).unwrap();
    let mut expected_lam = 0.0f32;
    for b in 0..B {
        for i in 0..n {
            for (s, &j) in pattern.row_cols(i).iter().enumerate() {
                let got = ga_sparse.at(&[b, i, s]);
                let want = dense_ga.at(&[b, i, j as usize]);
                assert!((got - want).abs() < 1e-3, "vals grad [{b},{i},{s}] = {got}, dense {want}");
            }
            for j in 0..n {
                expected_lam += dense_ga.at(&[b, i, j]) * a_t.at(&[i, j]);
            }
        }
    }
    let got_lam = g.grad(lambda_a).unwrap().item();
    assert!(
        (got_lam - expected_lam).abs() / expected_lam.abs().max(1.0) < 1e-3,
        "λ_A grad {got_lam} vs expected {expected_lam}"
    );
}
