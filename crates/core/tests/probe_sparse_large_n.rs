//! Proves the DAMGN graph-diagnostics probe stays allocation-bounded at
//! large entity counts when a top-k budget is configured: the sparse
//! statistics path works on `[N, K]` value tensors and must never
//! materialize the dense `[N, N]` adjacency (400 MB of f32 at `N = 10k`).
//! Runs as its own integration binary so the counting allocator sees no
//! interference from sibling tests.

use enhancenet::probes::{self, ProbeConfig};
use enhancenet::{Damgn, DamgnConfig, Forecaster, ForwardCtx};
use enhancenet_autodiff::{Graph, ParamStore, Var};
use enhancenet_data::WindowDataset;
use enhancenet_tensor::{Tensor, TensorRng};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Minimal forecaster that carries a top-k DAMGN — only what the graph
/// diagnostics probe touches.
struct SparseDamgnModel {
    store: ParamStore,
    damgn: Damgn,
}

impl Forecaster for SparseDamgnModel {
    fn name(&self) -> &str {
        "sparse-damgn"
    }
    fn store(&self) -> &ParamStore {
        &self.store
    }
    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }
    fn horizon(&self) -> usize {
        2
    }
    fn damgn(&self) -> Option<&Damgn> {
        Some(&self.damgn)
    }
    fn forward(&self, g: &mut Graph, x: &Tensor, _ctx: &mut ForwardCtx) -> Var {
        g.constant(Tensor::zeros(&[x.shape()[0], 2, x.shape()[2]]))
    }
}

#[test]
fn topk_probe_is_allocation_bounded_at_ten_thousand_entities() {
    // The pattern build is O(N²·M); debug builds run a smaller N that
    // still exceeds the dense probe cap, release builds run the full 10k.
    const N: usize = if cfg!(debug_assertions) { 5_000 } else { 10_000 };
    // The chosen N must exceed the dense probe cap to prove the sparse route.
    const _: () = assert!(N > probes::DENSE_PROBE_MAX_ENTITIES);

    let mut store = ParamStore::new();
    let mut rng = TensorRng::seed(7);
    let cfg = DamgnConfig { top_k: Some(8), ..DamgnConfig::default() };
    let damgn = Damgn::new(&mut store, &mut rng, "damgn", N, 1, cfg);
    let model = SparseDamgnModel { store, damgn };

    // A short [T, N, 1] series with a non-empty validation split so the
    // probe also samples a sparse C_t.
    let values = TensorRng::seed(3).normal(&[40, N, 1], 0.0, 1.0);
    let data = WindowDataset::from_values(&values, 4, 2).unwrap();
    assert!(!data.split.val.is_empty());

    enhancenet_telemetry::reset();
    enhancenet_telemetry::set_enabled(true);
    let before = BYTES.load(Ordering::Relaxed);
    probes::record_graph_diagnostics(&ProbeConfig::default(), 0, &model, &data);
    let after = BYTES.load(Ordering::Relaxed);
    enhancenet_telemetry::set_enabled(false);

    assert_eq!(enhancenet_telemetry::event_count("probe.damgn"), 1);
    let allocated = after - before;
    // Dense B alone would be N² floats (400 MB at N = 10k, 100 MB at the
    // debug-mode 5k); the sparse path's tensors are [N, K] (~320 KB at
    // K = 8) plus transient scratch from the pattern build. Allow generous
    // headroom while staying far below any dense materialization.
    const BOUND: u64 = 64 * 1024 * 1024;
    assert!(
        allocated < BOUND,
        "sparse probe allocated {} MB; a dense [N, N] path would show ~{} MB",
        allocated / (1024 * 1024),
        (N * N * 4) / (1024 * 1024)
    );
    enhancenet_telemetry::reset();
}
