//! Proves the model-health probes compile to an allocation-free no-op
//! when telemetry is disabled: every probe entry point must check the
//! global switch (and its own flag) before building metrics, graphs, or
//! payloads. Runs as its own integration binary so the counting allocator
//! sees no interference from sibling tests.

use enhancenet::probes::{self, MemoryDriftProbe, ProbeConfig};
use enhancenet::{Forecaster, ForwardCtx};
use enhancenet_autodiff::{Graph, ParamStore, Var};
use enhancenet_data::traffic::{generate_traffic, TrafficConfig};
use enhancenet_data::WindowDataset;
use enhancenet_tensor::Tensor;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Minimal forecaster with no plugins: exercises the default `damgn()` /
/// `memory_id()` trait paths the probes must tolerate.
struct NullModel {
    store: ParamStore,
}

impl Forecaster for NullModel {
    fn name(&self) -> &str {
        "null"
    }
    fn store(&self) -> &ParamStore {
        &self.store
    }
    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }
    fn horizon(&self) -> usize {
        12
    }
    fn forward(&self, g: &mut Graph, x: &Tensor, _ctx: &mut ForwardCtx) -> Var {
        // Probes never run a forward pass; keep a valid body anyway.
        g.constant(Tensor::zeros(&[x.shape()[0], 12, x.shape()[2]]))
    }
}

#[test]
fn disabled_probes_are_allocation_free() {
    enhancenet_telemetry::set_enabled(false);

    // Build every input outside the measured window: the probes
    // themselves are what we count.
    let model = NullModel { store: ParamStore::new() };
    let series = generate_traffic(&TrafficConfig::tiny(4, 2));
    let data = WindowDataset::from_series(&series, 12, 12).unwrap();
    let pred = Tensor::ones(&[2, 12, 4]);
    let truth = Tensor::from_vec(vec![2.0; 2 * 12 * 4], &[2, 12, 4]);
    let cfg = ProbeConfig::default();

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for epoch in 0..1_000 {
        probes::record_error_attribution(&cfg, &pred, &truth);
        probes::record_graph_diagnostics(&cfg, epoch, &model, &data);
        let drift = MemoryDriftProbe::start(&cfg, &model);
        drift.record(epoch, &model);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "disabled probes must not allocate ({} allocations observed)",
        after - before
    );
    assert_eq!(enhancenet_telemetry::event_count("probe.entity_error"), 0);
    assert_eq!(enhancenet_telemetry::event_count("probe.damgn"), 0);
    assert_eq!(enhancenet_telemetry::event_count("probe.dfgn"), 0);
}
