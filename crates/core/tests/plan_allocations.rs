//! Proves the compiled-plan serving contract: once a plan is compiled and
//! its arena is warm, `Forecaster::predict_into` and the serve-batch
//! assembly path (`Tensor::stack_into` + batched `predict_into`) perform
//! **zero heap allocations**. Runs as its own integration binary so the
//! counting allocator sees no interference from sibling tests.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use enhancenet::{Forecaster, ForwardCtx};
use enhancenet_autodiff::{Graph, ParamId, ParamStore, PlanCache, Var};
use enhancenet_tensor::{Tensor, TensorRng};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Telemetry state (and the allocation counter) is process-global:
/// serialize the tests so one test's warm-up cannot leak allocations into
/// another's measured window.
fn lock_tests() -> std::sync::MutexGuard<'static, ()> {
    static GUARD: std::sync::OnceLock<std::sync::Mutex<()>> = std::sync::OnceLock::new();
    GUARD
        .get_or_init(|| std::sync::Mutex::new(()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

const H: usize = 6;
const N: usize = 8;
const C: usize = 2;
const F: usize = 3;

/// A linear forecaster exercising the plan's hot ops (slice, reshape, GEMM,
/// activation, permute) without the full host models, which live a crate
/// above this one.
struct LinearModel {
    store: ParamStore,
    w: ParamId,
    plan_cache: PlanCache,
}

impl LinearModel {
    fn new() -> Self {
        let mut store = ParamStore::new();
        let w = store.add("w", TensorRng::seed(1).normal(&[C, F], 0.0, 0.5));
        Self { store, w, plan_cache: PlanCache::new() }
    }
}

impl Forecaster for LinearModel {
    fn name(&self) -> &str {
        "linear"
    }
    fn store(&self) -> &ParamStore {
        &self.store
    }
    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }
    fn horizon(&self) -> usize {
        F
    }
    fn input_shape(&self) -> Option<[usize; 3]> {
        Some([H, N, C])
    }
    fn plan_cache(&self) -> Option<&PlanCache> {
        Some(&self.plan_cache)
    }
    fn forward(&self, g: &mut Graph, x: &Tensor, ctx: &mut ForwardCtx) -> Var {
        let b = x.shape()[0];
        let xin = if ctx.training { g.constant(x.clone()) } else { g.input(x.clone()) };
        let last = g.slice_axis(xin, 1, H - 1, H);
        let last = g.reshape(last, &[b * N, C]);
        let w = g.param(&self.store, self.w);
        let y = g.matmul(last, w);
        let y = g.tanh(y);
        let y = g.reshape(y, &[b, N, F]);
        g.permute(y, &[0, 2, 1])
    }
}

#[test]
fn warm_predict_into_is_allocation_free() {
    let _g = lock_tests();
    enhancenet_telemetry::set_enabled(false);
    let model = LinearModel::new();
    let window = TensorRng::seed(2).normal(&[H, N, C], 0.0, 1.0);
    let mut out = Tensor::default();

    // Cold calls: compile the plan, size the arena, grow `out` and the
    // GEMM scratch pool. Everything after this must reuse those buffers.
    for _ in 0..3 {
        model.predict_into(&window, &mut out).expect("warm-up predict");
    }
    let expected = model.predict_tape(&window).expect("tape reference");
    assert_eq!(out.data(), expected.data(), "plan output sanity");
    // The tape trace above rotated the thread-local GEMM scratch pool
    // (LIFO), so the next plan execute may re-grow a demoted buffer.
    // Re-warm before opening the measured window.
    for _ in 0..3 {
        model.predict_into(&window, &mut out).expect("re-warm predict");
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..100 {
        model.predict_into(&window, &mut out).expect("warm predict");
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "warm plan predict must not allocate ({} allocations observed over 100 runs)",
        after - before
    );
}

#[test]
fn warm_serve_batch_path_is_allocation_free() {
    let _g = lock_tests();
    enhancenet_telemetry::set_enabled(false);
    let model = LinearModel::new();
    // The serve worker assembles rank-3 request windows into one rank-4
    // batch (`Tensor::stack_into`) and predicts into a reusable buffer —
    // mirror that exact sequence here.
    let windows: Vec<Tensor> =
        (0..4).map(|i| TensorRng::seed(10 + i).normal(&[H, N, C], 0.0, 1.0)).collect();
    let mut batch_x = Tensor::default();
    let mut pred = Tensor::default();

    for _ in 0..3 {
        Tensor::stack_into(windows.iter(), &mut batch_x);
        model.predict_into(&batch_x, &mut pred).expect("warm-up batch predict");
    }
    assert_eq!(pred.shape(), &[4, F, N]);

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..100 {
        Tensor::stack_into(windows.iter(), &mut batch_x);
        model.predict_into(&batch_x, &mut pred).expect("warm batch predict");
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "warm serve-batch path must not allocate ({} allocations observed over 100 runs)",
        after - before
    );
}
