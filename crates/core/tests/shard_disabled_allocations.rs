//! Proves the sharded trainer's hot path adds no hidden allocations:
//!
//! * the `trainer.shard.*` telemetry calls the engine makes per batch must
//!   be allocation-free no-ops while telemetry is disabled, and
//! * the gradient-reduction machinery (`GradBuffer` accumulate → fold →
//!   reduce → reset) must reuse its buffers in steady state, so epoch
//!   throughput does not pay an allocator tax per batch.
//!
//! Runs as its own integration binary so the counting allocator sees no
//! interference from sibling tests.

use enhancenet_autodiff::{GradBuffer, ParamStore};
use enhancenet_tensor::Tensor;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn disabled_shard_telemetry_is_allocation_free() {
    enhancenet_telemetry::set_enabled(false);

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..1_000 {
        // The exact instrumentation the shard engine emits per batch.
        enhancenet_telemetry::count("trainer.shard.batches", 1);
        enhancenet_telemetry::count("trainer.shard.windows", 8);
        let _fanout = enhancenet_telemetry::span("trainer.shard.fanout");
        let _worker = enhancenet_telemetry::span("trainer.shard.worker");
        let _reduce = enhancenet_telemetry::span("trainer.shard.reduce");
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "disabled shard telemetry must not allocate ({} allocations observed)",
        after - before
    );
    assert_eq!(enhancenet_telemetry::event_count("trainer.shard.batches"), 0);
    assert_eq!(enhancenet_telemetry::event_count("trainer.shard.windows"), 0);
}

#[test]
fn gradient_reduction_reuses_buffers_in_steady_state() {
    // Mirror of the engine's per-batch gradient flow: per-window buffers
    // accumulate, fold into a running total in fixed order, reduce into the
    // store, then reset for the next batch. After the first batch has
    // materialized every slot, the cycle must be allocation-free.
    let mut store = ParamStore::new();
    let a = store.add("a", Tensor::zeros(&[4, 4]));
    let b = store.add("b", Tensor::zeros(&[4]));
    let ga = Tensor::ones(&[4, 4]);
    let gb = Tensor::ones(&[4]);

    let mut window = GradBuffer::for_store(&store);
    let mut total = GradBuffer::for_store(&store);

    // Warm-up batch: first `accumulate` clones each gradient into its slot,
    // and the store materializes its own grad tensors.
    window.accumulate(a, &ga);
    window.accumulate(b, &gb);
    total.add_from(&window);
    total.reduce_into(&mut store);
    total.reset();
    window.reset();
    store.zero_grad();

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..1_000 {
        window.accumulate(a, &ga);
        window.accumulate(b, &gb);
        total.add_from(&window);
        total.reduce_into(&mut store);
        total.reset();
        window.reset();
        store.zero_grad();
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "steady-state gradient reduction must not allocate ({} allocations observed)",
        after - before
    );
}
