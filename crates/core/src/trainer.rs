//! The shared training and evaluation harness.
//!
//! Implements the paper's training setup (§VI-A "Model Configurations"):
//! Adam, the RNN/TCN learning-rate schedules, gradient clipping, scheduled
//! sampling for encoder–decoder models, masked-MAE loss, best-on-validation
//! checkpointing, and the runtime accounting of Table V (seconds per
//! training epoch, milliseconds per 12-step prediction).

pub(crate) mod parallel;

use crate::error::EnhanceNetError;
use crate::forecaster::{Forecaster, ForwardCtx};
use crate::probes::{self, MemoryDriftProbe, ProbeConfig};
use enhancenet_autodiff::Graph;
use enhancenet_data::{BatchIterator, WindowDataset};
use enhancenet_nn::optim::{clip_grad_norm, Adam, LrSchedule, Optimizer};
use enhancenet_nn::sched::ScheduledSampler;
use enhancenet_stats::metrics::{metrics_at_horizon, HorizonMetrics};
use enhancenet_tensor::{Tensor, TensorRng};
use std::ops::Range;
use std::time::Instant;

/// Training configuration.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Maximum epochs (paper: 100).
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning-rate schedule (paper: step decay for RNNs, constant for
    /// TCNs).
    pub schedule: LrSchedule,
    /// Global gradient-norm clip (traffic models commonly use 5.0).
    pub clip_norm: f32,
    /// Scheduled-sampling τ (inverse-sigmoid decay).
    pub sampler_tau: f32,
    /// Cap on train batches per epoch (scaled-down experiments); `None`
    /// consumes the whole split.
    pub max_batches_per_epoch: Option<usize>,
    /// Cap on evaluation batches; `None` evaluates the whole split.
    pub max_eval_batches: Option<usize>,
    /// Early-stopping patience in epochs (`None` disables).
    pub patience: Option<usize>,
    /// Seed for shuffling, dropout and sampling.
    pub seed: u64,
    /// Sharded data-parallel training: `Some(k)` fans each mini-batch out
    /// over `k` scoped worker threads (`parallel::ShardEngine`); `None`
    /// keeps the single-graph serial path. Results are bit-identical for
    /// every `Some(k)` — the shard count is a pure throughput knob — though
    /// the sharded and serial paths are distinct numeric trajectories
    /// (per-window tapes vs one batched tape).
    pub data_parallel: Option<usize>,
    /// Print one line per epoch.
    pub verbose: bool,
    /// Which model-health probes fire (error attribution at evaluation,
    /// per-epoch DAMGN/DFGN diagnostics). Probes additionally require the
    /// global telemetry switch, so the default all-on config costs nothing
    /// in ordinary runs.
    pub probes: ProbeConfig,
}

impl TrainConfig {
    /// Starts a validated configuration build. Defaults follow the paper's
    /// setup (§VI-A): 100 epochs, batch 64, constant 0.01 learning rate,
    /// clip 5.0, sampling τ = 40, no batch caps, no early stopping.
    pub fn builder() -> TrainConfigBuilder {
        TrainConfigBuilder::default()
    }

    /// A small default suitable for scaled-down experiments and tests:
    /// capped at 20 train / 10 eval batches per epoch.
    ///
    /// Delegates to [`TrainConfig::builder`]; panics if `epochs` or
    /// `batch_size` is zero (pass user-supplied values through the builder
    /// instead to get a typed error).
    pub fn quick(epochs: usize, batch_size: usize) -> Self {
        Self::builder()
            .epochs(epochs)
            .batch_size(batch_size)
            .max_batches_per_epoch(Some(20))
            .max_eval_batches(Some(10))
            .build()
            .expect("quick config must be valid")
    }
}

/// Builder for [`TrainConfig`] — the validated construction path.
/// [`TrainConfigBuilder::build`] rejects configurations that would
/// previously have failed deep inside the training loop (zero epochs or
/// batch size, non-finite clip norm) with a typed
/// [`EnhanceNetError::InvalidConfig`].
#[derive(Debug, Clone)]
pub struct TrainConfigBuilder {
    config: TrainConfig,
}

impl Default for TrainConfigBuilder {
    fn default() -> Self {
        Self {
            config: TrainConfig {
                epochs: 100,
                batch_size: 64,
                schedule: LrSchedule::Constant(0.01),
                clip_norm: 5.0,
                sampler_tau: 40.0,
                max_batches_per_epoch: None,
                max_eval_batches: None,
                patience: None,
                seed: 1,
                data_parallel: None,
                verbose: false,
                probes: ProbeConfig::default(),
            },
        }
    }
}

impl TrainConfigBuilder {
    /// Maximum epochs (must end up > 0).
    pub fn epochs(mut self, epochs: usize) -> Self {
        self.config.epochs = epochs;
        self
    }

    /// Mini-batch size (must end up > 0).
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.config.batch_size = batch_size;
        self
    }

    /// Learning-rate schedule.
    pub fn schedule(mut self, schedule: LrSchedule) -> Self {
        self.config.schedule = schedule;
        self
    }

    /// Global gradient-norm clip (must end up finite and > 0).
    pub fn clip_norm(mut self, clip_norm: f32) -> Self {
        self.config.clip_norm = clip_norm;
        self
    }

    /// Scheduled-sampling τ.
    pub fn sampler_tau(mut self, sampler_tau: f32) -> Self {
        self.config.sampler_tau = sampler_tau;
        self
    }

    /// Cap on train batches per epoch (`None` consumes the whole split).
    pub fn max_batches_per_epoch(mut self, cap: Option<usize>) -> Self {
        self.config.max_batches_per_epoch = cap;
        self
    }

    /// Cap on evaluation batches (`None` evaluates the whole split).
    pub fn max_eval_batches(mut self, cap: Option<usize>) -> Self {
        self.config.max_eval_batches = cap;
        self
    }

    /// Early-stopping patience in epochs (`None` disables).
    pub fn patience(mut self, patience: Option<usize>) -> Self {
        self.config.patience = patience;
        self
    }

    /// Seed for shuffling, dropout and sampling.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Enables sharded data-parallel training over `shards` worker threads
    /// (must end up ≥ 1; values beyond 256 are rejected as configuration
    /// mistakes). `data_parallel(1)` runs the shard engine serially and is
    /// bit-identical to every higher shard count.
    pub fn data_parallel(mut self, shards: usize) -> Self {
        self.config.data_parallel = Some(shards);
        self
    }

    /// Print one line per epoch.
    pub fn verbose(mut self, verbose: bool) -> Self {
        self.config.verbose = verbose;
        self
    }

    /// Which model-health probes fire.
    pub fn probes(mut self, probes: ProbeConfig) -> Self {
        self.config.probes = probes;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<TrainConfig, EnhanceNetError> {
        let cfg = self.config;
        if cfg.epochs == 0 {
            return Err(EnhanceNetError::InvalidConfig {
                field: "epochs",
                reason: "must be > 0".into(),
            });
        }
        if cfg.batch_size == 0 {
            return Err(EnhanceNetError::InvalidConfig {
                field: "batch_size",
                reason: "must be > 0".into(),
            });
        }
        if !cfg.clip_norm.is_finite() || cfg.clip_norm <= 0.0 {
            return Err(EnhanceNetError::InvalidConfig {
                field: "clip_norm",
                reason: format!("must be finite and > 0, got {}", cfg.clip_norm),
            });
        }
        if !cfg.sampler_tau.is_finite() || cfg.sampler_tau <= 0.0 {
            return Err(EnhanceNetError::InvalidConfig {
                field: "sampler_tau",
                reason: format!("must be finite and > 0, got {}", cfg.sampler_tau),
            });
        }
        if let Some(shards) = cfg.data_parallel {
            if shards == 0 || shards > 256 {
                return Err(EnhanceNetError::InvalidConfig {
                    field: "data_parallel",
                    reason: format!("shard count must be in 1..=256, got {shards}"),
                });
            }
        }
        Ok(cfg)
    }
}

/// Structured per-epoch telemetry: one record per training epoch, also
/// emitted as an `"epoch"` event on the global telemetry sink.
#[derive(Debug, Clone, serde::Serialize)]
pub struct EpochTelemetry {
    /// 0-indexed epoch number.
    pub epoch: usize,
    /// Wall-clock seconds this epoch's training loop took.
    pub secs: f32,
    /// Windows (samples) processed by the training loop this epoch.
    pub windows: usize,
    /// Training throughput: `windows / secs`.
    pub windows_per_sec: f32,
    /// Mean pre-clip global gradient norm over this epoch's updates
    /// (0 when every batch diverged and no update ran).
    pub grad_norm: f32,
    /// Mean training loss (masked MAE, scaled space).
    pub train_loss: f32,
    /// Validation MAE in the raw scale.
    pub val_mae: f32,
    /// Learning rate in effect.
    pub lr: f32,
    /// True when the epoch consumed the whole training split (not cut
    /// short by `max_batches_per_epoch`). Only full epochs feed
    /// [`TrainReport::secs_per_epoch`].
    pub full_epoch: bool,
    /// True when this epoch set a new best validation MAE.
    pub best: bool,
}

/// Per-epoch and summary results of a training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean training loss per epoch.
    pub train_loss: Vec<f32>,
    /// Validation MAE (raw scale) per epoch.
    pub val_mae: Vec<f32>,
    /// Epoch whose weights were kept (best validation MAE).
    pub best_epoch: usize,
    /// Mean wall-clock seconds per training epoch — Table V's "T (s)".
    ///
    /// Averaged over **completed full epochs** only (epochs that consumed
    /// the whole training split); epochs truncated by
    /// `max_batches_per_epoch` would under-report the paper's metric. When
    /// every epoch was truncated (scaled-down runs) the mean over all
    /// epochs is reported instead.
    pub secs_per_epoch: f32,
    /// Total trainable parameters — Tables I/II's "# Para".
    pub num_parameters: usize,
    /// One structured record per epoch (timings, throughput, grad norms,
    /// losses) — the data behind the `--telemetry-out` JSONL.
    pub epoch_telemetry: Vec<EpochTelemetry>,
}

/// Evaluation results on one split.
#[derive(Debug, Clone)]
pub struct EvalReport {
    /// Metrics at each requested (1-indexed) horizon.
    pub horizons: Vec<(usize, HorizonMetrics)>,
    /// Metrics averaged over every horizon step.
    pub overall: HorizonMetrics,
    /// Mean milliseconds to forecast F steps for a single window — Table
    /// V's "P (ms)".
    pub pred_ms: f32,
    /// Per-window MAE samples (raw scale), kept for the t-tests of §VI-B3.
    pub window_mae: Vec<f32>,
}

/// Mean seconds per epoch over completed **full** epochs (Table V's
/// protocol); epochs truncated by `max_batches_per_epoch` don't represent
/// a full pass over the training split. Falls back to the mean over all
/// epochs when none ran to completion (scaled-down runs), and to 0 when
/// no epoch ran at all.
fn secs_per_full_epoch(epochs: &[EpochTelemetry]) -> f32 {
    let mean = |records: &[&EpochTelemetry]| {
        records.iter().map(|e| e.secs as f64).sum::<f64>() / records.len() as f64
    };
    let full: Vec<&EpochTelemetry> = epochs.iter().filter(|e| e.full_epoch).collect();
    if !full.is_empty() {
        mean(&full) as f32
    } else if !epochs.is_empty() {
        mean(&epochs.iter().collect::<Vec<_>>()) as f32
    } else {
        0.0
    }
}

/// Missing-data mask from raw targets: zero readings are missing (the
/// traffic-dataset convention) and non-finite readings are corrupt sensor
/// values; both mask out of the loss. The finiteness check matters: NaN
/// satisfies `v != 0.0`, so without it a single bad reading put weight 1 on
/// a NaN target and poisoned the whole batch's masked MAE.
pub(crate) fn missing_mask(y_raw: &Tensor) -> Tensor {
    y_raw.map(|v| if v.is_finite() && v != 0.0 { 1.0 } else { 0.0 })
}

/// Scaled targets with non-finite entries zeroed. Masking alone does not
/// recover from a NaN target (`NaN · 0 = NaN` inside the masked loss, and a
/// NaN fed back by teacher forcing corrupts the forward pass), so the bad
/// entries are replaced by a harmless 0 — the mask already excludes them
/// from the loss and its gradients.
pub(crate) fn sanitized_targets(y_scaled: &Tensor) -> Tensor {
    y_scaled.map(|v| if v.is_finite() { v } else { 0.0 })
}

/// Drives training and evaluation of any [`Forecaster`].
pub struct Trainer {
    config: TrainConfig,
}

impl Trainer {
    /// Creates a trainer.
    pub fn new(config: TrainConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Trains `model` on the dataset's training split, checkpointing on
    /// validation MAE and restoring the best weights before returning.
    pub fn train(&self, model: &mut dyn Forecaster, data: &WindowDataset) -> TrainReport {
        let cfg = &self.config;
        let mut rng = TensorRng::seed(cfg.seed);
        let mut optimizer = Adam::new();
        let mut sampler = ScheduledSampler::new(cfg.sampler_tau);

        let mut train_loss = Vec::with_capacity(cfg.epochs);
        let mut val_mae = Vec::with_capacity(cfg.epochs);
        let mut epoch_telemetry: Vec<EpochTelemetry> = Vec::with_capacity(cfg.epochs);
        let mut best = (f32::INFINITY, 0usize, model.store().snapshot());

        // `verbose` progress lines route through the telemetry echo sink so
        // the process has a single stderr reporter; restore the previous
        // echo state on the way out.
        let prev_echo = enhancenet_telemetry::echo_enabled();
        if cfg.verbose {
            enhancenet_telemetry::set_echo(true);
        }

        // Model-health probes: snapshot the DFGN memory table (if any)
        // before the first update so drift is measured from init.
        let drift_probe = MemoryDriftProbe::start(&cfg.probes, model);

        // Sharded data-parallel engine (tentpole): per-window tapes fanned
        // out over scoped workers, reduced in fixed window order so the
        // shard count never changes the math (see `trainer::parallel`).
        let mut engine =
            cfg.data_parallel.map(|k| parallel::ShardEngine::new(k, model.store(), cfg.batch_size));
        // Counts every batch drawn (diverged ones included) across the
        // whole run; part of each window's RNG-stream derivation, so it
        // must advance identically for every shard count.
        let mut global_batch = 0u64;

        for epoch in 0..cfg.epochs {
            let _epoch_span = enhancenet_telemetry::span("trainer.epoch");
            let lr = cfg.schedule.lr_at(epoch);
            let started = Instant::now();
            let mut loss_sum = 0.0f64;
            let mut windows = 0usize;
            let mut grad_norm_sum = 0.0f64;
            let mut updates = 0usize;
            let mut truncated = false;
            let iter =
                BatchIterator::shuffled(data, data.split.train.clone(), cfg.batch_size, &mut rng);
            for (batch_idx, batch) in iter.enumerate() {
                if let Some(cap) = cfg.max_batches_per_epoch {
                    if batch_idx >= cap {
                        truncated = true;
                        break;
                    }
                }
                let tf_prob = sampler.teacher_forcing_prob();
                let step_start = enhancenet_telemetry::enabled().then(Instant::now);
                // Mask from the raw targets (zero or non-finite = missing
                // reading), targets sanitized so a NaN reading cannot poison
                // the tape or the teacher-forced decoder.
                let mask = missing_mask(&batch.y_raw);
                let target = sanitized_targets(&batch.y_scaled);
                // Applied update: `Some((loss, pre-clip grad norm))`;
                // `None` marks a diverged (non-finite loss) batch whose
                // update was skipped.
                let applied = match engine.as_mut() {
                    Some(eng) => {
                        let loss_val = eng.train_batch(
                            &*model,
                            &batch,
                            &target,
                            &mask,
                            tf_prob,
                            cfg.seed,
                            global_batch,
                        );
                        if loss_val.is_finite() {
                            let _timer = enhancenet_telemetry::span("trainer.optimizer");
                            model.store_mut().zero_grad();
                            eng.reduce_into(model.store_mut());
                            let norm = clip_grad_norm(model.store_mut(), cfg.clip_norm);
                            optimizer.step(model.store_mut(), lr);
                            Some((loss_val, norm))
                        } else {
                            None
                        }
                    }
                    None => {
                        let mut g = Graph::new();
                        let pred = {
                            let _timer = enhancenet_telemetry::span("trainer.forward");
                            let mut ctx = ForwardCtx::train(&mut rng, &target, tf_prob);
                            model.forward(&mut g, &batch.x, &mut ctx)
                        };
                        let loss = g.masked_mae(pred, &target, &mask);
                        let loss_val = g.value(loss).item();
                        if loss_val.is_finite() {
                            g.backward(loss);
                            let _timer = enhancenet_telemetry::span("trainer.optimizer");
                            model.store_mut().zero_grad();
                            g.write_grads(model.store_mut());
                            let norm = clip_grad_norm(model.store_mut(), cfg.clip_norm);
                            optimizer.step(model.store_mut(), lr);
                            Some((loss_val, norm))
                        } else {
                            None
                        }
                    }
                };
                sampler.advance();
                global_batch += 1;
                match applied {
                    Some((loss_val, norm)) => {
                        // Throughput and loss accounting cover applied
                        // updates only: a diverged batch did no useful work,
                        // so counting its windows would inflate
                        // `windows_per_sec`, and a skipped `loss_sum` entry
                        // must not deflate the mean via the divisor.
                        windows += batch.starts.len();
                        grad_norm_sum += norm as f64;
                        updates += 1;
                        loss_sum += loss_val as f64;
                        enhancenet_telemetry::observe("trainer.grad_norm", norm as f64);
                        if let Some(t0) = step_start {
                            enhancenet_telemetry::observe(
                                "trainer.step_ns",
                                t0.elapsed().as_nanos() as f64,
                            );
                        }
                    }
                    None => {
                        // Divergence guard: skip the update, keep training.
                        enhancenet_telemetry::count("trainer.diverged_batches", 1);
                    }
                }
            }
            let secs = started.elapsed().as_secs_f64();
            let mean_loss = if updates > 0 { (loss_sum / updates as f64) as f32 } else { f32::NAN };
            train_loss.push(mean_loss);

            // Validation MAE in the raw scale.
            let val = {
                let _timer = enhancenet_telemetry::span("trainer.validation");
                self.quick_mae(model, data, data.split.val.clone(), &mut rng)
            };
            // Per-epoch model-health probes (no-ops unless telemetry is on
            // and the model carries the relevant plugin).
            probes::record_graph_diagnostics(&cfg.probes, epoch, model, data);
            drift_probe.record(epoch, model);
            val_mae.push(val);
            let is_best = val < best.0;
            let record = EpochTelemetry {
                epoch,
                secs: secs as f32,
                windows,
                windows_per_sec: if secs > 0.0 { (windows as f64 / secs) as f32 } else { 0.0 },
                grad_norm: if updates > 0 { (grad_norm_sum / updates as f64) as f32 } else { 0.0 },
                train_loss: mean_loss,
                val_mae: val,
                lr,
                full_epoch: !truncated,
                best: is_best,
            };
            enhancenet_telemetry::record_event("epoch", &record);
            enhancenet_telemetry::echo(&format!(
                "[{}] epoch {epoch}: loss {mean_loss:.4}, val MAE {val:.4}, lr {lr:.5}, \
                 {:.1} windows/s",
                model.name(),
                record.windows_per_sec
            ));
            epoch_telemetry.push(record);
            if is_best {
                best = (val, epoch, model.store().snapshot());
                enhancenet_telemetry::record_event(
                    "best_epoch",
                    &serde_json::json!({"epoch": epoch, "val_mae": val}),
                );
            } else if let Some(p) = cfg.patience {
                if epoch >= best.1 + p {
                    enhancenet_telemetry::record_event(
                        "early_stop",
                        &serde_json::json!({"epoch": epoch, "best_epoch": best.1, "patience": p}),
                    );
                    break;
                }
            }
        }
        if cfg.verbose {
            enhancenet_telemetry::set_echo(prev_echo);
        }
        model.store_mut().restore(&best.2);
        TrainReport {
            best_epoch: best.1,
            secs_per_epoch: secs_per_full_epoch(&epoch_telemetry),
            num_parameters: model.num_parameters(),
            train_loss,
            val_mae,
            epoch_telemetry,
        }
    }

    /// Mean raw-scale MAE over (a capped number of) batches from `range`.
    ///
    /// Shard-aware: with `data_parallel(k)` the per-window eval forwards
    /// fan out over `k` workers and reassemble in window order
    /// ([`parallel::eval_predictions`]), so validation MAE — like training —
    /// is bit-identical for every shard count.
    fn quick_mae(
        &self,
        model: &dyn Forecaster,
        data: &WindowDataset,
        range: Range<usize>,
        rng: &mut TensorRng,
    ) -> f32 {
        let mut sum = 0.0f64;
        let mut count = 0usize;
        for (i, batch) in BatchIterator::sequential(data, range, self.config.batch_size).enumerate()
        {
            if let Some(cap) = self.config.max_eval_batches {
                if i >= cap {
                    break;
                }
            }
            let pred_scaled = match self.config.data_parallel {
                Some(k) => parallel::eval_predictions(model, &batch, k),
                None => {
                    let mut g = Graph::new();
                    let pred = {
                        let mut ctx = ForwardCtx::eval(rng);
                        model.forward(&mut g, &batch.x, &mut ctx)
                    };
                    g.value(pred).clone()
                }
            };
            let pred_raw = data.scaler.inverse_feature(&pred_scaled, data.target_feature);
            sum += enhancenet_stats::metrics::mae(&pred_raw, &batch.y_raw) as f64;
            count += 1;
        }
        if count == 0 {
            f32::INFINITY
        } else {
            (sum / count as f64) as f32
        }
    }

    /// Raw-scale forecast for a single window: returns `[F, N]` in the
    /// original units (inverse-scaled). Convenience for examples, figures
    /// and downstream consumers.
    pub fn predict_window(
        &self,
        model: &dyn Forecaster,
        data: &WindowDataset,
        start: usize,
    ) -> Tensor {
        let mut rng = TensorRng::seed(self.config.seed ^ 0xFEED);
        let x = data.input_window(start).unsqueeze(0);
        let mut g = Graph::new();
        let pred = {
            let mut ctx = ForwardCtx::eval(&mut rng);
            model.forward(&mut g, &x, &mut ctx)
        };
        let f = model.horizon();
        let n = data.num_entities();
        data.scaler.inverse_feature(g.value(pred), data.target_feature).reshape(&[f, n])
    }

    /// Full evaluation on `range` (typically the test split): metrics at
    /// `horizons` (1-indexed, paper uses 3/6/12), the overall average, the
    /// per-window MAE samples for significance testing, and single-window
    /// prediction latency.
    pub fn evaluate(
        &self,
        model: &dyn Forecaster,
        data: &WindowDataset,
        range: Range<usize>,
        horizons: &[usize],
    ) -> EvalReport {
        let mut rng = TensorRng::seed(self.config.seed ^ 0x5EED);
        let mut preds: Vec<Tensor> = Vec::new();
        let mut truths: Vec<Tensor> = Vec::new();
        let mut window_mae = Vec::new();
        for (i, batch) in
            BatchIterator::sequential(data, range.clone(), self.config.batch_size).enumerate()
        {
            if let Some(cap) = self.config.max_eval_batches {
                if i >= cap {
                    break;
                }
            }
            let mut g = Graph::new();
            let pred = {
                let mut ctx = ForwardCtx::eval(&mut rng);
                model.forward(&mut g, &batch.x, &mut ctx)
            };
            let pred_raw = data.scaler.inverse_feature(g.value(pred), data.target_feature);
            for bi in 0..batch.starts.len() {
                let p = pred_raw.index_axis(0, bi);
                let t = batch.y_raw.index_axis(0, bi);
                window_mae.push(enhancenet_stats::metrics::mae(&p, &t));
            }
            preds.push(pred_raw);
            truths.push(batch.y_raw.clone());
        }
        let pred_all = Tensor::concat(&preds.iter().collect::<Vec<_>>(), 0);
        let truth_all = Tensor::concat(&truths.iter().collect::<Vec<_>>(), 0);
        let horizon_metrics: Vec<(usize, HorizonMetrics)> =
            horizons.iter().map(|&h| (h, metrics_at_horizon(&pred_all, &truth_all, h))).collect();
        let overall = HorizonMetrics::compute(&pred_all, &truth_all);

        // Error attribution: which entities and horizons the headline
        // numbers hide (no-op unless telemetry + probe are on).
        probes::record_error_attribution(&self.config.probes, &pred_all, &truth_all);

        // Prediction latency: single-window forwards (Table V's protocol —
        // "making a prediction for the next 12 timestamps").
        let timing_windows: Vec<usize> = range.take(5).collect();
        let mut total = 0.0f64;
        let mut timed = 0usize;
        for &start in &timing_windows {
            let x = data.input_window(start).unsqueeze(0);
            let t0 = Instant::now();
            let mut g = Graph::new();
            let mut ctx = ForwardCtx::eval(&mut rng);
            {
                let _span = enhancenet_telemetry::span("trainer.infer_window");
                let _ = model.forward(&mut g, &x, &mut ctx);
            }
            let elapsed = t0.elapsed();
            enhancenet_telemetry::observe("infer.window_ns", elapsed.as_nanos() as f64);
            total += elapsed.as_secs_f64();
            timed += 1;
        }
        EvalReport {
            horizons: horizon_metrics,
            overall,
            pred_ms: if timed > 0 { (total * 1000.0 / timed as f64) as f32 } else { 0.0 },
            window_mae,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forecaster::test_model::AffinePersistence;
    use enhancenet_autodiff::{ParamStore, Var};
    use enhancenet_data::traffic::{generate_traffic, TrafficConfig};

    fn dataset() -> WindowDataset {
        let ds = generate_traffic(&TrafficConfig::tiny(4, 2));
        WindowDataset::from_series(&ds, 12, 12).unwrap()
    }

    #[test]
    fn training_reduces_loss_on_persistence_model() {
        let data = dataset();
        let mut model = AffinePersistence::new(12);
        let trainer = Trainer::new(TrainConfig::quick(8, 8));
        let report = trainer.train(&mut model, &data);
        assert_eq!(report.train_loss.len(), 8);
        let first = report.train_loss[0];
        let last = *report.train_loss.last().unwrap();
        assert!(
            last < first,
            "loss should fall: first {first}, last {last} ({:?})",
            report.train_loss
        );
        assert_eq!(report.num_parameters, 2);
    }

    #[test]
    fn best_weights_are_restored() {
        let data = dataset();
        let mut model = AffinePersistence::new(12);
        let trainer = Trainer::new(TrainConfig::quick(5, 8));
        let report = trainer.train(&mut model, &data);
        // Validation MAE at the best epoch is the minimum recorded.
        let min = report.val_mae.iter().copied().fold(f32::INFINITY, f32::min);
        assert!((report.val_mae[report.best_epoch] - min).abs() < 1e-6);
    }

    #[test]
    fn evaluation_reports_requested_horizons() {
        let data = dataset();
        let mut model = AffinePersistence::new(12);
        let trainer = Trainer::new(TrainConfig::quick(3, 8));
        trainer.train(&mut model, &data);
        let eval = trainer.evaluate(&model, &data, data.split.test.clone(), &[3, 6, 12]);
        assert_eq!(eval.horizons.len(), 3);
        assert_eq!(eval.horizons[0].0, 3);
        assert!(eval.overall.mae > 0.0);
        assert!(eval.overall.rmse >= eval.overall.mae);
        assert!(eval.pred_ms >= 0.0);
        assert!(!eval.window_mae.is_empty());
    }

    #[test]
    fn trained_model_beats_untrained() {
        let data = dataset();
        let trainer = Trainer::new(TrainConfig::quick(10, 8));
        let mut trained = AffinePersistence::new(12);
        trainer.train(&mut trained, &data);
        let untrained = AffinePersistence::new(12);
        let e_trained = trainer.evaluate(&trained, &data, data.split.test.clone(), &[3]);
        let e_untrained = trainer.evaluate(&untrained, &data, data.split.test.clone(), &[3]);
        assert!(
            e_trained.overall.mae < e_untrained.overall.mae,
            "trained {} vs untrained {}",
            e_trained.overall.mae,
            e_untrained.overall.mae
        );
    }

    #[test]
    fn predict_window_returns_raw_scale() {
        let data = dataset();
        let mut model = AffinePersistence::new(12);
        let trainer = Trainer::new(TrainConfig::quick(5, 8));
        trainer.train(&mut model, &data);
        let start = data.split.test.start;
        let pred = trainer.predict_window(&model, &data, start);
        assert_eq!(pred.shape(), &[12, 4]);
        // Raw-scale speeds, not z-scores.
        assert!(pred.mean_all() > 20.0, "predictions look scaled: {:?}", pred);
    }

    #[test]
    fn early_stopping_respects_patience() {
        let data = dataset();
        let mut model = AffinePersistence::new(12);
        let mut cfg = TrainConfig::quick(50, 8);
        cfg.patience = Some(2);
        let trainer = Trainer::new(cfg);
        let report = trainer.train(&mut model, &data);
        // The affine model converges almost immediately, so patience should
        // cut the run well short of 50 epochs.
        assert!(report.train_loss.len() < 50, "ran {} epochs", report.train_loss.len());
    }

    #[test]
    fn epoch_telemetry_has_one_record_per_epoch() {
        let data = dataset();
        let mut model = AffinePersistence::new(12);
        let trainer = Trainer::new(TrainConfig::quick(4, 8));
        let report = trainer.train(&mut model, &data);
        assert_eq!(report.epoch_telemetry.len(), 4);
        for (i, e) in report.epoch_telemetry.iter().enumerate() {
            assert_eq!(e.epoch, i);
            assert!(e.secs >= 0.0);
            assert!(e.windows > 0, "epoch {i} processed no windows");
            assert!(e.windows_per_sec > 0.0);
            assert!(e.grad_norm >= 0.0);
            assert!((e.train_loss - report.train_loss[i]).abs() < 1e-6);
            assert!((e.val_mae - report.val_mae[i]).abs() < 1e-6);
        }
        // Exactly the epochs that improved validation MAE are flagged best,
        // and the last of them is the reported best epoch.
        let best_epochs: Vec<usize> =
            report.epoch_telemetry.iter().filter(|e| e.best).map(|e| e.epoch).collect();
        assert!(best_epochs.contains(&report.best_epoch));
        assert_eq!(best_epochs.last().copied(), Some(report.best_epoch));
    }

    #[test]
    fn secs_per_epoch_averages_full_epochs_only() {
        let data = dataset();
        let mut model = AffinePersistence::new(12);
        // Uncapped: every epoch consumes the whole training split.
        let mut cfg = TrainConfig::quick(3, 8);
        cfg.max_batches_per_epoch = None;
        let trainer = Trainer::new(cfg);
        let report = trainer.train(&mut model, &data);
        assert!(report.epoch_telemetry.iter().all(|e| e.full_epoch));
        let mean: f64 = report.epoch_telemetry.iter().map(|e| e.secs as f64).sum::<f64>()
            / report.epoch_telemetry.len() as f64;
        assert!((report.secs_per_epoch as f64 - mean).abs() < 1e-5);

        // With a 1-batch cap every epoch is truncated: the report must fall
        // back to the mean over the truncated epochs rather than claiming
        // full-epoch timing.
        let mut cfg = TrainConfig::quick(3, 8);
        cfg.max_batches_per_epoch = Some(1);
        let trainer = Trainer::new(cfg);
        let mut model = AffinePersistence::new(12);
        let report = trainer.train(&mut model, &data);
        assert!(report.epoch_telemetry.iter().all(|e| !e.full_epoch));
        let mean: f64 = report.epoch_telemetry.iter().map(|e| e.secs as f64).sum::<f64>()
            / report.epoch_telemetry.len() as f64;
        assert!((report.secs_per_epoch as f64 - mean).abs() < 1e-5);
    }

    #[test]
    fn secs_per_epoch_covers_early_stopped_runs() {
        let data = dataset();
        let mut model = AffinePersistence::new(12);
        let mut cfg = TrainConfig::quick(50, 8);
        cfg.patience = Some(2);
        cfg.max_batches_per_epoch = None;
        let trainer = Trainer::new(cfg);
        let report = trainer.train(&mut model, &data);
        let ran = report.epoch_telemetry.len();
        assert!(ran < 50, "expected early stop, ran {ran} epochs");
        // The early-stopped run still reports timing over the (full) epochs
        // that actually completed.
        let full: Vec<f64> =
            report.epoch_telemetry.iter().filter(|e| e.full_epoch).map(|e| e.secs as f64).collect();
        assert!(!full.is_empty());
        let mean = full.iter().sum::<f64>() / full.len() as f64;
        assert!((report.secs_per_epoch as f64 - mean).abs() < 1e-5);
        assert!(report.secs_per_epoch > 0.0);
    }

    #[test]
    fn builder_produces_quick_equivalent() {
        let quick = TrainConfig::quick(6, 8);
        let built = TrainConfig::builder()
            .epochs(6)
            .batch_size(8)
            .max_batches_per_epoch(Some(20))
            .max_eval_batches(Some(10))
            .build()
            .unwrap();
        assert_eq!(built.epochs, quick.epochs);
        assert_eq!(built.batch_size, quick.batch_size);
        assert_eq!(built.clip_norm, quick.clip_norm);
        assert_eq!(built.sampler_tau, quick.sampler_tau);
        assert_eq!(built.max_batches_per_epoch, quick.max_batches_per_epoch);
        assert_eq!(built.seed, quick.seed);
    }

    #[test]
    fn builder_rejects_invalid_fields() {
        let zero_epochs = TrainConfig::builder().epochs(0).build();
        match zero_epochs {
            Err(EnhanceNetError::InvalidConfig { field: "epochs", .. }) => {}
            other => panic!("expected InvalidConfig(epochs), got {other:?}"),
        }
        let zero_batch = TrainConfig::builder().batch_size(0).build();
        match zero_batch {
            Err(EnhanceNetError::InvalidConfig { field: "batch_size", .. }) => {}
            other => panic!("expected InvalidConfig(batch_size), got {other:?}"),
        }
        for bad in [f32::NAN, f32::INFINITY, 0.0, -1.0] {
            match TrainConfig::builder().clip_norm(bad).build() {
                Err(EnhanceNetError::InvalidConfig { field: "clip_norm", .. }) => {}
                other => panic!("expected InvalidConfig(clip_norm) for {bad}, got {other:?}"),
            }
        }
        match TrainConfig::builder().sampler_tau(f32::NAN).build() {
            Err(EnhanceNetError::InvalidConfig { field: "sampler_tau", .. }) => {}
            other => panic!("expected InvalidConfig(sampler_tau), got {other:?}"),
        }
    }

    /// Emits NaN predictions for the first `nan_calls` forward passes, then
    /// behaves like [`AffinePersistence`]. Forces deterministic divergence
    /// for the accounting regression tests.
    struct NanThenAffine {
        inner: AffinePersistence,
        calls: std::sync::atomic::AtomicUsize,
        nan_calls: usize,
    }

    impl NanThenAffine {
        fn new(f: usize, nan_calls: usize) -> Self {
            Self {
                inner: AffinePersistence::new(f),
                calls: std::sync::atomic::AtomicUsize::new(0),
                nan_calls,
            }
        }
    }

    impl Forecaster for NanThenAffine {
        fn name(&self) -> &str {
            "nan-then-affine"
        }
        fn store(&self) -> &ParamStore {
            self.inner.store()
        }
        fn store_mut(&mut self) -> &mut ParamStore {
            self.inner.store_mut()
        }
        fn horizon(&self) -> usize {
            self.inner.horizon()
        }
        fn forward(&self, g: &mut Graph, x: &Tensor, ctx: &mut ForwardCtx) -> Var {
            let call = self.calls.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            if call < self.nan_calls {
                let (b, n) = (x.shape()[0], x.shape()[2]);
                g.constant(Tensor::from_vec(
                    vec![f32::NAN; b * self.horizon() * n],
                    &[b, self.horizon(), n],
                ))
            } else {
                self.inner.forward(g, x, ctx)
            }
        }
    }

    #[test]
    fn diverged_batches_do_not_deflate_mean_loss_or_inflate_throughput() {
        let data = dataset();
        let mut cfg = TrainConfig::quick(1, 8);
        cfg.max_batches_per_epoch = Some(4);

        // Clean run: every batch applies, so `windows` counts all of them.
        let mut clean = AffinePersistence::new(12);
        let clean_report = Trainer::new(cfg.clone()).train(&mut clean, &data);
        let clean_windows = clean_report.epoch_telemetry[0].windows;
        assert_eq!(clean_windows, 32, "4 full batches of 8 expected");

        // One diverged batch: the mean loss divides by the 3 applied
        // batches (finite result) and the diverged batch's windows stay out
        // of the throughput numbers.
        let mut model = NanThenAffine::new(12, 1);
        let report = Trainer::new(cfg.clone()).train(&mut model, &data);
        let e = &report.epoch_telemetry[0];
        assert!(e.train_loss.is_finite(), "mean over applied batches must be finite");
        assert_eq!(
            e.windows,
            clean_windows - 8,
            "diverged batch's windows must not count toward throughput"
        );

        // Every batch diverged: no update ran, and the honest summary is
        // NaN — the old `loss_sum / batches` arithmetic reported a flat 0.0
        // here, silently claiming perfect loss for a run that learned
        // nothing.
        let mut all_nan = NanThenAffine::new(12, usize::MAX);
        let report = Trainer::new(cfg).train(&mut all_nan, &data);
        let e = &report.epoch_telemetry[0];
        assert!(e.train_loss.is_nan(), "all-diverged epoch reported {}", e.train_loss);
        assert_eq!(e.windows, 0);
        assert_eq!(e.windows_per_sec, 0.0);
        assert_eq!(e.grad_norm, 0.0);
    }

    #[test]
    fn missing_mask_excludes_nan_and_zero_readings() {
        let y = Tensor::from_vec(vec![1.0, 0.0, f32::NAN, f32::NEG_INFINITY, -2.5], &[5]);
        let mask = missing_mask(&y);
        assert_eq!(mask.data(), &[1.0, 0.0, 0.0, 0.0, 1.0]);
        let scaled = sanitized_targets(&y);
        assert_eq!(scaled.data(), &[1.0, 0.0, 0.0, 0.0, -2.5]);
    }

    #[test]
    fn builder_validates_data_parallel() {
        for bad in [0usize, 257, 10_000] {
            match TrainConfig::builder().data_parallel(bad).build() {
                Err(EnhanceNetError::InvalidConfig { field: "data_parallel", .. }) => {}
                other => panic!("expected InvalidConfig(data_parallel) for {bad}, got {other:?}"),
            }
        }
        let cfg = TrainConfig::builder().data_parallel(4).build().unwrap();
        assert_eq!(cfg.data_parallel, Some(4));
        assert_eq!(TrainConfig::builder().build().unwrap().data_parallel, None);
    }

    #[test]
    fn builder_defaults_follow_paper_setup() {
        let cfg = TrainConfig::builder().build().unwrap();
        assert_eq!(cfg.epochs, 100);
        assert_eq!(cfg.batch_size, 64);
        assert_eq!(cfg.clip_norm, 5.0);
        assert!(cfg.max_batches_per_epoch.is_none());
        assert!(cfg.patience.is_none());
    }
}
