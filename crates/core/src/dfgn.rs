//! The Distinct Filter Generation Network (DFGN, §IV-C).
//!
//! Each entity `i` owns a trainable memory `M⁽ⁱ⁾ ∈ R^m` ("randomly
//! initialized but trainable"). A single shared feed-forward network with
//! two hidden layers maps each memory to that entity's filters:
//! `W⁽ⁱ⁾ = DFGN(M⁽ⁱ⁾)`. Because the generator is shared, the parameter
//! count is `N·m + m·n₁ + n₁·n₂ + n₂·o` — compare `N·o` for the
//! "straightforward" per-entity filters (§IV-C's analysis).
//!
//! Gradients flow through the generated filters back into both the MLP and
//! the memories, which is what lets the memories organize by temporal
//! behaviour (Figures 10–11).

use enhancenet_autodiff::{Graph, ParamId, ParamStore, Var};
use enhancenet_nn::mlp::{Activation, Mlp};
use enhancenet_tensor::TensorRng;

/// DFGN hyper-parameters. Paper defaults (§VI-A): `m = 16`, `n1 = 16`,
/// `n2 = 4`, memories initialized uniformly.
#[derive(Debug, Clone, Copy)]
pub struct DfgnConfig {
    /// Memory size `m`.
    pub memory_dim: usize,
    /// First hidden width `n₁`.
    pub hidden1: usize,
    /// Second hidden width `n₂`.
    pub hidden2: usize,
}

impl Default for DfgnConfig {
    fn default() -> Self {
        Self { memory_dim: 16, hidden1: 16, hidden2: 4 }
    }
}

/// Prediction-phase cache of generated filters, keyed by the store
/// version. Owned by the host layer; see [`Dfgn::generate_cached`].
///
/// A `Mutex` (not `RefCell`) so host models stay `Sync` — shard workers in
/// the data-parallel trainer share one `&dyn Forecaster`. Training forwards
/// return before touching the lock, so the hot path never contends.
#[derive(Default)]
pub struct FilterCache {
    slot: std::sync::Mutex<Option<(u64, enhancenet_tensor::Tensor)>>,
}

impl FilterCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when a cached value is present (test/diagnostic hook).
    pub fn is_populated(&self) -> bool {
        self.slot.lock().unwrap().is_some()
    }
}

/// One DFGN: entity memories plus the shared generator MLP producing `o`
/// filter scalars per entity.
pub struct Dfgn {
    memory: ParamId,
    generator: Mlp,
    num_entities: usize,
    out_dim: usize,
}

impl Dfgn {
    /// Creates a DFGN for `num_entities` entities generating `out_dim`
    /// filter parameters each. Memories are uniform in ±1/√m as in the
    /// paper's "randomly initialize each entity's memory … using a uniform
    /// distribution".
    pub fn new(
        store: &mut ParamStore,
        rng: &mut TensorRng,
        name: &str,
        num_entities: usize,
        out_dim: usize,
        config: DfgnConfig,
    ) -> Self {
        let bound = 1.0 / (config.memory_dim as f32).sqrt();
        let memory = store.add(
            format!("{name}.memory"),
            rng.uniform(&[num_entities, config.memory_dim], -bound, bound),
        );
        let generator = Mlp::new(
            store,
            rng,
            &format!("{name}.generator"),
            &[config.memory_dim, config.hidden1, config.hidden2, out_dim],
            Activation::Relu,
        );
        Self { memory, generator, num_entities, out_dim }
    }

    /// Creates a DFGN that **reuses an existing memory table** instead of
    /// allocating its own. This is how a multi-layer host shares one memory
    /// per entity across per-layer generators — "the inputs to the
    /// different DFGNs at different layers come from the same memory vector
    /// M⁽ⁱ⁾" (§IV-C2, Figure 8).
    pub fn with_shared_memory(
        store: &mut ParamStore,
        rng: &mut TensorRng,
        name: &str,
        memory: ParamId,
        out_dim: usize,
        config: DfgnConfig,
    ) -> Self {
        let shape = store.value(memory).shape();
        assert_eq!(shape.len(), 2, "memory must be [N, m]");
        assert_eq!(shape[1], config.memory_dim, "memory width must equal config.memory_dim");
        let num_entities = shape[0];
        let generator = Mlp::new(
            store,
            rng,
            &format!("{name}.generator"),
            &[config.memory_dim, config.hidden1, config.hidden2, out_dim],
            Activation::Relu,
        );
        Self { memory, generator, num_entities, out_dim }
    }

    /// Runs the generator for all entities at once: returns `[N, out_dim]`.
    pub fn generate(&self, g: &mut Graph, store: &ParamStore) -> Var {
        let _timer = enhancenet_telemetry::span("dfgn.generate");
        if enhancenet_telemetry::enabled() {
            enhancenet_telemetry::count("dfgn.generate.calls", 1);
            enhancenet_telemetry::count(
                "dfgn.generate.filters",
                (self.num_entities * self.out_dim) as u64,
            );
        }
        let m = g.param(store, self.memory);
        self.generator.forward(g, store, m)
    }

    /// Like [`Dfgn::generate`], but in inference mode (`training = false`)
    /// the generated filters are computed once per parameter version and
    /// re-bound as constants on subsequent tapes — §VI-B4's observation
    /// that "in the prediction phase, we do not need to use DFGN anymore
    /// as the dynamic filters are already identified in the training
    /// phase". During training the plain tracked path is used so gradients
    /// keep flowing into the generator and memories.
    pub fn generate_cached(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        cache: &FilterCache,
        training: bool,
    ) -> Var {
        if training {
            return self.generate(g, store);
        }
        let mut slot = cache.slot.lock().unwrap();
        if let Some((version, filters)) = slot.as_ref() {
            if *version == store.version() {
                enhancenet_telemetry::count("dfgn.cache.hits", 1);
                return g.constant(filters.clone());
            }
        }
        enhancenet_telemetry::count("dfgn.cache.misses", 1);
        let var = self.generate(g, store);
        *slot = Some((store.version(), g.value(var).clone()));
        var
    }

    /// Number of entities.
    pub fn num_entities(&self) -> usize {
        self.num_entities
    }

    /// Filter scalars generated per entity (`o` in the paper's analysis).
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// The memory parameter (exposed so experiments can inspect the learned
    /// memories for Figures 10–11).
    pub fn memory_id(&self) -> ParamId {
        self.memory
    }

    /// §IV-C's parameter-count formula for one DFGN:
    /// `N·m + m·n₁ + n₁·n₂ + n₂·o` (weights; biases add `n₁+n₂+o`).
    pub fn parameter_formula(n: usize, o: usize, cfg: DfgnConfig, include_biases: bool) -> usize {
        let weights = n * cfg.memory_dim
            + cfg.memory_dim * cfg.hidden1
            + cfg.hidden1 * cfg.hidden2
            + cfg.hidden2 * o;
        if include_biases {
            weights + cfg.hidden1 + cfg.hidden2 + o
        } else {
            weights
        }
    }
}

/// The six generated GRU filters of Eq. 10, reshaped per entity:
/// `W_r, W_u, W_h ∈ [N, C, C']` and `U_r, U_u, U_h ∈ [N, C', C']`.
pub struct GeneratedGruFilters {
    /// x-side filters indexed by gate (reset, update, candidate).
    pub w: [Var; 3],
    /// h-side filters indexed by gate.
    pub u: [Var; 3],
}

/// Output width a GRU DFGN must generate: `o = 3·C'·(C + C')` (§IV-C1).
pub fn gru_filter_dim(c_in: usize, c_hidden: usize) -> usize {
    3 * c_hidden * (c_in + c_hidden)
}

/// Splits a generated `[N, 3·C'·(C+C')]` block into the six per-entity GRU
/// filters of [`GeneratedGruFilters`].
pub fn split_gru_filters(
    g: &mut Graph,
    generated: Var,
    c_in: usize,
    c_hidden: usize,
) -> GeneratedGruFilters {
    assert_eq!(
        g.value(generated).shape()[1],
        gru_filter_dim(c_in, c_hidden),
        "generated width must be 3*C'*(C+C')"
    );
    split_gru_filters_general(g, generated, c_in, c_hidden, c_hidden)
}

/// Output width for a GRU whose x-side filters map `c_x → c_out` and whose
/// h-side filters map `c_h → c_out` (the graph-convolutional GRU case,
/// where the effective input widths include the diffusion hops):
/// `o = 3·c_out·(c_x + c_h)`.
pub fn gru_filter_dim_general(c_x: usize, c_h: usize, c_out: usize) -> usize {
    3 * c_out * (c_x + c_h)
}

/// Generalized splitter: W filters `[N, c_x, c_out]` ×3 followed by U
/// filters `[N, c_h, c_out]` ×3.
pub fn split_gru_filters_general(
    g: &mut Graph,
    generated: Var,
    c_x: usize,
    c_h: usize,
    c_out: usize,
) -> GeneratedGruFilters {
    let n = g.value(generated).shape()[0];
    assert_eq!(
        g.value(generated).shape()[1],
        gru_filter_dim_general(c_x, c_h, c_out),
        "generated width must be 3*c_out*(c_x + c_h)"
    );
    let w_block = c_x * c_out;
    let u_block = c_h * c_out;
    let mut offset = 0;
    let mut take = |g: &mut Graph, len: usize, shape: &[usize]| {
        let s = g.slice_axis(generated, 1, offset, offset + len);
        offset += len;
        g.reshape(s, shape)
    };
    let w = [
        take(g, w_block, &[n, c_x, c_out]),
        take(g, w_block, &[n, c_x, c_out]),
        take(g, w_block, &[n, c_x, c_out]),
    ];
    let u = [
        take(g, u_block, &[n, c_h, c_out]),
        take(g, u_block, &[n, c_h, c_out]),
        take(g, u_block, &[n, c_h, c_out]),
    ];
    GeneratedGruFilters { w, u }
}

/// Output width a TCN-layer DFGN must generate: `o = C'·C·K` (§IV-C2).
pub fn tcn_filter_dim(c_in: usize, c_out: usize, kernel: usize) -> usize {
    c_out * c_in * kernel
}

/// Splits a generated `[N, C'·C·K]` block into per-tap per-entity filters
/// `[N, C, C']`, one per kernel tap.
pub fn split_tcn_filters(
    g: &mut Graph,
    generated: Var,
    c_in: usize,
    c_out: usize,
    kernel: usize,
) -> Vec<Var> {
    let n = g.value(generated).shape()[0];
    assert_eq!(
        g.value(generated).shape()[1],
        tcn_filter_dim(c_in, c_out, kernel),
        "generated width must be C'*C*K"
    );
    let block = c_in * c_out;
    (0..kernel)
        .map(|k| {
            let s = g.slice_axis(generated, 1, k * block, (k + 1) * block);
            g.reshape(s, &[n, c_in, c_out])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use enhancenet_tensor::Tensor;

    fn make(n: usize, o: usize) -> (ParamStore, Dfgn) {
        let mut store = ParamStore::new();
        let mut rng = TensorRng::seed(1);
        let dfgn = Dfgn::new(&mut store, &mut rng, "dfgn", n, o, DfgnConfig::default());
        (store, dfgn)
    }

    #[test]
    fn generates_per_entity_filters() {
        let (store, dfgn) = make(5, 12);
        let mut g = Graph::new();
        let out = dfgn.generate(&mut g, &store);
        assert_eq!(g.value(out).shape(), &[5, 12]);
        // Different entities get different filters (memories differ).
        let row0 = g.value(out).index_axis(0, 0);
        let row1 = g.value(out).index_axis(0, 1);
        assert!(!row0.allclose(&row1, 1e-6));
    }

    #[test]
    fn parameter_count_matches_paper_formula() {
        let (store, _) = make(50, 24);
        let expected = Dfgn::parameter_formula(50, 24, DfgnConfig::default(), true);
        assert_eq!(store.num_scalars(), expected);
    }

    #[test]
    fn parameter_count_is_nearly_flat_in_n() {
        // §IV-C: "except the entity memories, the number of parameters …
        // does not increase with the number of entities N".
        let cfg = DfgnConfig::default();
        let p_small = Dfgn::parameter_formula(10, 100, cfg, true);
        let p_large = Dfgn::parameter_formula(1000, 100, cfg, true);
        assert_eq!(p_large - p_small, (1000 - 10) * cfg.memory_dim);
    }

    #[test]
    fn dfgn_is_far_smaller_than_straightforward_method() {
        // Straightforward per-entity GRU filters: N·3·C'(C+C').
        let (n, c, ch) = (200, 2, 64);
        let o = gru_filter_dim(c, ch);
        let straightforward = n * o;
        let dfgn = Dfgn::parameter_formula(n, o, DfgnConfig::default(), true);
        assert!(
            dfgn * 10 < straightforward,
            "dfgn {dfgn} should be >10x smaller than straightforward {straightforward}"
        );
    }

    #[test]
    fn gradients_reach_memories_through_generated_filters() {
        let (mut store, dfgn) = make(4, 6);
        let mut g = Graph::new();
        let filters = dfgn.generate(&mut g, &store);
        let sq = g.square(filters);
        let loss = g.sum_all(sq);
        g.backward(loss);
        g.write_grads(&mut store);
        assert!(store.grad(dfgn.memory_id()).norm() > 0.0);
    }

    #[test]
    fn split_gru_filters_shapes_and_content() {
        let (n, c, ch) = (3, 2, 4);
        let o = gru_filter_dim(c, ch);
        let mut g = Graph::new();
        let gen = g.constant(Tensor::from_vec((0..n * o).map(|v| v as f32).collect(), &[n, o]));
        let f = split_gru_filters(&mut g, gen, c, ch);
        for w in &f.w {
            assert_eq!(g.value(*w).shape(), &[n, c, ch]);
        }
        for u in &f.u {
            assert_eq!(g.value(*u).shape(), &[n, ch, ch]);
        }
        // First element of W_r for entity 0 is the first generated scalar.
        assert_eq!(g.value(f.w[0]).at(&[0, 0, 0]), 0.0);
        // First element of W_u comes right after the W_r block.
        assert_eq!(g.value(f.w[1]).at(&[0, 0, 0]), (c * ch) as f32);
    }

    #[test]
    fn split_tcn_filters_per_tap() {
        let (n, c, co, k) = (2, 3, 4, 2);
        let o = tcn_filter_dim(c, co, k);
        let mut g = Graph::new();
        let gen = g.constant(Tensor::ones(&[n, o]));
        let taps = split_tcn_filters(&mut g, gen, c, co, k);
        assert_eq!(taps.len(), 2);
        for t in taps {
            assert_eq!(g.value(t).shape(), &[n, c, co]);
        }
    }

    #[test]
    #[should_panic(expected = "3*C'*(C+C')")]
    fn split_gru_rejects_wrong_width() {
        let mut g = Graph::new();
        let gen = g.constant(Tensor::ones(&[2, 10]));
        split_gru_filters(&mut g, gen, 2, 4);
    }

    #[test]
    fn generate_cached_reuses_until_params_change() {
        let (mut store, dfgn) = make(3, 4);
        let cache = FilterCache::new();
        // First eval forward populates the cache.
        let mut g = Graph::new();
        let v1 = dfgn.generate_cached(&mut g, &store, &cache, false);
        assert!(cache.is_populated());
        let first = g.value(v1).clone();
        // Second eval forward returns identical values from the cache.
        let mut g2 = Graph::new();
        let v2 = dfgn.generate_cached(&mut g2, &store, &cache, false);
        assert!(g2.value(v2).allclose(&first, 0.0));
        // Training mode bypasses the cache entirely (gradients must flow).
        let mut g4 = Graph::new();
        let v4 = dfgn.generate_cached(&mut g4, &store, &cache, true);
        let sq = g4.square(v4);
        let loss = g4.sum_all(sq);
        g4.backward(loss);
        g4.write_grads(&mut store);
        assert!(store.grad(dfgn.memory_id()).norm() > 0.0);
        // A parameter update invalidates the cache: the cached path must
        // agree with a freshly tracked generate, not the stale value.
        store.value_mut(dfgn.memory_id()).map_inplace(|v| v * -0.5);
        let mut g3 = Graph::new();
        let v3 = dfgn.generate_cached(&mut g3, &store, &cache, false);
        let mut g_fresh = Graph::new();
        let fresh = dfgn.generate(&mut g_fresh, &store);
        assert!(g3.value(v3).allclose(g_fresh.value(fresh), 0.0));
    }

    #[test]
    fn memories_move_during_gradient_descent() {
        // A miniature training loop: push generated filters toward a target
        // and verify the memory actually changes (i.e. it is learnable, not
        // just random initialization).
        let (mut store, dfgn) = make(3, 4);
        let before = store.value(dfgn.memory_id()).clone();
        for _ in 0..5 {
            store.zero_grad();
            let mut g = Graph::new();
            let f = dfgn.generate(&mut g, &store);
            let target = g.constant(Tensor::ones(&[3, 4]));
            let d = g.sub(f, target);
            let sq = g.square(d);
            let loss = g.mean_all(sq);
            g.backward(loss);
            g.write_grads(&mut store);
            store.for_each_mut(|_, v, grad| v.axpy(-0.5, grad));
        }
        let after = store.value(dfgn.memory_id());
        assert!(!before.allclose(after, 1e-6), "memories did not move");
    }
}
