//! The crate-wide error type for the redesigned public API.
//!
//! Everything a caller can get wrong — malformed configuration, a window of
//! the wrong shape, a serving queue at capacity — surfaces as a typed
//! [`EnhanceNetError`] instead of a panic. Data-layer failures
//! ([`enhancenet_data::DataError`]) convert losslessly via `From`, so `?`
//! composes across the crate boundary.

use enhancenet_data::DataError;
use std::fmt;
use std::time::Duration;

/// Errors surfaced by the public EnhanceNet API.
#[derive(Debug, Clone, PartialEq)]
pub enum EnhanceNetError {
    /// A data-layer failure (scaling, windowing, streaming ingest).
    Data(DataError),
    /// A configuration field failed validation.
    InvalidConfig {
        /// The offending field.
        field: &'static str,
        /// What was wrong with it.
        reason: String,
    },
    /// A prediction input did not match the shape the model expects.
    InputShape {
        /// Expected trailing dimensions (`[H, N, C]`).
        expected: Vec<usize>,
        /// The shape actually supplied.
        got: Vec<usize>,
    },
    /// The model cannot report its expected input shape, which the caller's
    /// entry point requires (e.g. [`crate::serve::ForecastService`]).
    UnknownInputShape {
        /// The model's `name()`.
        model: String,
    },
    /// Not enough history has been ingested to assemble a window.
    NotReady {
        /// Timestamps currently retained.
        have: usize,
        /// Timestamps required (`H`).
        need: usize,
    },
    /// The serving queue was full; the request was not enqueued.
    Overloaded {
        /// Configured queue capacity.
        capacity: usize,
    },
    /// A tenant's token-bucket quota was exhausted; the request was not
    /// enqueued. Unlike [`EnhanceNetError::Overloaded`] this is a
    /// per-tenant verdict: other tenants' requests still flow.
    Throttled {
        /// The tenant whose bucket ran dry.
        tenant: String,
    },
    /// The request's deadline elapsed before the batch worker replied.
    DeadlineExceeded {
        /// The deadline that elapsed.
        deadline: Duration,
    },
    /// The serving worker is gone (shut down or terminated by a panic in
    /// the model's forward pass).
    ServiceStopped,
}

impl fmt::Display for EnhanceNetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Data(e) => write!(f, "data error: {e}"),
            Self::InvalidConfig { field, reason } => {
                write!(f, "invalid config: `{field}` {reason}")
            }
            Self::InputShape { expected, got } => {
                write!(f, "input shape mismatch: expected {expected:?}, got {got:?}")
            }
            Self::UnknownInputShape { model } => {
                write!(f, "model `{model}` does not report an input shape")
            }
            Self::NotReady { have, need } => {
                write!(f, "not ready: {have} of {need} timestamps ingested")
            }
            Self::Overloaded { capacity } => {
                write!(f, "serving queue full (capacity {capacity})")
            }
            Self::Throttled { tenant } => {
                write!(f, "tenant `{tenant}` throttled by its quota")
            }
            Self::DeadlineExceeded { deadline } => {
                write!(f, "deadline of {deadline:?} exceeded")
            }
            Self::ServiceStopped => write!(f, "forecast service stopped"),
        }
    }
}

impl std::error::Error for EnhanceNetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DataError> for EnhanceNetError {
    fn from(e: DataError) -> Self {
        Self::Data(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_errors_convert() {
        let e: EnhanceNetError = DataError::EmptyFit.into();
        assert_eq!(e, EnhanceNetError::Data(DataError::EmptyFit));
        assert!(e.to_string().contains("data error"));
    }

    #[test]
    fn displays_are_informative() {
        let e = EnhanceNetError::InputShape { expected: vec![12, 4, 1], got: vec![12, 3, 1] };
        assert!(e.to_string().contains("[12, 4, 1]"));
        let e = EnhanceNetError::InvalidConfig { field: "epochs", reason: "must be > 0".into() };
        assert!(e.to_string().contains("epochs"));
        let e = EnhanceNetError::NotReady { have: 3, need: 12 };
        assert!(e.to_string().contains("3 of 12"));
    }
}
