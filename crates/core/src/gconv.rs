//! Graph convolution on the autodiff tape (Eq. 12 / Eq. 14):
//! `Z = S ⋆_G x_t = A' x_t S`, with k-hop diffusion and support for both
//! static (`[N, N]`) and per-timestamp batched (`[B, N, N]`) adjacencies —
//! the latter is what DAMGN produces.

use enhancenet_autodiff::{Graph, Var};
use enhancenet_tensor::{CsrMatrix, TopkPattern};
use std::sync::Arc;

/// An adjacency bound into the current graph.
#[derive(Debug, Clone)]
pub enum GcSupport {
    /// Time-invariant adjacency `[N, N]`, shared across the batch.
    Static(Var),
    /// Per-sample adjacency `[B, N, N]` (e.g. DAMGN's `A'` which includes
    /// the time-specific `C_t`).
    Dynamic(Var),
    /// Time-invariant sparse adjacency applied via CSR SpMM (`csr_t` is the
    /// transpose, pre-built so the backward pass allocates nothing new).
    Sparse { csr: Arc<CsrMatrix>, csr_t: Arc<CsrMatrix> },
    /// DAMGN's combined adjacency on the sub-quadratic path, split by
    /// linearity: `A'·x = λ_A·(A_s·x) + (vals·x)` where `A_s` is the
    /// constant CSR base support and `vals = λ_B·B ⊕ λ_C·C_t` are the
    /// learned `[B, N, K]` (or `[N, K]`) values on the shared top-k
    /// `pattern`.
    SparseDynamic {
        csr: Arc<CsrMatrix>,
        csr_t: Arc<CsrMatrix>,
        lambda_a: Var,
        vals: Var,
        pattern: Arc<TopkPattern>,
    },
}

impl GcSupport {
    /// One diffusion step `A · x` for `x ∈ [B, N, C]`.
    pub fn apply(&self, g: &mut Graph, x: Var) -> Var {
        match self {
            GcSupport::Static(a) => g.matmul_broadcast_left(*a, x),
            GcSupport::Dynamic(a) => g.bmm(*a, x),
            GcSupport::Sparse { csr, csr_t } => g.spmm_csr(csr.clone(), csr_t.clone(), x),
            GcSupport::SparseDynamic { csr, csr_t, lambda_a, vals, pattern } => {
                let ax = g.spmm_csr(csr.clone(), csr_t.clone(), x);
                let wax = g.mul(*lambda_a, ax);
                let lx = g.spmm_topk(*vals, x, pattern.clone());
                g.add(wax, lx)
            }
        }
    }
}

/// Graph convolution in the DCRNN formulation: concatenate
/// `[x, S₁x, S₁²x, …, S₂x, …]` along the feature axis (identity hop plus
/// `k` hops per support) and apply one linear map `w` of shape
/// `[(1 + |S|·k)·C, C']` (optionally per-entity `[N, (1+|S|·k)·C, C']`).
///
/// `x` is `[B, N, C]`; the result is `[B, N, C']`.
pub fn graph_conv(
    g: &mut Graph,
    supports: &[GcSupport],
    x: Var,
    w: Var,
    bias: Option<Var>,
    k_hops: usize,
) -> Var {
    assert!(k_hops >= 1, "graph_conv needs at least 1 hop");
    assert_eq!(g.value(x).rank(), 3, "graph_conv expects x of rank 3 [B,N,C]");
    let c_in = g.value(x).shape()[2];
    let expected = gc_input_dim(c_in, supports.len(), k_hops);
    let w_shape = g.value(w).shape().to_vec();
    let w_in = match w_shape.len() {
        2 => w_shape[0],
        3 => w_shape[1],
        r => panic!("graph_conv weight must be rank 2 [In, Out] or rank 3 [N, In, Out], got rank {r} ({w_shape:?})"),
    };
    assert_eq!(
        w_in, expected,
        "graph_conv weight input dim mismatch: expected {expected} = (1 + {} supports × {k_hops} hops) × {c_in} features, got {w_in} from weight shape {w_shape:?}",
        supports.len(),
    );
    let mut feats = vec![x];
    for s in supports {
        let mut cur = x;
        for _ in 0..k_hops {
            cur = s.apply(g, cur);
            feats.push(cur);
        }
    }
    let cat = g.concat(&feats, -1); // [B, N, (1+S·k)·C]
    let y = enhancenet_nn::apply_entity_filter(g, cat, w);
    match bias {
        Some(b) => g.add(y, b),
        None => y,
    }
}

/// Feature width entering the linear map of [`graph_conv`]:
/// `(1 + num_supports · k_hops) · c_in`.
pub fn gc_input_dim(c_in: usize, num_supports: usize, k_hops: usize) -> usize {
    (1 + num_supports * k_hops) * c_in
}

#[cfg(test)]
mod tests {
    use super::*;
    use enhancenet_tensor::{Tensor, TensorRng};

    #[test]
    fn identity_support_with_identity_weight_is_duplication() {
        // With A = I and w stacking [x, Ax] -> x via [[I],[0]], the output
        // equals x.
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[1, 3, 2]));
        let a = g.constant(Tensor::eye(3));
        // w: [(1+1)*2, 2] selecting the first copy.
        let w = g.constant(Tensor::from_vec(
            vec![
                1.0, 0.0, //
                0.0, 1.0, //
                0.0, 0.0, //
                0.0, 0.0,
            ],
            &[4, 2],
        ));
        let y = graph_conv(&mut g, &[GcSupport::Static(a)], x, w, None, 1);
        assert!(g.value(y).allclose(g.value(x), 1e-5));
    }

    #[test]
    fn neighbor_aggregation_with_chain_graph() {
        // Chain 0 -> 1 -> 2 (row-normalized already). Select the "one hop"
        // block so output(i) = x(neighbor of i).
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_vec(vec![10.0, 20.0, 30.0], &[1, 3, 1]));
        let a = g.constant(Tensor::from_rows(&[
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
            vec![0.0, 0.0, 0.0],
        ]));
        let w = g.constant(Tensor::from_vec(vec![0.0, 1.0], &[2, 1]));
        let y = graph_conv(&mut g, &[GcSupport::Static(a)], x, w, None, 1);
        assert_eq!(g.value(y).data(), &[20.0, 30.0, 0.0]);
    }

    #[test]
    fn two_hops_reach_further() {
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_vec(vec![10.0, 20.0, 30.0], &[1, 3, 1]));
        let a = g.constant(Tensor::from_rows(&[
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
            vec![0.0, 0.0, 0.0],
        ]));
        // Select the 2-hop block (features ordering: [x, Ax, A²x]).
        let w = g.constant(Tensor::from_vec(vec![0.0, 0.0, 1.0], &[3, 1]));
        let y = graph_conv(&mut g, &[GcSupport::Static(a)], x, w, None, 2);
        // A²x: node 0 sees node 2.
        assert_eq!(g.value(y).data(), &[30.0, 0.0, 0.0]);
    }

    #[test]
    fn dynamic_support_differs_per_batch_element() {
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_vec(vec![1.0, 2.0, 1.0, 2.0], &[2, 2, 1]));
        // Batch 0: swap nodes; batch 1: identity.
        let a =
            g.constant(Tensor::from_vec(vec![0.0, 1.0, 1.0, 0.0, 1.0, 0.0, 0.0, 1.0], &[2, 2, 2]));
        let w = g.constant(Tensor::from_vec(vec![0.0, 1.0], &[2, 1]));
        let y = graph_conv(&mut g, &[GcSupport::Dynamic(a)], x, w, None, 1);
        assert_eq!(g.value(y).data(), &[2.0, 1.0, 1.0, 2.0]);
    }

    #[test]
    fn multiple_supports_concatenate() {
        let mut g = Graph::new();
        let x = g.constant(Tensor::ones(&[1, 2, 1]));
        let a1 = g.constant(Tensor::eye(2));
        let a2 = g.constant((&Tensor::eye(2) * 2.0).clone());
        // Width = (1 + 2 supports * 1 hop) * 1 = 3; sum all blocks.
        let w = g.constant(Tensor::from_vec(vec![1.0, 1.0, 1.0], &[3, 1]));
        let y = graph_conv(&mut g, &[GcSupport::Static(a1), GcSupport::Static(a2)], x, w, None, 1);
        // x + Ix + 2Ix = 4.
        assert!(g.value(y).allclose(&Tensor::full(&[1, 2, 1], 4.0), 1e-5));
    }

    #[test]
    fn per_entity_gc_weight_is_accepted() {
        // Rank-3 weight [N, gc_in, C'] routes through the per-entity path.
        let mut g = Graph::new();
        let mut rng = TensorRng::seed(2);
        let x = g.constant(rng.normal(&[2, 3, 2], 0.0, 1.0));
        let a = g.constant(Tensor::eye(3));
        let w = g.constant(rng.normal(&[3, gc_input_dim(2, 1, 2), 4], 0.0, 0.5));
        let y = graph_conv(&mut g, &[GcSupport::Static(a)], x, w, None, 2);
        assert_eq!(g.value(y).shape(), &[2, 3, 4]);
    }

    #[test]
    fn bias_is_added() {
        let mut g = Graph::new();
        let x = g.constant(Tensor::zeros(&[1, 2, 1]));
        let a = g.constant(Tensor::eye(2));
        let w = g.constant(Tensor::zeros(&[2, 3]));
        let b = g.constant(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]));
        let y = graph_conv(&mut g, &[GcSupport::Static(a)], x, w, Some(b), 1);
        assert_eq!(g.value(y).data(), &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn gc_input_dim_formula() {
        assert_eq!(gc_input_dim(2, 2, 2), 10);
        assert_eq!(gc_input_dim(1, 1, 1), 2);
        assert_eq!(gc_input_dim(64, 2, 2), 320);
    }

    #[test]
    #[should_panic(expected = "weight input dim mismatch: expected 6")]
    fn mismatched_weight_input_dim_panics_with_expected_and_actual() {
        // 1 support × 2 hops × 2 features ⇒ expected (1+2)·2 = 6; pass 4.
        let mut g = Graph::new();
        let mut rng = TensorRng::seed(3);
        let x = g.constant(rng.normal(&[1, 3, 2], 0.0, 1.0));
        let a = g.constant(Tensor::eye(3));
        let w = g.constant(rng.normal(&[4, 2], 0.0, 0.5));
        let _ = graph_conv(&mut g, &[GcSupport::Static(a)], x, w, None, 2);
    }

    #[test]
    #[should_panic(expected = "weight input dim mismatch")]
    fn per_entity_weight_with_wrong_input_dim_panics() {
        let mut g = Graph::new();
        let mut rng = TensorRng::seed(3);
        let x = g.constant(rng.normal(&[1, 3, 2], 0.0, 1.0));
        let a = g.constant(Tensor::eye(3));
        // Rank-3 per-entity weight whose middle dim ignores the support hop.
        let w = g.constant(rng.normal(&[3, 2, 4], 0.0, 0.5));
        let _ = graph_conv(&mut g, &[GcSupport::Static(a)], x, w, None, 1);
    }

    fn csr_pair(t: &Tensor) -> GcSupport {
        let csr = Arc::new(CsrMatrix::from_dense(t));
        let csr_t = Arc::new(csr.transpose());
        GcSupport::Sparse { csr, csr_t }
    }

    #[test]
    fn sparse_support_matches_static_support() {
        let mut g = Graph::new();
        let mut rng = TensorRng::seed(4);
        let a_t = rng.uniform(&[4, 4], 0.0, 1.0);
        let x = g.constant(rng.normal(&[2, 4, 3], 0.0, 1.0));
        let w = g.constant(rng.normal(&[gc_input_dim(3, 1, 2), 5], 0.0, 0.5));
        let a = g.constant(a_t.clone());
        let dense = graph_conv(&mut g, &[GcSupport::Static(a)], x, w, None, 2);
        let sparse = graph_conv(&mut g, &[csr_pair(&a_t)], x, w, None, 2);
        assert!(g.value(sparse).allclose(g.value(dense), 1e-5));
    }

    #[test]
    fn sparse_dynamic_support_matches_dense_dynamic() {
        // λ_A·(A_s·x) + (vals·x) must equal bmm(λ_A·A_s + scatter(vals), x).
        let mut g = Graph::new();
        let mut rng = TensorRng::seed(9);
        let n = 5;
        let a_t = rng.uniform(&[n, n], 0.0, 1.0);
        let scores = rng.normal(&[n, n], 0.0, 1.0);
        let pattern = Arc::new(TopkPattern::from_dense_topk(&scores, 2));
        let vals_t = rng.uniform(&[2, n, 2], 0.1, 1.0);
        let x = g.constant(rng.normal(&[2, n, 3], 0.0, 1.0));
        let w = g.constant(rng.normal(&[gc_input_dim(3, 1, 1), 4], 0.0, 0.5));
        let lam = 0.7f32;
        let dense_a = {
            let scat = pattern.scatter_to_dense(&vals_t);
            let mut d = Tensor::zeros(&[2, n, n]);
            for b in 0..2 {
                for i in 0..n {
                    for j in 0..n {
                        *dmut(&mut d, &[b, i, j]) = lam * a_t.at(&[i, j]) + scat.at(&[b, i, j]);
                    }
                }
            }
            d
        };
        let da = g.constant(dense_a);
        let dense = graph_conv(&mut g, &[GcSupport::Dynamic(da)], x, w, None, 1);
        let csr = Arc::new(CsrMatrix::from_dense(&a_t));
        let csr_t = Arc::new(csr.transpose());
        let lambda_a = g.constant(Tensor::scalar(lam));
        let vals = g.constant(vals_t);
        let support = GcSupport::SparseDynamic { csr, csr_t, lambda_a, vals, pattern };
        let sparse = graph_conv(&mut g, &[support], x, w, None, 1);
        assert!(g.value(sparse).allclose(g.value(dense), 1e-5));
    }

    /// Mutable scalar access helper for test fixtures.
    fn dmut<'a>(t: &'a mut Tensor, idx: &[usize]) -> &'a mut f32 {
        let shape = t.shape().to_vec();
        let mut flat = 0;
        for (d, &i) in idx.iter().enumerate() {
            flat = flat * shape[d] + i;
        }
        &mut t.data_mut()[flat]
    }

    #[test]
    fn gradients_flow_through_dynamic_adjacency() {
        let mut g = Graph::new();
        let mut rng = TensorRng::seed(5);
        let x = g.constant(rng.normal(&[1, 3, 2], 0.0, 1.0));
        let a_t = rng.normal(&[1, 3, 3], 0.0, 1.0);
        let a = g.constant(a_t);
        let w = g.constant(rng.normal(&[4, 2], 0.0, 0.5));
        let y = graph_conv(&mut g, &[GcSupport::Dynamic(a)], x, w, None, 1);
        let sq = g.square(y);
        let loss = g.sum_all(sq);
        g.backward(loss);
        assert!(g.grad(a).unwrap().norm() > 0.0, "no grad into the adjacency");
    }
}
