//! The Dynamic Adjacency Matrix Generation Network (DAMGN, §V-B).
//!
//! Produces the enhanced adjacency of Eq. 13:
//!
//! ```text
//! A' = λ_A·A + λ_B·B + λ_C·C_t
//! ```
//!
//! * `A` — the distance-derived static adjacency (an input, not learned).
//! * `B = softmax(relu(B₁B₂ᵀ))` (Eq. 15) — a *global adaptive* adjacency
//!   from two `N×M` memory matrices (`M ≪ N`, paper default 10), capturing
//!   static correlations that distances miss, at `2·N·M` parameters instead
//!   of `N²`.
//! * `C_t` (Eq. 16) — a *time-specific* adjacency from the normalized
//!   embedded Gaussian of the current signal:
//!   `C[i,j] = softmax_j(θ(x_t⁽ⁱ⁾)ᵀ φ(x_t⁽ʲ⁾))`, with two distinct linear
//!   embeddings so asymmetric (source vs target) correlations are
//!   representable.
//! * The λ's are **learnable scalars** — "instead of manually tuning them we
//!   decide to let the network learn them"; with `λ_B = λ_C = 0` the module
//!   reduces to ordinary graph convolution over `A`.

use crate::gconv::GcSupport;
use enhancenet_autodiff::{Graph, ParamId, ParamStore, Var};
use enhancenet_tensor::{CsrMatrix, Tensor, TensorRng, TopkPattern};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// DAMGN hyper-parameters. Paper default: `M = 10` for the `B₁`, `B₂`
/// memories; the embedding width of θ/φ defaults to the input feature
/// count.
#[derive(Debug, Clone, Copy)]
pub struct DamgnConfig {
    /// Memory width `M` of `B₁, B₂ ∈ R^{N×M}`.
    pub b_memory_dim: usize,
    /// Embedding dimension of the θ/φ transforms in Eq. 16.
    pub embed_dim: usize,
    /// When set, both the adaptive `B` (Eq. 15) and the time-specific `C_t`
    /// (Eq. 16) are restricted to the `top_k` strongest candidate columns
    /// per row (selected from the `B₁B₂ᵀ` memory scores), turning the
    /// per-hop diffusion from `O(N²)` into `O(N·k)`. `None` keeps the dense
    /// paper formulation; `Some(n)` with `k = N` reproduces it exactly.
    pub top_k: Option<usize>,
}

impl Default for DamgnConfig {
    fn default() -> Self {
        Self { b_memory_dim: 10, embed_dim: 8, top_k: None }
    }
}

/// Per-tape cache produced by [`Damgn::bind`]: the static mix
/// `λ_A·A_s + λ_B·B` per support plus the bound λ_C and θ/φ embeddings.
pub struct DamgnBinding {
    static_parts: Vec<Var>,
    lambda_c: Var,
    theta: Var,
    phi: Var,
}

/// Per-tape cache produced by [`Damgn::bind_sparse`]: the shared top-k
/// candidate pattern, the pre-weighted sparse static values `λ_B·B`
/// (`[N, K]`), and the bound scalars/embeddings the per-timestep sparse
/// supports are assembled from.
///
/// The sub-quadratic path exploits linearity of the diffusion step: for
/// every base support, `A'·x = λ_A·(A_s·x) + ((λ_B·B ⊕ λ_C·C_t)·x)` where
/// `A_s` is a constant CSR matrix and `B`/`C_t` live on one shared top-k
/// pattern, so their values combine elementwise before a single pattern
/// SpMM.
pub struct DamgnSparseBinding {
    pattern: Arc<TopkPattern>,
    /// `λ_B · B` restricted to the pattern, `[N, K]`.
    weighted_b: Var,
    lambda_a: Var,
    lambda_c: Var,
    theta: Var,
    phi: Var,
}

impl DamgnSparseBinding {
    /// The shared top-k candidate pattern.
    pub fn pattern(&self) -> &Arc<TopkPattern> {
        &self.pattern
    }

    /// The pre-weighted sparse static values `λ_B·B`, `[N, K]`.
    pub fn weighted_b(&self) -> Var {
        self.weighted_b
    }
}

/// Version-keyed cache of the folded static component `λ_A·A_s + λ_B·B`
/// (one tensor per base support), used on inference paths.
///
/// During training the static mix depends on live parameters and must stay
/// on the tape, but between optimizer steps it is constant — recomputing
/// the `B₁ B₂ᵀ` softmax and the per-support folds for every window is pure
/// waste in a serving loop. The cache keys the folded tensors on
/// [`ParamStore::version`], so any weight update (an optimizer step, a
/// checkpoint restore) invalidates it automatically. Cache hits splice the
/// stored values back in as constants — the exact tensors the tracked path
/// produced, so eval outputs are bit-identical with or without the cache.
/// A `Mutex` (not `RefCell`) so host models stay `Sync` — shard workers in
/// the data-parallel trainer share one `&dyn Forecaster`. Training forwards
/// return before touching the lock, so the hot path never contends.
#[derive(Default)]
pub struct StaticFoldCache {
    slot: Mutex<Option<(u64, FoldEntry)>>,
}

/// What a [`StaticFoldCache`] holds: the folded dense static mixes, or the
/// sparse pattern plus folded `λ_B·B` values for the top-k path.
enum FoldEntry {
    Dense(Vec<Tensor>),
    Sparse { pattern: Arc<TopkPattern>, weighted_b: Tensor },
}

impl StaticFoldCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// True once a folded static component is stored.
    pub fn is_populated(&self) -> bool {
        self.slot.lock().unwrap().is_some()
    }
}

/// One DAMGN instance: memories for `B`, embeddings for `C_t`, and the
/// mixing weights.
pub struct Damgn {
    b1: ParamId,
    b2: ParamId,
    theta: ParamId,
    phi: ParamId,
    lambda_a: ParamId,
    lambda_b: ParamId,
    lambda_c: ParamId,
    num_entities: usize,
    top_k: Option<usize>,
}

impl Damgn {
    /// Creates a DAMGN for `num_entities` entities with `in_features`
    /// attributes per timestamp. λ_A starts at 1 and λ_B, λ_C at small
    /// positive values, so training starts from (approximately) ordinary
    /// graph convolution.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut TensorRng,
        name: &str,
        num_entities: usize,
        in_features: usize,
        config: DamgnConfig,
    ) -> Self {
        let m = config.b_memory_dim;
        let e = config.embed_dim;
        let bound = 1.0 / (m as f32).sqrt();
        Self {
            b1: store.add(format!("{name}.b1"), rng.uniform(&[num_entities, m], -bound, bound)),
            b2: store.add(format!("{name}.b2"), rng.uniform(&[num_entities, m], -bound, bound)),
            theta: store
                .add(format!("{name}.theta"), rng.xavier(&[in_features, e], in_features, e)),
            phi: store.add(format!("{name}.phi"), rng.xavier(&[in_features, e], in_features, e)),
            lambda_a: store.add(format!("{name}.lambda_a"), Tensor::scalar(1.0)),
            lambda_b: store.add(format!("{name}.lambda_b"), Tensor::scalar(0.1)),
            lambda_c: store.add(format!("{name}.lambda_c"), Tensor::scalar(0.1)),
            num_entities,
            top_k: config.top_k.map(|k| k.min(num_entities)),
        }
    }

    /// The configured per-row candidate budget of the sparse path, when
    /// enabled (clamped to `N` at construction).
    pub fn top_k(&self) -> Option<usize> {
        self.top_k
    }

    /// Eq. 15: the global adaptive adjacency
    /// `B = Softmax(ReLU(B₁ B₂ᵀ)) ∈ [N, N]` (row softmax; ReLU prunes weak
    /// correlations before normalization).
    ///
    /// The softmax renormalizes over the ReLU *survivors* only: pruned
    /// scores are excluded from the distribution rather than entering as
    /// `exp(0) = 1` terms. A plain softmax over the ReLU output would turn
    /// a fully-pruned row into a dense uniform `1/N` row — connecting the
    /// entity to every other entity precisely when the memories found no
    /// correlation at all. Fully-pruned rows instead fall back to an exact
    /// self-loop, matching the `λ_B = 0` reading of Eq. 13 for that entity.
    pub fn static_b(&self, g: &mut Graph, store: &ParamStore) -> Var {
        let _timer = enhancenet_telemetry::span("damgn.static_b");
        enhancenet_telemetry::count("damgn.static_b.calls", 1);
        let b1 = g.param(store, self.b1);
        let b2 = g.param(store, self.b2);
        let raw = g.matmul_nt(b1, b2);
        let act = g.relu(raw);
        let msm = g.masked_softmax(act, act);
        let n = self.num_entities;
        let dead: Vec<usize> = {
            let v = g.value(act);
            (0..n).filter(|&i| v.data()[i * n..(i + 1) * n].iter().all(|&s| s <= 0.0)).collect()
        };
        if dead.is_empty() {
            return msm;
        }
        // Dead rows produce no gradient regardless (their softmax row is
        // identically zero), so the self-loop is a trace-time constant.
        enhancenet_telemetry::count("damgn.static_b.fallback_rows", dead.len() as u64);
        let mut fallback = vec![0.0f32; n * n];
        for &i in &dead {
            fallback[i * n + i] = 1.0;
        }
        let fb = g.constant(Tensor::from_vec(fallback, &[n, n]));
        g.add(msm, fb)
    }

    /// Eq. 16: the time-specific adjacency for a batched signal
    /// `x_t ∈ [B, N, C]`:
    /// `C[i,j] = softmax_j(θ(x⁽ⁱ⁾)ᵀ φ(x⁽ʲ⁾))`, returned as `[B, N, N]`.
    pub fn dynamic_c(&self, g: &mut Graph, store: &ParamStore, x_t: Var) -> Var {
        assert_eq!(g.value(x_t).rank(), 3, "dynamic_c expects [B, N, C]");
        let _timer = enhancenet_telemetry::span("damgn.dynamic_c");
        enhancenet_telemetry::count("damgn.dynamic_c.calls", 1);
        let th = g.param(store, self.theta);
        let ph = g.param(store, self.phi);
        let q = g.matmul_broadcast_right(x_t, th); // [B, N, E]
        let k = g.matmul_broadcast_right(x_t, ph); // [B, N, E]
        let logits = g.bmm_nt(q, k); // [B, N, N], fused q·kᵀ
        g.softmax(logits, -1)
    }

    /// Eq. 16 restricted to `pattern`: gathered embedded-Gaussian scores,
    /// softmax over the `K` candidates per row, returned as `[B, N, K]`
    /// values on the shared pattern. At `k = N` this is exactly the dense
    /// [`Damgn::dynamic_c`].
    pub fn dynamic_c_topk(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        x_t: Var,
        pattern: &Arc<TopkPattern>,
    ) -> Var {
        assert_eq!(g.value(x_t).rank(), 3, "dynamic_c expects [B, N, C]");
        let _timer = enhancenet_telemetry::span("damgn.dynamic_c");
        enhancenet_telemetry::count("damgn.dynamic_c.calls", 1);
        let th = g.param(store, self.theta);
        let ph = g.param(store, self.phi);
        let q = g.matmul_broadcast_right(x_t, th); // [B, N, E]
        let k = g.matmul_broadcast_right(x_t, ph); // [B, N, E]
        let logits = g.gather_dot_nt(q, k, pattern.clone()); // [B, N, K]
        g.softmax(logits, -1)
    }

    /// Eq. 13/14: the combined adjacency
    /// `A' = λ_A·A + λ_B·B + λ_C·C_t` as a batched `[B, N, N]` tensor
    /// (the static terms broadcast over the batch).
    ///
    /// `a` is the distance-based adjacency bound as a constant/leaf; pass
    /// the *normalized* support the host model would otherwise convolve
    /// with.
    pub fn combined(&self, g: &mut Graph, store: &ParamStore, a: Var, x_t: Var) -> Var {
        let la = g.param(store, self.lambda_a);
        let lb = g.param(store, self.lambda_b);
        let lc = g.param(store, self.lambda_c);
        let b = self.static_b(g, store);
        let c = self.dynamic_c(g, store, x_t);
        let wa = g.mul(la, a); // [N,N] broadcast with scalar
        let wb = g.mul(lb, b);
        let static_part = g.add(wa, wb); // [N, N]
        let wc = g.mul(lc, c); // [B, N, N]
        g.add(wc, static_part) // broadcast to [B, N, N]
    }

    /// Binds the DAMGN once per tape for reuse across timesteps: computes
    /// `λ_A·A_s + λ_B·B` for each base support and binds the θ/φ
    /// embeddings and λ_C, so each timestep only pays for `C_t` (Eq. 16)
    /// and one add.
    pub fn bind(&self, g: &mut Graph, store: &ParamStore, base_supports: &[Var]) -> DamgnBinding {
        let _timer = enhancenet_telemetry::span("damgn.bind");
        enhancenet_telemetry::count("damgn.bind.calls", 1);
        let la = g.param(store, self.lambda_a);
        let lb = g.param(store, self.lambda_b);
        let lc = g.param(store, self.lambda_c);
        let b = self.static_b(g, store);
        let wb = g.mul(lb, b);
        let static_parts = base_supports
            .iter()
            .map(|&a| {
                let wa = g.mul(la, a);
                g.add(wa, wb)
            })
            .collect();
        DamgnBinding {
            static_parts,
            lambda_c: lc,
            theta: g.param(store, self.theta),
            phi: g.param(store, self.phi),
        }
    }

    /// [`Damgn::bind`] with the static fold served from `cache` on eval
    /// paths.
    ///
    /// Training forwards always take the tracked path (gradients must flow
    /// through λ_A, λ_B and the memories). Eval forwards reuse the cached
    /// `λ_A·A_s + λ_B·B` tensors as constants while the store version
    /// matches, recomputing (and re-caching) after any weight change.
    /// Telemetry: `damgn.fold.hits` / `damgn.fold.misses`.
    pub fn bind_cached(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        base_supports: &[Var],
        cache: &StaticFoldCache,
        training: bool,
    ) -> DamgnBinding {
        if training {
            return self.bind(g, store, base_supports);
        }
        let mut slot = cache.slot.lock().unwrap();
        if let Some((version, FoldEntry::Dense(parts))) = slot.as_ref() {
            if *version == store.version() && parts.len() == base_supports.len() {
                enhancenet_telemetry::count("damgn.fold.hits", 1);
                return DamgnBinding {
                    static_parts: parts.iter().map(|t| g.constant(t.clone())).collect(),
                    lambda_c: g.param(store, self.lambda_c),
                    theta: g.param(store, self.theta),
                    phi: g.param(store, self.phi),
                };
            }
        }
        enhancenet_telemetry::count("damgn.fold.misses", 1);
        let binding = self.bind(g, store, base_supports);
        let folded: Vec<Tensor> =
            binding.static_parts.iter().map(|&v| g.value(v).clone()).collect();
        *slot = Some((store.version(), FoldEntry::Dense(folded)));
        binding
    }

    /// Builds the shared top-k candidate pattern from the current `B₁`/`B₂`
    /// memories: row `i` keeps the `k` columns with the largest raw memory
    /// scores `B₁[i]·B₂[j]` (ReLU-dead rows keep their diagonal so the
    /// self-loop fallback has a slot). `O(N²·M)` per build with scratch-pool
    /// score buffers and rayon row bands; serving amortizes it through
    /// [`Damgn::bind_sparse_cached`]. Telemetry: `damgn.topk.*`.
    pub fn topk_pattern(&self, store: &ParamStore, k: usize) -> Arc<TopkPattern> {
        let _timer = enhancenet_telemetry::span("damgn.topk.build");
        let started = enhancenet_telemetry::enabled().then(Instant::now);
        let b1 = store.value(self.b1);
        let b2 = store.value(self.b2);
        let n = self.num_entities;
        let m = b1.shape()[1];
        let (b1d, b2d) = (b1.data(), b2.data());
        let pattern = TopkPattern::from_scores(n, n, k.min(n), |i, out| {
            let bi = &b1d[i * m..(i + 1) * m];
            for (j, slot) in out.iter_mut().enumerate() {
                let bj = &b2d[j * m..(j + 1) * m];
                *slot = bi.iter().zip(bj).map(|(&a, &b)| a * b).sum();
            }
        });
        if let Some(t0) = started {
            enhancenet_telemetry::count("damgn.topk.build_ns", t0.elapsed().as_nanos() as u64);
            enhancenet_telemetry::count("damgn.topk.builds", 1);
            enhancenet_telemetry::count("damgn.topk.rows", pattern.rows() as u64);
            enhancenet_telemetry::count("damgn.topk.nnz", pattern.nnz() as u64);
        }
        Arc::new(pattern)
    }

    /// Sparse Eq. 15 restricted to `pattern`: gathers the `[N, K]` memory
    /// scores, prunes with ReLU, renormalizes over the survivors with a
    /// masked softmax, and adds the exact self-loop fallback to
    /// fully-pruned rows — the same semantics as the dense
    /// [`Damgn::static_b`], on `O(N·K)` values.
    pub fn static_b_topk(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        pattern: &Arc<TopkPattern>,
    ) -> Var {
        let _timer = enhancenet_telemetry::span("damgn.static_b");
        enhancenet_telemetry::count("damgn.static_b.calls", 1);
        let b1 = g.param(store, self.b1);
        let b2 = g.param(store, self.b2);
        let scores = g.gather_dot_nt(b1, b2, pattern.clone());
        let act = g.relu(scores);
        let msm = g.masked_softmax(act, act);
        let k = pattern.k();
        let dead: Vec<usize> = {
            let v = g.value(act);
            (0..pattern.rows())
                .filter(|&i| v.data()[i * k..(i + 1) * k].iter().all(|&s| s <= 0.0))
                .collect()
        };
        if dead.is_empty() {
            return msm;
        }
        enhancenet_telemetry::count("damgn.static_b.fallback_rows", dead.len() as u64);
        let mut fallback = vec![0.0f32; pattern.rows() * k];
        for &i in &dead {
            // The builder guarantees dead rows retain their diagonal.
            if let Ok(j) = pattern.row_cols(i).binary_search(&(i as u32)) {
                fallback[i * k + j] = 1.0;
            }
        }
        let fb = g.constant(Tensor::from_vec(fallback, &[pattern.rows(), k]));
        g.add(msm, fb)
    }

    /// [`Damgn::bind`] for the sparse path: builds (or receives) the shared
    /// top-k pattern and folds `λ_B·B` on it once per tape, so each
    /// timestep only pays for the sparse `C_t` gather/softmax and one
    /// elementwise combine.
    pub fn bind_sparse(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        pattern: Arc<TopkPattern>,
    ) -> DamgnSparseBinding {
        let _timer = enhancenet_telemetry::span("damgn.bind");
        enhancenet_telemetry::count("damgn.bind.calls", 1);
        let lb = g.param(store, self.lambda_b);
        let b = self.static_b_topk(g, store, &pattern);
        let weighted_b = g.mul(lb, b);
        DamgnSparseBinding {
            pattern,
            weighted_b,
            lambda_a: g.param(store, self.lambda_a),
            lambda_c: g.param(store, self.lambda_c),
            theta: g.param(store, self.theta),
            phi: g.param(store, self.phi),
        }
    }

    /// [`Damgn::bind_sparse`] with the pattern build and `λ_B·B` fold
    /// served from `cache` on eval paths, keyed on [`ParamStore::version`]
    /// exactly like the dense fold. Training forwards rebuild both (the
    /// pattern tracks the live memories; gradients must flow through λ_B
    /// and the retained scores). Telemetry: `damgn.fold.hits` / `.misses`.
    pub fn bind_sparse_cached(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        k: usize,
        cache: &StaticFoldCache,
        training: bool,
    ) -> DamgnSparseBinding {
        if training {
            let pattern = self.topk_pattern(store, k);
            return self.bind_sparse(g, store, pattern);
        }
        let mut slot = cache.slot.lock().unwrap();
        if let Some((version, FoldEntry::Sparse { pattern, weighted_b })) = slot.as_ref() {
            if *version == store.version() && pattern.k() == k.min(self.num_entities) {
                enhancenet_telemetry::count("damgn.fold.hits", 1);
                return DamgnSparseBinding {
                    pattern: pattern.clone(),
                    weighted_b: g.constant(weighted_b.clone()),
                    lambda_a: g.param(store, self.lambda_a),
                    lambda_c: g.param(store, self.lambda_c),
                    theta: g.param(store, self.theta),
                    phi: g.param(store, self.phi),
                };
            }
        }
        enhancenet_telemetry::count("damgn.fold.misses", 1);
        let pattern = self.topk_pattern(store, k);
        let binding = self.bind_sparse(g, store, pattern);
        *slot = Some((
            store.version(),
            FoldEntry::Sparse {
                pattern: binding.pattern.clone(),
                weighted_b: g.value(binding.weighted_b).clone(),
            },
        ));
        binding
    }

    /// The sparse per-timestep supports: computes the top-k `C_t` once from
    /// `x_t ∈ [B, N, C]` (gathered embedded-Gaussian scores, softmax over
    /// the `K` candidates — exactly Eq. 16 restricted to the pattern, and
    /// exactly Eq. 16 at `k = N`), combines `λ_B·B ⊕ λ_C·C_t` on the shared
    /// pattern, and pairs the result with each CSR base support for the
    /// linearity-split diffusion `λ_A·(A_s·x) + (vals·x)`.
    pub fn sparse_supports_at(
        &self,
        g: &mut Graph,
        binding: &DamgnSparseBinding,
        base: &[(Arc<CsrMatrix>, Arc<CsrMatrix>)],
        x_t: Var,
    ) -> Vec<GcSupport> {
        let _timer = enhancenet_telemetry::span("damgn.dynamic_supports");
        enhancenet_telemetry::count("damgn.dynamic_supports.calls", 1);
        let q = g.matmul_broadcast_right(x_t, binding.theta);
        let k = g.matmul_broadcast_right(x_t, binding.phi);
        let logits = g.gather_dot_nt(q, k, binding.pattern.clone()); // [B, N, K]
        let c = g.softmax(logits, -1);
        let wc = g.mul(binding.lambda_c, c);
        let vals = g.add(wc, binding.weighted_b); // [B, N, K] (B broadcasts)
        base.iter()
            .map(|(csr, csr_t)| GcSupport::SparseDynamic {
                csr: csr.clone(),
                csr_t: csr_t.clone(),
                lambda_a: binding.lambda_a,
                vals,
                pattern: binding.pattern.clone(),
            })
            .collect()
    }

    /// The per-timestep adjacencies `A'_s = λ_A·A_s + λ_B·B + λ_C·C_t`
    /// (one `[B, N, N]` var per base support), computing `C_t` once from
    /// the signal `x_t ∈ [B, N, C]`.
    pub fn dynamic_supports_at(&self, g: &mut Graph, binding: &DamgnBinding, x_t: Var) -> Vec<Var> {
        let _timer = enhancenet_telemetry::span("damgn.dynamic_supports");
        enhancenet_telemetry::count("damgn.dynamic_supports.calls", 1);
        let q = g.matmul_broadcast_right(x_t, binding.theta);
        let k = g.matmul_broadcast_right(x_t, binding.phi);
        let logits = g.bmm_nt(q, k); // fused q·kᵀ
        let c = g.softmax(logits, -1);
        let wc = g.mul(binding.lambda_c, c); // [B, N, N]
        binding.static_parts.iter().map(|&sp| g.add(wc, sp)).collect()
    }

    /// Number of entities.
    pub fn num_entities(&self) -> usize {
        self.num_entities
    }

    /// Parameter ids of (λ_A, λ_B, λ_C), exposed for ablations and reports.
    pub fn lambda_ids(&self) -> (ParamId, ParamId, ParamId) {
        (self.lambda_a, self.lambda_b, self.lambda_c)
    }

    /// Parameter ids of the `B₁`/`B₂` memories (Figure 12 inspection).
    pub fn b_memory_ids(&self) -> (ParamId, ParamId) {
        (self.b1, self.b2)
    }

    /// Additional parameters DAMGN introduces: `2·N·M` memories, `2·C·E`
    /// embeddings, 3 lambdas (§V-B's scalability argument).
    pub fn parameter_formula(n: usize, c: usize, cfg: DamgnConfig) -> usize {
        2 * n * cfg.b_memory_dim + 2 * c * cfg.embed_dim + 3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make(n: usize, c: usize) -> (ParamStore, Damgn) {
        let mut store = ParamStore::new();
        let mut rng = TensorRng::seed(3);
        let d = Damgn::new(&mut store, &mut rng, "damgn", n, c, DamgnConfig::default());
        (store, d)
    }

    #[test]
    fn static_b_rows_are_distributions() {
        let (store, d) = make(6, 2);
        let mut g = Graph::new();
        let b = d.static_b(&mut g, &store);
        assert_eq!(g.value(b).shape(), &[6, 6]);
        let sums = g.value(b).sum_axis(-1);
        assert!(sums.data().iter().all(|&s| (s - 1.0).abs() < 1e-5));
        assert!(g.value(b).data().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn dynamic_c_shape_and_rows() {
        let (store, d) = make(4, 3);
        let mut g = Graph::new();
        let mut rng = TensorRng::seed(9);
        let x = g.constant(rng.normal(&[2, 4, 3], 0.0, 1.0));
        let c = d.dynamic_c(&mut g, &store, x);
        assert_eq!(g.value(c).shape(), &[2, 4, 4]);
        let sums = g.value(c).sum_axis(-1);
        assert!(sums.data().iter().all(|&s| (s - 1.0).abs() < 1e-5));
    }

    #[test]
    fn dynamic_c_changes_with_input() {
        // The defining property: the adjacency is time-specific.
        let (store, d) = make(4, 2);
        let mut g = Graph::new();
        let mut rng = TensorRng::seed(1);
        let x1 = g.constant(rng.normal(&[1, 4, 2], 0.0, 1.0));
        let x2 = g.constant(rng.normal(&[1, 4, 2], 0.0, 1.0));
        let c1 = d.dynamic_c(&mut g, &store, x1);
        let c2 = d.dynamic_c(&mut g, &store, x2);
        assert!(!g.value(c1).allclose(g.value(c2), 1e-4));
    }

    #[test]
    fn dynamic_c_can_be_asymmetric() {
        // θ ≠ φ means C[i,j] ≠ C[j,i] in general — the paper's motivation
        // for two embedding functions.
        let (store, d) = make(3, 2);
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 0.5, -0.5], &[1, 3, 2]));
        let c = d.dynamic_c(&mut g, &store, x);
        let v = g.value(c);
        let asym = (0..3)
            .flat_map(|i| (0..3).map(move |j| (i, j)))
            .any(|(i, j)| i < j && (v.at(&[0, i, j]) - v.at(&[0, j, i])).abs() > 1e-6);
        assert!(asym, "C was exactly symmetric");
    }

    #[test]
    fn combined_reduces_to_a_when_lambdas_zero() {
        // "when λ_B and λ_C are 0, it reduces to a normal graph
        // convolution" — the paper's sanity property.
        let (mut store, d) = make(4, 2);
        *store.value_mut(d.lambda_ids().1) = Tensor::scalar(0.0);
        *store.value_mut(d.lambda_ids().2) = Tensor::scalar(0.0);
        let mut g = Graph::new();
        let a_t = Tensor::from_vec((0..16).map(|v| (v % 5) as f32 * 0.1).collect(), &[4, 4]);
        let a = g.constant(a_t.clone());
        let mut rng = TensorRng::seed(4);
        let x = g.constant(rng.normal(&[2, 4, 2], 0.0, 1.0));
        let combined = d.combined(&mut g, &store, a, x);
        assert_eq!(g.value(combined).shape(), &[2, 4, 4]);
        for b in 0..2 {
            assert!(g.value(combined).index_axis(0, b).allclose(&a_t, 1e-5));
        }
    }

    #[test]
    fn gradients_reach_all_damgn_parameters() {
        let (mut store, d) = make(5, 3);
        let mut g = Graph::new();
        let a = g.constant(Tensor::eye(5));
        let mut rng = TensorRng::seed(8);
        let x = g.constant(rng.normal(&[2, 5, 3], 0.0, 1.0));
        let combined = d.combined(&mut g, &store, a, x);
        let sq = g.square(combined);
        let loss = g.sum_all(sq);
        g.backward(loss);
        g.write_grads(&mut store);
        for id in store.ids() {
            assert!(store.grad(id).norm() > 0.0, "no grad for {}", store.name(id));
        }
    }

    #[test]
    fn bound_dynamic_supports_match_combined() {
        let (store, d) = make(4, 2);
        let mut g = Graph::new();
        let a_t = Tensor::from_vec((0..16).map(|v| v as f32 * 0.05).collect(), &[4, 4]);
        let a = g.constant(a_t);
        let mut rng = TensorRng::seed(6);
        let x = g.constant(rng.normal(&[3, 4, 2], 0.0, 1.0));
        let direct = d.combined(&mut g, &store, a, x);
        let binding = d.bind(&mut g, &store, &[a]);
        let via_binding = d.dynamic_supports_at(&mut g, &binding, x);
        assert_eq!(via_binding.len(), 1);
        assert!(g.value(via_binding[0]).allclose(g.value(direct), 1e-5));
    }

    #[test]
    fn fold_cache_matches_tracked_bind_bitwise() {
        let (store, d) = make(4, 2);
        let cache = StaticFoldCache::new();
        let a_t = Tensor::from_vec((0..16).map(|v| v as f32 * 0.05).collect(), &[4, 4]);
        let mut rng = TensorRng::seed(6);
        let x_t = rng.normal(&[2, 4, 2], 0.0, 1.0);
        let run = |use_cache: bool| {
            let mut g = Graph::new();
            let a = g.constant(a_t.clone());
            let x = g.constant(x_t.clone());
            let binding = if use_cache {
                d.bind_cached(&mut g, &store, &[a], &cache, false)
            } else {
                d.bind(&mut g, &store, &[a])
            };
            let out = d.dynamic_supports_at(&mut g, &binding, x);
            g.value(out[0]).clone()
        };
        let tracked = run(false);
        let miss = run(true); // populates the cache
        assert!(cache.is_populated());
        let hit = run(true); // serves the folded constants
        assert_eq!(tracked.data(), miss.data());
        assert_eq!(tracked.data(), hit.data());
    }

    #[test]
    fn fold_cache_invalidates_on_weight_update() {
        let (mut store, d) = make(3, 2);
        let cache = StaticFoldCache::new();
        let mut g = Graph::new();
        let a = g.constant(Tensor::eye(3));
        let _ = d.bind_cached(&mut g, &store, &[a], &cache, false);
        let v0 = store.version();
        *store.value_mut(d.lambda_ids().0) = Tensor::scalar(2.0);
        assert!(store.version() > v0);
        // The next eval bind must refold with λ_A = 2, matching a fresh
        // tracked bind rather than serving the stale cache entry.
        let mut g2 = Graph::new();
        let a2 = g2.constant(Tensor::eye(3));
        let cached = d.bind_cached(&mut g2, &store, &[a2], &cache, false);
        let mut g3 = Graph::new();
        let a3 = g3.constant(Tensor::eye(3));
        let fresh = d.bind(&mut g3, &store, &[a3]);
        assert_eq!(g2.value(cached.static_parts[0]).data(), g3.value(fresh.static_parts[0]).data());
    }

    #[test]
    fn training_bind_skips_the_cache() {
        let (store, d) = make(3, 2);
        let cache = StaticFoldCache::new();
        let mut g = Graph::new();
        let a = g.constant(Tensor::eye(3));
        let _ = d.bind_cached(&mut g, &store, &[a], &cache, true);
        assert!(!cache.is_populated(), "training forwards must not populate the fold cache");
    }

    /// Pins memories so that entity 0's scores are fully ReLU-pruned while
    /// the other rows keep positive survivors and at least one pruned entry.
    fn make_with_dead_row(n: usize) -> (ParamStore, Damgn, usize) {
        let (mut store, d) = make(n, 2);
        let m = DamgnConfig::default().b_memory_dim;
        let (b1, b2) = d.b_memory_ids();
        // Indicator memories: row 0 reads only coordinate 0 (negated, so
        // every score is negative — fully pruned); live rows read only
        // coordinate 1, which alternates sign across b2 rows so live rows
        // keep survivors *and* pruned entries.
        let mut b1_t = vec![0.0f32; n * m];
        b1_t[0] = -1.0;
        for i in 1..n {
            b1_t[i * m + 1] = 1.0;
        }
        let mut b2_t = vec![0.0f32; n * m];
        for (j, chunk) in b2_t.chunks_mut(m).enumerate() {
            chunk[0] = 0.5;
            chunk[1] = if j % 2 == 0 { 0.7 } else { -0.5 };
        }
        *store.value_mut(b1) = Tensor::from_vec(b1_t, &[n, m]);
        *store.value_mut(b2) = Tensor::from_vec(b2_t, &[n, m]);
        (store, d, 0)
    }

    #[test]
    fn fully_pruned_row_is_a_self_loop_not_dense_uniform() {
        // Regression: a plain softmax over an all-zero ReLU row used to
        // yield a dense uniform 1/N row, silently connecting the entity to
        // everything. It must now be an exact self-loop.
        let n = 6;
        let (store, d, dead) = make_with_dead_row(n);
        let mut g = Graph::new();
        let b = d.static_b(&mut g, &store);
        let v = g.value(b);
        let row = &v.data()[dead * n..(dead + 1) * n];
        assert_eq!(row[dead], 1.0, "dead row must self-loop exactly");
        for (j, &x) in row.iter().enumerate() {
            if j != dead {
                assert_eq!(x, 0.0, "dead row leaked weight {x} to column {j}");
            }
        }
        assert!(
            row.iter().all(|&x| (x - 1.0 / n as f32).abs() > 1e-3),
            "old dense-uniform 1/N row resurfaced"
        );
    }

    #[test]
    fn masked_softmax_excludes_pruned_entries_from_live_rows() {
        let n = 6;
        let (store, d, _) = make_with_dead_row(n);
        let mut g = Graph::new();
        let b1v = store.value(d.b_memory_ids().0);
        let b2v = store.value(d.b_memory_ids().1);
        let scores = b1v.matmul_nt(b2v);
        let b = d.static_b(&mut g, &store);
        let v = g.value(b);
        let mut saw_pruned = false;
        for i in 1..n {
            let row = &v.data()[i * n..(i + 1) * n];
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "live row {i} sums to {sum}");
            for (j, &w) in row.iter().enumerate() {
                if scores.at(&[i, j]) <= 0.0 {
                    assert_eq!(w, 0.0, "pruned entry ({i},{j}) got weight {w}");
                    saw_pruned = true;
                }
            }
        }
        assert!(saw_pruned, "fixture has no pruned entries in live rows");
    }

    #[test]
    fn static_b_topk_full_width_matches_dense() {
        let n = 6;
        let (store, d, dead) = make_with_dead_row(n);
        let mut g = Graph::new();
        let dense = d.static_b(&mut g, &store);
        let pattern = d.topk_pattern(&store, n);
        let sparse_vals = d.static_b_topk(&mut g, &store, &pattern);
        let scattered = pattern.scatter_to_dense(g.value(sparse_vals));
        assert!(scattered.allclose(g.value(dense), 1e-6));
        let row = &scattered.data()[dead * n..(dead + 1) * n];
        assert_eq!(row[dead], 1.0);
    }

    #[test]
    fn static_b_topk_rows_are_distributions_at_small_k() {
        let (store, d) = make(8, 2);
        let pattern = d.topk_pattern(&store, 3);
        let mut g = Graph::new();
        let vals = d.static_b_topk(&mut g, &store, &pattern);
        let v = g.value(vals);
        assert_eq!(v.shape(), &[8, 3]);
        let sums = v.sum_axis(-1);
        assert!(
            sums.data().iter().all(|&s| (s - 1.0).abs() < 1e-5),
            "sparse rows must stay distributions: {:?}",
            sums.data()
        );
        assert!(v.data().iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn sparse_supports_match_dense_combined_at_full_width() {
        let n = 5;
        let (store, d) = make(n, 2);
        let mut rng = TensorRng::seed(11);
        let a_t = rng.uniform(&[n, n], 0.0, 0.5);
        let x_t = rng.normal(&[2, n, 2], 0.0, 1.0);
        let mut g = Graph::new();
        let a = g.constant(a_t.clone());
        let x = g.constant(x_t.clone());
        let sig = g.constant(rng.normal(&[2, n, 3], 0.0, 1.0));
        let dense = d.combined(&mut g, &store, a, x);
        let dense_out = g.bmm(dense, sig);
        let csr = Arc::new(enhancenet_tensor::CsrMatrix::from_dense(&a_t));
        let csr_t = Arc::new(csr.transpose());
        let pattern = d.topk_pattern(&store, n);
        let binding = d.bind_sparse(&mut g, &store, pattern);
        let supports = d.sparse_supports_at(&mut g, &binding, &[(csr, csr_t)], x);
        assert_eq!(supports.len(), 1);
        let sparse_out = supports[0].apply(&mut g, sig);
        assert!(g.value(sparse_out).allclose(g.value(dense_out), 1e-5));
    }

    #[test]
    fn gradients_reach_all_parameters_through_sparse_path() {
        let n = 6;
        let (mut store, d) = make(n, 3);
        let mut rng = TensorRng::seed(12);
        let a_t = rng.uniform(&[n, n], 0.0, 0.5);
        let csr = Arc::new(enhancenet_tensor::CsrMatrix::from_dense(&a_t));
        let csr_t = Arc::new(csr.transpose());
        let mut g = Graph::new();
        let x = g.constant(rng.normal(&[2, n, 3], 0.0, 1.0));
        let sig = g.constant(rng.normal(&[2, n, 4], 0.0, 1.0));
        let pattern = d.topk_pattern(&store, 3);
        let binding = d.bind_sparse(&mut g, &store, pattern);
        let supports = d.sparse_supports_at(&mut g, &binding, &[(csr, csr_t)], x);
        let out = supports[0].apply(&mut g, sig);
        let sq = g.square(out);
        let loss = g.sum_all(sq);
        g.backward(loss);
        g.write_grads(&mut store);
        for id in store.ids() {
            assert!(store.grad(id).norm() > 0.0, "no grad for {}", store.name(id));
        }
    }

    #[test]
    fn sparse_fold_cache_matches_tracked_bind_bitwise() {
        let n = 5;
        let (store, d) = make(n, 2);
        let cache = StaticFoldCache::new();
        let mut rng = TensorRng::seed(7);
        let a_t = rng.uniform(&[n, n], 0.0, 0.5);
        let x_t = rng.normal(&[2, n, 2], 0.0, 1.0);
        let sig_t = rng.normal(&[2, n, 3], 0.0, 1.0);
        let csr = Arc::new(enhancenet_tensor::CsrMatrix::from_dense(&a_t));
        let csr_t = Arc::new(csr.transpose());
        let run = |use_cache: bool| {
            let mut g = Graph::new();
            let x = g.constant(x_t.clone());
            let sig = g.constant(sig_t.clone());
            let binding = if use_cache {
                d.bind_sparse_cached(&mut g, &store, 3, &cache, false)
            } else {
                let pattern = d.topk_pattern(&store, 3);
                d.bind_sparse(&mut g, &store, pattern)
            };
            let s = d.sparse_supports_at(&mut g, &binding, &[(csr.clone(), csr_t.clone())], x);
            let out = s[0].apply(&mut g, sig);
            g.value(out).clone()
        };
        let tracked = run(false);
        let miss = run(true);
        assert!(cache.is_populated());
        let hit = run(true);
        assert_eq!(tracked.data(), miss.data());
        assert_eq!(tracked.data(), hit.data());
    }

    #[test]
    fn parameter_formula_matches_store() {
        let (store, _) = make(20, 4);
        assert_eq!(store.num_scalars(), Damgn::parameter_formula(20, 4, DamgnConfig::default()));
    }

    #[test]
    fn parameter_count_scales_linearly_not_quadratically() {
        let cfg = DamgnConfig::default();
        let p100 = Damgn::parameter_formula(100, 2, cfg);
        let p200 = Damgn::parameter_formula(200, 2, cfg);
        // Doubling N adds 2·100·M, far below the N² = 30000 a dense B would
        // have added.
        assert_eq!(p200 - p100, 2 * 100 * cfg.b_memory_dim);
        assert!(p200 < 200 * 200);
    }
}
