//! The Dynamic Adjacency Matrix Generation Network (DAMGN, §V-B).
//!
//! Produces the enhanced adjacency of Eq. 13:
//!
//! ```text
//! A' = λ_A·A + λ_B·B + λ_C·C_t
//! ```
//!
//! * `A` — the distance-derived static adjacency (an input, not learned).
//! * `B = softmax(relu(B₁B₂ᵀ))` (Eq. 15) — a *global adaptive* adjacency
//!   from two `N×M` memory matrices (`M ≪ N`, paper default 10), capturing
//!   static correlations that distances miss, at `2·N·M` parameters instead
//!   of `N²`.
//! * `C_t` (Eq. 16) — a *time-specific* adjacency from the normalized
//!   embedded Gaussian of the current signal:
//!   `C[i,j] = softmax_j(θ(x_t⁽ⁱ⁾)ᵀ φ(x_t⁽ʲ⁾))`, with two distinct linear
//!   embeddings so asymmetric (source vs target) correlations are
//!   representable.
//! * The λ's are **learnable scalars** — "instead of manually tuning them we
//!   decide to let the network learn them"; with `λ_B = λ_C = 0` the module
//!   reduces to ordinary graph convolution over `A`.

use enhancenet_autodiff::{Graph, ParamId, ParamStore, Var};
use enhancenet_tensor::{Tensor, TensorRng};
use std::sync::Mutex;

/// DAMGN hyper-parameters. Paper default: `M = 10` for the `B₁`, `B₂`
/// memories; the embedding width of θ/φ defaults to the input feature
/// count.
#[derive(Debug, Clone, Copy)]
pub struct DamgnConfig {
    /// Memory width `M` of `B₁, B₂ ∈ R^{N×M}`.
    pub b_memory_dim: usize,
    /// Embedding dimension of the θ/φ transforms in Eq. 16.
    pub embed_dim: usize,
}

impl Default for DamgnConfig {
    fn default() -> Self {
        Self { b_memory_dim: 10, embed_dim: 8 }
    }
}

/// Per-tape cache produced by [`Damgn::bind`]: the static mix
/// `λ_A·A_s + λ_B·B` per support plus the bound λ_C and θ/φ embeddings.
pub struct DamgnBinding {
    static_parts: Vec<Var>,
    lambda_c: Var,
    theta: Var,
    phi: Var,
}

/// Version-keyed cache of the folded static component `λ_A·A_s + λ_B·B`
/// (one tensor per base support), used on inference paths.
///
/// During training the static mix depends on live parameters and must stay
/// on the tape, but between optimizer steps it is constant — recomputing
/// the `B₁ B₂ᵀ` softmax and the per-support folds for every window is pure
/// waste in a serving loop. The cache keys the folded tensors on
/// [`ParamStore::version`], so any weight update (an optimizer step, a
/// checkpoint restore) invalidates it automatically. Cache hits splice the
/// stored values back in as constants — the exact tensors the tracked path
/// produced, so eval outputs are bit-identical with or without the cache.
/// A `Mutex` (not `RefCell`) so host models stay `Sync` — shard workers in
/// the data-parallel trainer share one `&dyn Forecaster`. Training forwards
/// return before touching the lock, so the hot path never contends.
#[derive(Default)]
pub struct StaticFoldCache {
    slot: Mutex<Option<(u64, Vec<Tensor>)>>,
}

impl StaticFoldCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// True once a folded static component is stored.
    pub fn is_populated(&self) -> bool {
        self.slot.lock().unwrap().is_some()
    }
}

/// One DAMGN instance: memories for `B`, embeddings for `C_t`, and the
/// mixing weights.
pub struct Damgn {
    b1: ParamId,
    b2: ParamId,
    theta: ParamId,
    phi: ParamId,
    lambda_a: ParamId,
    lambda_b: ParamId,
    lambda_c: ParamId,
    num_entities: usize,
}

impl Damgn {
    /// Creates a DAMGN for `num_entities` entities with `in_features`
    /// attributes per timestamp. λ_A starts at 1 and λ_B, λ_C at small
    /// positive values, so training starts from (approximately) ordinary
    /// graph convolution.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut TensorRng,
        name: &str,
        num_entities: usize,
        in_features: usize,
        config: DamgnConfig,
    ) -> Self {
        let m = config.b_memory_dim;
        let e = config.embed_dim;
        let bound = 1.0 / (m as f32).sqrt();
        Self {
            b1: store.add(format!("{name}.b1"), rng.uniform(&[num_entities, m], -bound, bound)),
            b2: store.add(format!("{name}.b2"), rng.uniform(&[num_entities, m], -bound, bound)),
            theta: store
                .add(format!("{name}.theta"), rng.xavier(&[in_features, e], in_features, e)),
            phi: store.add(format!("{name}.phi"), rng.xavier(&[in_features, e], in_features, e)),
            lambda_a: store.add(format!("{name}.lambda_a"), Tensor::scalar(1.0)),
            lambda_b: store.add(format!("{name}.lambda_b"), Tensor::scalar(0.1)),
            lambda_c: store.add(format!("{name}.lambda_c"), Tensor::scalar(0.1)),
            num_entities,
        }
    }

    /// Eq. 15: the global adaptive adjacency
    /// `B = Softmax(ReLU(B₁ B₂ᵀ)) ∈ [N, N]` (row softmax; ReLU prunes weak
    /// correlations before normalization).
    pub fn static_b(&self, g: &mut Graph, store: &ParamStore) -> Var {
        let _timer = enhancenet_telemetry::span("damgn.static_b");
        enhancenet_telemetry::count("damgn.static_b.calls", 1);
        let b1 = g.param(store, self.b1);
        let b2 = g.param(store, self.b2);
        let raw = g.matmul_nt(b1, b2);
        let act = g.relu(raw);
        g.softmax(act, -1)
    }

    /// Eq. 16: the time-specific adjacency for a batched signal
    /// `x_t ∈ [B, N, C]`:
    /// `C[i,j] = softmax_j(θ(x⁽ⁱ⁾)ᵀ φ(x⁽ʲ⁾))`, returned as `[B, N, N]`.
    pub fn dynamic_c(&self, g: &mut Graph, store: &ParamStore, x_t: Var) -> Var {
        assert_eq!(g.value(x_t).rank(), 3, "dynamic_c expects [B, N, C]");
        let _timer = enhancenet_telemetry::span("damgn.dynamic_c");
        enhancenet_telemetry::count("damgn.dynamic_c.calls", 1);
        let th = g.param(store, self.theta);
        let ph = g.param(store, self.phi);
        let q = g.matmul_broadcast_right(x_t, th); // [B, N, E]
        let k = g.matmul_broadcast_right(x_t, ph); // [B, N, E]
        let logits = g.bmm_nt(q, k); // [B, N, N], fused q·kᵀ
        g.softmax(logits, -1)
    }

    /// Eq. 13/14: the combined adjacency
    /// `A' = λ_A·A + λ_B·B + λ_C·C_t` as a batched `[B, N, N]` tensor
    /// (the static terms broadcast over the batch).
    ///
    /// `a` is the distance-based adjacency bound as a constant/leaf; pass
    /// the *normalized* support the host model would otherwise convolve
    /// with.
    pub fn combined(&self, g: &mut Graph, store: &ParamStore, a: Var, x_t: Var) -> Var {
        let la = g.param(store, self.lambda_a);
        let lb = g.param(store, self.lambda_b);
        let lc = g.param(store, self.lambda_c);
        let b = self.static_b(g, store);
        let c = self.dynamic_c(g, store, x_t);
        let wa = g.mul(la, a); // [N,N] broadcast with scalar
        let wb = g.mul(lb, b);
        let static_part = g.add(wa, wb); // [N, N]
        let wc = g.mul(lc, c); // [B, N, N]
        g.add(wc, static_part) // broadcast to [B, N, N]
    }

    /// Binds the DAMGN once per tape for reuse across timesteps: computes
    /// `λ_A·A_s + λ_B·B` for each base support and binds the θ/φ
    /// embeddings and λ_C, so each timestep only pays for `C_t` (Eq. 16)
    /// and one add.
    pub fn bind(&self, g: &mut Graph, store: &ParamStore, base_supports: &[Var]) -> DamgnBinding {
        let _timer = enhancenet_telemetry::span("damgn.bind");
        enhancenet_telemetry::count("damgn.bind.calls", 1);
        let la = g.param(store, self.lambda_a);
        let lb = g.param(store, self.lambda_b);
        let lc = g.param(store, self.lambda_c);
        let b = self.static_b(g, store);
        let wb = g.mul(lb, b);
        let static_parts = base_supports
            .iter()
            .map(|&a| {
                let wa = g.mul(la, a);
                g.add(wa, wb)
            })
            .collect();
        DamgnBinding {
            static_parts,
            lambda_c: lc,
            theta: g.param(store, self.theta),
            phi: g.param(store, self.phi),
        }
    }

    /// [`Damgn::bind`] with the static fold served from `cache` on eval
    /// paths.
    ///
    /// Training forwards always take the tracked path (gradients must flow
    /// through λ_A, λ_B and the memories). Eval forwards reuse the cached
    /// `λ_A·A_s + λ_B·B` tensors as constants while the store version
    /// matches, recomputing (and re-caching) after any weight change.
    /// Telemetry: `damgn.fold.hits` / `damgn.fold.misses`.
    pub fn bind_cached(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        base_supports: &[Var],
        cache: &StaticFoldCache,
        training: bool,
    ) -> DamgnBinding {
        if training {
            return self.bind(g, store, base_supports);
        }
        let mut slot = cache.slot.lock().unwrap();
        if let Some((version, parts)) = slot.as_ref() {
            if *version == store.version() && parts.len() == base_supports.len() {
                enhancenet_telemetry::count("damgn.fold.hits", 1);
                return DamgnBinding {
                    static_parts: parts.iter().map(|t| g.constant(t.clone())).collect(),
                    lambda_c: g.param(store, self.lambda_c),
                    theta: g.param(store, self.theta),
                    phi: g.param(store, self.phi),
                };
            }
        }
        enhancenet_telemetry::count("damgn.fold.misses", 1);
        let binding = self.bind(g, store, base_supports);
        let folded: Vec<Tensor> =
            binding.static_parts.iter().map(|&v| g.value(v).clone()).collect();
        *slot = Some((store.version(), folded));
        binding
    }

    /// The per-timestep adjacencies `A'_s = λ_A·A_s + λ_B·B + λ_C·C_t`
    /// (one `[B, N, N]` var per base support), computing `C_t` once from
    /// the signal `x_t ∈ [B, N, C]`.
    pub fn dynamic_supports_at(&self, g: &mut Graph, binding: &DamgnBinding, x_t: Var) -> Vec<Var> {
        let _timer = enhancenet_telemetry::span("damgn.dynamic_supports");
        enhancenet_telemetry::count("damgn.dynamic_supports.calls", 1);
        let q = g.matmul_broadcast_right(x_t, binding.theta);
        let k = g.matmul_broadcast_right(x_t, binding.phi);
        let logits = g.bmm_nt(q, k); // fused q·kᵀ
        let c = g.softmax(logits, -1);
        let wc = g.mul(binding.lambda_c, c); // [B, N, N]
        binding.static_parts.iter().map(|&sp| g.add(wc, sp)).collect()
    }

    /// Number of entities.
    pub fn num_entities(&self) -> usize {
        self.num_entities
    }

    /// Parameter ids of (λ_A, λ_B, λ_C), exposed for ablations and reports.
    pub fn lambda_ids(&self) -> (ParamId, ParamId, ParamId) {
        (self.lambda_a, self.lambda_b, self.lambda_c)
    }

    /// Parameter ids of the `B₁`/`B₂` memories (Figure 12 inspection).
    pub fn b_memory_ids(&self) -> (ParamId, ParamId) {
        (self.b1, self.b2)
    }

    /// Additional parameters DAMGN introduces: `2·N·M` memories, `2·C·E`
    /// embeddings, 3 lambdas (§V-B's scalability argument).
    pub fn parameter_formula(n: usize, c: usize, cfg: DamgnConfig) -> usize {
        2 * n * cfg.b_memory_dim + 2 * c * cfg.embed_dim + 3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make(n: usize, c: usize) -> (ParamStore, Damgn) {
        let mut store = ParamStore::new();
        let mut rng = TensorRng::seed(3);
        let d = Damgn::new(&mut store, &mut rng, "damgn", n, c, DamgnConfig::default());
        (store, d)
    }

    #[test]
    fn static_b_rows_are_distributions() {
        let (store, d) = make(6, 2);
        let mut g = Graph::new();
        let b = d.static_b(&mut g, &store);
        assert_eq!(g.value(b).shape(), &[6, 6]);
        let sums = g.value(b).sum_axis(-1);
        assert!(sums.data().iter().all(|&s| (s - 1.0).abs() < 1e-5));
        assert!(g.value(b).data().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn dynamic_c_shape_and_rows() {
        let (store, d) = make(4, 3);
        let mut g = Graph::new();
        let mut rng = TensorRng::seed(9);
        let x = g.constant(rng.normal(&[2, 4, 3], 0.0, 1.0));
        let c = d.dynamic_c(&mut g, &store, x);
        assert_eq!(g.value(c).shape(), &[2, 4, 4]);
        let sums = g.value(c).sum_axis(-1);
        assert!(sums.data().iter().all(|&s| (s - 1.0).abs() < 1e-5));
    }

    #[test]
    fn dynamic_c_changes_with_input() {
        // The defining property: the adjacency is time-specific.
        let (store, d) = make(4, 2);
        let mut g = Graph::new();
        let mut rng = TensorRng::seed(1);
        let x1 = g.constant(rng.normal(&[1, 4, 2], 0.0, 1.0));
        let x2 = g.constant(rng.normal(&[1, 4, 2], 0.0, 1.0));
        let c1 = d.dynamic_c(&mut g, &store, x1);
        let c2 = d.dynamic_c(&mut g, &store, x2);
        assert!(!g.value(c1).allclose(g.value(c2), 1e-4));
    }

    #[test]
    fn dynamic_c_can_be_asymmetric() {
        // θ ≠ φ means C[i,j] ≠ C[j,i] in general — the paper's motivation
        // for two embedding functions.
        let (store, d) = make(3, 2);
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 0.5, -0.5], &[1, 3, 2]));
        let c = d.dynamic_c(&mut g, &store, x);
        let v = g.value(c);
        let asym = (0..3)
            .flat_map(|i| (0..3).map(move |j| (i, j)))
            .any(|(i, j)| i < j && (v.at(&[0, i, j]) - v.at(&[0, j, i])).abs() > 1e-6);
        assert!(asym, "C was exactly symmetric");
    }

    #[test]
    fn combined_reduces_to_a_when_lambdas_zero() {
        // "when λ_B and λ_C are 0, it reduces to a normal graph
        // convolution" — the paper's sanity property.
        let (mut store, d) = make(4, 2);
        *store.value_mut(d.lambda_ids().1) = Tensor::scalar(0.0);
        *store.value_mut(d.lambda_ids().2) = Tensor::scalar(0.0);
        let mut g = Graph::new();
        let a_t = Tensor::from_vec((0..16).map(|v| (v % 5) as f32 * 0.1).collect(), &[4, 4]);
        let a = g.constant(a_t.clone());
        let mut rng = TensorRng::seed(4);
        let x = g.constant(rng.normal(&[2, 4, 2], 0.0, 1.0));
        let combined = d.combined(&mut g, &store, a, x);
        assert_eq!(g.value(combined).shape(), &[2, 4, 4]);
        for b in 0..2 {
            assert!(g.value(combined).index_axis(0, b).allclose(&a_t, 1e-5));
        }
    }

    #[test]
    fn gradients_reach_all_damgn_parameters() {
        let (mut store, d) = make(5, 3);
        let mut g = Graph::new();
        let a = g.constant(Tensor::eye(5));
        let mut rng = TensorRng::seed(8);
        let x = g.constant(rng.normal(&[2, 5, 3], 0.0, 1.0));
        let combined = d.combined(&mut g, &store, a, x);
        let sq = g.square(combined);
        let loss = g.sum_all(sq);
        g.backward(loss);
        g.write_grads(&mut store);
        for id in store.ids() {
            assert!(store.grad(id).norm() > 0.0, "no grad for {}", store.name(id));
        }
    }

    #[test]
    fn bound_dynamic_supports_match_combined() {
        let (store, d) = make(4, 2);
        let mut g = Graph::new();
        let a_t = Tensor::from_vec((0..16).map(|v| v as f32 * 0.05).collect(), &[4, 4]);
        let a = g.constant(a_t);
        let mut rng = TensorRng::seed(6);
        let x = g.constant(rng.normal(&[3, 4, 2], 0.0, 1.0));
        let direct = d.combined(&mut g, &store, a, x);
        let binding = d.bind(&mut g, &store, &[a]);
        let via_binding = d.dynamic_supports_at(&mut g, &binding, x);
        assert_eq!(via_binding.len(), 1);
        assert!(g.value(via_binding[0]).allclose(g.value(direct), 1e-5));
    }

    #[test]
    fn fold_cache_matches_tracked_bind_bitwise() {
        let (store, d) = make(4, 2);
        let cache = StaticFoldCache::new();
        let a_t = Tensor::from_vec((0..16).map(|v| v as f32 * 0.05).collect(), &[4, 4]);
        let mut rng = TensorRng::seed(6);
        let x_t = rng.normal(&[2, 4, 2], 0.0, 1.0);
        let run = |use_cache: bool| {
            let mut g = Graph::new();
            let a = g.constant(a_t.clone());
            let x = g.constant(x_t.clone());
            let binding = if use_cache {
                d.bind_cached(&mut g, &store, &[a], &cache, false)
            } else {
                d.bind(&mut g, &store, &[a])
            };
            let out = d.dynamic_supports_at(&mut g, &binding, x);
            g.value(out[0]).clone()
        };
        let tracked = run(false);
        let miss = run(true); // populates the cache
        assert!(cache.is_populated());
        let hit = run(true); // serves the folded constants
        assert_eq!(tracked.data(), miss.data());
        assert_eq!(tracked.data(), hit.data());
    }

    #[test]
    fn fold_cache_invalidates_on_weight_update() {
        let (mut store, d) = make(3, 2);
        let cache = StaticFoldCache::new();
        let mut g = Graph::new();
        let a = g.constant(Tensor::eye(3));
        let _ = d.bind_cached(&mut g, &store, &[a], &cache, false);
        let v0 = store.version();
        *store.value_mut(d.lambda_ids().0) = Tensor::scalar(2.0);
        assert!(store.version() > v0);
        // The next eval bind must refold with λ_A = 2, matching a fresh
        // tracked bind rather than serving the stale cache entry.
        let mut g2 = Graph::new();
        let a2 = g2.constant(Tensor::eye(3));
        let cached = d.bind_cached(&mut g2, &store, &[a2], &cache, false);
        let mut g3 = Graph::new();
        let a3 = g3.constant(Tensor::eye(3));
        let fresh = d.bind(&mut g3, &store, &[a3]);
        assert_eq!(g2.value(cached.static_parts[0]).data(), g3.value(fresh.static_parts[0]).data());
    }

    #[test]
    fn training_bind_skips_the_cache() {
        let (store, d) = make(3, 2);
        let cache = StaticFoldCache::new();
        let mut g = Graph::new();
        let a = g.constant(Tensor::eye(3));
        let _ = d.bind_cached(&mut g, &store, &[a], &cache, true);
        assert!(!cache.is_populated(), "training forwards must not populate the fold cache");
    }

    #[test]
    fn parameter_formula_matches_store() {
        let (store, _) = make(20, 4);
        assert_eq!(store.num_scalars(), Damgn::parameter_formula(20, 4, DamgnConfig::default()));
    }

    #[test]
    fn parameter_count_scales_linearly_not_quadratically() {
        let cfg = DamgnConfig::default();
        let p100 = Damgn::parameter_formula(100, 2, cfg);
        let p200 = Damgn::parameter_formula(200, 2, cfg);
        // Doubling N adds 2·100·M, far below the N² = 30000 a dense B would
        // have added.
        assert_eq!(p200 - p100, 2 * 100 * cfg.b_memory_dim);
        assert!(p200 < 200 * 200);
    }
}
