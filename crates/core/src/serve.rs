//! Online forecast serving: sliding-window state, micro-batching, and
//! graceful degradation around a trained [`Forecaster`].
//!
//! The offline path (train → [`crate::Trainer::evaluate`]) assumes the whole
//! dataset is materialized. A deployed forecaster instead sees a stream of
//! raw observations and must answer "what happens over the next `F` steps?"
//! at any moment, within a latency budget. [`ForecastService`] closes that
//! gap:
//!
//! * **Sliding-window state** — raw observations are ingested into a
//!   [`SlidingWindow`] ring buffer; the stored [`StandardScaler`] is applied
//!   at window-assembly time, so a served window is bit-identical to the
//!   offline window for the same observations.
//! * **Micro-batching** — requests funnel through a bounded queue to a
//!   worker thread that owns the model. The worker drains up to
//!   [`ServeConfig::max_batch`] queued requests (waiting at most
//!   [`ServeConfig::max_wait`] for stragglers) and answers them with one
//!   batched forward pass, amortizing the per-tape cost — the same
//!   amortization argument as the DAMGN static fold
//!   ([`crate::damgn::StaticFoldCache`]), one level up.
//! * **Graceful degradation** — every request carries a deadline. On
//!   timeout, an overloaded queue, a worker panic, or a still-warming
//!   buffer, the caller gets a persistence forecast (each entity's last
//!   observation repeated across the horizon) marked
//!   [`Forecast::degraded`] instead of an error or a hang.
//!
//! Telemetry: counters `serve.request`, `serve.fallback`,
//! `serve.queue.rejected`, `serve.worker.panics`; histograms
//! `serve.batch.size`, `serve.latency_ns`, `serve.forward_ns`; span
//! `serve.batch`.

use crate::error::EnhanceNetError;
use crate::forecaster::Forecaster;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use enhancenet_data::{SlidingWindow, StandardScaler};
use enhancenet_tensor::Tensor;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Serving policy knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Largest batch one forward pass may serve (must be > 0).
    pub max_batch: usize,
    /// How long the worker waits for more requests once it holds one.
    /// `Duration::ZERO` (the default) batches only what is already queued,
    /// so a lone request pays no batching latency.
    pub max_wait: Duration,
    /// Bound of the request queue (must be > 0); a full queue degrades
    /// new requests immediately instead of building unbounded backlog.
    pub queue_capacity: usize,
    /// Per-request deadline: how long [`ForecastService::forecast`] waits
    /// for the model before falling back to a persistence forecast.
    pub deadline: Duration,
    /// Feature index forecasts are reported in (raw scale).
    pub target_feature: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_batch: 8,
            max_wait: Duration::ZERO,
            queue_capacity: 64,
            deadline: Duration::from_millis(250),
            target_feature: 0,
        }
    }
}

/// One served forecast.
#[derive(Debug, Clone)]
pub struct Forecast {
    /// Raw-scale predictions `[F, N]` of the target feature.
    pub values: Tensor,
    /// True when this is a fallback persistence forecast (deadline missed,
    /// queue full, worker panicked, or window still warming up) rather
    /// than a model forecast.
    pub degraded: bool,
    /// Newest observation timestamp the forecast is anchored at.
    pub anchor: Option<i64>,
}

/// A request travelling to the batch worker: one scaled `[H, N, C]` window
/// plus the channel its scaled `[F, N]` prediction comes back on.
struct BatchRequest {
    window: Tensor,
    reply: Sender<Result<Tensor, EnhanceNetError>>,
}

/// Handle to an in-flight prediction submitted with
/// [`ForecastService::submit`].
#[derive(Debug)]
pub struct PendingForecast {
    rx: Receiver<Result<Tensor, EnhanceNetError>>,
    /// When the request entered the queue. The deadline clock starts here,
    /// not at [`PendingForecast::wait`]: time spent queued behind other
    /// requests counts against the latency budget, matching what the caller
    /// actually experiences.
    submitted: Instant,
}

impl PendingForecast {
    /// Waits until `deadline` *measured from submission* for the scaled
    /// `[F, N]` prediction.
    ///
    /// The budget starts when [`ForecastService::submit`] accepted the
    /// request, so queue time already spent is subtracted; calling `wait`
    /// after the deadline has lapsed still polls once for an
    /// already-delivered reply before giving up.
    ///
    /// Returns [`EnhanceNetError::DeadlineExceeded`] on timeout and
    /// [`EnhanceNetError::ServiceStopped`] when the worker is gone; a
    /// late-arriving reply after a timeout is dropped harmlessly.
    pub fn wait(&self, deadline: Duration) -> Result<Tensor, EnhanceNetError> {
        let remaining = deadline.saturating_sub(self.submitted.elapsed());
        match self.rx.recv_timeout(remaining) {
            Ok(result) => result,
            Err(RecvTimeoutError::Timeout) => Err(EnhanceNetError::DeadlineExceeded { deadline }),
            Err(RecvTimeoutError::Disconnected) => Err(EnhanceNetError::ServiceStopped),
        }
    }
}

/// An online forecasting endpoint wrapping a trained model.
///
/// Ingest raw observations with [`ForecastService::ingest`], ask for
/// forecasts with [`ForecastService::forecast`]. The model lives on a
/// dedicated worker thread; [`ForecastService::submit`] exposes the raw
/// micro-batching path for callers managing their own windows (benchmarks,
/// fan-out frontends).
pub struct ForecastService {
    tx: Option<Sender<BatchRequest>>,
    worker: Option<JoinHandle<()>>,
    buffer: SlidingWindow,
    scaler: StandardScaler,
    config: ServeConfig,
    input: [usize; 3],
    horizon: usize,
}

impl ForecastService {
    /// Wraps `model` (which moves to the worker thread) behind a serving
    /// endpoint. `scaler` must be the scaler the model was trained with —
    /// [`crate::Trainer`] users take it from `WindowDataset::scaler`.
    ///
    /// Fails with [`EnhanceNetError::UnknownInputShape`] when the model
    /// does not report its `[H, N, C]` input shape (needed to size the
    /// sliding window), or [`EnhanceNetError::InvalidConfig`] for a zero
    /// `max_batch`/`queue_capacity`.
    pub fn new(
        model: Box<dyn Forecaster + Send>,
        scaler: StandardScaler,
        config: ServeConfig,
    ) -> Result<Self, EnhanceNetError> {
        if config.max_batch == 0 {
            return Err(EnhanceNetError::InvalidConfig {
                field: "max_batch",
                reason: "must be > 0".into(),
            });
        }
        if config.queue_capacity == 0 {
            return Err(EnhanceNetError::InvalidConfig {
                field: "queue_capacity",
                reason: "must be > 0".into(),
            });
        }
        let input = model.input_shape().ok_or_else(|| EnhanceNetError::UnknownInputShape {
            model: model.name().to_string(),
        })?;
        if config.target_feature >= input[2] {
            return Err(EnhanceNetError::InvalidConfig {
                field: "target_feature",
                reason: format!("must be < {} features, got {}", input[2], config.target_feature),
            });
        }
        let horizon = model.horizon();
        let (tx, rx) = bounded(config.queue_capacity);
        let (max_batch, max_wait) = (config.max_batch, config.max_wait);
        let worker = std::thread::Builder::new()
            .name("forecast-worker".into())
            .spawn(move || worker_loop(model, rx, max_batch, max_wait))
            .expect("failed to spawn forecast worker thread");
        Ok(Self {
            tx: Some(tx),
            worker: Some(worker),
            buffer: SlidingWindow::new(input[0], input[1], input[2]),
            scaler,
            config,
            input,
            horizon,
        })
    }

    /// The `[H, N, C]` window shape this service assembles.
    pub fn input_shape(&self) -> [usize; 3] {
        self.input
    }

    /// Forecast horizon `F`.
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// True once enough history is buffered for a model forecast.
    pub fn is_ready(&self) -> bool {
        self.buffer.is_ready()
    }

    /// The sliding-window state (timestamps retained, readiness).
    pub fn state(&self) -> &SlidingWindow {
        &self.buffer
    }

    /// Ingests one entity's raw observation at `timestamp`; see
    /// [`SlidingWindow::ingest`] for the fill-forward and late-update
    /// semantics.
    pub fn ingest(
        &mut self,
        timestamp: i64,
        entity: usize,
        features: &[f32],
    ) -> Result<(), EnhanceNetError> {
        self.buffer.ingest(timestamp, entity, features).map_err(Into::into)
    }

    /// Ingests a full raw snapshot row (`N * C` values) at `timestamp`.
    pub fn ingest_row(&mut self, timestamp: i64, row: &[f32]) -> Result<(), EnhanceNetError> {
        self.buffer.ingest_row(timestamp, row).map_err(Into::into)
    }

    /// Drops buffered history older than `cutoff` (e.g. after a feed gap).
    pub fn evict_before(&mut self, cutoff: i64) {
        self.buffer.evict_before(cutoff);
    }

    /// Forecasts the next `F` steps from the current window, degrading to a
    /// persistence forecast when the model cannot answer in time.
    ///
    /// Errors only when *nothing* can be served: no observation has ever
    /// been ingested ([`EnhanceNetError::NotReady`]) or the scaler rejects
    /// the window shape. Every other failure path — missed deadline, full
    /// queue, worker panic, warming buffer — returns a degraded forecast.
    pub fn forecast(&self) -> Result<Forecast, EnhanceNetError> {
        enhancenet_telemetry::count("serve.request", 1);
        let started = Instant::now();
        let anchor = self.buffer.latest_timestamp();
        let Some(raw) = self.buffer.window() else {
            // Warming up: serve persistence off whatever history exists.
            return self.fallback(anchor, started);
        };
        let scaled = self.scaler.transform(&raw)?;
        let pending = match self.submit(&scaled) {
            Ok(pending) => pending,
            Err(_) => return self.fallback(anchor, started),
        };
        match pending.wait(self.config.deadline) {
            Ok(scaled_pred) => {
                let values = self.scaler.inverse_feature(&scaled_pred, self.config.target_feature);
                enhancenet_telemetry::observe(
                    "serve.latency_ns",
                    started.elapsed().as_nanos() as f64,
                );
                Ok(Forecast { values, degraded: false, anchor })
            }
            Err(_) => self.fallback(anchor, started),
        }
    }

    /// Submits a pre-scaled `[H, N, C]` window to the batch worker without
    /// blocking; pair with [`PendingForecast::wait`]. This is the fan-out
    /// path: submit many windows, then collect, and the worker serves them
    /// in micro-batches.
    pub fn submit(&self, scaled_window: &Tensor) -> Result<PendingForecast, EnhanceNetError> {
        if scaled_window.shape() != self.input {
            return Err(EnhanceNetError::InputShape {
                expected: self.input.to_vec(),
                got: scaled_window.shape().to_vec(),
            });
        }
        let tx = self.tx.as_ref().ok_or(EnhanceNetError::ServiceStopped)?;
        let (reply_tx, reply_rx) = bounded(1);
        let request = BatchRequest { window: scaled_window.clone(), reply: reply_tx };
        match tx.try_send(request) {
            Ok(()) => Ok(PendingForecast { rx: reply_rx, submitted: Instant::now() }),
            Err(TrySendError::Full(_)) => {
                enhancenet_telemetry::count("serve.queue.rejected", 1);
                Err(EnhanceNetError::Overloaded { capacity: self.config.queue_capacity })
            }
            Err(TrySendError::Disconnected(_)) => Err(EnhanceNetError::ServiceStopped),
        }
    }

    /// Stops the worker and joins it. Also runs on drop; calling it
    /// explicitly surfaces the join point in the caller's control flow.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn fallback(&self, anchor: Option<i64>, started: Instant) -> Result<Forecast, EnhanceNetError> {
        let values = self
            .buffer
            .persistence_forecast(self.horizon, self.config.target_feature)
            .ok_or(EnhanceNetError::NotReady { have: self.buffer.len(), need: self.input[0] })?;
        enhancenet_telemetry::count("serve.fallback", 1);
        enhancenet_telemetry::observe("serve.latency_ns", started.elapsed().as_nanos() as f64);
        Ok(Forecast { values, degraded: true, anchor })
    }

    fn stop(&mut self) {
        drop(self.tx.take());
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

impl Drop for ForecastService {
    fn drop(&mut self) {
        self.stop();
    }
}

/// The batch worker: block for one request, drain stragglers up to
/// `max_batch`/`max_wait`, answer the whole batch with one forward pass.
/// Exits when every [`ForecastService`] sender is dropped.
fn worker_loop(
    model: Box<dyn Forecaster + Send>,
    rx: Receiver<BatchRequest>,
    max_batch: usize,
    max_wait: Duration,
) {
    while let Ok(first) = rx.recv() {
        let mut batch = vec![first];
        let wait_until = Instant::now() + max_wait;
        while batch.len() < max_batch {
            // Queued requests join for free; otherwise wait out max_wait.
            if let Ok(request) = rx.try_recv() {
                batch.push(request);
                continue;
            }
            let now = Instant::now();
            if now >= wait_until {
                break;
            }
            match rx.recv_timeout(wait_until - now) {
                Ok(request) => batch.push(request),
                Err(_) => break,
            }
        }
        serve_batch(model.as_ref(), &batch);
    }
}

/// Runs one batched forward and distributes per-request replies. A panic in
/// the model is contained here: every waiter gets an error (and so falls
/// back to persistence) and the worker stays alive for later requests.
fn serve_batch(model: &dyn Forecaster, batch: &[BatchRequest]) {
    let _span = enhancenet_telemetry::span("serve.batch");
    enhancenet_telemetry::observe("serve.batch.size", batch.len() as f64);
    let windows: Vec<Tensor> = batch.iter().map(|r| r.window.unsqueeze(0)).collect();
    let refs: Vec<&Tensor> = windows.iter().collect();
    let x = Tensor::concat(&refs, 0);
    let started = Instant::now();
    match catch_unwind(AssertUnwindSafe(|| model.predict(&x))) {
        Ok(Ok(pred)) => {
            enhancenet_telemetry::observe("serve.forward_ns", started.elapsed().as_nanos() as f64);
            for (i, request) in batch.iter().enumerate() {
                let _ = request.reply.send(Ok(pred.index_axis(0, i)));
            }
        }
        Ok(Err(e)) => {
            for request in batch {
                let _ = request.reply.send(Err(e.clone()));
            }
        }
        Err(_) => {
            enhancenet_telemetry::count("serve.worker.panics", 1);
            for request in batch {
                let _ = request.reply.send(Err(EnhanceNetError::ServiceStopped));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forecaster::test_model::AffinePersistence;
    use crate::forecaster::{Forecaster, ForwardCtx};
    use enhancenet_autodiff::{Graph, ParamStore, Var};
    use enhancenet_tensor::TensorRng;

    const H: usize = 5;
    const N: usize = 3;
    const C: usize = 1;
    const F: usize = 4;

    fn scaler() -> StandardScaler {
        let mut rng = TensorRng::seed(11);
        let history = rng.normal(&[40, N, C], 50.0, 10.0);
        StandardScaler::fit(&history, 30).unwrap()
    }

    fn service(config: ServeConfig) -> ForecastService {
        let model = AffinePersistence::new(F).with_input_shape(H, N, C);
        ForecastService::new(Box::new(model), scaler(), config).unwrap()
    }

    fn feed(svc: &mut ForecastService, steps: usize) {
        for t in 0..steps {
            for e in 0..N {
                svc.ingest(t as i64, e, &[40.0 + t as f32 + e as f32]).unwrap();
            }
        }
    }

    #[test]
    fn served_forecast_matches_offline_predict() {
        let mut svc = service(ServeConfig::default());
        feed(&mut svc, H);
        let served = svc.forecast().unwrap();
        assert!(!served.degraded);
        assert_eq!(served.anchor, Some(H as i64 - 1));
        assert_eq!(served.values.shape(), &[F, N]);

        // The offline path over the same observations, scaled the same way.
        let model = AffinePersistence::new(F).with_input_shape(H, N, C);
        let sc = scaler();
        let raw = svc.state().window().unwrap();
        let offline = sc.inverse_feature(&model.predict(&sc.transform(&raw).unwrap()).unwrap(), 0);
        assert_eq!(served.values.data(), offline.data());
    }

    #[test]
    fn empty_service_reports_not_ready() {
        let svc = service(ServeConfig::default());
        match svc.forecast() {
            Err(EnhanceNetError::NotReady { have: 0, need }) => assert_eq!(need, H),
            other => panic!("expected NotReady, got {other:?}"),
        }
    }

    #[test]
    fn warming_buffer_serves_degraded_persistence() {
        let mut svc = service(ServeConfig::default());
        svc.ingest(0, 0, &[42.0]).unwrap();
        let f = svc.forecast().unwrap();
        assert!(f.degraded);
        assert_eq!(f.values.shape(), &[F, N]);
        assert_eq!(f.values.at(&[0, 0]), 42.0);
        assert_eq!(f.values.at(&[F - 1, 0]), 42.0);
        // Entities never observed persist their fill value.
        assert_eq!(f.values.at(&[0, 1]), 0.0);
    }

    /// A model that sleeps in `forward`, simulating an overloaded backend.
    struct SlowModel {
        inner: AffinePersistence,
        sleep: Duration,
    }

    impl Forecaster for SlowModel {
        fn name(&self) -> &str {
            "slow"
        }
        fn store(&self) -> &ParamStore {
            self.inner.store()
        }
        fn store_mut(&mut self) -> &mut ParamStore {
            self.inner.store_mut()
        }
        fn horizon(&self) -> usize {
            self.inner.horizon()
        }
        fn input_shape(&self) -> Option<[usize; 3]> {
            self.inner.input_shape()
        }
        fn forward(&self, g: &mut Graph, x: &Tensor, ctx: &mut ForwardCtx) -> Var {
            std::thread::sleep(self.sleep);
            self.inner.forward(g, x, ctx)
        }
    }

    #[test]
    fn missed_deadline_degrades_without_hanging() {
        let model = SlowModel {
            inner: AffinePersistence::new(F).with_input_shape(H, N, C),
            sleep: Duration::from_millis(200),
        };
        let config = ServeConfig { deadline: Duration::from_millis(5), ..Default::default() };
        let mut svc = ForecastService::new(Box::new(model), scaler(), config).unwrap();
        feed(&mut svc, H);
        let started = Instant::now();
        let f = svc.forecast().unwrap();
        assert!(f.degraded, "a missed deadline must degrade, not block");
        assert!(
            started.elapsed() < Duration::from_millis(150),
            "forecast blocked past its deadline: {:?}",
            started.elapsed()
        );
        svc.shutdown();
    }

    #[test]
    fn wait_deadline_includes_queue_time() {
        // A pending forecast whose worker never answers: the deadline clock
        // started at submission, so by the time the caller gets around to
        // waiting, most of the budget is already spent and `wait` must
        // return almost immediately instead of granting a fresh full budget.
        let (_tx, rx) = bounded::<Result<Tensor, EnhanceNetError>>(1);
        let pending = PendingForecast { rx, submitted: Instant::now() };
        let deadline = Duration::from_millis(50);
        std::thread::sleep(Duration::from_millis(120));
        let waited = Instant::now();
        match pending.wait(deadline) {
            Err(EnhanceNetError::DeadlineExceeded { deadline: d }) => assert_eq!(d, deadline),
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert!(
            waited.elapsed() < deadline,
            "wait granted a fresh budget after the deadline had lapsed in the queue: {:?}",
            waited.elapsed()
        );

        // A reply that landed within budget is still collectable even when
        // the caller polls late — lapsed budget drops to a non-blocking poll,
        // not an unconditional error.
        let (tx, rx) = bounded::<Result<Tensor, EnhanceNetError>>(1);
        let pending = PendingForecast { rx, submitted: Instant::now() };
        tx.send(Ok(Tensor::zeros(&[F, N]))).unwrap();
        std::thread::sleep(Duration::from_millis(60));
        assert!(pending.wait(deadline).is_ok(), "delivered reply must survive a late wait");
    }

    /// A model whose forward panics, simulating a poisoned worker.
    struct PanickyModel {
        inner: AffinePersistence,
    }

    impl Forecaster for PanickyModel {
        fn name(&self) -> &str {
            "panicky"
        }
        fn store(&self) -> &ParamStore {
            self.inner.store()
        }
        fn store_mut(&mut self) -> &mut ParamStore {
            self.inner.store_mut()
        }
        fn horizon(&self) -> usize {
            self.inner.horizon()
        }
        fn input_shape(&self) -> Option<[usize; 3]> {
            self.inner.input_shape()
        }
        fn forward(&self, _g: &mut Graph, _x: &Tensor, _ctx: &mut ForwardCtx) -> Var {
            panic!("injected model failure");
        }
    }

    #[test]
    fn worker_panic_degrades_and_service_survives() {
        let model = PanickyModel { inner: AffinePersistence::new(F).with_input_shape(H, N, C) };
        let mut svc =
            ForecastService::new(Box::new(model), scaler(), ServeConfig::default()).unwrap();
        feed(&mut svc, H);
        let first = svc.forecast().unwrap();
        assert!(first.degraded);
        // The worker survived the panic and still answers.
        let second = svc.forecast().unwrap();
        assert!(second.degraded);
        svc.shutdown();
    }

    #[test]
    fn full_queue_rejects_submissions() {
        let model = SlowModel {
            inner: AffinePersistence::new(F).with_input_shape(H, N, C),
            sleep: Duration::from_millis(100),
        };
        let config = ServeConfig { max_batch: 1, queue_capacity: 1, ..Default::default() };
        let svc = ForecastService::new(Box::new(model), scaler(), config).unwrap();
        let window = Tensor::zeros(&[H, N, C]);
        let pendings: Vec<_> = (0..8).map(|_| svc.submit(&window)).collect();
        let rejected = pendings
            .iter()
            .filter(|p| matches!(p, Err(EnhanceNetError::Overloaded { capacity: 1 })))
            .count();
        assert!(rejected >= 1, "a 1-deep queue must reject an 8-burst");
        // Accepted requests still complete.
        for pending in pendings.into_iter().flatten() {
            assert!(pending.wait(Duration::from_secs(5)).is_ok());
        }
    }

    #[test]
    fn micro_batch_replies_match_sequential_submissions() {
        let config =
            ServeConfig { max_batch: 4, max_wait: Duration::from_millis(25), ..Default::default() };
        let svc = service(config);
        let mut rng = TensorRng::seed(7);
        let windows: Vec<Tensor> = (0..4).map(|_| rng.normal(&[H, N, C], 0.0, 1.0)).collect();
        let pendings: Vec<PendingForecast> =
            windows.iter().map(|w| svc.submit(w).unwrap()).collect();
        let model = AffinePersistence::new(F).with_input_shape(H, N, C);
        for (window, pending) in windows.iter().zip(pendings) {
            let batched = pending.wait(Duration::from_secs(5)).unwrap();
            let solo = model.predict(window).unwrap();
            assert_eq!(batched.shape(), &[F, N]);
            assert_eq!(batched.data(), solo.data(), "batched reply diverged from solo predict");
        }
    }

    #[test]
    fn submit_validates_window_shape() {
        let svc = service(ServeConfig::default());
        match svc.submit(&Tensor::zeros(&[H, N + 1, C])) {
            Err(EnhanceNetError::InputShape { expected, got }) => {
                assert_eq!(expected, vec![H, N, C]);
                assert_eq!(got, vec![H, N + 1, C]);
            }
            other => panic!("expected InputShape, got {other:?}"),
        }
    }

    #[test]
    fn config_validation_is_typed() {
        let model = AffinePersistence::new(F).with_input_shape(H, N, C);
        let config = ServeConfig { max_batch: 0, ..Default::default() };
        match ForecastService::new(Box::new(model), scaler(), config) {
            Err(EnhanceNetError::InvalidConfig { field: "max_batch", .. }) => {}
            other => panic!("expected InvalidConfig, got {:?}", other.err()),
        }
        // A model without a declared input shape cannot be served.
        let bare = AffinePersistence::new(F);
        match ForecastService::new(Box::new(bare), scaler(), ServeConfig::default()) {
            Err(EnhanceNetError::UnknownInputShape { .. }) => {}
            other => panic!("expected UnknownInputShape, got {:?}", other.err()),
        }
    }
}
