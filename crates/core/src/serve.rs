//! Online forecast serving: sliding-window state, micro-batching, and
//! graceful degradation around a trained [`Forecaster`].
//!
//! The offline path (train → [`crate::Trainer::evaluate`]) assumes the whole
//! dataset is materialized. A deployed forecaster instead sees a stream of
//! raw observations and must answer "what happens over the next `F` steps?"
//! at any moment, within a latency budget. [`ForecastService`] closes that
//! gap:
//!
//! * **Sliding-window state** — raw observations are ingested into a
//!   [`SlidingWindow`] ring buffer; the stored [`StandardScaler`] is applied
//!   at window-assembly time, so a served window is bit-identical to the
//!   offline window for the same observations.
//! * **Micro-batching** — requests funnel through a bounded queue to a
//!   worker thread that owns the model. The worker drains up to
//!   [`ServeConfig::max_batch`] queued requests (waiting at most
//!   [`ServeConfig::max_wait`] for stragglers) and answers them with one
//!   batched forward pass, amortizing the per-tape cost — the same
//!   amortization argument as the DAMGN static fold
//!   ([`crate::damgn::StaticFoldCache`]), one level up.
//! * **Graceful degradation** — every request carries a deadline. On
//!   timeout, an overloaded queue, a worker panic, or a still-warming
//!   buffer, the caller gets a persistence forecast (each entity's last
//!   observation repeated across the horizon) tagged with its
//!   [`DegradedCause`] instead of an error or a hang.
//! * **Live observability** — every [`ForecastService::forecast`] carries a
//!   monotonic request id and comes back with a [`RequestTiming`] breakdown
//!   (queue wait vs. forward vs. total). Outcomes feed a rolling
//!   [`SloWindow`], surfaced as `serve.slo.*` gauges and
//!   [`ForecastService::slo_report`]; setting
//!   [`ServeConfig::metrics_addr`] starts an embedded [`MetricsServer`]
//!   answering `/metrics`, `/healthz`, and `/readyz` (ready ⇔ window warm
//!   and worker alive).
//!
//! Telemetry: counters `serve.request`, `serve.fallback` (plus per-cause
//! `serve.fallback.{cold,deadline,queue_full,panic}`),
//! `serve.queue.rejected`, `serve.worker.panics`; gauges
//! `serve.queue.depth`, `serve.window.fill`, `serve.slo.*`; histograms
//! `serve.batch.size`, `serve.latency_ns`, `serve.forward_ns`,
//! `serve.queue.wait_ns`; span `serve.batch`.

use crate::error::EnhanceNetError;
use crate::forecaster::Forecaster;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use enhancenet_data::{SlidingWindow, StandardScaler};
use enhancenet_telemetry::{MetricsServer, SloReport, SloWindow};
use enhancenet_tensor::Tensor;
use std::net::SocketAddr;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Serving policy knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Largest batch one forward pass may serve (must be > 0).
    pub max_batch: usize,
    /// How long the worker waits for more requests once it holds one.
    /// `Duration::ZERO` (the default) batches only what is already queued,
    /// so a lone request pays no batching latency.
    pub max_wait: Duration,
    /// Bound of the request queue (must be > 0); a full queue degrades
    /// new requests immediately instead of building unbounded backlog.
    pub queue_capacity: usize,
    /// Per-request deadline: how long [`ForecastService::forecast`] waits
    /// for the model before falling back to a persistence forecast.
    pub deadline: Duration,
    /// Feature index forecasts are reported in (raw scale).
    pub target_feature: usize,
    /// When set, the service binds an embedded [`MetricsServer`] here
    /// (e.g. `"127.0.0.1:9898"`, port 0 for ephemeral) serving
    /// `/metrics`, `/healthz`, and `/readyz`. `None` (the default) runs
    /// without a listener.
    pub metrics_addr: Option<String>,
    /// Span of the rolling SLO window (must be long enough to give every
    /// slot at least one nanosecond).
    pub slo_window: Duration,
    /// Ring slots the SLO window is resolved into (must be > 0). More
    /// slots age traffic out more smoothly at slightly more report cost.
    pub slo_slots: usize,
    /// Deadline hit-rate objective in `(0, 1]`; the error-budget burn in
    /// [`SloReport`] is measured against this target.
    pub slo_target: f64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_batch: 8,
            max_wait: Duration::ZERO,
            queue_capacity: 64,
            deadline: Duration::from_millis(250),
            target_feature: 0,
            metrics_addr: None,
            slo_window: Duration::from_secs(60),
            slo_slots: 12,
            slo_target: 0.99,
        }
    }
}

/// Why a [`Forecast`] was served from the persistence fallback instead of
/// the model. Each cause also increments its own
/// `serve.fallback.{cold,deadline,queue_full,panic}` counter, so a scrape
/// can tell a warming replica from an overloaded one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DegradedCause {
    /// The sliding window has not buffered a full `[H, N, C]` history yet.
    ColdWindow,
    /// The model did not answer within [`ServeConfig::deadline`].
    Deadline,
    /// The request queue was at capacity when the request arrived.
    QueueFull,
    /// The worker panicked, answered with a model error, or is gone.
    WorkerPanic,
}

impl DegradedCause {
    /// Stable lowercase tag (`cold_window`, `deadline`, `queue_full`,
    /// `panic`) — what replies and event payloads are tagged with.
    pub fn as_str(self) -> &'static str {
        match self {
            DegradedCause::ColdWindow => "cold_window",
            DegradedCause::Deadline => "deadline",
            DegradedCause::QueueFull => "queue_full",
            DegradedCause::WorkerPanic => "panic",
        }
    }

    /// The per-cause fallback counter this cause increments.
    pub fn counter_label(self) -> &'static str {
        match self {
            DegradedCause::ColdWindow => "serve.fallback.cold",
            DegradedCause::Deadline => "serve.fallback.deadline",
            DegradedCause::QueueFull => "serve.fallback.queue_full",
            DegradedCause::WorkerPanic => "serve.fallback.panic",
        }
    }
}

/// Per-request latency attribution carried on every [`Forecast`].
///
/// `queue_wait_ns` and `forward_ns` are measured by the batch worker
/// (zero on fallback paths, which never reach it); `total_ns` is the
/// caller-observed wall time from request entry to reply.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RequestTiming {
    /// Time the request sat queued before its batch was assembled.
    pub queue_wait_ns: u64,
    /// Duration of the batched forward pass that answered the request.
    pub forward_ns: u64,
    /// End-to-end latency observed by [`ForecastService::forecast`].
    pub total_ns: u64,
}

/// One served forecast.
#[derive(Debug, Clone)]
pub struct Forecast {
    /// Raw-scale predictions `[F, N]` of the target feature.
    pub values: Tensor,
    /// `Some(cause)` when this is a fallback persistence forecast rather
    /// than a model forecast; `None` for a healthy model answer.
    pub degraded: Option<DegradedCause>,
    /// Newest observation timestamp the forecast is anchored at.
    pub anchor: Option<i64>,
    /// Monotonic id assigned at request entry; flows through queue, batch,
    /// and reply, so one request can be traced across log lines.
    pub request_id: u64,
    /// Where this request's latency went.
    pub timing: RequestTiming,
}

impl Forecast {
    /// True when this forecast came from the persistence fallback.
    pub fn is_degraded(&self) -> bool {
        self.degraded.is_some()
    }
}

/// What the batch worker sends back: the scaled `[F, N]` prediction plus
/// the worker-side timing attribution.
struct BatchReply {
    values: Tensor,
    queue_wait_ns: u64,
    forward_ns: u64,
}

/// A request travelling to the batch worker: one scaled `[H, N, C]` window
/// plus the channel its reply comes back on.
struct BatchRequest {
    id: u64,
    window: Tensor,
    /// When the request entered the queue; the worker turns this into the
    /// per-request `serve.queue.wait_ns` observation at batch assembly.
    submitted: Instant,
    reply: Sender<Result<BatchReply, EnhanceNetError>>,
}

/// Handle to an in-flight prediction submitted with
/// [`ForecastService::submit`].
#[derive(Debug)]
pub struct PendingForecast {
    rx: Receiver<Result<BatchReply, EnhanceNetError>>,
    /// When the request entered the queue. The deadline clock starts here,
    /// not at [`PendingForecast::wait`]: time spent queued behind other
    /// requests counts against the latency budget, matching what the caller
    /// actually experiences.
    submitted: Instant,
    id: u64,
}

impl std::fmt::Debug for BatchReply {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchReply")
            .field("queue_wait_ns", &self.queue_wait_ns)
            .field("forward_ns", &self.forward_ns)
            .finish_non_exhaustive()
    }
}

impl PendingForecast {
    /// The monotonic request id assigned at submission.
    pub fn request_id(&self) -> u64 {
        self.id
    }

    /// Waits until `deadline` *measured from submission* for the scaled
    /// `[F, N]` prediction.
    ///
    /// The budget starts when [`ForecastService::submit`] accepted the
    /// request, so queue time already spent is subtracted; calling `wait`
    /// after the deadline has lapsed still polls once for an
    /// already-delivered reply before giving up.
    ///
    /// Returns [`EnhanceNetError::DeadlineExceeded`] on timeout and
    /// [`EnhanceNetError::ServiceStopped`] when the worker is gone; a
    /// late-arriving reply after a timeout is dropped harmlessly.
    pub fn wait(&self, deadline: Duration) -> Result<Tensor, EnhanceNetError> {
        self.wait_reply(deadline).map(|reply| reply.values)
    }

    /// [`PendingForecast::wait`] keeping the worker-side timing breakdown.
    fn wait_reply(&self, deadline: Duration) -> Result<BatchReply, EnhanceNetError> {
        let remaining = deadline.saturating_sub(self.submitted.elapsed());
        match self.rx.recv_timeout(remaining) {
            Ok(result) => result,
            Err(RecvTimeoutError::Timeout) => Err(EnhanceNetError::DeadlineExceeded { deadline }),
            Err(RecvTimeoutError::Disconnected) => Err(EnhanceNetError::ServiceStopped),
        }
    }
}

/// An online forecasting endpoint wrapping a trained model.
///
/// Ingest raw observations with [`ForecastService::ingest`], ask for
/// forecasts with [`ForecastService::forecast`]. The model lives on a
/// dedicated worker thread; [`ForecastService::submit`] exposes the raw
/// micro-batching path for callers managing their own windows (benchmarks,
/// fan-out frontends).
pub struct ForecastService {
    tx: Option<Sender<BatchRequest>>,
    worker: Option<JoinHandle<()>>,
    buffer: SlidingWindow,
    scaler: StandardScaler,
    config: ServeConfig,
    input: [usize; 3],
    horizon: usize,
    next_request_id: AtomicU64,
    slo: Mutex<SloWindow>,
    /// Readiness inputs shared with the metrics server's `/readyz` probe.
    warm: Arc<AtomicBool>,
    worker_alive: Arc<AtomicBool>,
    metrics: Option<MetricsServer>,
}

impl ForecastService {
    /// Wraps `model` (which moves to the worker thread) behind a serving
    /// endpoint. `scaler` must be the scaler the model was trained with —
    /// [`crate::Trainer`] users take it from `WindowDataset::scaler`.
    ///
    /// Fails with [`EnhanceNetError::UnknownInputShape`] when the model
    /// does not report its `[H, N, C]` input shape (needed to size the
    /// sliding window), or [`EnhanceNetError::InvalidConfig`] for a zero
    /// `max_batch`/`queue_capacity`, an invalid SLO window shape or
    /// target, or an unbindable [`ServeConfig::metrics_addr`].
    pub fn new(
        model: Box<dyn Forecaster + Send>,
        scaler: StandardScaler,
        config: ServeConfig,
    ) -> Result<Self, EnhanceNetError> {
        if config.max_batch == 0 {
            return Err(EnhanceNetError::InvalidConfig {
                field: "max_batch",
                reason: "must be > 0".into(),
            });
        }
        if config.queue_capacity == 0 {
            return Err(EnhanceNetError::InvalidConfig {
                field: "queue_capacity",
                reason: "must be > 0".into(),
            });
        }
        if config.slo_slots == 0 {
            return Err(EnhanceNetError::InvalidConfig {
                field: "slo_slots",
                reason: "must be > 0".into(),
            });
        }
        if config.slo_window.as_nanos() / config.slo_slots as u128 == 0 {
            return Err(EnhanceNetError::InvalidConfig {
                field: "slo_window",
                reason: format!("too short for {} slots", config.slo_slots),
            });
        }
        if !(config.slo_target > 0.0 && config.slo_target <= 1.0) {
            return Err(EnhanceNetError::InvalidConfig {
                field: "slo_target",
                reason: format!("must be in (0, 1], got {}", config.slo_target),
            });
        }
        let input = model.input_shape().ok_or_else(|| EnhanceNetError::UnknownInputShape {
            model: model.name().to_string(),
        })?;
        if config.target_feature >= input[2] {
            return Err(EnhanceNetError::InvalidConfig {
                field: "target_feature",
                reason: format!("must be < {} features, got {}", input[2], config.target_feature),
            });
        }
        let horizon = model.horizon();
        let (tx, rx) = bounded(config.queue_capacity);
        let (max_batch, max_wait) = (config.max_batch, config.max_wait);
        let worker_alive = Arc::new(AtomicBool::new(true));
        let alive_flag = Arc::clone(&worker_alive);
        let worker = std::thread::Builder::new()
            .name("forecast-worker".into())
            .spawn(move || worker_loop(model, rx, max_batch, max_wait, &alive_flag))
            .expect("failed to spawn forecast worker thread");
        let warm = Arc::new(AtomicBool::new(false));
        let metrics = match &config.metrics_addr {
            Some(addr) => {
                let (warm, alive) = (Arc::clone(&warm), Arc::clone(&worker_alive));
                let probe: enhancenet_telemetry::ReadyProbe =
                    Arc::new(move || warm.load(Ordering::Relaxed) && alive.load(Ordering::Relaxed));
                Some(MetricsServer::bind(addr.as_str(), probe).map_err(|e| {
                    EnhanceNetError::InvalidConfig {
                        field: "metrics_addr",
                        reason: format!("cannot bind {addr}: {e}"),
                    }
                })?)
            }
            None => None,
        };
        let slo =
            Mutex::new(SloWindow::new(config.slo_window, config.slo_slots, config.slo_target));
        Ok(Self {
            tx: Some(tx),
            worker: Some(worker),
            buffer: SlidingWindow::new(input[0], input[1], input[2]),
            scaler,
            config,
            input,
            horizon,
            next_request_id: AtomicU64::new(0),
            slo,
            warm,
            worker_alive,
            metrics,
        })
    }

    /// The `[H, N, C]` window shape this service assembles.
    pub fn input_shape(&self) -> [usize; 3] {
        self.input
    }

    /// Forecast horizon `F`.
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// True once enough history is buffered for a model forecast.
    pub fn is_ready(&self) -> bool {
        self.buffer.is_ready()
    }

    /// The sliding-window state (timestamps retained, readiness).
    pub fn state(&self) -> &SlidingWindow {
        &self.buffer
    }

    /// Address of the embedded metrics server, when
    /// [`ServeConfig::metrics_addr`] was set (resolves port 0).
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics.as_ref().map(MetricsServer::local_addr)
    }

    /// True while the batch worker thread is running (one of the two
    /// readiness inputs behind `/readyz`; the other is window warmth).
    pub fn worker_alive(&self) -> bool {
        self.worker_alive.load(Ordering::Relaxed)
    }

    /// Windowed SLO statistics over the configured rolling window.
    pub fn slo_report(&self) -> SloReport {
        self.slo.lock().unwrap_or_else(|poisoned| poisoned.into_inner()).report()
    }

    /// Ingests one entity's raw observation at `timestamp`; see
    /// [`SlidingWindow::ingest`] for the fill-forward and late-update
    /// semantics.
    pub fn ingest(
        &mut self,
        timestamp: i64,
        entity: usize,
        features: &[f32],
    ) -> Result<(), EnhanceNetError> {
        self.buffer.ingest(timestamp, entity, features)?;
        self.refresh_window_state();
        Ok(())
    }

    /// Ingests a full raw snapshot row (`N * C` values) at `timestamp`.
    pub fn ingest_row(&mut self, timestamp: i64, row: &[f32]) -> Result<(), EnhanceNetError> {
        self.buffer.ingest_row(timestamp, row)?;
        self.refresh_window_state();
        Ok(())
    }

    /// Drops buffered history older than `cutoff` (e.g. after a feed gap).
    pub fn evict_before(&mut self, cutoff: i64) {
        self.buffer.evict_before(cutoff);
        self.refresh_window_state();
    }

    /// Forecasts the next `F` steps from the current window, degrading to a
    /// persistence forecast when the model cannot answer in time.
    ///
    /// Errors only when *nothing* can be served: no observation has ever
    /// been ingested ([`EnhanceNetError::NotReady`]) or the scaler rejects
    /// the window shape. Every other failure path — missed deadline, full
    /// queue, worker panic, warming buffer — returns a degraded forecast
    /// tagged with its [`DegradedCause`].
    pub fn forecast(&self) -> Result<Forecast, EnhanceNetError> {
        enhancenet_telemetry::count("serve.request", 1);
        let id = self.next_request_id.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        self.sample_gauges();
        let anchor = self.buffer.latest_timestamp();
        let Some(raw) = self.buffer.window() else {
            // Warming up: serve persistence off whatever history exists.
            return self.fallback(id, anchor, started, DegradedCause::ColdWindow);
        };
        let scaled = self.scaler.transform(&raw)?;
        let pending = match self.submit_with_id(&scaled, id) {
            Ok(pending) => pending,
            Err(EnhanceNetError::Overloaded { .. }) => {
                return self.fallback(id, anchor, started, DegradedCause::QueueFull);
            }
            Err(_) => return self.fallback(id, anchor, started, DegradedCause::WorkerPanic),
        };
        match pending.wait_reply(self.config.deadline) {
            Ok(reply) => {
                let values = self.scaler.inverse_feature(&reply.values, self.config.target_feature);
                let total_ns = started.elapsed().as_nanos() as u64;
                enhancenet_telemetry::observe("serve.latency_ns", total_ns as f64);
                self.record_outcome(total_ns, false);
                Ok(Forecast {
                    values,
                    degraded: None,
                    anchor,
                    request_id: id,
                    timing: RequestTiming {
                        queue_wait_ns: reply.queue_wait_ns,
                        forward_ns: reply.forward_ns,
                        total_ns,
                    },
                })
            }
            Err(EnhanceNetError::DeadlineExceeded { .. }) => {
                self.fallback(id, anchor, started, DegradedCause::Deadline)
            }
            Err(_) => self.fallback(id, anchor, started, DegradedCause::WorkerPanic),
        }
    }

    /// Submits a pre-scaled `[H, N, C]` window to the batch worker without
    /// blocking; pair with [`PendingForecast::wait`]. This is the fan-out
    /// path: submit many windows, then collect, and the worker serves them
    /// in micro-batches.
    pub fn submit(&self, scaled_window: &Tensor) -> Result<PendingForecast, EnhanceNetError> {
        let id = self.next_request_id.fetch_add(1, Ordering::Relaxed);
        self.submit_with_id(scaled_window, id)
    }

    fn submit_with_id(
        &self,
        scaled_window: &Tensor,
        id: u64,
    ) -> Result<PendingForecast, EnhanceNetError> {
        if scaled_window.shape() != self.input {
            return Err(EnhanceNetError::InputShape {
                expected: self.input.to_vec(),
                got: scaled_window.shape().to_vec(),
            });
        }
        let tx = self.tx.as_ref().ok_or(EnhanceNetError::ServiceStopped)?;
        enhancenet_telemetry::gauge("serve.queue.depth", tx.len() as f64);
        let (reply_tx, reply_rx) = bounded(1);
        let submitted = Instant::now();
        let request =
            BatchRequest { id, window: scaled_window.clone(), submitted, reply: reply_tx };
        match tx.try_send(request) {
            Ok(()) => Ok(PendingForecast { rx: reply_rx, submitted, id }),
            Err(TrySendError::Full(_)) => {
                enhancenet_telemetry::count("serve.queue.rejected", 1);
                Err(EnhanceNetError::Overloaded { capacity: self.config.queue_capacity })
            }
            Err(TrySendError::Disconnected(_)) => Err(EnhanceNetError::ServiceStopped),
        }
    }

    /// Stops the worker and joins it. Also runs on drop; calling it
    /// explicitly surfaces the join point in the caller's control flow.
    pub fn shutdown(mut self) {
        self.stop();
    }

    /// Samples the request-path level gauges: current queue depth and how
    /// full the sliding window is (1.0 = warm).
    fn sample_gauges(&self) {
        if let Some(tx) = self.tx.as_ref() {
            enhancenet_telemetry::gauge("serve.queue.depth", tx.len() as f64);
        }
        enhancenet_telemetry::gauge(
            "serve.window.fill",
            self.buffer.len() as f64 / self.input[0] as f64,
        );
    }

    /// Keeps the readiness flag and window-fill gauge in sync with the
    /// sliding window after every mutation.
    fn refresh_window_state(&self) {
        self.warm.store(self.buffer.is_ready(), Ordering::Relaxed);
        enhancenet_telemetry::gauge(
            "serve.window.fill",
            self.buffer.len() as f64 / self.input[0] as f64,
        );
    }

    /// Feeds one request outcome into the rolling SLO window and refreshes
    /// the `serve.slo.*` gauges. Deadline attainment is judged purely on
    /// latency — a fast fallback still "hit" its deadline; degradation is
    /// tracked as its own rate.
    fn record_outcome(&self, total_ns: u64, degraded: bool) {
        let deadline_hit = u128::from(total_ns) <= self.config.deadline.as_nanos();
        let report = {
            let mut slo = self.slo.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
            slo.record(total_ns as f64, deadline_hit, degraded);
            if !enhancenet_telemetry::enabled() {
                return;
            }
            slo.report()
        };
        enhancenet_telemetry::gauge("serve.slo.p50_ns", report.latency_p50_ns);
        enhancenet_telemetry::gauge("serve.slo.p95_ns", report.latency_p95_ns);
        enhancenet_telemetry::gauge("serve.slo.p99_ns", report.latency_p99_ns);
        enhancenet_telemetry::gauge("serve.slo.deadline_hit_rate", report.deadline_hit_rate);
        enhancenet_telemetry::gauge("serve.slo.degraded_rate", report.degraded_rate);
        enhancenet_telemetry::gauge("serve.slo.error_budget_burn", report.error_budget_burn);
        enhancenet_telemetry::gauge("serve.slo.window_requests", report.requests as f64);
    }

    fn fallback(
        &self,
        id: u64,
        anchor: Option<i64>,
        started: Instant,
        cause: DegradedCause,
    ) -> Result<Forecast, EnhanceNetError> {
        let values = self
            .buffer
            .persistence_forecast(self.horizon, self.config.target_feature)
            .ok_or(EnhanceNetError::NotReady { have: self.buffer.len(), need: self.input[0] })?;
        enhancenet_telemetry::count("serve.fallback", 1);
        enhancenet_telemetry::count(cause.counter_label(), 1);
        let total_ns = started.elapsed().as_nanos() as u64;
        enhancenet_telemetry::observe("serve.latency_ns", total_ns as f64);
        self.record_outcome(total_ns, true);
        Ok(Forecast {
            values,
            degraded: Some(cause),
            anchor,
            request_id: id,
            timing: RequestTiming { queue_wait_ns: 0, forward_ns: 0, total_ns },
        })
    }

    fn stop(&mut self) {
        drop(self.tx.take());
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
        // Joining the exporter last lets a scraper observe the final
        // not-ready state before the listener goes away.
        drop(self.metrics.take());
    }
}

impl Drop for ForecastService {
    fn drop(&mut self) {
        self.stop();
    }
}

/// The batch worker: block for one request, drain stragglers up to
/// `max_batch`/`max_wait`, answer the whole batch with one forward pass.
/// Exits when every [`ForecastService`] sender is dropped, clearing `alive`
/// (and with it `/readyz`) on the way out — even by panic.
fn worker_loop(
    model: Box<dyn Forecaster + Send>,
    rx: Receiver<BatchRequest>,
    max_batch: usize,
    max_wait: Duration,
    alive: &Arc<AtomicBool>,
) {
    struct AliveGuard<'a>(&'a AtomicBool);
    impl Drop for AliveGuard<'_> {
        fn drop(&mut self) {
            self.0.store(false, Ordering::SeqCst);
        }
    }
    let _guard = AliveGuard(alive);
    // Batch input and prediction buffers live for the whole worker: once a
    // compiled plan serves a given batch size, re-serving it touches no
    // heap (`Tensor::stack_into` + `Forecaster::predict_into` reuse the
    // retained capacity).
    let mut batch_x = Tensor::default();
    let mut pred = Tensor::default();
    while let Ok(first) = rx.recv() {
        let mut batch = vec![first];
        let wait_until = Instant::now() + max_wait;
        while batch.len() < max_batch {
            // Queued requests join for free; otherwise wait out max_wait.
            if let Ok(request) = rx.try_recv() {
                batch.push(request);
                continue;
            }
            let now = Instant::now();
            if now >= wait_until {
                break;
            }
            match rx.recv_timeout(wait_until - now) {
                Ok(request) => batch.push(request),
                Err(_) => break,
            }
        }
        serve_batch(model.as_ref(), &batch, &mut batch_x, &mut pred);
    }
}

/// Runs one batched forward and distributes per-request replies. A panic in
/// the model is contained here: every waiter gets an error (and so falls
/// back to persistence) and the worker stays alive for later requests.
/// `batch_x` and `pred` are worker-owned reusable buffers (the per-request
/// reply tensors are still sliced out fresh, since they are sent away).
fn serve_batch(
    model: &dyn Forecaster,
    batch: &[BatchRequest],
    batch_x: &mut Tensor,
    pred: &mut Tensor,
) {
    let _span = enhancenet_telemetry::span("serve.batch");
    enhancenet_telemetry::observe("serve.batch.size", batch.len() as f64);
    let assembled = Instant::now();
    // Queue wait ends at batch assembly; attribute it per request id.
    let queue_waits: Vec<u64> = batch
        .iter()
        .map(|request| {
            let wait_ns = assembled.duration_since(request.submitted).as_nanos() as u64;
            enhancenet_telemetry::observe("serve.queue.wait_ns", wait_ns as f64);
            wait_ns
        })
        .collect();
    // Progress watermark: the newest request id this worker has picked up.
    if let Some(max_id) = batch.iter().map(|r| r.id).max() {
        enhancenet_telemetry::gauge("serve.batch.last_request_id", max_id as f64);
    }
    Tensor::stack_into(batch.iter().map(|r| &r.window), batch_x);
    let started = Instant::now();
    match catch_unwind(AssertUnwindSafe(|| model.predict_into(batch_x, pred))) {
        Ok(Ok(())) => {
            let forward_ns = started.elapsed().as_nanos() as u64;
            enhancenet_telemetry::observe("serve.forward_ns", forward_ns as f64);
            for (i, request) in batch.iter().enumerate() {
                let _ = request.reply.send(Ok(BatchReply {
                    values: pred.index_axis(0, i),
                    queue_wait_ns: queue_waits[i],
                    forward_ns,
                }));
            }
        }
        Ok(Err(e)) => {
            for request in batch {
                let _ = request.reply.send(Err(e.clone()));
            }
        }
        Err(_) => {
            enhancenet_telemetry::count("serve.worker.panics", 1);
            for request in batch {
                let _ = request.reply.send(Err(EnhanceNetError::ServiceStopped));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forecaster::test_model::AffinePersistence;
    use crate::forecaster::{Forecaster, ForwardCtx};
    use enhancenet_autodiff::{Graph, ParamStore, Var};
    use enhancenet_tensor::TensorRng;

    const H: usize = 5;
    const N: usize = 3;
    const C: usize = 1;
    const F: usize = 4;

    fn scaler() -> StandardScaler {
        let mut rng = TensorRng::seed(11);
        let history = rng.normal(&[40, N, C], 50.0, 10.0);
        StandardScaler::fit(&history, 30).unwrap()
    }

    fn service(config: ServeConfig) -> ForecastService {
        let model = AffinePersistence::new(F).with_input_shape(H, N, C);
        ForecastService::new(Box::new(model), scaler(), config).unwrap()
    }

    fn feed(svc: &mut ForecastService, steps: usize) {
        for t in 0..steps {
            for e in 0..N {
                svc.ingest(t as i64, e, &[40.0 + t as f32 + e as f32]).unwrap();
            }
        }
    }

    #[test]
    fn served_forecast_matches_offline_predict() {
        let mut svc = service(ServeConfig::default());
        feed(&mut svc, H);
        let served = svc.forecast().unwrap();
        assert!(!served.is_degraded());
        assert_eq!(served.degraded, None);
        assert_eq!(served.anchor, Some(H as i64 - 1));
        assert_eq!(served.values.shape(), &[F, N]);

        // The offline path over the same observations, scaled the same way.
        let model = AffinePersistence::new(F).with_input_shape(H, N, C);
        let sc = scaler();
        let raw = svc.state().window().unwrap();
        let offline = sc.inverse_feature(&model.predict(&sc.transform(&raw).unwrap()).unwrap(), 0);
        assert_eq!(served.values.data(), offline.data());
    }

    #[test]
    fn empty_service_reports_not_ready() {
        let svc = service(ServeConfig::default());
        match svc.forecast() {
            Err(EnhanceNetError::NotReady { have: 0, need }) => assert_eq!(need, H),
            other => panic!("expected NotReady, got {other:?}"),
        }
    }

    #[test]
    fn warming_buffer_serves_degraded_persistence() {
        let mut svc = service(ServeConfig::default());
        svc.ingest(0, 0, &[42.0]).unwrap();
        assert!(!svc.is_ready());
        let f = svc.forecast().unwrap();
        assert_eq!(f.degraded, Some(DegradedCause::ColdWindow));
        assert!(f.is_degraded());
        assert_eq!(f.values.shape(), &[F, N]);
        assert_eq!(f.values.at(&[0, 0]), 42.0);
        assert_eq!(f.values.at(&[F - 1, 0]), 42.0);
        // Entities never observed persist their fill value.
        assert_eq!(f.values.at(&[0, 1]), 0.0);
    }

    #[test]
    fn request_ids_are_monotonic_and_timing_populated() {
        let mut svc = service(ServeConfig::default());
        feed(&mut svc, H);
        let a = svc.forecast().unwrap();
        let b = svc.forecast().unwrap();
        assert!(
            b.request_id > a.request_id,
            "ids must grow: {} then {}",
            a.request_id,
            b.request_id
        );
        for f in [&a, &b] {
            assert!(f.timing.total_ns > 0);
            assert!(
                f.timing.queue_wait_ns + f.timing.forward_ns <= f.timing.total_ns,
                "attribution exceeds wall time: {:?}",
                f.timing
            );
            assert!(f.timing.forward_ns > 0, "model path must attribute forward time");
        }
    }

    #[test]
    fn slo_report_tracks_outcomes() {
        let mut svc = service(ServeConfig::default());
        svc.ingest(0, 0, &[42.0]).unwrap();
        let _ = svc.forecast().unwrap(); // cold-window fallback
        feed(&mut svc, H);
        let _ = svc.forecast().unwrap(); // healthy
        let report = svc.slo_report();
        assert_eq!(report.requests, 2);
        assert!((report.degraded_rate - 0.5).abs() < 1e-12);
        // Both answered far inside the 250 ms default deadline.
        assert_eq!(report.deadline_hit_rate, 1.0);
        assert_eq!(report.error_budget_burn, 0.0);
        assert!(report.latency_p50_ns > 0.0);
        assert_eq!(report.window, svc.config.slo_window);
    }

    /// A model that sleeps in `forward`, simulating an overloaded backend.
    struct SlowModel {
        inner: AffinePersistence,
        sleep: Duration,
    }

    impl Forecaster for SlowModel {
        fn name(&self) -> &str {
            "slow"
        }
        fn store(&self) -> &ParamStore {
            self.inner.store()
        }
        fn store_mut(&mut self) -> &mut ParamStore {
            self.inner.store_mut()
        }
        fn horizon(&self) -> usize {
            self.inner.horizon()
        }
        fn input_shape(&self) -> Option<[usize; 3]> {
            self.inner.input_shape()
        }
        fn forward(&self, g: &mut Graph, x: &Tensor, ctx: &mut ForwardCtx) -> Var {
            std::thread::sleep(self.sleep);
            self.inner.forward(g, x, ctx)
        }
    }

    #[test]
    fn missed_deadline_degrades_without_hanging() {
        let model = SlowModel {
            inner: AffinePersistence::new(F).with_input_shape(H, N, C),
            sleep: Duration::from_millis(200),
        };
        let config = ServeConfig { deadline: Duration::from_millis(5), ..Default::default() };
        let mut svc = ForecastService::new(Box::new(model), scaler(), config).unwrap();
        feed(&mut svc, H);
        let started = Instant::now();
        let f = svc.forecast().unwrap();
        assert_eq!(f.degraded, Some(DegradedCause::Deadline));
        assert!(
            started.elapsed() < Duration::from_millis(150),
            "forecast blocked past its deadline: {:?}",
            started.elapsed()
        );
        // The miss shows up in the rolling SLO window.
        let report = svc.slo_report();
        assert!(report.deadline_hit_rate < 1.0);
        assert!(report.error_budget_burn > 0.0);
        svc.shutdown();
    }

    #[test]
    fn overloaded_queue_degrades_with_queue_full_cause() {
        let model = SlowModel {
            inner: AffinePersistence::new(F).with_input_shape(H, N, C),
            sleep: Duration::from_millis(300),
        };
        let config = ServeConfig {
            max_batch: 1,
            queue_capacity: 1,
            deadline: Duration::from_millis(5),
            ..Default::default()
        };
        let mut svc = ForecastService::new(Box::new(model), scaler(), config).unwrap();
        feed(&mut svc, H);
        // Occupy the worker with one request and fill the 1-deep queue with
        // another; the next forecast cannot enqueue and must degrade.
        let window = Tensor::zeros(&[H, N, C]);
        let _busy = svc.submit(&window).unwrap();
        std::thread::sleep(Duration::from_millis(30)); // let the worker take it
        let _queued = svc.submit(&window).unwrap();
        let f = svc.forecast().unwrap();
        assert_eq!(f.degraded, Some(DegradedCause::QueueFull));
        svc.shutdown();
    }

    #[test]
    fn wait_deadline_includes_queue_time() {
        // A pending forecast whose worker never answers: the deadline clock
        // started at submission, so by the time the caller gets around to
        // waiting, most of the budget is already spent and `wait` must
        // return almost immediately instead of granting a fresh full budget.
        let (_tx, rx) = bounded::<Result<BatchReply, EnhanceNetError>>(1);
        let pending = PendingForecast { rx, submitted: Instant::now(), id: 0 };
        let deadline = Duration::from_millis(50);
        std::thread::sleep(Duration::from_millis(120));
        let waited = Instant::now();
        match pending.wait(deadline) {
            Err(EnhanceNetError::DeadlineExceeded { deadline: d }) => assert_eq!(d, deadline),
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert!(
            waited.elapsed() < deadline,
            "wait granted a fresh budget after the deadline had lapsed in the queue: {:?}",
            waited.elapsed()
        );

        // A reply that landed within budget is still collectable even when
        // the caller polls late — lapsed budget drops to a non-blocking poll,
        // not an unconditional error.
        let (tx, rx) = bounded::<Result<BatchReply, EnhanceNetError>>(1);
        let pending = PendingForecast { rx, submitted: Instant::now(), id: 1 };
        assert_eq!(pending.request_id(), 1);
        tx.send(Ok(BatchReply { values: Tensor::zeros(&[F, N]), queue_wait_ns: 0, forward_ns: 0 }))
            .unwrap();
        std::thread::sleep(Duration::from_millis(60));
        assert!(pending.wait(deadline).is_ok(), "delivered reply must survive a late wait");
    }

    /// A model whose forward panics, simulating a poisoned worker.
    struct PanickyModel {
        inner: AffinePersistence,
    }

    impl Forecaster for PanickyModel {
        fn name(&self) -> &str {
            "panicky"
        }
        fn store(&self) -> &ParamStore {
            self.inner.store()
        }
        fn store_mut(&mut self) -> &mut ParamStore {
            self.inner.store_mut()
        }
        fn horizon(&self) -> usize {
            self.inner.horizon()
        }
        fn input_shape(&self) -> Option<[usize; 3]> {
            self.inner.input_shape()
        }
        fn forward(&self, _g: &mut Graph, _x: &Tensor, _ctx: &mut ForwardCtx) -> Var {
            panic!("injected model failure");
        }
    }

    #[test]
    fn worker_panic_degrades_and_service_survives() {
        let model = PanickyModel { inner: AffinePersistence::new(F).with_input_shape(H, N, C) };
        let mut svc =
            ForecastService::new(Box::new(model), scaler(), ServeConfig::default()).unwrap();
        feed(&mut svc, H);
        let first = svc.forecast().unwrap();
        assert_eq!(first.degraded, Some(DegradedCause::WorkerPanic));
        // The worker survived the panic and still answers.
        let second = svc.forecast().unwrap();
        assert_eq!(second.degraded, Some(DegradedCause::WorkerPanic));
        svc.shutdown();
    }

    #[test]
    fn full_queue_rejects_submissions() {
        let model = SlowModel {
            inner: AffinePersistence::new(F).with_input_shape(H, N, C),
            sleep: Duration::from_millis(100),
        };
        let config = ServeConfig { max_batch: 1, queue_capacity: 1, ..Default::default() };
        let svc = ForecastService::new(Box::new(model), scaler(), config).unwrap();
        let window = Tensor::zeros(&[H, N, C]);
        let pendings: Vec<_> = (0..8).map(|_| svc.submit(&window)).collect();
        let rejected = pendings
            .iter()
            .filter(|p| matches!(p, Err(EnhanceNetError::Overloaded { capacity: 1 })))
            .count();
        assert!(rejected >= 1, "a 1-deep queue must reject an 8-burst");
        // Accepted requests still complete.
        for pending in pendings.into_iter().flatten() {
            assert!(pending.wait(Duration::from_secs(5)).is_ok());
        }
    }

    #[test]
    fn micro_batch_replies_match_sequential_submissions() {
        let config =
            ServeConfig { max_batch: 4, max_wait: Duration::from_millis(25), ..Default::default() };
        let svc = service(config);
        let mut rng = TensorRng::seed(7);
        let windows: Vec<Tensor> = (0..4).map(|_| rng.normal(&[H, N, C], 0.0, 1.0)).collect();
        let pendings: Vec<PendingForecast> =
            windows.iter().map(|w| svc.submit(w).unwrap()).collect();
        let model = AffinePersistence::new(F).with_input_shape(H, N, C);
        for (window, pending) in windows.iter().zip(pendings) {
            let batched = pending.wait(Duration::from_secs(5)).unwrap();
            let solo = model.predict(window).unwrap();
            assert_eq!(batched.shape(), &[F, N]);
            assert_eq!(batched.data(), solo.data(), "batched reply diverged from solo predict");
        }
    }

    #[test]
    fn submit_validates_window_shape() {
        let svc = service(ServeConfig::default());
        match svc.submit(&Tensor::zeros(&[H, N + 1, C])) {
            Err(EnhanceNetError::InputShape { expected, got }) => {
                assert_eq!(expected, vec![H, N, C]);
                assert_eq!(got, vec![H, N + 1, C]);
            }
            other => panic!("expected InputShape, got {other:?}"),
        }
    }

    #[test]
    fn config_validation_is_typed() {
        let model = AffinePersistence::new(F).with_input_shape(H, N, C);
        let config = ServeConfig { max_batch: 0, ..Default::default() };
        match ForecastService::new(Box::new(model), scaler(), config) {
            Err(EnhanceNetError::InvalidConfig { field: "max_batch", .. }) => {}
            other => panic!("expected InvalidConfig, got {:?}", other.err()),
        }
        // A model without a declared input shape cannot be served.
        let bare = AffinePersistence::new(F);
        match ForecastService::new(Box::new(bare), scaler(), ServeConfig::default()) {
            Err(EnhanceNetError::UnknownInputShape { .. }) => {}
            other => panic!("expected UnknownInputShape, got {:?}", other.err()),
        }
        // SLO knobs are validated up front, not at first record.
        for (config, field) in [
            (ServeConfig { slo_slots: 0, ..Default::default() }, "slo_slots"),
            (ServeConfig { slo_target: 0.0, ..Default::default() }, "slo_target"),
            (ServeConfig { slo_target: 1.5, ..Default::default() }, "slo_target"),
            (
                ServeConfig { slo_window: Duration::from_nanos(1), ..Default::default() },
                "slo_window",
            ),
        ] {
            let model = AffinePersistence::new(F).with_input_shape(H, N, C);
            match ForecastService::new(Box::new(model), scaler(), config) {
                Err(EnhanceNetError::InvalidConfig { field: f, .. }) if f == field => {}
                other => panic!("expected InvalidConfig for {field}, got {:?}", other.err()),
            }
        }
        // An unbindable metrics address fails construction, typed.
        let model = AffinePersistence::new(F).with_input_shape(H, N, C);
        let config = ServeConfig { metrics_addr: Some("256.0.0.1:0".into()), ..Default::default() };
        match ForecastService::new(Box::new(model), scaler(), config) {
            Err(EnhanceNetError::InvalidConfig { field: "metrics_addr", .. }) => {}
            other => panic!("expected InvalidConfig, got {:?}", other.err()),
        }
    }

    #[test]
    fn embedded_metrics_server_scrapes_and_reports_readiness() {
        use std::io::{Read as _, Write as _};

        fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
            let mut stream = std::net::TcpStream::connect(addr).unwrap();
            write!(stream, "GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
            let mut body = String::new();
            stream.read_to_string(&mut body).unwrap();
            body
        }

        let config = ServeConfig { metrics_addr: Some("127.0.0.1:0".into()), ..Default::default() };
        let mut svc = service(config);
        let addr = svc.metrics_addr().expect("metrics server must be bound");
        assert!(svc.worker_alive());
        // Cold window: live but not ready.
        assert!(http_get(addr, "/healthz").starts_with("HTTP/1.1 200"));
        assert!(http_get(addr, "/readyz").starts_with("HTTP/1.1 503"));
        feed(&mut svc, H);
        assert!(http_get(addr, "/readyz").starts_with("HTTP/1.1 200"));
        let _ = svc.forecast().unwrap();
        let scrape = http_get(addr, "/metrics");
        // The scrape may race other telemetry tests resetting the global
        // store, so only assert the exposition shape, not specific series.
        assert!(scrape.starts_with("HTTP/1.1 200"));
        assert!(scrape.contains("text/plain; version=0.0.4"));
        svc.shutdown();
    }
}
