//! The [`Forecaster`] trait every host model and baseline implements, and
//! the per-forward context (training flag, teacher signals for scheduled
//! sampling).

use crate::damgn::Damgn;
use enhancenet_autodiff::{Graph, ParamId, ParamStore, Var};
use enhancenet_tensor::{Tensor, TensorRng};

/// Context threaded through one forward pass.
pub struct ForwardCtx<'a> {
    /// True during training (enables dropout and teacher forcing).
    pub training: bool,
    /// Scaled ground-truth decoder targets `[B, F, N]`, available during
    /// training for scheduled sampling.
    pub teacher: Option<&'a Tensor>,
    /// Probability of feeding ground truth at each decode step (scheduled
    /// sampling, §VI-A). Ignored when `teacher` is `None`.
    pub teacher_forcing_prob: f32,
    /// RNG for dropout masks and sampling decisions.
    pub rng: &'a mut TensorRng,
}

impl<'a> ForwardCtx<'a> {
    /// An inference-mode context (no teacher, no dropout).
    pub fn eval(rng: &'a mut TensorRng) -> Self {
        Self { training: false, teacher: None, teacher_forcing_prob: 0.0, rng }
    }

    /// A training-mode context with teacher signals.
    pub fn train(rng: &'a mut TensorRng, teacher: &'a Tensor, tf_prob: f32) -> Self {
        Self { training: true, teacher: Some(teacher), teacher_forcing_prob: tf_prob, rng }
    }

    /// Decides whether this decode step feeds ground truth.
    pub fn use_teacher(&mut self) -> bool {
        self.training && self.teacher.is_some() && self.rng.bernoulli(self.teacher_forcing_prob)
    }
}

/// A correlated-time-series forecaster: maps a scaled input window
/// `[B, H, N, C]` to scaled predictions `[B, F, N]` of the target feature.
pub trait Forecaster {
    /// Human-readable model tag as it appears in the paper's tables
    /// (e.g. `"D-RNN"`, `"DA-GTCN"`).
    fn name(&self) -> &str;

    /// The model's parameters.
    fn store(&self) -> &ParamStore;

    /// Mutable access for the optimizer.
    fn store_mut(&mut self) -> &mut ParamStore;

    /// Forecast horizon `F`.
    fn horizon(&self) -> usize;

    /// Builds the forward computation on `g` and returns the prediction
    /// node (`[B, F, N]`, scaled space).
    fn forward(&self, g: &mut Graph, x: &Tensor, ctx: &mut ForwardCtx) -> Var;

    /// Total trainable scalars — the "# Para" column of Tables I/II.
    fn num_parameters(&self) -> usize {
        self.store().num_scalars()
    }

    /// The model's DAMGN instance, when it carries one. Drives the
    /// per-epoch graph-health probe (`crate::probes`); plain hosts and
    /// baselines keep the default `None` and the probe skips them.
    fn damgn(&self) -> Option<&Damgn> {
        None
    }

    /// Parameter id of the shared DFGN entity-memory table, when the
    /// model has one. Drives the memory-drift probe and the t-SNE
    /// figures; models without distinct filters keep the default `None`.
    fn memory_id(&self) -> Option<ParamId> {
        None
    }
}

#[cfg(test)]
pub(crate) mod test_model {
    //! A deliberately simple forecaster used by the trainer tests: predicts
    //! every future step as a learnable affine function of the last input.

    use super::*;
    use enhancenet_autodiff::ParamId;

    pub struct AffinePersistence {
        store: ParamStore,
        scale: ParamId,
        bias: ParamId,
        f: usize,
    }

    impl AffinePersistence {
        pub fn new(f: usize) -> Self {
            let mut store = ParamStore::new();
            let scale = store.add("scale", Tensor::scalar(0.5));
            let bias = store.add("bias", Tensor::scalar(0.0));
            Self { store, scale, bias, f }
        }
    }

    impl Forecaster for AffinePersistence {
        fn name(&self) -> &str {
            "affine-persistence"
        }
        fn store(&self) -> &ParamStore {
            &self.store
        }
        fn store_mut(&mut self) -> &mut ParamStore {
            &mut self.store
        }
        fn horizon(&self) -> usize {
            self.f
        }
        fn forward(&self, g: &mut Graph, x: &Tensor, _ctx: &mut ForwardCtx) -> Var {
            let (b, h, n, _c) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
            // Last timestamp, target feature -> [B, N].
            let last = x.slice_axis(1, h - 1, h).slice_axis(3, 0, 1).reshape(&[b, n]);
            let lv = g.constant(last);
            let s = g.param(&self.store, self.scale);
            let bias = g.param(&self.store, self.bias);
            let scaled = g.mul(lv, s);
            let affine = g.add(scaled, bias);
            // Repeat across the horizon: [B, F, N].
            let un = g.reshape(affine, &[b, 1, n]);
            let copies: Vec<Var> = (0..self.f).map(|_| un).collect();
            g.concat(&copies, 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_ctx_never_uses_teacher() {
        let mut rng = TensorRng::seed(1);
        let mut ctx = ForwardCtx::eval(&mut rng);
        assert!(!ctx.use_teacher());
        assert!(!ctx.training);
    }

    #[test]
    fn train_ctx_respects_probability() {
        let mut rng = TensorRng::seed(2);
        let teacher = Tensor::zeros(&[1, 2, 3]);
        let mut always = ForwardCtx::train(&mut rng, &teacher, 1.0);
        assert!((0..20).all(|_| always.use_teacher()));
        let mut rng2 = TensorRng::seed(2);
        let mut never = ForwardCtx::train(&mut rng2, &teacher, 0.0);
        assert!((0..20).all(|_| !never.use_teacher()));
    }

    #[test]
    fn test_model_shapes() {
        use super::test_model::AffinePersistence;
        let m = AffinePersistence::new(4);
        let mut g = Graph::new();
        let x = Tensor::ones(&[2, 5, 3, 1]);
        let mut rng = TensorRng::seed(3);
        let mut ctx = ForwardCtx::eval(&mut rng);
        let y = m.forward(&mut g, &x, &mut ctx);
        assert_eq!(g.value(y).shape(), &[2, 4, 3]);
        assert_eq!(m.num_parameters(), 2);
    }
}
