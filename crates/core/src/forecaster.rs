//! The [`Forecaster`] trait every host model and baseline implements, and
//! the per-forward context (training flag, teacher signals for scheduled
//! sampling).

use crate::damgn::Damgn;
use crate::error::EnhanceNetError;
use enhancenet_autodiff::{
    Graph, ParamId, ParamStore, Plan, PlanCache, PlanError, PlanExecutor, Var,
};
use enhancenet_tensor::{Tensor, TensorRng};

/// Context threaded through one forward pass.
pub struct ForwardCtx<'a> {
    /// True during training (enables dropout and teacher forcing).
    pub training: bool,
    /// Scaled ground-truth decoder targets `[B, F, N]`, available during
    /// training for scheduled sampling.
    pub teacher: Option<&'a Tensor>,
    /// Probability of feeding ground truth at each decode step (scheduled
    /// sampling, §VI-A). Ignored when `teacher` is `None`.
    pub teacher_forcing_prob: f32,
    /// RNG for dropout masks and sampling decisions.
    pub rng: &'a mut TensorRng,
}

impl<'a> ForwardCtx<'a> {
    /// An inference-mode context (no teacher, no dropout).
    pub fn eval(rng: &'a mut TensorRng) -> Self {
        Self { training: false, teacher: None, teacher_forcing_prob: 0.0, rng }
    }

    /// A training-mode context with teacher signals.
    pub fn train(rng: &'a mut TensorRng, teacher: &'a Tensor, tf_prob: f32) -> Self {
        Self { training: true, teacher: Some(teacher), teacher_forcing_prob: tf_prob, rng }
    }

    /// Decides whether this decode step feeds ground truth.
    pub fn use_teacher(&mut self) -> bool {
        self.training && self.teacher.is_some() && self.rng.bernoulli(self.teacher_forcing_prob)
    }
}

/// A correlated-time-series forecaster: maps a scaled input window
/// `[B, H, N, C]` to scaled predictions `[B, F, N]` of the target feature.
///
/// `Send + Sync` is a supertrait: the serving runtime moves models into a
/// worker thread, and the sharded trainer shares `&dyn Forecaster` across
/// scoped workers. `forward` takes `&self`, so implementations are
/// naturally `Sync` as long as any interior caches use locks (see
/// [`crate::dfgn::FilterCache`] / [`crate::damgn::StaticFoldCache`]).
pub trait Forecaster: Send + Sync {
    /// Human-readable model tag as it appears in the paper's tables
    /// (e.g. `"D-RNN"`, `"DA-GTCN"`).
    fn name(&self) -> &str;

    /// The model's parameters.
    fn store(&self) -> &ParamStore;

    /// Mutable access for the optimizer.
    fn store_mut(&mut self) -> &mut ParamStore;

    /// Forecast horizon `F`.
    fn horizon(&self) -> usize;

    /// Builds the forward computation on `g` and returns the prediction
    /// node (`[B, F, N]`, scaled space).
    fn forward(&self, g: &mut Graph, x: &Tensor, ctx: &mut ForwardCtx) -> Var;

    /// The per-window input shape `[H, N, C]` this model expects, when it
    /// knows it. Hosts built from [`ModelDims`]-style configs report it;
    /// shape-agnostic baselines may keep the default `None`, which disables
    /// up-front validation in [`Forecaster::predict`] and bars them from
    /// [`crate::serve::ForecastService`] (which needs the shape to size its
    /// sliding window).
    ///
    /// [`ModelDims`]: https://docs.rs/enhancenet-models
    fn input_shape(&self) -> Option<[usize; 3]> {
        None
    }

    /// The model's compiled-plan cache, when it keeps one. Hosts that trace
    /// their eval forward through [`Graph::input`] return it to enable the
    /// compiled execution path in [`Forecaster::predict`]; baselines keep
    /// the default `None` and predictions run on the tape.
    fn plan_cache(&self) -> Option<&PlanCache> {
        None
    }

    /// Forecasts a scaled input window without exposing the tape machinery.
    ///
    /// This is the public inference entry point: callers hand in a scaled
    /// window — `[H, N, C]` for one forecast or `[B, H, N, C]` for a batch —
    /// and get back scaled predictions (`[F, N]` or `[B, F, N]`
    /// respectively). The forward pass runs in evaluation mode (no dropout,
    /// no teacher forcing), so the result is deterministic for a given
    /// window and weight state.
    ///
    /// When the model exposes a [`Forecaster::plan_cache`], repeat
    /// predictions execute a compiled plan against preallocated buffers
    /// (see [`Forecaster::predict_into`]); the result is bitwise identical
    /// to the tape path ([`Forecaster::predict_tape`]).
    ///
    /// Returns [`EnhanceNetError::InputShape`] when the window's rank is
    /// wrong or its trailing dimensions disagree with
    /// [`Forecaster::input_shape`].
    fn predict(&self, window: &Tensor) -> Result<Tensor, EnhanceNetError> {
        let mut out = Tensor::default();
        self.predict_into(window, &mut out)?;
        Ok(out)
    }

    /// [`Forecaster::predict`] into a caller-provided buffer.
    ///
    /// The first prediction for a given `(input shape, parameter version)`
    /// traces the eval forward once and compiles it into a static plan
    /// ([`Plan::compile`]); subsequent predictions execute the plan against
    /// its preallocated arena — allocation-free when `out` retains capacity
    /// across calls. A parameter hot-swap bumps the store version and
    /// transparently recompiles. Models whose trace cannot be compiled
    /// (no plan cache, or no input-marked leaf) fall back to the tape with
    /// identical results.
    fn predict_into(&self, window: &Tensor, out: &mut Tensor) -> Result<(), EnhanceNetError> {
        let shape_err = |expected: Vec<usize>| EnhanceNetError::InputShape {
            expected,
            got: window.shape().to_vec(),
        };
        if !matches!(window.rank(), 3 | 4) {
            let expected = self.input_shape().map(|s| s.to_vec()).unwrap_or_default();
            return Err(shape_err(expected));
        }
        if let Some(expected) = self.input_shape() {
            let trailing = if window.rank() == 3 { window.shape() } else { &window.shape()[1..] };
            if trailing != expected {
                return Err(shape_err(expected.to_vec()));
            }
        }
        let Some(cache) = self.plan_cache() else {
            return self.predict_tape_into(window, out);
        };
        if cache.is_unplannable() {
            if enhancenet_telemetry::enabled() {
                enhancenet_telemetry::count("plan.fallback", 1);
            }
            return self.predict_tape_into(window, out);
        }
        let store = self.store();
        let version = store.version();
        // Cache key: the traced (batched) input shape, stack-built so warm
        // lookups stay allocation-free.
        let mut key = [1usize; 4];
        if window.rank() == 3 {
            key[1..].copy_from_slice(window.shape());
        } else {
            key.copy_from_slice(window.shape());
        }
        if let Some(exec) = cache.lookup(&key, version) {
            exec.lock().expect("plan executor poisoned").run(store, window, out);
            return Ok(());
        }
        // Miss: trace once, compile, and answer from the traced value (the
        // compile request itself never computes the forward twice).
        let holder;
        let x: &Tensor = if window.rank() == 3 {
            holder = window.unsqueeze(0);
            &holder
        } else {
            window
        };
        let (compiled, val) = self.compile_eval_plan(x);
        match compiled {
            Ok(plan) => {
                if enhancenet_telemetry::enabled() {
                    enhancenet_telemetry::gauge("plan.arena.bytes", plan.arena_bytes() as f64);
                }
                cache.insert(PlanExecutor::new(plan));
            }
            Err(_) => {
                cache.mark_unplannable();
                if enhancenet_telemetry::enabled() {
                    enhancenet_telemetry::count("plan.fallback", 1);
                }
            }
        }
        if window.rank() == 3 {
            out.copy_from_with_shape(&val.shape()[1..], val.data());
        } else {
            out.copy_from(&val);
        }
        Ok(())
    }

    /// Traces one eval forward over a **batched** `[B, H, N, C]` window and
    /// compiles the trace into a static [`Plan`], returning the traced
    /// prediction alongside so the caller can answer the triggering request
    /// without a second forward.
    ///
    /// This is the compile step [`Forecaster::predict_into`] runs on a plan
    /// cache miss, exposed so executors that keep their *own* plan tables —
    /// the serving fleet gives each worker thread a private executor map, so
    /// concurrent workers never serialize on the model's shared
    /// [`PlanCache`] mutex — can compile against a shared model snapshot.
    ///
    /// `Err` means this model's trace cannot be compiled (no
    /// [`Graph::input`]-marked leaf, unsupported op); callers fall back to
    /// [`Forecaster::predict_into`], which runs the tape with identical
    /// results.
    fn compile_eval_plan(&self, batched: &Tensor) -> (Result<Plan, PlanError>, Tensor) {
        // The eval context draws nothing from the RNG (dropout off, no
        // teacher forcing), so a fixed seed keeps the trace deterministic.
        let mut rng = TensorRng::seed(0);
        let mut ctx = ForwardCtx::eval(&mut rng);
        let mut g = Graph::new();
        let pred = self.forward(&mut g, batched, &mut ctx);
        let compiled = Plan::compile(&g, pred, self.store());
        (compiled, g.value(pred).clone())
    }

    /// Pure-tape prediction: traces a fresh eval forward for every call.
    ///
    /// This is the reference path the compiled plan is pinned against
    /// (bitwise, see `crates/models/tests/plan_parity.rs`) and the fallback
    /// for models without a plan cache. Same validation and output contract
    /// as [`Forecaster::predict`].
    fn predict_tape(&self, window: &Tensor) -> Result<Tensor, EnhanceNetError> {
        let shape_err = |expected: Vec<usize>| EnhanceNetError::InputShape {
            expected,
            got: window.shape().to_vec(),
        };
        let holder;
        let (batched, x): (bool, &Tensor) = match window.rank() {
            3 => {
                holder = window.unsqueeze(0);
                (false, &holder)
            }
            4 => (true, window),
            _ => {
                let expected = self.input_shape().map(|s| s.to_vec()).unwrap_or_default();
                return Err(shape_err(expected));
            }
        };
        if let Some(expected) = self.input_shape() {
            if x.shape()[1..] != expected {
                return Err(shape_err(expected.to_vec()));
            }
        }
        // The eval context draws nothing from the RNG (dropout off, no
        // teacher forcing), so a fixed seed keeps the entry point pure.
        let mut rng = TensorRng::seed(0);
        let mut ctx = ForwardCtx::eval(&mut rng);
        let mut g = Graph::new();
        let pred = self.forward(&mut g, x, &mut ctx);
        let out = g.value(pred).clone();
        if batched {
            Ok(out)
        } else {
            let (f, n) = (out.shape()[1], out.shape()[2]);
            Ok(out.reshape(&[f, n]))
        }
    }

    /// [`Forecaster::predict_tape`] into a caller-provided buffer.
    fn predict_tape_into(&self, window: &Tensor, out: &mut Tensor) -> Result<(), EnhanceNetError> {
        let res = self.predict_tape(window)?;
        out.copy_from(&res);
        Ok(())
    }

    /// Total trainable scalars — the "# Para" column of Tables I/II.
    fn num_parameters(&self) -> usize {
        self.store().num_scalars()
    }

    /// The model's DAMGN instance, when it carries one. Drives the
    /// per-epoch graph-health probe (`crate::probes`); plain hosts and
    /// baselines keep the default `None` and the probe skips them.
    fn damgn(&self) -> Option<&Damgn> {
        None
    }

    /// Parameter id of the shared DFGN entity-memory table, when the
    /// model has one. Drives the memory-drift probe and the t-SNE
    /// figures; models without distinct filters keep the default `None`.
    fn memory_id(&self) -> Option<ParamId> {
        None
    }
}

#[cfg(test)]
pub(crate) mod test_model {
    //! A deliberately simple forecaster used by the trainer tests: predicts
    //! every future step as a learnable affine function of the last input.

    use super::*;
    use enhancenet_autodiff::ParamId;

    pub struct AffinePersistence {
        store: ParamStore,
        scale: ParamId,
        bias: ParamId,
        f: usize,
        input_shape: Option<[usize; 3]>,
        plan_cache: PlanCache,
    }

    impl AffinePersistence {
        pub fn new(f: usize) -> Self {
            let mut store = ParamStore::new();
            let scale = store.add("scale", Tensor::scalar(0.5));
            let bias = store.add("bias", Tensor::scalar(0.0));
            Self { store, scale, bias, f, input_shape: None, plan_cache: PlanCache::new() }
        }

        /// Declares the `[H, N, C]` shape this instance expects, enabling
        /// `predict` validation and serving.
        pub fn with_input_shape(mut self, h: usize, n: usize, c: usize) -> Self {
            self.input_shape = Some([h, n, c]);
            self
        }
    }

    impl Forecaster for AffinePersistence {
        fn name(&self) -> &str {
            "affine-persistence"
        }
        fn store(&self) -> &ParamStore {
            &self.store
        }
        fn store_mut(&mut self) -> &mut ParamStore {
            &mut self.store
        }
        fn horizon(&self) -> usize {
            self.f
        }
        fn input_shape(&self) -> Option<[usize; 3]> {
            self.input_shape
        }
        fn plan_cache(&self) -> Option<&PlanCache> {
            Some(&self.plan_cache)
        }
        fn forward(&self, g: &mut Graph, x: &Tensor, ctx: &mut ForwardCtx) -> Var {
            let (b, h, n, _c) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
            // Last timestamp, target feature -> [B, N]. Eval traces slice
            // graph-side from an input leaf so the trace compiles to a plan;
            // training keeps the cheaper pre-sliced constant.
            let lv = if ctx.training {
                g.constant(x.slice_axis(1, h - 1, h).slice_axis(3, 0, 1).reshape(&[b, n]))
            } else {
                let xv = g.input(x.clone());
                let t = g.slice_axis(xv, 1, h - 1, h);
                let t = g.slice_axis(t, 3, 0, 1);
                g.reshape(t, &[b, n])
            };
            let s = g.param(&self.store, self.scale);
            let bias = g.param(&self.store, self.bias);
            let scaled = g.mul(lv, s);
            let affine = g.add(scaled, bias);
            // Repeat across the horizon: [B, F, N].
            let un = g.reshape(affine, &[b, 1, n]);
            let copies: Vec<Var> = (0..self.f).map(|_| un).collect();
            g.concat(&copies, 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_ctx_never_uses_teacher() {
        let mut rng = TensorRng::seed(1);
        let mut ctx = ForwardCtx::eval(&mut rng);
        assert!(!ctx.use_teacher());
        assert!(!ctx.training);
    }

    #[test]
    fn train_ctx_respects_probability() {
        let mut rng = TensorRng::seed(2);
        let teacher = Tensor::zeros(&[1, 2, 3]);
        let mut always = ForwardCtx::train(&mut rng, &teacher, 1.0);
        assert!((0..20).all(|_| always.use_teacher()));
        let mut rng2 = TensorRng::seed(2);
        let mut never = ForwardCtx::train(&mut rng2, &teacher, 0.0);
        assert!((0..20).all(|_| !never.use_teacher()));
    }

    #[test]
    fn test_model_shapes() {
        use super::test_model::AffinePersistence;
        let m = AffinePersistence::new(4);
        let mut g = Graph::new();
        let x = Tensor::ones(&[2, 5, 3, 1]);
        let mut rng = TensorRng::seed(3);
        let mut ctx = ForwardCtx::eval(&mut rng);
        let y = m.forward(&mut g, &x, &mut ctx);
        assert_eq!(g.value(y).shape(), &[2, 4, 3]);
        assert_eq!(m.num_parameters(), 2);
    }

    #[test]
    fn predict_matches_forward_eval() {
        use super::test_model::AffinePersistence;
        let m = AffinePersistence::new(4);
        let x = Tensor::ones(&[2, 5, 3, 1]);
        let mut g = Graph::new();
        let mut rng = TensorRng::seed(3);
        let mut ctx = ForwardCtx::eval(&mut rng);
        let y = m.forward(&mut g, &x, &mut ctx);
        let p = m.predict(&x).unwrap();
        assert_eq!(p.data(), g.value(y).data());
    }

    #[test]
    fn predict_unbatches_rank_3_windows() {
        use super::test_model::AffinePersistence;
        let m = AffinePersistence::new(4);
        let single = Tensor::ones(&[5, 3, 1]);
        let p = m.predict(&single).unwrap();
        assert_eq!(p.shape(), &[4, 3]);
        let batched = m.predict(&single.unsqueeze(0)).unwrap();
        assert_eq!(batched.shape(), &[1, 4, 3]);
        assert_eq!(batched.data(), p.data());
    }

    #[test]
    fn predict_rejects_bad_ranks_and_shapes() {
        use super::test_model::AffinePersistence;
        let m = AffinePersistence::new(4).with_input_shape(5, 3, 1);
        match m.predict(&Tensor::ones(&[5, 3])) {
            Err(EnhanceNetError::InputShape { got, .. }) => assert_eq!(got, vec![5, 3]),
            other => panic!("expected InputShape, got {other:?}"),
        }
        // With a declared input shape, mismatched trailing dims are typed
        // errors rather than downstream panics.
        match m.predict(&Tensor::ones(&[1, 5, 9, 1])) {
            Err(EnhanceNetError::InputShape { expected, got }) => {
                assert_eq!(expected, vec![5, 3, 1]);
                assert_eq!(got, vec![1, 5, 9, 1]);
            }
            other => panic!("expected InputShape, got {other:?}"),
        }
    }
}
