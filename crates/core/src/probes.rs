//! Model-health probes: structured diagnostics emitted as telemetry
//! events during training and evaluation.
//!
//! Three probe families, each tied to a paper mechanism:
//!
//! * **Error attribution** — per-entity and per-horizon MAE/RMSE at
//!   evaluation time (`probe.entity_error`, `probe.horizon_error`).
//!   EnhanceNet's whole premise is per-entity modelling (distinct filters
//!   per sensor, §IV-C), so per-entity error is the natural unit of
//!   diagnosis: a regression localized to a few entities reads very
//!   differently from a uniform one.
//! * **DAMGN graph diagnostics** — per-epoch λ_A/λ_B/λ_C mixing weights
//!   (Eq. 13), plus row entropy and effective density of the learned
//!   static adjacency `B = softmax(relu(B₁B₂ᵀ))` (Eq. 15) and of a
//!   sampled time-specific `C_t` (Eq. 16), emitted as `probe.damgn`. A
//!   collapse of `B` toward uniform rows (normalized entropy → 1) or the
//!   λ's drifting to zero are early signs the adaptive graph stopped
//!   contributing.
//! * **DFGN memory drift** — per-epoch L2 distance of the shared entity
//!   memory table from its initialization, plus the prediction-phase
//!   filter-cache hit/miss counters, emitted as `probe.dfgn`. The
//!   memories are the only per-entity trainable state (§IV-C); zero drift
//!   means the plugin is not learning.
//!
//! Every probe entry point is gated on the global telemetry switch *and*
//! its own [`ProbeConfig`] flag before doing any work, so the disabled
//! path is allocation-free (proven by
//! `crates/core/tests/probe_disabled_allocations.rs`).

use crate::forecaster::Forecaster;
use enhancenet_autodiff::Graph;
use enhancenet_data::WindowDataset;
use enhancenet_stats::metrics::{metrics_per_entity, metrics_per_horizon};
use enhancenet_tensor::Tensor;

/// Which model-health probes run, threaded through
/// [`crate::TrainConfig`]. Defaults enable everything: the probes only
/// fire when global telemetry is on, so the default costs nothing in
/// ordinary runs.
#[derive(Debug, Clone, Copy)]
pub struct ProbeConfig {
    /// Emit per-entity and per-horizon error events at evaluation.
    pub error_attribution: bool,
    /// How many worst entities to report per evaluation.
    pub top_k_entities: usize,
    /// Emit per-epoch DAMGN λ / adjacency-health events.
    pub graph_diagnostics: bool,
    /// Emit per-epoch DFGN memory-drift events.
    pub memory_drift: bool,
}

impl Default for ProbeConfig {
    fn default() -> Self {
        Self {
            error_attribution: true,
            top_k_entities: 5,
            graph_diagnostics: true,
            memory_drift: true,
        }
    }
}

impl ProbeConfig {
    /// A configuration with every probe off (explicit opt-out).
    pub fn disabled() -> Self {
        Self {
            error_attribution: false,
            top_k_entities: 0,
            graph_diagnostics: false,
            memory_drift: false,
        }
    }
}

/// Emits error-attribution events for one evaluation: the `top_k`
/// worst-MAE entities as ranked `probe.entity_error` events and the full
/// error-vs-horizon curve as `probe.horizon_error` events.
///
/// `pred` and `truth` are the raw-scale `[B, F, N]` tensors the headline
/// metrics are computed from.
pub fn record_error_attribution(cfg: &ProbeConfig, pred: &Tensor, truth: &Tensor) {
    if !enhancenet_telemetry::enabled() || !cfg.error_attribution {
        return;
    }
    let _span = enhancenet_telemetry::span("probes.error_attribution");
    let per_entity = metrics_per_entity(pred, truth);
    let mut ranked: Vec<(usize, f32, f32, f32)> =
        per_entity.iter().enumerate().map(|(i, m)| (i, m.mae, m.rmse, m.mape)).collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    for (rank, &(entity, mae, rmse, mape)) in ranked.iter().take(cfg.top_k_entities).enumerate() {
        enhancenet_telemetry::record_event(
            "probe.entity_error",
            &serde_json::json!({
                "rank": rank,
                "entity": entity,
                "mae": mae,
                "rmse": rmse,
                "mape": mape,
            }),
        );
    }
    for (i, m) in metrics_per_horizon(pred, truth).iter().enumerate() {
        enhancenet_telemetry::record_event(
            "probe.horizon_error",
            &serde_json::json!({
                "horizon": i + 1,
                "mae": m.mae,
                "rmse": m.rmse,
                "mape": m.mape,
            }),
        );
    }
}

/// Largest entity count the graph-diagnostics probe will materialize a
/// dense `[N, N]` adjacency for. Above this, a DAMGN without a top-k
/// budget reports `null` adjacency statistics instead of allocating
/// `N²` floats (400 MB at `N = 10k`) for a health probe; the sparse
/// top-k path has no such limit — its statistics come straight from the
/// `[N, K]` value tensors.
pub const DENSE_PROBE_MAX_ENTITIES: usize = 4096;

/// Emits one `probe.damgn` event for `epoch` when the model carries a
/// DAMGN: the learned λ mixing weights, row-entropy (normalized by
/// `ln N`, so 1 = uniform rows, 0 = one-hot) and effective density
/// (fraction of weights above the uniform level `1/N`) of the static
/// adjacency `B`, and — when a validation window exists — the same two
/// statistics for a sampled `C_t` built from the last timestamp of the
/// first validation window.
///
/// When the DAMGN runs with a top-k budget, the statistics are computed on
/// the sparse `[N, K]` values directly (zero entries contribute nothing to
/// either statistic, so this is exact, not an approximation). Without a
/// budget the probe densifies, but only up to
/// [`DENSE_PROBE_MAX_ENTITIES`]; past that the adjacency statistics are
/// reported as `null`.
pub fn record_graph_diagnostics(
    cfg: &ProbeConfig,
    epoch: usize,
    model: &dyn Forecaster,
    data: &WindowDataset,
) {
    if !enhancenet_telemetry::enabled() || !cfg.graph_diagnostics {
        return;
    }
    let Some(damgn) = model.damgn() else {
        return;
    };
    let _span = enhancenet_telemetry::span("probes.graph_diagnostics");
    let store = model.store();
    let (la, lb, lc) = damgn.lambda_ids();
    let n = damgn.num_entities();
    let ln_n = (n.max(2) as f32).ln();
    let uniform = 1.0 / n as f32;
    let total = (n * n) as f32;

    // Sample C_t from the last timestamp of the first validation window —
    // an arbitrary but deterministic probe point. Host models condition
    // the DAMGN on the target feature only (in_features = 1), so the
    // probe must sample the same slice.
    let sample_x = (!data.split.val.is_empty()).then(|| {
        let x = data.input_window(data.split.val.start);
        let h = x.shape()[0];
        x.slice_axis(0, h - 1, h).slice_axis(2, 0, 1) // [1, N, 1]
    });

    let mut g = Graph::new();
    let stats =
        |t: &Tensor| (t.row_entropy().mean_all() / ln_n, t.count_greater(uniform) as f32 / total);
    let (b_stats, c_stats) = if let Some(k) = damgn.top_k() {
        let pattern = damgn.topk_pattern(store, k);
        let b = damgn.static_b_topk(&mut g, store, &pattern);
        let b_stats = stats(g.value(b));
        let c_stats = sample_x.map(|x| {
            let x_t = g.constant(x);
            let c = damgn.dynamic_c_topk(&mut g, store, x_t, &pattern);
            stats(g.value(c))
        });
        (Some(b_stats), c_stats)
    } else if n <= DENSE_PROBE_MAX_ENTITIES {
        let b = damgn.static_b(&mut g, store);
        let b_stats = stats(g.value(b));
        let c_stats = sample_x.map(|x| {
            let x_t = g.constant(x);
            let c = damgn.dynamic_c(&mut g, store, x_t);
            stats(g.value(c))
        });
        (Some(b_stats), c_stats)
    } else {
        (None, None)
    };
    let (b_entropy, b_density) = (b_stats.map(|s| s.0), b_stats.map(|s| s.1));
    let (c_entropy, c_density) = (c_stats.map(|s| s.0), c_stats.map(|s| s.1));

    enhancenet_telemetry::record_event(
        "probe.damgn",
        &serde_json::json!({
            "epoch": epoch,
            "lambda_a": store.value(la).item(),
            "lambda_b": store.value(lb).item(),
            "lambda_c": store.value(lc).item(),
            "b_row_entropy": b_entropy,
            "b_effective_density": b_density,
            "c_row_entropy": c_entropy,
            "c_effective_density": c_density,
        }),
    );
}

/// Tracks how far the shared DFGN entity-memory table has moved from its
/// initialization. Construct once at the start of training with
/// [`MemoryDriftProbe::start`], then call [`MemoryDriftProbe::record`]
/// per epoch to emit `probe.dfgn` events.
pub struct MemoryDriftProbe {
    init: Option<Tensor>,
}

impl MemoryDriftProbe {
    /// Snapshots the model's memory table (when it has one and the probe
    /// is active). Inert — holds nothing — otherwise.
    pub fn start(cfg: &ProbeConfig, model: &dyn Forecaster) -> Self {
        if !enhancenet_telemetry::enabled() || !cfg.memory_drift {
            return Self { init: None };
        }
        let init = model.memory_id().map(|id| model.store().value(id).clone());
        Self { init }
    }

    /// True when a snapshot was taken (diagnostic/test hook).
    pub fn is_active(&self) -> bool {
        self.init.is_some()
    }

    /// Emits one `probe.dfgn` event: L2 distance of the current memory
    /// table from the initial snapshot, plus the DFGN filter-cache
    /// hit/miss counters (nonzero only once inference has run).
    pub fn record(&self, epoch: usize, model: &dyn Forecaster) {
        if !enhancenet_telemetry::enabled() {
            return;
        }
        let (Some(init), Some(id)) = (self.init.as_ref(), model.memory_id()) else {
            return;
        };
        let _span = enhancenet_telemetry::span("probes.memory_drift");
        let cur = model.store().value(id);
        let drift = cur
            .data()
            .iter()
            .zip(init.data())
            .map(|(&a, &b)| {
                let d = (a - b) as f64;
                d * d
            })
            .sum::<f64>()
            .sqrt();
        let hits = enhancenet_telemetry::counter_value("dfgn.cache.hits");
        let misses = enhancenet_telemetry::counter_value("dfgn.cache.misses");
        let lookups = hits + misses;
        enhancenet_telemetry::record_event(
            "probe.dfgn",
            &serde_json::json!({
                "epoch": epoch,
                "memory_l2_from_init": drift,
                "cache_hits": hits,
                "cache_misses": misses,
                "cache_hit_rate": if lookups > 0 { hits as f64 / lookups as f64 } else { 0.0 },
            }),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forecaster::test_model::AffinePersistence;
    use enhancenet_data::traffic::{generate_traffic, TrafficConfig};
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// Telemetry is process-global; serialize probe tests against it.
    fn lock_telemetry() -> MutexGuard<'static, ()> {
        static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
        GUARD.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|p| p.into_inner())
    }

    fn dataset() -> WindowDataset {
        let ds = generate_traffic(&TrafficConfig::tiny(4, 2));
        WindowDataset::from_series(&ds, 12, 12).unwrap()
    }

    #[test]
    fn error_attribution_emits_ranked_entities_and_horizon_curve() {
        let _g = lock_telemetry();
        enhancenet_telemetry::reset();
        enhancenet_telemetry::set_enabled(true);
        // [B=1, F=2, N=3]: entity 2 is the clear worst.
        let pred = Tensor::from_vec(vec![11.0, 10.0, 19.0, 11.0, 10.0, 15.0], &[1, 2, 3]);
        let truth = Tensor::from_vec(vec![10.0; 6], &[1, 2, 3]);
        let cfg = ProbeConfig { top_k_entities: 2, ..ProbeConfig::default() };
        record_error_attribution(&cfg, &pred, &truth);
        enhancenet_telemetry::set_enabled(false);
        assert_eq!(enhancenet_telemetry::event_count("probe.entity_error"), 2);
        assert_eq!(enhancenet_telemetry::event_count("probe.horizon_error"), 2);
        let entities = enhancenet_telemetry::events_of_kind("probe.entity_error");
        // Rank 0 is the worst entity (index 2, mean |err| 7).
        assert_eq!(entities[0]["rank"], 0);
        assert_eq!(entities[0]["entity"], 2);
        assert!((entities[0]["mae"].as_f64().unwrap() - 7.0).abs() < 1e-5);
        let horizons = enhancenet_telemetry::events_of_kind("probe.horizon_error");
        assert_eq!(horizons[0]["horizon"], 1);
        assert_eq!(horizons[1]["horizon"], 2);
        enhancenet_telemetry::reset();
    }

    #[test]
    fn probes_disabled_by_flag_emit_nothing() {
        let _g = lock_telemetry();
        enhancenet_telemetry::reset();
        enhancenet_telemetry::set_enabled(true);
        let pred = Tensor::ones(&[1, 2, 3]);
        let truth = Tensor::from_vec(vec![2.0; 6], &[1, 2, 3]);
        record_error_attribution(&ProbeConfig::disabled(), &pred, &truth);
        let model = AffinePersistence::new(12);
        let data = dataset();
        record_graph_diagnostics(&ProbeConfig::disabled(), 0, &model, &data);
        let drift = MemoryDriftProbe::start(&ProbeConfig::disabled(), &model);
        assert!(!drift.is_active());
        drift.record(0, &model);
        enhancenet_telemetry::set_enabled(false);
        assert_eq!(enhancenet_telemetry::event_count("probe.entity_error"), 0);
        assert_eq!(enhancenet_telemetry::event_count("probe.damgn"), 0);
        assert_eq!(enhancenet_telemetry::event_count("probe.dfgn"), 0);
        enhancenet_telemetry::reset();
    }

    #[test]
    fn graph_diagnostics_skip_models_without_damgn() {
        let _g = lock_telemetry();
        enhancenet_telemetry::reset();
        enhancenet_telemetry::set_enabled(true);
        let model = AffinePersistence::new(12);
        let data = dataset();
        record_graph_diagnostics(&ProbeConfig::default(), 3, &model, &data);
        enhancenet_telemetry::set_enabled(false);
        assert_eq!(enhancenet_telemetry::event_count("probe.damgn"), 0);
        enhancenet_telemetry::reset();
    }

    #[test]
    fn memory_drift_probe_inert_without_memory() {
        let _g = lock_telemetry();
        enhancenet_telemetry::reset();
        enhancenet_telemetry::set_enabled(true);
        let model = AffinePersistence::new(12);
        let drift = MemoryDriftProbe::start(&ProbeConfig::default(), &model);
        // AffinePersistence has no DFGN memory table.
        assert!(!drift.is_active());
        drift.record(0, &model);
        enhancenet_telemetry::set_enabled(false);
        assert_eq!(enhancenet_telemetry::event_count("probe.dfgn"), 0);
        enhancenet_telemetry::reset();
    }
}
