//! # enhancenet
//!
//! The paper's primary contribution: **EnhanceNet**, a pair of plugin neural
//! networks that enhance existing correlated-time-series forecasters
//! (Cirstea et al., *EnhanceNet: Plugin Neural Networks for Enhancing
//! Correlated Time Series Forecasting*, ICDE 2021).
//!
//! * [`Dfgn`] — the **Distinct Filter Generation Network** (§IV-C): each
//!   entity owns a small trainable memory vector; one shared two-hidden-
//!   layer MLP maps memories to entity-specific filters, so RNN/TCN hosts
//!   capture *distinct temporal dynamics* with a parameter count that stays
//!   nearly flat in the number of entities.
//! * [`Damgn`] — the **Dynamic Adjacency Matrix Generation Network** (§V-B):
//!   combines the distance-based adjacency `A`, a learned static adaptive
//!   graph `B = softmax(relu(B₁B₂ᵀ))` (Eq. 15), and a per-timestamp
//!   embedded-Gaussian attention graph `C_t` (Eq. 16) with learnable mixing
//!   weights (Eq. 13), so graph convolution sees *dynamic entity
//!   correlations*.
//! * [`gconv`] — graph convolution on the autodiff tape (Eq. 12/14),
//!   supporting static and per-timestamp (batched) adjacencies and k-hop
//!   diffusion.
//! * [`Forecaster`] + [`Trainer`] — the training/evaluation harness shared
//!   by every host model and baseline, reporting the paper's metrics at the
//!   3rd/6th/12th horizon plus parameter counts and runtimes.
//! * [`probes`] — model-health probes (per-entity/per-horizon error
//!   attribution, DAMGN λ/adjacency diagnostics, DFGN memory drift)
//!   emitted as structured telemetry events.
//!
//! * [`serve`] — the online serving runtime: sliding-window ingest,
//!   micro-batched inference on worker threads, deadlines with graceful
//!   degradation to persistence forecasts, and a sharded multi-tenant
//!   fleet with zero-downtime weight hot swap and per-tenant quotas.
//!
//! The host models themselves (RNN, TCN, GRNN, GTCN and their enhanced
//! variants) live in `enhancenet-models`; this crate holds everything that
//! is *the paper's own contribution* plus the harness.
//!
//! Most callers want [`prelude`]:
//!
//! ```ignore
//! use enhancenet::prelude::*;
//! ```

pub mod damgn;
pub mod dfgn;
pub mod error;
pub mod forecaster;
pub mod gconv;
pub mod prelude;
pub mod probes;
pub mod serve;
pub mod trainer;

pub use damgn::{Damgn, DamgnBinding, DamgnConfig, DamgnSparseBinding, StaticFoldCache};
pub use dfgn::{
    gru_filter_dim, gru_filter_dim_general, split_gru_filters, split_gru_filters_general,
    split_tcn_filters, tcn_filter_dim, Dfgn, DfgnConfig, FilterCache, GeneratedGruFilters,
};
pub use error::EnhanceNetError;
pub use forecaster::{Forecaster, ForwardCtx};
pub use gconv::{graph_conv, GcSupport};
pub use probes::{MemoryDriftProbe, ProbeConfig};
pub use serve::{
    DegradedCause, FleetService, Forecast, ForecastService, PendingForecast, RequestTiming,
    ServeConfig, ServeConfigBuilder, ShutdownMode, ShutdownReport, SnapshotPublisher, Tenant,
    TenantQuota, TenantReport,
};
pub use trainer::{
    EpochTelemetry, EvalReport, TrainConfig, TrainConfigBuilder, TrainReport, Trainer,
};
