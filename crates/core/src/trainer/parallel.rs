//! The sharded data-parallel training engine.
//!
//! [`ShardEngine`] splits every mini-batch along the window axis and runs
//! the forward + backward passes on scoped worker threads, each against the
//! shared read-only [`ParamStore`]. The determinism contract is that the
//! shard count `K` never changes the math, only the schedule:
//!
//! * **Per-window work units.** The decomposition is per *window*, not per
//!   worker: every window builds its own private [`Graph`], draws from its
//!   own `TensorRng` stream (derived from the training seed, a global batch
//!   counter, and the window's position in the batch), and exports its leaf
//!   gradients into its own [`GradBuffer`]. Nothing a worker computes
//!   depends on which worker computed it or on `K`.
//! * **Fixed-order reduction.** The main thread folds the per-window
//!   buffers into one accumulator in batch order `0, 1, …, B-1` and flushes
//!   it into the store in [`ParamId`](enhancenet_autodiff::ParamId) order
//!   ([`GradBuffer::reduce_into`]). Float addition is not associative, so
//!   any scheme that reduced per-*worker* partial sums (or raced atomics
//!   into the store) would make the result depend on `K` and on thread
//!   timing. Per-window losses fold the same way, normalized by the whole
//!   batch's mask sum so the grouping of windows into shards cancels out of
//!   both the loss value and its gradients.
//!
//! Together these give the headline property pinned by the equivalence
//! tests: `data_parallel(1)` and `data_parallel(K)` produce bit-identical
//! training trajectories, so thread count becomes a pure throughput knob.

use crate::forecaster::{Forecaster, ForwardCtx};
use enhancenet_autodiff::{GradBuffer, Graph, ParamStore};
use enhancenet_data::Batch;
use enhancenet_tensor::{Tensor, TensorRng};

/// SplitMix64 finalizer: decorrelates nearby inputs into independent-looking
/// streams. Deterministic and cheap; the standard choice for spawning
/// per-task RNG seeds from a master seed.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The RNG seed for one window's forward pass: a function of the training
/// seed, the global batch counter, and the window's index *within the
/// batch* — never of the shard count or thread identity.
pub(crate) fn window_stream_seed(seed: u64, global_batch: u64, window: usize) -> u64 {
    let base = splitmix64(seed.wrapping_add(splitmix64(global_batch.wrapping_add(1))));
    splitmix64(base.wrapping_add(window as u64))
}

/// Reusable state for sharded training steps: one [`GradBuffer`] per window
/// slot plus the ordered-fold accumulator. Buffers are materialized on the
/// first batch and zeroed in place between batches, so the steady-state hot
/// loop does not reallocate them.
pub(crate) struct ShardEngine {
    workers: usize,
    buffers: Vec<GradBuffer>,
    losses: Vec<f32>,
    total: GradBuffer,
}

impl ShardEngine {
    /// An engine driving `workers` scoped threads over batches of at most
    /// `batch_size` windows of a model backed by `store`.
    pub(crate) fn new(workers: usize, store: &ParamStore, batch_size: usize) -> Self {
        assert!(workers > 0, "shard engine needs at least one worker");
        Self {
            workers,
            buffers: (0..batch_size).map(|_| GradBuffer::for_store(store)).collect(),
            losses: vec![0.0; batch_size],
            total: GradBuffer::for_store(store),
        }
    }

    /// Runs forward + backward for every window of `batch` across the
    /// worker threads and returns the batch loss (per-window masked-MAE
    /// contributions folded in window order).
    ///
    /// On a finite loss the summed gradients are left staged for
    /// [`ShardEngine::reduce_into`]; on a non-finite loss (diverged batch)
    /// nothing is staged and the caller skips the update.
    ///
    /// `target` is the sanitized scaled target tensor (non-finite readings
    /// zeroed) and `mask` the matching missing-data mask; both span the
    /// whole batch so the loss denominator is shard-independent.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn train_batch(
        &mut self,
        model: &dyn Forecaster,
        batch: &Batch,
        target: &Tensor,
        mask: &Tensor,
        tf_prob: f32,
        seed: u64,
        global_batch: u64,
    ) -> f32 {
        let b = batch.starts.len();
        assert!(b <= self.buffers.len(), "batch larger than engine capacity");
        let denom = mask.sum_all().max(1e-6);
        let chunk = b.div_ceil(self.workers).max(1);
        enhancenet_telemetry::count("trainer.shard.batches", 1);
        enhancenet_telemetry::count("trainer.shard.windows", b as u64);
        {
            let _span = enhancenet_telemetry::span("trainer.shard.fanout");
            std::thread::scope(|s| {
                let buffer_chunks = self.buffers[..b].chunks_mut(chunk);
                let loss_chunks = self.losses[..b].chunks_mut(chunk);
                for (w, (bufs, losses)) in buffer_chunks.zip(loss_chunks).enumerate() {
                    let first = w * chunk;
                    s.spawn(move || {
                        let _span = enhancenet_telemetry::span("trainer.shard.worker");
                        for (i, (buf, loss_slot)) in
                            bufs.iter_mut().zip(losses.iter_mut()).enumerate()
                        {
                            let j = first + i;
                            let x_j = batch.x.slice_axis(0, j, j + 1);
                            let y_j = target.slice_axis(0, j, j + 1);
                            let m_j = mask.slice_axis(0, j, j + 1);
                            let mut rng =
                                TensorRng::seed(window_stream_seed(seed, global_batch, j));
                            let mut g = Graph::new();
                            let pred = {
                                let mut ctx = ForwardCtx::train(&mut rng, &y_j, tf_prob);
                                model.forward(&mut g, &x_j, &mut ctx)
                            };
                            let loss = g.masked_mae_with_denom(pred, &y_j, &m_j, denom);
                            *loss_slot = g.value(loss).item();
                            if loss_slot.is_finite() {
                                g.backward(loss);
                                g.export_grads(buf);
                            }
                        }
                    });
                }
            });
        }
        let mut batch_loss = 0.0f32;
        for &l in &self.losses[..b] {
            batch_loss += l;
        }
        if batch_loss.is_finite() {
            let _span = enhancenet_telemetry::span("trainer.shard.reduce");
            for buf in &self.buffers[..b] {
                self.total.add_from(buf);
            }
        }
        for buf in &mut self.buffers[..b] {
            buf.reset();
        }
        batch_loss
    }

    /// Flushes the staged batch gradients into `store` in parameter order
    /// and rearms the accumulator. Call exactly once per finite
    /// [`ShardEngine::train_batch`], after `store.zero_grad()`.
    pub(crate) fn reduce_into(&mut self, store: &mut ParamStore) {
        self.total.reduce_into(store);
        self.total.reset();
    }
}

/// Evaluation-mode forward passes for every window of `batch`, fanned out
/// over `workers` scoped threads, assembled into one `[B, F, N]` prediction
/// tensor in window order. Eval draws nothing from the RNG, and each
/// window's rows are written to a disjoint slice, so the result is
/// identical for every worker count.
pub(crate) fn eval_predictions(model: &dyn Forecaster, batch: &Batch, workers: usize) -> Tensor {
    let b = batch.starts.len();
    let f = model.horizon();
    let n = batch.y_raw.shape()[2];
    let per = f * n;
    let mut out = vec![0.0f32; b * per];
    let chunk = b.div_ceil(workers.max(1)).max(1);
    std::thread::scope(|s| {
        for (w, rows) in out.chunks_mut(chunk * per).enumerate() {
            let first = w * chunk;
            s.spawn(move || {
                for (i, row) in rows.chunks_mut(per).enumerate() {
                    let j = first + i;
                    let x_j = batch.x.slice_axis(0, j, j + 1);
                    let mut rng = TensorRng::seed(0);
                    let mut g = Graph::new();
                    let pred = {
                        let mut ctx = ForwardCtx::eval(&mut rng);
                        model.forward(&mut g, &x_j, &mut ctx)
                    };
                    row.copy_from_slice(g.value(pred).data());
                }
            });
        }
    });
    Tensor::from_vec(out, &[b, f, n])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forecaster::test_model::AffinePersistence;
    use crate::trainer::{TrainConfig, Trainer};
    use enhancenet_data::traffic::{generate_traffic, TrafficConfig};
    use enhancenet_data::{BatchIterator, WindowDataset};

    fn dataset() -> WindowDataset {
        let ds = generate_traffic(&TrafficConfig::tiny(4, 2));
        WindowDataset::from_series(&ds, 12, 12).unwrap()
    }

    fn quick_cfg(shards: usize) -> TrainConfig {
        TrainConfig::builder()
            .epochs(4)
            .batch_size(8)
            .max_batches_per_epoch(Some(10))
            .max_eval_batches(Some(4))
            .data_parallel(shards)
            .build()
            .unwrap()
    }

    #[test]
    fn window_stream_seeds_are_stable_and_distinct() {
        let a = window_stream_seed(1, 0, 0);
        assert_eq!(a, window_stream_seed(1, 0, 0), "seed derivation must be deterministic");
        // Neighbouring windows, batches and runs all land on different
        // streams.
        assert_ne!(a, window_stream_seed(1, 0, 1));
        assert_ne!(a, window_stream_seed(1, 1, 0));
        assert_ne!(a, window_stream_seed(2, 0, 0));
    }

    #[test]
    fn data_parallel_shards_are_bit_identical() {
        // The tentpole contract: the shard count changes scheduling, never
        // math. Train the same model under 1, 2 and 4 shards and require
        // bit-identical losses, validation MAEs and final weights.
        let data = dataset();
        let mut reports = Vec::new();
        let mut snapshots = Vec::new();
        for shards in [1usize, 2, 4] {
            let mut model = AffinePersistence::new(12);
            let trainer = Trainer::new(quick_cfg(shards));
            let report = trainer.train(&mut model, &data);
            snapshots.push(model.store().snapshot());
            reports.push((shards, report));
        }
        let (_, base) = &reports[0];
        for (shards, report) in &reports[1..] {
            assert_eq!(
                base.train_loss.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                report.train_loss.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "train_loss diverged at {shards} shards"
            );
            assert_eq!(
                base.val_mae.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                report.val_mae.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "val_mae diverged at {shards} shards"
            );
            assert_eq!(base.best_epoch, report.best_epoch);
        }
        for (i, snap) in snapshots[1..].iter().enumerate() {
            for (a, b) in snapshots[0].iter().zip(snap) {
                assert_eq!(
                    a.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    b.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "final weights diverged for run {}",
                    i + 1
                );
            }
        }
    }

    #[test]
    fn sharded_training_reduces_loss() {
        let data = dataset();
        let mut model = AffinePersistence::new(12);
        let trainer = Trainer::new(quick_cfg(2));
        let report = trainer.train(&mut model, &data);
        let first = report.train_loss[0];
        let last = *report.train_loss.last().unwrap();
        assert!(last < first, "sharded loss should fall: first {first}, last {last}");
    }

    #[test]
    fn eval_predictions_are_worker_count_invariant() {
        let data = dataset();
        let model = AffinePersistence::new(12);
        let batch = BatchIterator::sequential(&data, data.split.val.clone(), 8).next().unwrap();
        let serial = eval_predictions(&model, &batch, 1);
        for workers in [2usize, 3, 8] {
            let parallel = eval_predictions(&model, &batch, workers);
            assert_eq!(serial.shape(), parallel.shape());
            assert_eq!(
                serial.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                parallel.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "eval diverged at {workers} workers"
            );
        }
    }

    #[test]
    fn nan_reading_masks_out_instead_of_diverging() {
        // A corrupt (NaN) raw reading must degrade to one masked entry:
        // the sanitized target keeps the tape finite and the mask keeps the
        // entry out of the loss — not a diverged batch.
        let data = dataset();
        let mut batch =
            BatchIterator::sequential(&data, data.split.train.clone(), 4).next().unwrap();
        batch.y_raw.data_mut()[5] = f32::NAN;
        batch.y_scaled.data_mut()[5] = f32::NAN;
        let mask = crate::trainer::missing_mask(&batch.y_raw);
        let target = crate::trainer::sanitized_targets(&batch.y_scaled);
        assert_eq!(mask.data()[5], 0.0, "NaN reading must be masked");
        assert_eq!(target.data()[5], 0.0, "NaN target must be zeroed off the tape");

        let mut model = AffinePersistence::new(12);
        let mut engine = ShardEngine::new(2, model.store(), 4);
        let loss = engine.train_batch(&model, &batch, &target, &mask, 0.0, 1, 0);
        assert!(loss.is_finite(), "one NaN reading diverged the whole batch: {loss}");

        model.store_mut().zero_grad();
        engine.reduce_into(model.store_mut());
        assert!(model.store().grad_norm().is_finite(), "NaN reading leaked into gradients");
    }
}
