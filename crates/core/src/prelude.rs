//! The one-line import for EnhanceNet users:
//!
//! ```ignore
//! use enhancenet::prelude::*;
//! ```
//!
//! Re-exports the redesigned public surface — the [`Forecaster`] trait and
//! its `predict` entry point, the validated [`TrainConfig`] builder and
//! [`Trainer`], the online [`ForecastService`] and multi-tenant
//! [`FleetService`] (spawned via [`ServeConfig::builder`]), plus the
//! dataset, scaling
//! and metric types those APIs trade in. Tape-level machinery
//! (`enhancenet_autodiff`, `ForwardCtx`) is deliberately *not* here: it is
//! only needed when implementing a new host model, not when using one.

pub use crate::damgn::{Damgn, DamgnConfig, StaticFoldCache};
pub use crate::dfgn::{Dfgn, DfgnConfig};
pub use crate::error::EnhanceNetError;
pub use crate::forecaster::Forecaster;
pub use crate::probes::ProbeConfig;
pub use crate::serve::{
    DegradedCause, FleetService, Forecast, ForecastService, PendingForecast, RequestTiming,
    ServeConfig, ServeConfigBuilder, ShutdownMode, ShutdownReport, SnapshotPublisher, Tenant,
    TenantQuota, TenantReport,
};
pub use crate::trainer::{
    EpochTelemetry, EvalReport, TrainConfig, TrainConfigBuilder, TrainReport, Trainer,
};
pub use enhancenet_data::traffic::{generate_traffic, TrafficConfig};
pub use enhancenet_data::weather::{generate_weather, WeatherConfig};
pub use enhancenet_data::{
    Batch, BatchIterator, ChronoSplit, CorrelatedTimeSeries, DataError, SlidingWindow,
    StandardScaler, WindowDataset,
};
pub use enhancenet_nn::optim::LrSchedule;
pub use enhancenet_stats::metrics::{
    mae, mape, metrics_at_horizon, metrics_per_entity, metrics_per_horizon, rmse, HorizonMetrics,
};
pub use enhancenet_telemetry::SloReport;
