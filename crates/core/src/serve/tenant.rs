//! Per-tenant serving state: token-bucket quotas, sliding windows, and the
//! [`Tenant`] handle callers ingest and forecast through.
//!
//! A fleet serves many independent streams ("tenants" — a city's sensor
//! grid, one customer's fleet of devices). Each tenant owns its sliding
//! window, its SLO window, and optionally a token bucket. The bucket is
//! the backpressure layer *in front of* the shared worker queues: a
//! bursting tenant exhausts its own tokens and degrades to persistence
//! forecasts ([`super::DegradedCause::QuotaExceeded`]) before its burst
//! can fill the queues every other tenant shares, keeping the quiet
//! tenants' deadline hit-rate intact. That is the per-tenant counterpart
//! of the queue's shed-on-full policy: quotas shed *fairly*, the queue
//! sheds *globally*.

use super::fleet::FleetService;
use super::Forecast;
use crate::error::EnhanceNetError;
use enhancenet_data::SlidingWindow;
use enhancenet_telemetry::{SloReport, SloWindow};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A per-tenant request-rate quota, enforced by a token bucket.
///
/// The bucket holds at most `burst` tokens, refills at `rate` tokens per
/// second, and each forecast request takes one token. A tenant that stays
/// under `rate` requests/sec never observes the quota; a burst beyond
/// `burst` requests is throttled until tokens accrue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantQuota {
    /// Sustained requests per second (must be finite and > 0).
    pub rate: f64,
    /// Bucket capacity — the burst size absorbed without throttling
    /// (must be finite and ≥ 1).
    pub burst: f64,
}

impl TenantQuota {
    /// A quota sustaining `rate` requests/sec with a one-second burst
    /// allowance (`burst = max(rate, 1)`).
    pub fn per_second(rate: f64) -> Self {
        Self { rate, burst: rate.max(1.0) }
    }

    /// Replaces the burst capacity.
    pub fn with_burst(mut self, burst: f64) -> Self {
        self.burst = burst;
        self
    }

    /// The checks [`super::ServeConfig::validate`] applies.
    pub(crate) fn validate(&self) -> Result<(), EnhanceNetError> {
        if !(self.rate.is_finite() && self.rate > 0.0) {
            return Err(EnhanceNetError::InvalidConfig {
                field: "tenant_quota",
                reason: format!("rate must be finite and > 0, got {}", self.rate),
            });
        }
        if !(self.burst.is_finite() && self.burst >= 1.0) {
            return Err(EnhanceNetError::InvalidConfig {
                field: "tenant_quota",
                reason: format!("burst must be finite and >= 1, got {}", self.burst),
            });
        }
        Ok(())
    }
}

/// The classic token bucket: starts full, refills continuously.
pub(crate) struct TokenBucket {
    quota: TenantQuota,
    tokens: f64,
    refilled: Instant,
}

impl TokenBucket {
    pub(crate) fn new(quota: TenantQuota) -> Self {
        Self { quota, tokens: quota.burst, refilled: Instant::now() }
    }

    /// Takes one token if available; refills lazily from elapsed time.
    pub(crate) fn try_take(&mut self) -> bool {
        let now = Instant::now();
        let accrued = now.duration_since(self.refilled).as_secs_f64() * self.quota.rate;
        self.tokens = (self.tokens + accrued).min(self.quota.burst);
        self.refilled = now;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// Everything the fleet tracks per tenant, behind one mutex.
pub(crate) struct TenantState {
    pub(crate) name: String,
    /// The worker shard this tenant's requests route to (assigned
    /// round-robin at first use, stable thereafter — tenant affinity keeps
    /// a tenant's batches on one worker's warm plan executors).
    pub(crate) shard: usize,
    pub(crate) buffer: SlidingWindow,
    pub(crate) bucket: Option<TokenBucket>,
    pub(crate) slo: SloWindow,
    pub(crate) requests: u64,
    pub(crate) throttled: u64,
    pub(crate) degraded: u64,
}

/// Point-in-time statistics for one tenant; see [`Tenant::report`].
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// The tenant's name.
    pub tenant: String,
    /// The worker shard serving this tenant.
    pub shard: usize,
    /// Forecast requests this tenant has made.
    pub requests: u64,
    /// Requests rejected by the tenant's token bucket.
    pub throttled: u64,
    /// Requests answered by a persistence fallback (any cause).
    pub degraded: u64,
    /// The tenant's rolling SLO window.
    pub slo: SloReport,
}

/// A handle to one tenant's stream within a [`FleetService`]; obtained
/// from [`FleetService::tenant`], cheap to re-acquire.
///
/// Ingest and forecast mirror the single-service API
/// ([`super::ForecastService::ingest`] /
/// [`super::ForecastService::forecast`]), but state, quota, and SLO
/// accounting are all per-tenant, and requests route to the tenant's
/// assigned worker shard.
pub struct Tenant<'a> {
    pub(crate) fleet: &'a FleetService,
    pub(crate) state: Arc<Mutex<TenantState>>,
}

impl std::fmt::Debug for Tenant<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.lock();
        f.debug_struct("Tenant")
            .field("name", &state.name)
            .field("shard", &state.shard)
            .field("requests", &state.requests)
            .finish_non_exhaustive()
    }
}

impl Tenant<'_> {
    fn lock(&self) -> std::sync::MutexGuard<'_, TenantState> {
        self.state.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// The worker shard this tenant's requests route to.
    pub fn shard(&self) -> usize {
        self.lock().shard
    }

    /// True once enough history is buffered for a model forecast.
    pub fn is_ready(&self) -> bool {
        self.lock().buffer.is_ready()
    }

    /// Ingests one entity's raw observation at `timestamp`; see
    /// [`SlidingWindow::ingest`].
    pub fn ingest(
        &self,
        timestamp: i64,
        entity: usize,
        features: &[f32],
    ) -> Result<(), EnhanceNetError> {
        self.lock().buffer.ingest(timestamp, entity, features)?;
        Ok(())
    }

    /// Ingests a full raw snapshot row (`N * C` values) at `timestamp`.
    pub fn ingest_row(&self, timestamp: i64, row: &[f32]) -> Result<(), EnhanceNetError> {
        self.lock().buffer.ingest_row(timestamp, row)?;
        Ok(())
    }

    /// Drops buffered history older than `cutoff`.
    pub fn evict_before(&self, cutoff: i64) {
        self.lock().buffer.evict_before(cutoff);
    }

    /// Forecasts the next `F` steps from this tenant's window; same
    /// degradation contract as [`super::ForecastService::forecast`], plus
    /// [`super::DegradedCause::QuotaExceeded`] when the tenant's token bucket is
    /// dry (the request never reaches the shared queues).
    pub fn forecast(&self) -> Result<Forecast, EnhanceNetError> {
        self.fleet.tenant_forecast(&self.state)
    }

    /// Point-in-time statistics: request/throttle/degraded counts and the
    /// tenant's rolling SLO window.
    pub fn report(&self) -> TenantReport {
        let state = self.lock();
        TenantReport {
            tenant: state.name.clone(),
            shard: state.shard,
            requests: state.requests,
            throttled: state.throttled,
            degraded: state.degraded,
            slo: state.slo.report(),
        }
    }
}

/// The outcome bookkeeping shared by the fleet's healthy and fallback
/// paths: records into the tenant's SLO window and bumps its counters.
pub(crate) fn record_tenant_outcome(
    state: &Mutex<TenantState>,
    total_ns: u64,
    deadline_ns: u128,
    degraded: bool,
) {
    let mut state = state.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    let deadline_hit = u128::from(total_ns) <= deadline_ns;
    state.slo.record(total_ns as f64, deadline_hit, degraded);
    if degraded {
        state.degraded += 1;
        enhancenet_telemetry::count("serve.tenant.degraded", 1);
    }
}
