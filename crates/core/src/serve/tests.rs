use super::reply::ReplySlot;
use super::worker::BatchReply;
use super::*;
use crate::error::EnhanceNetError;
use crate::forecaster::test_model::AffinePersistence;
use crate::forecaster::{Forecaster, ForwardCtx};
use enhancenet_autodiff::{Graph, ParamStore, Var};
use enhancenet_data::StandardScaler;
use enhancenet_tensor::{Tensor, TensorRng};
use std::time::{Duration, Instant};

const H: usize = 5;
const N: usize = 3;
const C: usize = 1;
const F: usize = 4;

fn scaler() -> StandardScaler {
    let mut rng = TensorRng::seed(11);
    let history = rng.normal(&[40, N, C], 50.0, 10.0);
    StandardScaler::fit(&history, 30).unwrap()
}

fn service(builder: ServeConfigBuilder) -> ForecastService {
    let model = AffinePersistence::new(F).with_input_shape(H, N, C);
    builder.spawn(Box::new(model), scaler()).unwrap()
}

fn feed(svc: &mut ForecastService, steps: usize) {
    for t in 0..steps {
        for e in 0..N {
            svc.ingest(t as i64, e, &[40.0 + t as f32 + e as f32]).unwrap();
        }
    }
}

#[test]
fn served_forecast_matches_offline_predict() {
    let mut svc = service(ServeConfig::builder());
    feed(&mut svc, H);
    let served = svc.forecast().unwrap();
    assert!(!served.is_degraded());
    assert_eq!(served.degraded, None);
    assert_eq!(served.anchor, Some(H as i64 - 1));
    assert_eq!(served.values.shape(), &[F, N]);

    // The offline path over the same observations, scaled the same way.
    let model = AffinePersistence::new(F).with_input_shape(H, N, C);
    let sc = scaler();
    let raw = svc.state().window().unwrap();
    let offline = sc.inverse_feature(&model.predict(&sc.transform(&raw).unwrap()).unwrap(), 0);
    assert_eq!(served.values.data(), offline.data());
}

#[test]
fn empty_service_reports_not_ready() {
    let svc = service(ServeConfig::builder());
    match svc.forecast() {
        Err(EnhanceNetError::NotReady { have: 0, need }) => assert_eq!(need, H),
        other => panic!("expected NotReady, got {other:?}"),
    }
}

#[test]
fn warming_buffer_serves_degraded_persistence() {
    let mut svc = service(ServeConfig::builder());
    svc.ingest(0, 0, &[42.0]).unwrap();
    assert!(!svc.is_ready());
    let f = svc.forecast().unwrap();
    assert_eq!(f.degraded, Some(DegradedCause::ColdWindow));
    assert!(f.is_degraded());
    assert_eq!(f.values.shape(), &[F, N]);
    assert_eq!(f.values.at(&[0, 0]), 42.0);
    assert_eq!(f.values.at(&[F - 1, 0]), 42.0);
    // Entities never observed persist their fill value.
    assert_eq!(f.values.at(&[0, 1]), 0.0);
}

#[test]
fn request_ids_are_monotonic_and_timing_populated() {
    let mut svc = service(ServeConfig::builder());
    feed(&mut svc, H);
    let a = svc.forecast().unwrap();
    let b = svc.forecast().unwrap();
    assert!(b.request_id > a.request_id, "ids must grow: {} then {}", a.request_id, b.request_id);
    for f in [&a, &b] {
        assert!(f.timing.total_ns > 0);
        assert!(
            f.timing.queue_wait_ns + f.timing.forward_ns <= f.timing.total_ns,
            "attribution exceeds wall time: {:?}",
            f.timing
        );
        assert!(f.timing.forward_ns > 0, "model path must attribute forward time");
    }
}

#[test]
fn slo_report_tracks_outcomes() {
    let mut svc = service(ServeConfig::builder());
    svc.ingest(0, 0, &[42.0]).unwrap();
    let _ = svc.forecast().unwrap(); // cold-window fallback
    feed(&mut svc, H);
    let _ = svc.forecast().unwrap(); // healthy
    let report = svc.slo_report();
    assert_eq!(report.requests, 2);
    assert!((report.degraded_rate - 0.5).abs() < 1e-12);
    // Both answered far inside the 250 ms default deadline.
    assert_eq!(report.deadline_hit_rate, 1.0);
    assert_eq!(report.error_budget_burn, 0.0);
    assert!(report.latency_p50_ns > 0.0);
    assert_eq!(report.window, svc.config().slo_window);
}

/// A model that sleeps in `forward`, simulating an overloaded backend.
struct SlowModel {
    inner: AffinePersistence,
    sleep: Duration,
}

impl Forecaster for SlowModel {
    fn name(&self) -> &str {
        "slow"
    }
    fn store(&self) -> &ParamStore {
        self.inner.store()
    }
    fn store_mut(&mut self) -> &mut ParamStore {
        self.inner.store_mut()
    }
    fn horizon(&self) -> usize {
        self.inner.horizon()
    }
    fn input_shape(&self) -> Option<[usize; 3]> {
        self.inner.input_shape()
    }
    fn forward(&self, g: &mut Graph, x: &Tensor, ctx: &mut ForwardCtx) -> Var {
        std::thread::sleep(self.sleep);
        self.inner.forward(g, x, ctx)
    }
}

#[test]
fn missed_deadline_degrades_without_hanging() {
    let model = SlowModel {
        inner: AffinePersistence::new(F).with_input_shape(H, N, C),
        sleep: Duration::from_millis(200),
    };
    let mut svc = ServeConfig::builder()
        .deadline(Duration::from_millis(5))
        .spawn(Box::new(model), scaler())
        .unwrap();
    feed(&mut svc, H);
    let started = Instant::now();
    let f = svc.forecast().unwrap();
    assert_eq!(f.degraded, Some(DegradedCause::Deadline));
    assert!(
        started.elapsed() < Duration::from_millis(150),
        "forecast blocked past its deadline: {:?}",
        started.elapsed()
    );
    // The miss shows up in the rolling SLO window.
    let report = svc.slo_report();
    assert!(report.deadline_hit_rate < 1.0);
    assert!(report.error_budget_burn > 0.0);
    svc.shutdown(ShutdownMode::Drain);
}

#[test]
fn overloaded_queue_degrades_with_queue_full_cause() {
    let model = SlowModel {
        inner: AffinePersistence::new(F).with_input_shape(H, N, C),
        sleep: Duration::from_millis(300),
    };
    let mut svc = ServeConfig::builder()
        .max_batch(1)
        .queue_capacity(1)
        .deadline(Duration::from_millis(5))
        .spawn(Box::new(model), scaler())
        .unwrap();
    feed(&mut svc, H);
    // Occupy the worker with one request and fill the 1-deep queue with
    // another; the next forecast cannot enqueue and must degrade.
    let window = Tensor::zeros(&[H, N, C]);
    let _busy = svc.submit(&window).unwrap();
    std::thread::sleep(Duration::from_millis(30)); // let the worker take it
    let _queued = svc.submit(&window).unwrap();
    let f = svc.forecast().unwrap();
    assert_eq!(f.degraded, Some(DegradedCause::QueueFull));
    svc.shutdown(ShutdownMode::Drain);
}

#[test]
fn wait_deadline_includes_queue_time() {
    // A pending forecast whose worker never answers: the deadline clock
    // started at submission, so by the time the caller gets around to
    // waiting, most of the budget is already spent and `wait` must
    // return almost immediately instead of granting a fresh full budget.
    let (_handle, slot) = ReplySlot::pair();
    let pending = PendingForecast { slot, submitted: Instant::now(), id: 0 };
    let deadline = Duration::from_millis(50);
    std::thread::sleep(Duration::from_millis(120));
    let waited = Instant::now();
    match pending.wait(deadline) {
        Err(EnhanceNetError::DeadlineExceeded { deadline: d }) => assert_eq!(d, deadline),
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    assert!(
        waited.elapsed() < deadline,
        "wait granted a fresh budget after the deadline had lapsed in the queue: {:?}",
        waited.elapsed()
    );

    // A reply that landed within budget is still collectable even when
    // the caller polls late — lapsed budget drops to a non-blocking poll,
    // not an unconditional error.
    let (handle, slot) = ReplySlot::pair();
    let pending = PendingForecast { slot, submitted: Instant::now(), id: 1 };
    assert_eq!(pending.request_id(), 1);
    handle.send(Ok(BatchReply { values: Tensor::zeros(&[F, N]), queue_wait_ns: 0, forward_ns: 0 }));
    std::thread::sleep(Duration::from_millis(60));
    assert!(pending.wait(deadline).is_ok(), "delivered reply must survive a late wait");
}

/// A model whose forward panics, simulating a poisoned worker.
struct PanickyModel {
    inner: AffinePersistence,
}

impl Forecaster for PanickyModel {
    fn name(&self) -> &str {
        "panicky"
    }
    fn store(&self) -> &ParamStore {
        self.inner.store()
    }
    fn store_mut(&mut self) -> &mut ParamStore {
        self.inner.store_mut()
    }
    fn horizon(&self) -> usize {
        self.inner.horizon()
    }
    fn input_shape(&self) -> Option<[usize; 3]> {
        self.inner.input_shape()
    }
    fn forward(&self, _g: &mut Graph, _x: &Tensor, _ctx: &mut ForwardCtx) -> Var {
        panic!("injected model failure");
    }
}

#[test]
fn worker_panic_degrades_and_service_survives() {
    let model = PanickyModel { inner: AffinePersistence::new(F).with_input_shape(H, N, C) };
    let mut svc = ServeConfig::builder().spawn(Box::new(model), scaler()).unwrap();
    feed(&mut svc, H);
    let first = svc.forecast().unwrap();
    assert_eq!(first.degraded, Some(DegradedCause::WorkerPanic));
    // The worker survived the panic and still answers.
    let second = svc.forecast().unwrap();
    assert_eq!(second.degraded, Some(DegradedCause::WorkerPanic));
    svc.shutdown(ShutdownMode::Drain);
}

#[test]
fn full_queue_rejects_submissions() {
    let model = SlowModel {
        inner: AffinePersistence::new(F).with_input_shape(H, N, C),
        sleep: Duration::from_millis(100),
    };
    let svc = ServeConfig::builder()
        .max_batch(1)
        .queue_capacity(1)
        .spawn(Box::new(model), scaler())
        .unwrap();
    let window = Tensor::zeros(&[H, N, C]);
    let pendings: Vec<_> = (0..8).map(|_| svc.submit(&window)).collect();
    let rejected = pendings
        .iter()
        .filter(|p| matches!(p, Err(EnhanceNetError::Overloaded { capacity: 1 })))
        .count();
    assert!(rejected >= 1, "a 1-deep queue must reject an 8-burst");
    // Accepted requests still complete.
    for pending in pendings.into_iter().flatten() {
        assert!(pending.wait(Duration::from_secs(5)).is_ok());
    }
}

#[test]
fn micro_batch_replies_match_sequential_submissions() {
    let svc = service(ServeConfig::builder().max_batch(4).max_wait(Duration::from_millis(25)));
    let mut rng = TensorRng::seed(7);
    let windows: Vec<Tensor> = (0..4).map(|_| rng.normal(&[H, N, C], 0.0, 1.0)).collect();
    let pendings: Vec<PendingForecast> = windows.iter().map(|w| svc.submit(w).unwrap()).collect();
    let model = AffinePersistence::new(F).with_input_shape(H, N, C);
    for (window, pending) in windows.iter().zip(pendings) {
        let batched = pending.wait(Duration::from_secs(5)).unwrap();
        let solo = model.predict(window).unwrap();
        assert_eq!(batched.shape(), &[F, N]);
        assert_eq!(batched.data(), solo.data(), "batched reply diverged from solo predict");
    }
}

#[test]
fn submit_validates_window_shape() {
    let svc = service(ServeConfig::builder());
    match svc.submit(&Tensor::zeros(&[H, N + 1, C])) {
        Err(EnhanceNetError::InputShape { expected, got }) => {
            assert_eq!(expected, vec![H, N, C]);
            assert_eq!(got, vec![H, N + 1, C]);
        }
        other => panic!("expected InputShape, got {other:?}"),
    }
}

#[test]
fn builder_validation_is_typed() {
    // Invalid knobs fail at `build`, before any thread spawns.
    for (builder, field) in [
        (ServeConfig::builder().max_batch(0), "max_batch"),
        (ServeConfig::builder().queue_capacity(0), "queue_capacity"),
        (ServeConfig::builder().workers(0), "workers"),
        (ServeConfig::builder().slo_slots(0), "slo_slots"),
        (ServeConfig::builder().slo_target(0.0), "slo_target"),
        (ServeConfig::builder().slo_target(1.5), "slo_target"),
        (ServeConfig::builder().slo_window(Duration::from_nanos(1)), "slo_window"),
        (ServeConfig::builder().tenant_quota(TenantQuota::per_second(0.0)), "tenant_quota"),
        (
            ServeConfig::builder().tenant_quota(TenantQuota::per_second(5.0).with_burst(0.5)),
            "tenant_quota",
        ),
    ] {
        match builder.build() {
            Err(EnhanceNetError::InvalidConfig { field: f, .. }) if f == field => {}
            other => panic!("expected InvalidConfig for {field}, got {:?}", other.err()),
        }
    }
    // A model without a declared input shape cannot be served.
    let bare = AffinePersistence::new(F);
    match ServeConfig::builder().spawn(Box::new(bare), scaler()) {
        Err(EnhanceNetError::UnknownInputShape { .. }) => {}
        other => panic!("expected UnknownInputShape, got {:?}", other.err()),
    }
    // Model-dependent checks run at spawn: target feature out of range.
    let model = AffinePersistence::new(F).with_input_shape(H, N, C);
    match ServeConfig::builder().target_feature(C).spawn(Box::new(model), scaler()) {
        Err(EnhanceNetError::InvalidConfig { field: "target_feature", .. }) => {}
        other => panic!("expected InvalidConfig, got {:?}", other.err()),
    }
    // An unbindable metrics address fails construction, typed.
    let model = AffinePersistence::new(F).with_input_shape(H, N, C);
    match ServeConfig::builder().metrics_addr("256.0.0.1:0").spawn(Box::new(model), scaler()) {
        Err(EnhanceNetError::InvalidConfig { field: "metrics_addr", .. }) => {}
        other => panic!("expected InvalidConfig, got {:?}", other.err()),
    }
}

#[test]
fn deprecated_literal_construction_still_validates() {
    // The PR 4 path — struct literal + positional `new` — must keep
    // working (and keep validating) for one release.
    #[allow(deprecated)]
    fn construct(config: ServeConfig) -> Result<ForecastService, EnhanceNetError> {
        let model = AffinePersistence::new(F).with_input_shape(H, N, C);
        ForecastService::new(Box::new(model), scaler(), config)
    }
    assert!(construct(ServeConfig::default()).is_ok());
    match construct(ServeConfig { max_batch: 0, ..Default::default() }) {
        Err(EnhanceNetError::InvalidConfig { field: "max_batch", .. }) => {}
        other => panic!("expected InvalidConfig, got {:?}", other.err()),
    }
}

#[test]
fn shutdown_drain_completes_queued_requests() {
    let model = SlowModel {
        inner: AffinePersistence::new(F).with_input_shape(H, N, C),
        sleep: Duration::from_millis(20),
    };
    let svc = ServeConfig::builder()
        .max_batch(1)
        .queue_capacity(16)
        .spawn(Box::new(model), scaler())
        .unwrap();
    let window = Tensor::zeros(&[H, N, C]);
    let pendings: Vec<PendingForecast> = (0..4).map(|_| svc.submit(&window).unwrap()).collect();
    let report = svc.shutdown(ShutdownMode::Drain);
    // Every queued request was answered on the model before exit. The
    // first may have been picked up before the shutdown signal landed, so
    // only a lower bound below the total is guaranteed.
    assert_eq!(report.shed, 0);
    assert!(report.drained >= 3, "expected >= 3 drained, got {report:?}");
    for pending in pendings {
        assert!(pending.wait(Duration::from_secs(5)).is_ok(), "drained reply must be delivered");
    }
}

#[test]
fn shutdown_now_sheds_queued_requests() {
    let model = SlowModel {
        inner: AffinePersistence::new(F).with_input_shape(H, N, C),
        sleep: Duration::from_millis(50),
    };
    let svc = ServeConfig::builder()
        .max_batch(1)
        .queue_capacity(16)
        .spawn(Box::new(model), scaler())
        .unwrap();
    let window = Tensor::zeros(&[H, N, C]);
    let pendings: Vec<PendingForecast> = (0..6).map(|_| svc.submit(&window).unwrap()).collect();
    let report = svc.shutdown(ShutdownMode::Now);
    assert!(report.shed >= 4, "expected most of the queue shed, got {report:?}");
    assert_eq!(report.drained, 0);
    let outcomes: Vec<_> = pendings.iter().map(|p| p.wait(Duration::from_secs(5))).collect();
    let shed =
        outcomes.iter().filter(|o| matches!(o, Err(EnhanceNetError::ServiceStopped))).count();
    assert_eq!(shed as u64, report.shed, "every shed request must observe ServiceStopped");
}

#[test]
fn embedded_metrics_server_scrapes_and_reports_readiness() {
    use std::io::{Read as _, Write as _};

    fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut body = String::new();
        stream.read_to_string(&mut body).unwrap();
        body
    }

    let mut svc = service(ServeConfig::builder().metrics_addr("127.0.0.1:0"));
    let addr = svc.metrics_addr().expect("metrics server must be bound");
    assert!(svc.worker_alive());
    // Cold window: live but not ready.
    assert!(http_get(addr, "/healthz").starts_with("HTTP/1.1 200"));
    assert!(http_get(addr, "/readyz").starts_with("HTTP/1.1 503"));
    feed(&mut svc, H);
    assert!(http_get(addr, "/readyz").starts_with("HTTP/1.1 200"));
    let _ = svc.forecast().unwrap();
    let scrape = http_get(addr, "/metrics");
    // The scrape may race other telemetry tests resetting the global
    // store, so only assert the exposition shape, not specific series.
    assert!(scrape.starts_with("HTTP/1.1 200"));
    assert!(scrape.contains("text/plain; version=0.0.4"));
    svc.shutdown(ShutdownMode::Drain);
}

// ---- fleet ----

fn fleet(builder: ServeConfigBuilder) -> FleetService {
    let model = AffinePersistence::new(F).with_input_shape(H, N, C);
    builder.spawn_fleet(Box::new(model), scaler()).unwrap()
}

fn feed_tenant(tenant: &Tenant<'_>, steps: usize, base: f32) {
    for t in 0..steps {
        for e in 0..N {
            tenant.ingest(t as i64, e, &[base + t as f32 + e as f32]).unwrap();
        }
    }
}

#[test]
fn fleet_serves_tenants_matching_offline_predict() {
    let svc = fleet(ServeConfig::builder().workers(2));
    assert_eq!(svc.workers(), 2);
    assert_eq!(svc.workers_alive(), 2);
    assert_eq!(svc.epoch(), 0);
    let a = svc.tenant("acme");
    let b = svc.tenant("babel");
    feed_tenant(&a, H, 40.0);
    feed_tenant(&b, H, 90.0);
    // Tenants land on distinct round-robin shards.
    assert_ne!(a.shard(), b.shard());
    // Re-acquiring a tenant keeps its shard and state.
    assert_eq!(svc.tenant("acme").shard(), a.shard());

    let fa = a.forecast().unwrap();
    let fb = b.forecast().unwrap();
    assert!(!fa.is_degraded() && !fb.is_degraded());
    // Different streams produce different forecasts...
    assert_ne!(fa.values.data(), fb.values.data());
    // ...and each matches the offline predict over its own window.
    let model = AffinePersistence::new(F).with_input_shape(H, N, C);
    let sc = scaler();
    let mut svc_ref = service(ServeConfig::builder());
    feed(&mut svc_ref, H);
    let raw = svc_ref.state().window().unwrap();
    let offline = sc.inverse_feature(&model.predict(&sc.transform(&raw).unwrap()).unwrap(), 0);
    assert_eq!(fa.values.data(), offline.data());
    svc.shutdown(ShutdownMode::Drain);
}

#[test]
fn fleet_quota_throttles_bursting_tenant_only() {
    let svc = fleet(
        ServeConfig::builder()
            .workers(2)
            // 2 tokens, refilling at 1 per 1000 s: effectively a hard cap
            // so the test is timing-independent.
            .tenant_quota(TenantQuota { rate: 0.001, burst: 2.0 }),
    );
    let bursty = svc.tenant("bursty");
    let quiet = svc.tenant("quiet");
    feed_tenant(&bursty, H, 40.0);
    feed_tenant(&quiet, H, 40.0);
    let outcomes: Vec<Forecast> = (0..5).map(|_| bursty.forecast().unwrap()).collect();
    let throttled =
        outcomes.iter().filter(|f| f.degraded == Some(DegradedCause::QuotaExceeded)).count();
    assert_eq!(throttled, 3, "2-token bucket must throttle 3 of 5 burst requests");
    // Throttled requests degrade — they do not error — and carry the tag.
    let report = bursty.report();
    assert_eq!(report.requests, 5);
    assert_eq!(report.throttled, 3);
    assert_eq!(report.degraded, 3);
    // The quiet tenant's bucket is untouched by its neighbor's burst.
    let f = quiet.forecast().unwrap();
    assert!(!f.is_degraded(), "quiet tenant throttled by neighbor's burst");
    assert_eq!(quiet.report().throttled, 0);
    svc.shutdown(ShutdownMode::Drain);
}

#[test]
fn fleet_hot_swap_changes_forecasts_at_next_batch() {
    let svc = fleet(ServeConfig::builder().workers(2));
    let tenant = svc.tenant("acme");
    feed_tenant(&tenant, H, 40.0);
    let before = tenant.forecast().unwrap();
    assert!(!before.is_degraded());

    // Train-side: a fresh instance of the same architecture with shifted
    // weights, published as a snapshot.
    let mut trained = AffinePersistence::new(F).with_input_shape(H, N, C);
    for id in trained.store().ids().collect::<Vec<_>>() {
        let v = trained.store().value(id).clone();
        trained.store_mut().value_mut(id).copy_from(&v.mul_scalar(3.0).add_scalar(0.25));
    }
    let publisher = svc.publisher();
    assert_eq!(publisher.epoch(), 0);
    let epoch = publisher.publish(trained.store()).unwrap();
    assert_eq!(epoch, 1);
    assert_eq!(svc.epoch(), 1);

    let after = tenant.forecast().unwrap();
    assert!(!after.is_degraded(), "swap must not degrade requests");
    assert_ne!(before.values.data(), after.values.data(), "new weights must change forecasts");
    // Bitwise parity with the offline predict on the new weights.
    let sc = scaler();
    let mut svc_ref = service(ServeConfig::builder());
    feed(&mut svc_ref, H);
    let raw = svc_ref.state().window().unwrap();
    let offline = sc.inverse_feature(&trained.predict(&sc.transform(&raw).unwrap()).unwrap(), 0);
    assert_eq!(after.values.data(), offline.data(), "post-swap serve must match offline predict");
    svc.shutdown(ShutdownMode::Drain);
}

#[test]
fn publisher_rejects_mismatched_store_layout() {
    let svc = fleet(ServeConfig::builder());
    let publisher = svc.publisher();
    let mut wrong = ParamStore::new();
    wrong.add("lonely", Tensor::scalar(1.0));
    match publisher.publish(&wrong) {
        Err(EnhanceNetError::InvalidConfig { field: "snapshot", .. }) => {}
        other => panic!("expected InvalidConfig, got {:?}", other.err()),
    }
    assert_eq!(svc.epoch(), 0, "a rejected publish must leave the epoch untouched");
    svc.shutdown(ShutdownMode::Drain);
}

#[test]
fn fleet_rejects_unplannable_models_up_front() {
    // A model that never marks an input leaf traces to a plan-less graph;
    // the fleet cannot hot-swap its weights, so spawn must fail typed.
    struct Unplannable {
        inner: AffinePersistence,
    }
    impl Forecaster for Unplannable {
        fn name(&self) -> &str {
            "unplannable"
        }
        fn store(&self) -> &ParamStore {
            self.inner.store()
        }
        fn store_mut(&mut self) -> &mut ParamStore {
            self.inner.store_mut()
        }
        fn horizon(&self) -> usize {
            self.inner.horizon()
        }
        fn input_shape(&self) -> Option<[usize; 3]> {
            self.inner.input_shape()
        }
        fn forward(&self, g: &mut Graph, x: &Tensor, _ctx: &mut ForwardCtx) -> Var {
            // Bakes the window into a constant: nothing to rebind.
            let shape = [x.shape()[0], self.inner.horizon(), x.shape()[2]];
            g.constant(Tensor::zeros(&shape))
        }
    }
    let model = Unplannable { inner: AffinePersistence::new(F).with_input_shape(H, N, C) };
    match ServeConfig::builder().spawn_fleet(Box::new(model), scaler()) {
        Err(EnhanceNetError::InvalidConfig { field: "model", .. }) => {}
        other => panic!("expected InvalidConfig, got {:?}", other.err()),
    }
}

#[test]
fn fleet_shutdown_now_sheds_as_degraded_forecasts() {
    let model = SlowModel {
        inner: AffinePersistence::new(F).with_input_shape(H, N, C),
        sleep: Duration::from_millis(50),
    };
    let svc = ServeConfig::builder()
        .workers(1)
        .max_batch(1)
        .queue_capacity(16)
        .spawn_fleet(Box::new(model), scaler())
        .unwrap();
    let window = Tensor::zeros(&[H, N, C]);
    let pendings: Vec<PendingForecast> = (0..6).map(|_| svc.submit(&window).unwrap()).collect();
    let report = svc.shutdown(ShutdownMode::Now);
    assert!(report.shed >= 4, "expected most of the queue shed, got {report:?}");
    let shed = pendings
        .iter()
        .filter(|p| matches!(p.wait(Duration::from_secs(5)), Err(EnhanceNetError::ServiceStopped)))
        .count();
    assert_eq!(shed as u64, report.shed);
}

#[test]
fn fleet_wait_parks_without_burning_cpu() {
    // Regression for the busy-poll fix: a waiter parked on an unanswered
    // slot must block on the condvar (microseconds of CPU), not spin. We
    // can't measure CPU portably here, so assert the observable contract:
    // the wait returns within a tight margin of the deadline despite no
    // reply ever arriving, and an immediate wake on delivery.
    let (_handle, slot) = ReplySlot::pair();
    let pending = PendingForecast { slot, submitted: Instant::now(), id: 0 };
    let started = Instant::now();
    let _ = pending.wait(Duration::from_millis(40));
    let elapsed = started.elapsed();
    assert!(elapsed >= Duration::from_millis(35), "returned before the deadline: {elapsed:?}");
    assert!(elapsed < Duration::from_millis(500), "overslept the deadline: {elapsed:?}");
}
