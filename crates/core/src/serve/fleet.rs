//! [`FleetService`]: the sharded multi-worker serving runtime with
//! zero-downtime hot swap and per-tenant backpressure.
//!
//! Architecture (DESIGN §6h):
//!
//! * **Sharding** — `K` worker threads, each owning its own bounded request
//!   queue. A tenant is pinned to one shard round-robin at first use, so a
//!   tenant's requests always batch on the same worker, whose *private*
//!   plan-executor map stays warm for that tenant's window shape. Workers
//!   never share an executor, so there is no cross-worker mutex on the hot
//!   path (the model's own [`PlanCache`] would serialize them — see
//!   [`Forecaster::compile_eval_plan`]).
//! * **Hot swap** — workers execute compiled plans against the *currently
//!   published* [`ParamStore`] snapshot, loaded from a
//!   [`SnapshotCell`](super::snapshot::SnapshotCell) once per batch.
//!   [`FleetService::publisher`] hands a background trainer a
//!   [`SnapshotPublisher`]; publishing swaps an `Arc` and bumps an epoch —
//!   in-flight batches finish on the old weights, the next batch adopts
//!   the new ones. No queue is paused, no request dropped.
//! * **Backpressure** — each tenant optionally carries a token bucket
//!   ([`TenantQuota`]); a bursting tenant is throttled at the door
//!   (degraded [`DegradedCause::QuotaExceeded`] persistence forecast)
//!   before its burst can occupy the shared queues, preserving the other
//!   tenants' deadline hit-rate. The queue's shed-on-full policy remains
//!   the global safety net behind it.
//!
//! [`PlanCache`]: enhancenet_autodiff::PlanCache

use super::config::ServeConfig;
use super::reply::{PendingForecast, ReplySlot};
use super::snapshot::{Snapshot, SnapshotCell, SnapshotPublisher};
use super::tenant::{record_tenant_outcome, Tenant, TenantReport, TenantState, TokenBucket};
use super::worker::{self, BatchRequest, ShutdownState};
use super::{DegradedCause, Forecast, RequestTiming, ShutdownMode, ShutdownReport};
use crate::error::EnhanceNetError;
use crate::forecaster::Forecaster;
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use enhancenet_autodiff::PlanExecutor;
use enhancenet_data::{SlidingWindow, StandardScaler};
use enhancenet_telemetry::{MetricsServer, SloReport, SloWindow};
use enhancenet_tensor::Tensor;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Refreshes the `serve.slo.*` gauges from a rolling-window report; shared
/// by [`super::ForecastService`] and the fleet.
pub(crate) fn publish_slo_gauges(report: &SloReport) {
    enhancenet_telemetry::gauge("serve.slo.p50_ns", report.latency_p50_ns);
    enhancenet_telemetry::gauge("serve.slo.p95_ns", report.latency_p95_ns);
    enhancenet_telemetry::gauge("serve.slo.p99_ns", report.latency_p99_ns);
    enhancenet_telemetry::gauge("serve.slo.deadline_hit_rate", report.deadline_hit_rate);
    enhancenet_telemetry::gauge("serve.slo.degraded_rate", report.degraded_rate);
    enhancenet_telemetry::gauge("serve.slo.error_budget_burn", report.error_budget_burn);
    enhancenet_telemetry::gauge("serve.slo.window_requests", report.requests as f64);
}

/// One worker shard: its queue's sending half and the thread handle.
struct Shard {
    tx: Option<Sender<BatchRequest>>,
    worker: Option<JoinHandle<()>>,
}

/// A multi-tenant, multi-worker forecasting endpoint over a shared model
/// snapshot; spawn through
/// [`ServeConfig::builder`](super::ServeConfig::builder)`.workers(k).…spawn_fleet(model, scaler)`.
///
/// Interact per tenant: [`FleetService::tenant`] returns a [`Tenant`]
/// handle for ingest/forecast; [`FleetService::publisher`] returns the
/// hot-swap handle for a background trainer; [`FleetService::shutdown`]
/// drains or sheds the fleet. The raw [`FleetService::submit`] path takes
/// pre-scaled windows for benchmarks and fan-out frontends.
pub struct FleetService {
    shards: Vec<Shard>,
    scaler: StandardScaler,
    config: ServeConfig,
    input: [usize; 3],
    horizon: usize,
    next_request_id: AtomicU64,
    next_shard: AtomicUsize,
    tenants: Mutex<HashMap<String, Arc<Mutex<TenantState>>>>,
    snapshots: Arc<SnapshotCell>,
    publisher: SnapshotPublisher,
    shutdown: Arc<ShutdownState>,
    /// Fleet-wide rolling SLO window (tenants also keep their own).
    slo: Mutex<SloWindow>,
    live_workers: Arc<AtomicUsize>,
    metrics: Option<MetricsServer>,
}

impl FleetService {
    /// The spawn path behind [`super::ServeConfigBuilder::spawn_fleet`];
    /// assumes `config` already passed validation.
    ///
    /// Beyond the single-service checks, the model must be *plannable*:
    /// fleet workers serve exclusively through compiled plans resolved
    /// against published snapshots (the tape path reads the model's own
    /// store and cannot see hot-swapped weights), so a model whose eval
    /// trace cannot compile is rejected up front with a typed
    /// [`EnhanceNetError::InvalidConfig`] rather than silently serving
    /// stale weights after a swap.
    pub(crate) fn from_config(
        model: Arc<dyn Forecaster + Send>,
        scaler: StandardScaler,
        config: ServeConfig,
    ) -> Result<Self, EnhanceNetError> {
        let input = model.input_shape().ok_or_else(|| EnhanceNetError::UnknownInputShape {
            model: model.name().to_string(),
        })?;
        if config.target_feature >= input[2] {
            return Err(EnhanceNetError::InvalidConfig {
                field: "target_feature",
                reason: format!("must be < {} features, got {}", input[2], config.target_feature),
            });
        }
        // Probe-compile a batch-1 trace: fail fast if this model can never
        // serve hot-swapped weights.
        let probe = Tensor::zeros(&[1, input[0], input[1], input[2]]);
        if let (Err(e), _) = model.compile_eval_plan(&probe) {
            return Err(EnhanceNetError::InvalidConfig {
                field: "model",
                reason: format!("`{}` cannot be compiled for fleet serving: {e}", model.name()),
            });
        }
        let horizon = model.horizon();
        let snapshots = Arc::new(SnapshotCell::new(model.store()));
        let publisher = SnapshotPublisher::new(Arc::clone(&snapshots), model.store());
        let shutdown = Arc::new(ShutdownState::new());
        let live_workers = Arc::new(AtomicUsize::new(config.workers));
        let mut shards = Vec::with_capacity(config.workers);
        for index in 0..config.workers {
            let (tx, rx) = bounded(config.queue_capacity);
            let ctx = WorkerCtx {
                model: Arc::clone(&model),
                snapshots: Arc::clone(&snapshots),
                rx,
                max_batch: config.max_batch,
                max_wait: config.max_wait,
                shutdown: Arc::clone(&shutdown),
                live: Arc::clone(&live_workers),
            };
            let worker = std::thread::Builder::new()
                .name(format!("forecast-fleet-{index}"))
                .spawn(move || fleet_worker_loop(ctx))
                .expect("failed to spawn fleet worker thread");
            shards.push(Shard { tx: Some(tx), worker: Some(worker) });
        }
        let metrics = match &config.metrics_addr {
            Some(addr) => {
                let (live, workers) = (Arc::clone(&live_workers), config.workers);
                let probe: enhancenet_telemetry::ReadyProbe =
                    Arc::new(move || live.load(Ordering::Relaxed) == workers);
                Some(MetricsServer::bind(addr.as_str(), probe).map_err(|e| {
                    EnhanceNetError::InvalidConfig {
                        field: "metrics_addr",
                        reason: format!("cannot bind {addr}: {e}"),
                    }
                })?)
            }
            None => None,
        };
        let slo =
            Mutex::new(SloWindow::new(config.slo_window, config.slo_slots, config.slo_target));
        enhancenet_telemetry::gauge("serve.fleet.workers", config.workers as f64);
        enhancenet_telemetry::gauge("serve.swap.epoch", 0.0);
        Ok(Self {
            shards,
            scaler,
            config,
            input,
            horizon,
            next_request_id: AtomicU64::new(0),
            next_shard: AtomicUsize::new(0),
            tenants: Mutex::new(HashMap::new()),
            snapshots,
            publisher,
            shutdown,
            slo,
            live_workers,
            metrics,
        })
    }

    /// The `[H, N, C]` window shape every tenant's stream assembles.
    pub fn input_shape(&self) -> [usize; 3] {
        self.input
    }

    /// Forecast horizon `F`.
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// The serving policy this fleet was spawned with.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Worker shard count.
    pub fn workers(&self) -> usize {
        self.shards.len()
    }

    /// Worker threads currently running (all of them, in a healthy fleet).
    pub fn workers_alive(&self) -> usize {
        self.live_workers.load(Ordering::Relaxed)
    }

    /// The epoch of the currently served snapshot (0 = spawn weights).
    pub fn epoch(&self) -> u64 {
        self.snapshots.epoch()
    }

    /// A [`SnapshotPublisher`] for hot-swapping weights from another
    /// thread; cloneable, and valid for the fleet's lifetime.
    pub fn publisher(&self) -> SnapshotPublisher {
        self.publisher.clone()
    }

    /// Address of the embedded metrics server, when
    /// [`ServeConfig::metrics_addr`] was set (resolves port 0). Ready ⇔
    /// every worker thread is alive.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics.as_ref().map(MetricsServer::local_addr)
    }

    /// Fleet-wide rolling SLO statistics (across all tenants).
    pub fn slo_report(&self) -> SloReport {
        self.slo.lock().unwrap_or_else(|poisoned| poisoned.into_inner()).report()
    }

    /// The handle for `name`'s stream, creating the tenant on first use:
    /// a fresh sliding window, a token bucket from
    /// [`ServeConfig::tenant_quota`], and a round-robin shard assignment
    /// that is stable for the fleet's lifetime.
    pub fn tenant(&self, name: &str) -> Tenant<'_> {
        let mut tenants = self.tenants.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        let state = match tenants.entry(name.to_string()) {
            Entry::Occupied(entry) => Arc::clone(entry.get()),
            Entry::Vacant(entry) => {
                let shard = self.next_shard.fetch_add(1, Ordering::Relaxed) % self.shards.len();
                let state = Arc::new(Mutex::new(TenantState {
                    name: name.to_string(),
                    shard,
                    buffer: SlidingWindow::new(self.input[0], self.input[1], self.input[2]),
                    bucket: self.config.tenant_quota.map(TokenBucket::new),
                    slo: SloWindow::new(
                        self.config.slo_window,
                        self.config.slo_slots,
                        self.config.slo_target,
                    ),
                    requests: 0,
                    throttled: 0,
                    degraded: 0,
                }));
                Arc::clone(entry.insert(state))
            }
        };
        enhancenet_telemetry::gauge("serve.tenant.active", tenants.len() as f64);
        drop(tenants);
        Tenant { fleet: self, state }
    }

    /// Reports for every tenant the fleet has seen, sorted by name.
    pub fn tenant_reports(&self) -> Vec<TenantReport> {
        let tenants = self.tenants.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        let mut reports: Vec<TenantReport> = tenants
            .values()
            .map(|state| {
                let state = state.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
                TenantReport {
                    tenant: state.name.clone(),
                    shard: state.shard,
                    requests: state.requests,
                    throttled: state.throttled,
                    degraded: state.degraded,
                    slo: state.slo.report(),
                }
            })
            .collect();
        reports.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        reports
    }

    /// Submits a pre-scaled `[H, N, C]` window to shard
    /// `request_id % workers` without blocking; pair with
    /// [`PendingForecast::wait`]. The raw fan-out path for callers
    /// managing their own windows.
    pub fn submit(&self, scaled_window: &Tensor) -> Result<PendingForecast, EnhanceNetError> {
        let id = self.next_request_id.fetch_add(1, Ordering::Relaxed);
        self.submit_to_shard(id as usize % self.shards.len(), scaled_window, id)
    }

    pub(crate) fn submit_to_shard(
        &self,
        shard: usize,
        scaled_window: &Tensor,
        id: u64,
    ) -> Result<PendingForecast, EnhanceNetError> {
        if scaled_window.shape() != self.input {
            return Err(EnhanceNetError::InputShape {
                expected: self.input.to_vec(),
                got: scaled_window.shape().to_vec(),
            });
        }
        let tx = self.shards[shard].tx.as_ref().ok_or(EnhanceNetError::ServiceStopped)?;
        enhancenet_telemetry::gauge("serve.queue.depth", tx.len() as f64);
        let (reply, slot) = ReplySlot::pair();
        let submitted = Instant::now();
        let request = BatchRequest { id, window: scaled_window.clone(), submitted, reply };
        match tx.try_send(request) {
            Ok(()) => Ok(PendingForecast { slot, submitted, id }),
            Err(TrySendError::Full(_)) => {
                enhancenet_telemetry::count("serve.queue.rejected", 1);
                Err(EnhanceNetError::Overloaded { capacity: self.config.queue_capacity })
            }
            Err(TrySendError::Disconnected(_)) => Err(EnhanceNetError::ServiceStopped),
        }
    }

    /// The forecast path behind [`Tenant::forecast`].
    pub(crate) fn tenant_forecast(
        &self,
        state: &Arc<Mutex<TenantState>>,
    ) -> Result<Forecast, EnhanceNetError> {
        enhancenet_telemetry::count("serve.request", 1);
        enhancenet_telemetry::count("serve.tenant.requests", 1);
        let id = self.next_request_id.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        // Hold the tenant lock only through admission + window assembly;
        // the wait for the worker parks outside it, so one tenant's slow
        // request never blocks its neighbors' ingest.
        let (shard, anchor, raw) = {
            let mut tenant = state.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
            tenant.requests += 1;
            let anchor = tenant.buffer.latest_timestamp();
            if let Some(bucket) = tenant.bucket.as_mut() {
                if !bucket.try_take() {
                    tenant.throttled += 1;
                    enhancenet_telemetry::count("serve.tenant.throttled", 1);
                    drop(tenant);
                    return self.tenant_fallback(
                        state,
                        id,
                        anchor,
                        started,
                        DegradedCause::QuotaExceeded,
                    );
                }
            }
            match tenant.buffer.window() {
                Some(raw) => (tenant.shard, anchor, raw),
                None => {
                    drop(tenant);
                    return self.tenant_fallback(
                        state,
                        id,
                        anchor,
                        started,
                        DegradedCause::ColdWindow,
                    );
                }
            }
        };
        let scaled = self.scaler.transform(&raw)?;
        let pending = match self.submit_to_shard(shard, &scaled, id) {
            Ok(pending) => pending,
            Err(EnhanceNetError::Overloaded { .. }) => {
                return self.tenant_fallback(state, id, anchor, started, DegradedCause::QueueFull);
            }
            Err(_) => {
                return self.tenant_fallback(
                    state,
                    id,
                    anchor,
                    started,
                    DegradedCause::WorkerPanic,
                );
            }
        };
        match pending.wait_reply(self.config.deadline) {
            Ok(reply) => {
                let values = self.scaler.inverse_feature(&reply.values, self.config.target_feature);
                let total_ns = started.elapsed().as_nanos() as u64;
                enhancenet_telemetry::observe("serve.latency_ns", total_ns as f64);
                self.record_outcome(total_ns, false);
                record_tenant_outcome(state, total_ns, self.config.deadline.as_nanos(), false);
                Ok(Forecast {
                    values,
                    degraded: None,
                    anchor,
                    request_id: id,
                    timing: RequestTiming {
                        queue_wait_ns: reply.queue_wait_ns,
                        forward_ns: reply.forward_ns,
                        total_ns,
                    },
                })
            }
            Err(EnhanceNetError::DeadlineExceeded { .. }) => {
                self.tenant_fallback(state, id, anchor, started, DegradedCause::Deadline)
            }
            Err(_) => self.tenant_fallback(state, id, anchor, started, DegradedCause::WorkerPanic),
        }
    }

    fn tenant_fallback(
        &self,
        state: &Arc<Mutex<TenantState>>,
        id: u64,
        anchor: Option<i64>,
        started: Instant,
        cause: DegradedCause,
    ) -> Result<Forecast, EnhanceNetError> {
        let values = {
            let tenant = state.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
            tenant.buffer.persistence_forecast(self.horizon, self.config.target_feature).ok_or(
                EnhanceNetError::NotReady { have: tenant.buffer.len(), need: self.input[0] },
            )?
        };
        enhancenet_telemetry::count("serve.fallback", 1);
        enhancenet_telemetry::count(cause.counter_label(), 1);
        let total_ns = started.elapsed().as_nanos() as u64;
        enhancenet_telemetry::observe("serve.latency_ns", total_ns as f64);
        self.record_outcome(total_ns, true);
        record_tenant_outcome(state, total_ns, self.config.deadline.as_nanos(), true);
        Ok(Forecast {
            values,
            degraded: Some(cause),
            anchor,
            request_id: id,
            timing: RequestTiming { queue_wait_ns: 0, forward_ns: 0, total_ns },
        })
    }

    /// Fleet-wide outcome recording; tenants record separately.
    fn record_outcome(&self, total_ns: u64, degraded: bool) {
        let deadline_hit = u128::from(total_ns) <= self.config.deadline.as_nanos();
        let report = {
            let mut slo = self.slo.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
            slo.record(total_ns as f64, deadline_hit, degraded);
            if !enhancenet_telemetry::enabled() {
                return;
            }
            slo.report()
        };
        publish_slo_gauges(&report);
    }

    /// Stops every worker and joins them. [`ShutdownMode::Drain`] answers
    /// all queued requests on the current snapshot first;
    /// [`ShutdownMode::Now`] sheds them as `ServiceStopped`. Dropping the
    /// fleet without calling this drains implicitly.
    pub fn shutdown(mut self, mode: ShutdownMode) -> ShutdownReport {
        self.stop(mode);
        self.shutdown.report()
    }

    fn stop(&mut self, mode: ShutdownMode) {
        self.shutdown.begin(mode);
        for shard in &mut self.shards {
            drop(shard.tx.take());
        }
        for shard in &mut self.shards {
            if let Some(worker) = shard.worker.take() {
                let _ = worker.join();
            }
        }
        drop(self.metrics.take());
    }
}

impl Drop for FleetService {
    fn drop(&mut self) {
        self.stop(ShutdownMode::Drain);
    }
}

/// Everything one fleet worker thread owns.
struct WorkerCtx {
    model: Arc<dyn Forecaster + Send>,
    snapshots: Arc<SnapshotCell>,
    rx: Receiver<BatchRequest>,
    max_batch: usize,
    max_wait: std::time::Duration,
    shutdown: Arc<ShutdownState>,
    live: Arc<AtomicUsize>,
}

/// Decrements the live-worker count when the worker exits — even by panic.
struct LiveGuard(Arc<AtomicUsize>);

impl Drop for LiveGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The fleet worker loop: assemble a batch, load the current snapshot,
/// execute a worker-private compiled plan against it.
///
/// Plan executors are keyed by batched input shape and scoped to the
/// snapshot epoch they were compiled under: a hot swap clears the map
/// (counted once per worker as `serve.swap.adopted`) and the next batch
/// per shape recompiles against unchanged plan *structure* but the new
/// snapshot's values. Hits and misses feed the same `plan.cache.*`
/// counters as the single-service path, so the CI metric contract holds
/// across both runtimes.
fn fleet_worker_loop(ctx: WorkerCtx) {
    let _guard = LiveGuard(Arc::clone(&ctx.live));
    let mut batch_x = Tensor::default();
    let mut pred = Tensor::default();
    let mut epoch = ctx.snapshots.epoch();
    let mut execs: HashMap<Vec<usize>, PlanExecutor> = HashMap::new();
    while let Some(batch) = worker::next_batch(&ctx.rx, ctx.max_batch, ctx.max_wait) {
        match ctx.shutdown.mode() {
            Some(ShutdownMode::Now) => worker::shed_batch(batch, &ctx.shutdown),
            mode => {
                let snapshot = ctx.snapshots.load();
                if snapshot.epoch != epoch {
                    execs.clear();
                    epoch = snapshot.epoch;
                    enhancenet_telemetry::count("serve.swap.adopted", 1);
                }
                let n = batch.len() as u64;
                worker::serve_batch(
                    |x, out| run_on_snapshot(&*ctx.model, &snapshot, &mut execs, x, out),
                    batch,
                    &mut batch_x,
                    &mut pred,
                );
                if mode == Some(ShutdownMode::Drain) {
                    ctx.shutdown.note_drained(n);
                    enhancenet_telemetry::count("serve.shutdown.drained", n);
                }
            }
        }
    }
}

/// Executes one batched forward for a fleet worker: look up (or compile)
/// the plan for this batch shape, then run it against the snapshot store.
fn run_on_snapshot(
    model: &dyn Forecaster,
    snapshot: &Snapshot,
    execs: &mut HashMap<Vec<usize>, PlanExecutor>,
    x: &Tensor,
    out: &mut Tensor,
) -> Result<(), EnhanceNetError> {
    let exec = match execs.entry(x.shape().to_vec()) {
        Entry::Occupied(entry) => {
            enhancenet_telemetry::count("plan.cache.hits", 1);
            entry.into_mut()
        }
        Entry::Vacant(entry) => {
            enhancenet_telemetry::count("plan.cache.misses", 1);
            let (compiled, _traced) = model.compile_eval_plan(x);
            match compiled {
                Ok(plan) => entry.insert(PlanExecutor::new(plan)),
                // Probed plannable at spawn; a shape-dependent compile
                // failure degrades this batch instead of killing the
                // worker.
                Err(_) => return Err(EnhanceNetError::ServiceStopped),
            }
        }
    };
    exec.run(&snapshot.store, x, out);
    Ok(())
}
