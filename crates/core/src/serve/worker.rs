//! The batch worker machinery shared by [`super::ForecastService`] (one
//! worker) and [`super::FleetService`] (one worker per shard): request /
//! reply payloads, batch assembly, the batched serve step, and the
//! shutdown accounting behind [`ShutdownReport`].

use super::reply::ReplyHandle;
use super::{ShutdownMode, ShutdownReport};
use crate::error::EnhanceNetError;
use crate::forecaster::Forecaster;
use crossbeam::channel::Receiver;
use enhancenet_tensor::Tensor;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What the batch worker sends back: the scaled `[F, N]` prediction plus
/// the worker-side timing attribution.
pub(crate) struct BatchReply {
    pub(crate) values: Tensor,
    pub(crate) queue_wait_ns: u64,
    pub(crate) forward_ns: u64,
}

impl std::fmt::Debug for BatchReply {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchReply")
            .field("queue_wait_ns", &self.queue_wait_ns)
            .field("forward_ns", &self.forward_ns)
            .finish_non_exhaustive()
    }
}

/// A request travelling to a batch worker: one scaled `[H, N, C]` window
/// plus the reply slot its answer lands in.
pub(crate) struct BatchRequest {
    pub(crate) id: u64,
    pub(crate) window: Tensor,
    /// When the request entered the queue; the worker turns this into the
    /// per-request `serve.queue.wait_ns` observation at batch assembly.
    pub(crate) submitted: Instant,
    pub(crate) reply: ReplyHandle,
}

/// Shutdown coordination shared between a service handle and its workers.
///
/// The service flips `mode` *before* dropping its senders; each worker
/// keeps receiving until disconnect and consults the mode per batch —
/// [`ShutdownMode::Drain`] answers the backlog on the model (counted in
/// `drained`), [`ShutdownMode::Now`] drops each request's reply handle so
/// the waiter sees `ServiceStopped` without another forward pass (counted
/// in `shed`).
pub(crate) struct ShutdownState {
    /// 0 = running, 1 = drain, 2 = shed now.
    mode: AtomicU8,
    drained: AtomicU64,
    shed: AtomicU64,
}

impl ShutdownState {
    pub(crate) fn new() -> Self {
        Self { mode: AtomicU8::new(0), drained: AtomicU64::new(0), shed: AtomicU64::new(0) }
    }

    /// Signals workers which shutdown semantics apply from now on.
    pub(crate) fn begin(&self, mode: ShutdownMode) {
        let code = match mode {
            ShutdownMode::Drain => 1,
            ShutdownMode::Now => 2,
        };
        self.mode.store(code, Ordering::SeqCst);
    }

    /// `None` while running; the requested mode once a shutdown began.
    pub(crate) fn mode(&self) -> Option<ShutdownMode> {
        match self.mode.load(Ordering::SeqCst) {
            1 => Some(ShutdownMode::Drain),
            2 => Some(ShutdownMode::Now),
            _ => None,
        }
    }

    pub(crate) fn note_drained(&self, n: u64) {
        self.drained.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn note_shed(&self, n: u64) {
        self.shed.fetch_add(n, Ordering::Relaxed);
    }

    /// The final accounting, read after every worker has been joined.
    pub(crate) fn report(&self) -> ShutdownReport {
        ShutdownReport {
            drained: self.drained.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
        }
    }
}

/// Clears `alive` when the owning worker exits — even by panic — so the
/// `/readyz` probe and [`super::ForecastService::worker_alive`] flip.
pub(crate) struct AliveGuard<'a>(pub(crate) &'a AtomicBool);

impl Drop for AliveGuard<'_> {
    fn drop(&mut self) {
        self.0.store(false, Ordering::SeqCst);
    }
}

/// Blocks for one request, then drains stragglers up to `max_batch`,
/// waiting at most `max_wait` for more. Returns `None` once every sender
/// is dropped and the queue is empty.
pub(crate) fn next_batch(
    rx: &Receiver<BatchRequest>,
    max_batch: usize,
    max_wait: Duration,
) -> Option<Vec<BatchRequest>> {
    let first = rx.recv().ok()?;
    let mut batch = vec![first];
    let wait_until = Instant::now() + max_wait;
    while batch.len() < max_batch {
        // Queued requests join for free; otherwise wait out max_wait.
        if let Ok(request) = rx.try_recv() {
            batch.push(request);
            continue;
        }
        let now = Instant::now();
        if now >= wait_until {
            break;
        }
        match rx.recv_timeout(wait_until - now) {
            Ok(request) => batch.push(request),
            Err(_) => break,
        }
    }
    Some(batch)
}

/// Drops every reply handle in `batch` unanswered, so each waiter observes
/// `ServiceStopped` (the [`ShutdownMode::Now`] shed path).
pub(crate) fn shed_batch(batch: Vec<BatchRequest>, shutdown: &ShutdownState) {
    shutdown.note_shed(batch.len() as u64);
    enhancenet_telemetry::count("serve.shutdown.shed", batch.len() as u64);
    drop(batch);
}

/// The single-model batch worker loop behind [`super::ForecastService`]:
/// assemble a batch, check the shutdown mode, answer with one forward pass.
pub(crate) fn worker_loop(
    model: Box<dyn Forecaster + Send>,
    rx: Receiver<BatchRequest>,
    max_batch: usize,
    max_wait: Duration,
    alive: &AtomicBool,
    shutdown: &ShutdownState,
) {
    let _guard = AliveGuard(alive);
    // Batch input and prediction buffers live for the whole worker: once a
    // compiled plan serves a given batch size, re-serving it touches no
    // heap (`Tensor::stack_into` + `Forecaster::predict_into` reuse the
    // retained capacity).
    let mut batch_x = Tensor::default();
    let mut pred = Tensor::default();
    while let Some(batch) = next_batch(&rx, max_batch, max_wait) {
        match shutdown.mode() {
            Some(ShutdownMode::Now) => shed_batch(batch, shutdown),
            mode => {
                let n = batch.len() as u64;
                serve_batch(|x, out| model.predict_into(x, out), batch, &mut batch_x, &mut pred);
                if mode == Some(ShutdownMode::Drain) {
                    shutdown.note_drained(n);
                    enhancenet_telemetry::count("serve.shutdown.drained", n);
                }
            }
        }
    }
}

/// Runs one batched forward and distributes per-request replies. A panic in
/// `forward` is contained here: every waiter gets an error (and so falls
/// back to persistence) and the worker stays alive for later requests.
/// `batch_x` and `pred` are worker-owned reusable buffers (the per-request
/// reply tensors are still sliced out fresh, since they are sent away).
pub(crate) fn serve_batch<F>(
    forward: F,
    batch: Vec<BatchRequest>,
    batch_x: &mut Tensor,
    pred: &mut Tensor,
) where
    F: FnOnce(&Tensor, &mut Tensor) -> Result<(), EnhanceNetError>,
{
    let _span = enhancenet_telemetry::span("serve.batch");
    enhancenet_telemetry::observe("serve.batch.size", batch.len() as f64);
    let assembled = Instant::now();
    // Queue wait ends at batch assembly; attribute it per request id.
    let queue_waits: Vec<u64> = batch
        .iter()
        .map(|request| {
            let wait_ns = assembled.duration_since(request.submitted).as_nanos() as u64;
            enhancenet_telemetry::observe("serve.queue.wait_ns", wait_ns as f64);
            wait_ns
        })
        .collect();
    // Progress watermark: the newest request id this worker has picked up.
    if let Some(max_id) = batch.iter().map(|r| r.id).max() {
        enhancenet_telemetry::gauge("serve.batch.last_request_id", max_id as f64);
    }
    Tensor::stack_into(batch.iter().map(|r| &r.window), batch_x);
    let started = Instant::now();
    match catch_unwind(AssertUnwindSafe(|| forward(batch_x, pred))) {
        Ok(Ok(())) => {
            let forward_ns = started.elapsed().as_nanos() as u64;
            enhancenet_telemetry::observe("serve.forward_ns", forward_ns as f64);
            for (i, request) in batch.into_iter().enumerate() {
                request.reply.send(Ok(BatchReply {
                    values: pred.index_axis(0, i),
                    queue_wait_ns: queue_waits[i],
                    forward_ns,
                }));
            }
        }
        Ok(Err(e)) => {
            for request in batch {
                request.reply.send(Err(e.clone()));
            }
        }
        Err(_) => {
            enhancenet_telemetry::count("serve.worker.panics", 1);
            for request in batch {
                request.reply.send(Err(EnhanceNetError::ServiceStopped));
            }
        }
    }
}

/// Shared bookkeeping for spawning a worker thread whose liveness feeds a
/// readiness probe: a fresh `true` flag the worker clears on exit.
pub(crate) fn alive_flag() -> Arc<AtomicBool> {
    Arc::new(AtomicBool::new(true))
}
