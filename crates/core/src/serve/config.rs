//! Serving configuration: the [`ServeConfig`] knobs and the validating
//! [`ServeConfigBuilder`] that is the front door to both services.
//!
//! Construction mirrors `TrainConfig::builder()`: chain setters, then either
//! [`ServeConfigBuilder::build`] for a validated config value, or go
//! straight to [`ServeConfigBuilder::spawn`] /
//! [`ServeConfigBuilder::spawn_fleet`] to validate *and* launch the
//! service in one step. Field-by-field struct literals over `Default` still
//! compile for one more release (PR 7 grew the struct to 10+ ad-hoc fields
//! and every call site paid for it) but are deprecated: the builder is the
//! only construction path that validates eagerly and the only one that can
//! express fleet knobs ([`ServeConfigBuilder::workers`],
//! [`ServeConfigBuilder::tenant_quota`]).

use super::fleet::FleetService;
use super::service::ForecastService;
use super::tenant::TenantQuota;
use crate::error::EnhanceNetError;
use crate::forecaster::Forecaster;
use enhancenet_data::StandardScaler;
use std::time::Duration;

/// Serving policy knobs.
///
/// Public fields remain readable everywhere; *constructing* a `ServeConfig`
/// by struct literal (`ServeConfig { .., ..Default::default() }`) is the
/// deprecated PR 4 path, kept for one release. New code goes through
/// [`ServeConfig::builder`], which validates before any thread spawns.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Largest batch one forward pass may serve (must be > 0).
    pub max_batch: usize,
    /// How long the worker waits for more requests once it holds one.
    /// `Duration::ZERO` (the default) batches only what is already queued,
    /// so a lone request pays no batching latency.
    pub max_wait: Duration,
    /// Bound of each request queue (must be > 0); a full queue degrades
    /// new requests immediately instead of building unbounded backlog.
    /// Fleet workers each own a queue of this capacity.
    pub queue_capacity: usize,
    /// Per-request deadline: how long a forecast call waits for the model
    /// before falling back to a persistence forecast.
    pub deadline: Duration,
    /// Feature index forecasts are reported in (raw scale).
    pub target_feature: usize,
    /// When set, the service binds an embedded
    /// [`enhancenet_telemetry::MetricsServer`] here (e.g.
    /// `"127.0.0.1:9898"`, port 0 for ephemeral) serving `/metrics`,
    /// `/healthz`, and `/readyz`. `None` (the default) runs without a
    /// listener.
    pub metrics_addr: Option<String>,
    /// Span of the rolling SLO window (must be long enough to give every
    /// slot at least one nanosecond).
    pub slo_window: Duration,
    /// Ring slots the SLO window is resolved into (must be > 0). More
    /// slots age traffic out more smoothly at slightly more report cost.
    pub slo_slots: usize,
    /// Deadline hit-rate objective in `(0, 1]`; the error-budget burn in
    /// [`enhancenet_telemetry::SloReport`] is measured against this target.
    pub slo_target: f64,
    /// Worker threads a [`FleetService`] shards requests across (must be
    /// > 0). Ignored by the single-worker [`ForecastService`].
    pub workers: usize,
    /// Default per-tenant token-bucket quota applied to every tenant a
    /// [`FleetService`] creates. `None` (the default) serves tenants
    /// unthrottled. Ignored by [`ForecastService`].
    pub tenant_quota: Option<TenantQuota>,
}

impl Default for ServeConfig {
    /// The PR 4 construction path, kept one release for migration; prefer
    /// [`ServeConfig::builder`], which validates eagerly.
    fn default() -> Self {
        Self {
            max_batch: 8,
            max_wait: Duration::ZERO,
            queue_capacity: 64,
            deadline: Duration::from_millis(250),
            target_feature: 0,
            metrics_addr: None,
            slo_window: Duration::from_secs(60),
            slo_slots: 12,
            slo_target: 0.99,
            workers: 1,
            tenant_quota: None,
        }
    }
}

impl ServeConfig {
    /// Starts a builder seeded with the defaults above.
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder { config: Self::default() }
    }

    /// The model-independent validity checks, shared by
    /// [`ServeConfigBuilder::build`] and the (deprecated) literal-construct
    /// path through `ForecastService::new`. Model-dependent checks
    /// (`target_feature` vs. channel count) happen at spawn, where the
    /// model is known.
    pub(crate) fn validate(&self) -> Result<(), EnhanceNetError> {
        fn positive(value: usize, field: &'static str) -> Result<(), EnhanceNetError> {
            if value == 0 {
                return Err(EnhanceNetError::InvalidConfig { field, reason: "must be > 0".into() });
            }
            Ok(())
        }
        positive(self.max_batch, "max_batch")?;
        positive(self.queue_capacity, "queue_capacity")?;
        positive(self.workers, "workers")?;
        positive(self.slo_slots, "slo_slots")?;
        if self.slo_window.as_nanos() / self.slo_slots as u128 == 0 {
            return Err(EnhanceNetError::InvalidConfig {
                field: "slo_window",
                reason: format!("too short for {} slots", self.slo_slots),
            });
        }
        if !(self.slo_target > 0.0 && self.slo_target <= 1.0) {
            return Err(EnhanceNetError::InvalidConfig {
                field: "slo_target",
                reason: format!("must be in (0, 1], got {}", self.slo_target),
            });
        }
        if let Some(quota) = &self.tenant_quota {
            quota.validate()?;
        }
        Ok(())
    }
}

/// Validating builder for [`ServeConfig`]; see [`ServeConfig::builder`].
///
/// Setters never fail — all validation happens in one place at
/// [`ServeConfigBuilder::build`] (or the `spawn*` shortcuts), so a bad
/// combination of knobs is reported against the finished config, not the
/// call order.
#[derive(Debug, Clone)]
pub struct ServeConfigBuilder {
    config: ServeConfig,
}

impl ServeConfigBuilder {
    /// Sets [`ServeConfig::max_batch`].
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.config.max_batch = max_batch;
        self
    }

    /// Sets [`ServeConfig::max_wait`].
    pub fn max_wait(mut self, max_wait: Duration) -> Self {
        self.config.max_wait = max_wait;
        self
    }

    /// Sets [`ServeConfig::queue_capacity`].
    pub fn queue_capacity(mut self, queue_capacity: usize) -> Self {
        self.config.queue_capacity = queue_capacity;
        self
    }

    /// Sets [`ServeConfig::deadline`].
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.config.deadline = deadline;
        self
    }

    /// Sets [`ServeConfig::target_feature`].
    pub fn target_feature(mut self, target_feature: usize) -> Self {
        self.config.target_feature = target_feature;
        self
    }

    /// Sets [`ServeConfig::metrics_addr`].
    pub fn metrics_addr(mut self, addr: impl Into<String>) -> Self {
        self.config.metrics_addr = Some(addr.into());
        self
    }

    /// Sets [`ServeConfig::slo_window`].
    pub fn slo_window(mut self, window: Duration) -> Self {
        self.config.slo_window = window;
        self
    }

    /// Sets [`ServeConfig::slo_slots`].
    pub fn slo_slots(mut self, slots: usize) -> Self {
        self.config.slo_slots = slots;
        self
    }

    /// Sets [`ServeConfig::slo_target`].
    pub fn slo_target(mut self, target: f64) -> Self {
        self.config.slo_target = target;
        self
    }

    /// Sets [`ServeConfig::workers`] — the fleet's shard count.
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Sets [`ServeConfig::tenant_quota`] — the fleet's default per-tenant
    /// token bucket.
    pub fn tenant_quota(mut self, quota: TenantQuota) -> Self {
        self.config.tenant_quota = Some(quota);
        self
    }

    /// Validates and returns the finished config.
    pub fn build(self) -> Result<ServeConfig, EnhanceNetError> {
        self.config.validate()?;
        Ok(self.config)
    }

    /// Validates, then spawns a single-worker [`ForecastService`] around
    /// `model` — the replacement for the deprecated positional
    /// `ForecastService::new(model, scaler, config)`.
    ///
    /// `scaler` must be the scaler the model was trained with;
    /// [`crate::Trainer`] users take it from `WindowDataset::scaler`.
    pub fn spawn(
        self,
        model: Box<dyn Forecaster + Send>,
        scaler: StandardScaler,
    ) -> Result<ForecastService, EnhanceNetError> {
        let config = self.build()?;
        ForecastService::from_config(model, scaler, config)
    }

    /// Validates, then spawns a [`FleetService`] sharding requests across
    /// [`ServeConfig::workers`] threads over a shared snapshot of `model`.
    pub fn spawn_fleet(
        self,
        model: Box<dyn Forecaster + Send>,
        scaler: StandardScaler,
    ) -> Result<FleetService, EnhanceNetError> {
        let config = self.build()?;
        FleetService::from_config(model.into(), scaler, config)
    }
}
