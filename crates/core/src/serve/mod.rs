//! Online forecast serving: sliding-window state, micro-batching, graceful
//! degradation, and a sharded multi-worker fleet around trained
//! [`Forecaster`]s.
//!
//! The offline path (train → [`crate::Trainer::evaluate`]) assumes the whole
//! dataset is materialized. A deployed forecaster instead sees a stream of
//! raw observations and must answer "what happens over the next `F` steps?"
//! at any moment, within a latency budget. Two services close that gap:
//!
//! * [`ForecastService`] — one stream, one model, one worker thread. Raw
//!   observations are ingested into a [`SlidingWindow`] ring buffer;
//!   requests funnel through a bounded queue to a worker that answers them
//!   in micro-batches; every failure mode (cold window, missed deadline,
//!   full queue, worker panic) degrades to a persistence forecast tagged
//!   with its [`DegradedCause`] instead of erroring or hanging.
//! * [`FleetService`] — the same contract at fleet scale: requests are
//!   sharded across `K` worker threads by tenant affinity, each worker
//!   owning a private compiled-plan executor over a **shared model
//!   snapshot**; a background trainer hot-swaps models with zero downtime
//!   by publishing a new snapshot through an epoch cell
//!   ([`FleetService::publisher`] — in-flight batches finish on the old
//!   snapshot); and every tenant carries its own sliding window,
//!   token-bucket quota ([`TenantQuota`]) and rolling SLO window, so one
//!   bursting tenant is throttled ([`DegradedCause::QuotaExceeded`])
//!   instead of starving the rest.
//!
//! Construction goes through the validating [`ServeConfig::builder`]
//! (mirroring `TrainConfig::builder`): [`ServeConfigBuilder::spawn`] for a
//! single service, [`ServeConfigBuilder::spawn_fleet`] for the fleet.
//! Lifecycle ends with [`ForecastService::shutdown`] /
//! [`FleetService::shutdown`], which take a [`ShutdownMode`] —
//! [`ShutdownMode::Drain`] completes queued requests,
//! [`ShutdownMode::Now`] sheds them — and return a typed
//! [`ShutdownReport`].
//!
//! Telemetry: counters `serve.request`, `serve.fallback` (plus per-cause
//! `serve.fallback.{cold,deadline,queue_full,panic,quota}`),
//! `serve.queue.rejected`, `serve.worker.panics`, `serve.shutdown.drained`,
//! `serve.shutdown.shed`, per-tenant aggregates `serve.tenant.requests` /
//! `serve.tenant.throttled` / `serve.tenant.degraded`, hot-swap
//! `serve.swap.published` / `serve.swap.adopted`; gauges
//! `serve.queue.depth`, `serve.window.fill`, `serve.slo.*`,
//! `serve.tenant.active`, `serve.swap.epoch`, `serve.fleet.workers`;
//! histograms `serve.batch.size`, `serve.latency_ns`, `serve.forward_ns`,
//! `serve.queue.wait_ns`; span `serve.batch`.
//!
//! [`Forecaster`]: crate::forecaster::Forecaster
//! [`SlidingWindow`]: enhancenet_data::SlidingWindow

mod config;
mod fleet;
mod reply;
mod service;
mod snapshot;
mod tenant;
mod worker;

pub use config::{ServeConfig, ServeConfigBuilder};
pub use fleet::FleetService;
pub use reply::PendingForecast;
pub use service::ForecastService;
pub use snapshot::SnapshotPublisher;
pub use tenant::{Tenant, TenantQuota, TenantReport};

use enhancenet_tensor::Tensor;

/// Why a [`Forecast`] was served from the persistence fallback instead of
/// the model. Each cause also increments its own
/// `serve.fallback.{cold,deadline,queue_full,panic,quota}` counter, so a
/// scrape can tell a warming replica from an overloaded one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DegradedCause {
    /// The sliding window has not buffered a full `[H, N, C]` history yet.
    ColdWindow,
    /// The model did not answer within [`ServeConfig::deadline`].
    Deadline,
    /// The request queue was at capacity when the request arrived.
    QueueFull,
    /// The worker panicked, answered with a model error, or is gone.
    WorkerPanic,
    /// The tenant's token-bucket quota was exhausted ([`TenantQuota`]);
    /// the request never reached the queue.
    QuotaExceeded,
}

impl DegradedCause {
    /// Stable lowercase tag (`cold_window`, `deadline`, `queue_full`,
    /// `panic`, `quota`) — what replies and event payloads are tagged with.
    pub fn as_str(self) -> &'static str {
        match self {
            DegradedCause::ColdWindow => "cold_window",
            DegradedCause::Deadline => "deadline",
            DegradedCause::QueueFull => "queue_full",
            DegradedCause::WorkerPanic => "panic",
            DegradedCause::QuotaExceeded => "quota",
        }
    }

    /// The per-cause fallback counter this cause increments.
    pub fn counter_label(self) -> &'static str {
        match self {
            DegradedCause::ColdWindow => "serve.fallback.cold",
            DegradedCause::Deadline => "serve.fallback.deadline",
            DegradedCause::QueueFull => "serve.fallback.queue_full",
            DegradedCause::WorkerPanic => "serve.fallback.panic",
            DegradedCause::QuotaExceeded => "serve.fallback.quota",
        }
    }
}

/// Per-request latency attribution carried on every [`Forecast`].
///
/// `queue_wait_ns` and `forward_ns` are measured by the batch worker
/// (zero on fallback paths, which never reach it); `total_ns` is the
/// caller-observed wall time from request entry to reply.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RequestTiming {
    /// Time the request sat queued before its batch was assembled.
    pub queue_wait_ns: u64,
    /// Duration of the batched forward pass that answered the request.
    pub forward_ns: u64,
    /// End-to-end latency observed by the forecast entry point.
    pub total_ns: u64,
}

/// One served forecast.
#[derive(Debug, Clone)]
pub struct Forecast {
    /// Raw-scale predictions `[F, N]` of the target feature.
    pub values: Tensor,
    /// `Some(cause)` when this is a fallback persistence forecast rather
    /// than a model forecast; `None` for a healthy model answer.
    pub degraded: Option<DegradedCause>,
    /// Newest observation timestamp the forecast is anchored at.
    pub anchor: Option<i64>,
    /// Monotonic id assigned at request entry; flows through queue, batch,
    /// and reply, so one request can be traced across log lines.
    pub request_id: u64,
    /// Where this request's latency went.
    pub timing: RequestTiming,
}

impl Forecast {
    /// True when this forecast came from the persistence fallback.
    pub fn is_degraded(&self) -> bool {
        self.degraded.is_some()
    }
}

/// How a shutdown treats requests still queued when it begins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShutdownMode {
    /// Complete every queued request on the model before exiting (the
    /// default on drop). Bounded by queue depth, so drain time is at most
    /// `queue_capacity` forwards per worker.
    Drain,
    /// Shed queued requests immediately: each waiter gets
    /// [`crate::EnhanceNetError::ServiceStopped`] (which the forecast
    /// entry points surface as a degraded persistence forecast), and no
    /// further forward passes run.
    Now,
}

/// Typed accounting returned by [`ForecastService::shutdown`] and
/// [`FleetService::shutdown`]: what happened to requests that were still
/// queued when the shutdown began.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShutdownReport {
    /// Requests answered by the model between the shutdown signal and
    /// worker exit ([`ShutdownMode::Drain`]).
    pub drained: u64,
    /// Requests shed with `ServiceStopped` instead of a forward pass
    /// ([`ShutdownMode::Now`]).
    pub shed: u64,
}

#[cfg(test)]
mod tests;
