//! [`ForecastService`]: the single-stream, single-worker online endpoint.

use super::config::ServeConfig;
use super::reply::{PendingForecast, ReplySlot};
use super::worker::{self, BatchRequest, ShutdownState};
use super::{DegradedCause, Forecast, RequestTiming, ShutdownMode, ShutdownReport};
use crate::error::EnhanceNetError;
use crate::forecaster::Forecaster;
use crossbeam::channel::{bounded, Sender, TrySendError};
use enhancenet_data::{SlidingWindow, StandardScaler};
use enhancenet_telemetry::{MetricsServer, SloReport, SloWindow};
use enhancenet_tensor::Tensor;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// An online forecasting endpoint wrapping a trained model.
///
/// Ingest raw observations with [`ForecastService::ingest`], ask for
/// forecasts with [`ForecastService::forecast`]. The model lives on a
/// dedicated worker thread; [`ForecastService::submit`] exposes the raw
/// micro-batching path for callers managing their own windows (benchmarks,
/// fan-out frontends). Spawn through
/// [`ServeConfig::builder`](super::ServeConfig::builder)`.…spawn(model, scaler)`;
/// stop with [`ForecastService::shutdown`], choosing whether the queued
/// backlog is drained or shed.
pub struct ForecastService {
    tx: Option<Sender<BatchRequest>>,
    worker: Option<JoinHandle<()>>,
    buffer: SlidingWindow,
    scaler: StandardScaler,
    config: ServeConfig,
    input: [usize; 3],
    horizon: usize,
    next_request_id: AtomicU64,
    slo: Mutex<SloWindow>,
    shutdown: Arc<ShutdownState>,
    /// Readiness inputs shared with the metrics server's `/readyz` probe.
    warm: Arc<AtomicBool>,
    worker_alive: Arc<AtomicBool>,
    metrics: Option<MetricsServer>,
}

impl ForecastService {
    /// Wraps `model` (which moves to the worker thread) behind a serving
    /// endpoint; the deprecated positional path, kept for one release.
    ///
    /// `scaler` must be the scaler the model was trained with —
    /// [`crate::Trainer`] users take it from `WindowDataset::scaler`.
    ///
    /// Fails with [`EnhanceNetError::UnknownInputShape`] when the model
    /// does not report its `[H, N, C]` input shape (needed to size the
    /// sliding window), or [`EnhanceNetError::InvalidConfig`] for a zero
    /// `max_batch`/`queue_capacity`, an invalid SLO window shape or
    /// target, or an unbindable [`ServeConfig::metrics_addr`].
    #[deprecated(
        since = "0.9.0",
        note = "use `ServeConfig::builder().…spawn(model, scaler)` instead"
    )]
    pub fn new(
        model: Box<dyn Forecaster + Send>,
        scaler: StandardScaler,
        config: ServeConfig,
    ) -> Result<Self, EnhanceNetError> {
        config.validate()?;
        Self::from_config(model, scaler, config)
    }

    /// The spawn path behind [`super::ServeConfigBuilder::spawn`]; assumes
    /// `config` already passed [`ServeConfig::validate`] and performs only
    /// the model-dependent checks.
    pub(crate) fn from_config(
        model: Box<dyn Forecaster + Send>,
        scaler: StandardScaler,
        config: ServeConfig,
    ) -> Result<Self, EnhanceNetError> {
        let input = model.input_shape().ok_or_else(|| EnhanceNetError::UnknownInputShape {
            model: model.name().to_string(),
        })?;
        if config.target_feature >= input[2] {
            return Err(EnhanceNetError::InvalidConfig {
                field: "target_feature",
                reason: format!("must be < {} features, got {}", input[2], config.target_feature),
            });
        }
        let horizon = model.horizon();
        let (tx, rx) = bounded(config.queue_capacity);
        let (max_batch, max_wait) = (config.max_batch, config.max_wait);
        let worker_alive = worker::alive_flag();
        let alive_flag = Arc::clone(&worker_alive);
        let shutdown = Arc::new(ShutdownState::new());
        let shutdown_flag = Arc::clone(&shutdown);
        let worker = std::thread::Builder::new()
            .name("forecast-worker".into())
            .spawn(move || {
                worker::worker_loop(model, rx, max_batch, max_wait, &alive_flag, &shutdown_flag)
            })
            .expect("failed to spawn forecast worker thread");
        let warm = Arc::new(AtomicBool::new(false));
        let metrics = match &config.metrics_addr {
            Some(addr) => {
                let (warm, alive) = (Arc::clone(&warm), Arc::clone(&worker_alive));
                let probe: enhancenet_telemetry::ReadyProbe =
                    Arc::new(move || warm.load(Ordering::Relaxed) && alive.load(Ordering::Relaxed));
                Some(MetricsServer::bind(addr.as_str(), probe).map_err(|e| {
                    EnhanceNetError::InvalidConfig {
                        field: "metrics_addr",
                        reason: format!("cannot bind {addr}: {e}"),
                    }
                })?)
            }
            None => None,
        };
        let slo =
            Mutex::new(SloWindow::new(config.slo_window, config.slo_slots, config.slo_target));
        Ok(Self {
            tx: Some(tx),
            worker: Some(worker),
            buffer: SlidingWindow::new(input[0], input[1], input[2]),
            scaler,
            config,
            input,
            horizon,
            next_request_id: AtomicU64::new(0),
            slo,
            shutdown,
            warm,
            worker_alive,
            metrics,
        })
    }

    /// The `[H, N, C]` window shape this service assembles.
    pub fn input_shape(&self) -> [usize; 3] {
        self.input
    }

    /// Forecast horizon `F`.
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// The serving policy this service was spawned with.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// True once enough history is buffered for a model forecast.
    pub fn is_ready(&self) -> bool {
        self.buffer.is_ready()
    }

    /// The sliding-window state (timestamps retained, readiness).
    pub fn state(&self) -> &SlidingWindow {
        &self.buffer
    }

    /// Address of the embedded metrics server, when
    /// [`ServeConfig::metrics_addr`] was set (resolves port 0).
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics.as_ref().map(MetricsServer::local_addr)
    }

    /// True while the batch worker thread is running (one of the two
    /// readiness inputs behind `/readyz`; the other is window warmth).
    pub fn worker_alive(&self) -> bool {
        self.worker_alive.load(Ordering::Relaxed)
    }

    /// Windowed SLO statistics over the configured rolling window.
    pub fn slo_report(&self) -> SloReport {
        self.slo.lock().unwrap_or_else(|poisoned| poisoned.into_inner()).report()
    }

    /// Ingests one entity's raw observation at `timestamp`; see
    /// [`SlidingWindow::ingest`] for the fill-forward and late-update
    /// semantics.
    pub fn ingest(
        &mut self,
        timestamp: i64,
        entity: usize,
        features: &[f32],
    ) -> Result<(), EnhanceNetError> {
        self.buffer.ingest(timestamp, entity, features)?;
        self.refresh_window_state();
        Ok(())
    }

    /// Ingests a full raw snapshot row (`N * C` values) at `timestamp`.
    pub fn ingest_row(&mut self, timestamp: i64, row: &[f32]) -> Result<(), EnhanceNetError> {
        self.buffer.ingest_row(timestamp, row)?;
        self.refresh_window_state();
        Ok(())
    }

    /// Drops buffered history older than `cutoff` (e.g. after a feed gap).
    pub fn evict_before(&mut self, cutoff: i64) {
        self.buffer.evict_before(cutoff);
        self.refresh_window_state();
    }

    /// Forecasts the next `F` steps from the current window, degrading to a
    /// persistence forecast when the model cannot answer in time.
    ///
    /// Errors only when *nothing* can be served: no observation has ever
    /// been ingested ([`EnhanceNetError::NotReady`]) or the scaler rejects
    /// the window shape. Every other failure path — missed deadline, full
    /// queue, worker panic, warming buffer — returns a degraded forecast
    /// tagged with its [`DegradedCause`].
    pub fn forecast(&self) -> Result<Forecast, EnhanceNetError> {
        enhancenet_telemetry::count("serve.request", 1);
        let id = self.next_request_id.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        self.sample_gauges();
        let anchor = self.buffer.latest_timestamp();
        let Some(raw) = self.buffer.window() else {
            // Warming up: serve persistence off whatever history exists.
            return self.fallback(id, anchor, started, DegradedCause::ColdWindow);
        };
        let scaled = self.scaler.transform(&raw)?;
        let pending = match self.submit_with_id(&scaled, id) {
            Ok(pending) => pending,
            Err(EnhanceNetError::Overloaded { .. }) => {
                return self.fallback(id, anchor, started, DegradedCause::QueueFull);
            }
            Err(_) => return self.fallback(id, anchor, started, DegradedCause::WorkerPanic),
        };
        match pending.wait_reply(self.config.deadline) {
            Ok(reply) => {
                let values = self.scaler.inverse_feature(&reply.values, self.config.target_feature);
                let total_ns = started.elapsed().as_nanos() as u64;
                enhancenet_telemetry::observe("serve.latency_ns", total_ns as f64);
                self.record_outcome(total_ns, false);
                Ok(Forecast {
                    values,
                    degraded: None,
                    anchor,
                    request_id: id,
                    timing: RequestTiming {
                        queue_wait_ns: reply.queue_wait_ns,
                        forward_ns: reply.forward_ns,
                        total_ns,
                    },
                })
            }
            Err(EnhanceNetError::DeadlineExceeded { .. }) => {
                self.fallback(id, anchor, started, DegradedCause::Deadline)
            }
            Err(_) => self.fallback(id, anchor, started, DegradedCause::WorkerPanic),
        }
    }

    /// Submits a pre-scaled `[H, N, C]` window to the batch worker without
    /// blocking; pair with [`PendingForecast::wait`]. This is the fan-out
    /// path: submit many windows, then collect, and the worker serves them
    /// in micro-batches.
    pub fn submit(&self, scaled_window: &Tensor) -> Result<PendingForecast, EnhanceNetError> {
        let id = self.next_request_id.fetch_add(1, Ordering::Relaxed);
        self.submit_with_id(scaled_window, id)
    }

    fn submit_with_id(
        &self,
        scaled_window: &Tensor,
        id: u64,
    ) -> Result<PendingForecast, EnhanceNetError> {
        if scaled_window.shape() != self.input {
            return Err(EnhanceNetError::InputShape {
                expected: self.input.to_vec(),
                got: scaled_window.shape().to_vec(),
            });
        }
        let tx = self.tx.as_ref().ok_or(EnhanceNetError::ServiceStopped)?;
        enhancenet_telemetry::gauge("serve.queue.depth", tx.len() as f64);
        let (reply, slot) = ReplySlot::pair();
        let submitted = Instant::now();
        let request = BatchRequest { id, window: scaled_window.clone(), submitted, reply };
        match tx.try_send(request) {
            Ok(()) => Ok(PendingForecast { slot, submitted, id }),
            Err(TrySendError::Full(_)) => {
                enhancenet_telemetry::count("serve.queue.rejected", 1);
                Err(EnhanceNetError::Overloaded { capacity: self.config.queue_capacity })
            }
            Err(TrySendError::Disconnected(_)) => Err(EnhanceNetError::ServiceStopped),
        }
    }

    /// Stops the worker and joins it, returning what happened to requests
    /// still queued: [`ShutdownMode::Drain`] answers them on the model
    /// first, [`ShutdownMode::Now`] shed them as `ServiceStopped` (waiters
    /// see a degraded forecast through [`ForecastService::forecast`]).
    /// Dropping the service without calling this drains implicitly.
    pub fn shutdown(mut self, mode: ShutdownMode) -> ShutdownReport {
        self.stop(mode);
        self.shutdown.report()
    }

    /// Samples the request-path level gauges: current queue depth and how
    /// full the sliding window is (1.0 = warm).
    fn sample_gauges(&self) {
        if let Some(tx) = self.tx.as_ref() {
            enhancenet_telemetry::gauge("serve.queue.depth", tx.len() as f64);
        }
        enhancenet_telemetry::gauge(
            "serve.window.fill",
            self.buffer.len() as f64 / self.input[0] as f64,
        );
    }

    /// Keeps the readiness flag and window-fill gauge in sync with the
    /// sliding window after every mutation.
    fn refresh_window_state(&self) {
        self.warm.store(self.buffer.is_ready(), Ordering::Relaxed);
        enhancenet_telemetry::gauge(
            "serve.window.fill",
            self.buffer.len() as f64 / self.input[0] as f64,
        );
    }

    /// Feeds one request outcome into the rolling SLO window and refreshes
    /// the `serve.slo.*` gauges. Deadline attainment is judged purely on
    /// latency — a fast fallback still "hit" its deadline; degradation is
    /// tracked as its own rate.
    fn record_outcome(&self, total_ns: u64, degraded: bool) {
        let deadline_hit = u128::from(total_ns) <= self.config.deadline.as_nanos();
        let report = {
            let mut slo = self.slo.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
            slo.record(total_ns as f64, deadline_hit, degraded);
            if !enhancenet_telemetry::enabled() {
                return;
            }
            slo.report()
        };
        super::fleet::publish_slo_gauges(&report);
    }

    fn fallback(
        &self,
        id: u64,
        anchor: Option<i64>,
        started: Instant,
        cause: DegradedCause,
    ) -> Result<Forecast, EnhanceNetError> {
        let values = self
            .buffer
            .persistence_forecast(self.horizon, self.config.target_feature)
            .ok_or(EnhanceNetError::NotReady { have: self.buffer.len(), need: self.input[0] })?;
        enhancenet_telemetry::count("serve.fallback", 1);
        enhancenet_telemetry::count(cause.counter_label(), 1);
        let total_ns = started.elapsed().as_nanos() as u64;
        enhancenet_telemetry::observe("serve.latency_ns", total_ns as f64);
        self.record_outcome(total_ns, true);
        Ok(Forecast {
            values,
            degraded: Some(cause),
            anchor,
            request_id: id,
            timing: RequestTiming { queue_wait_ns: 0, forward_ns: 0, total_ns },
        })
    }

    fn stop(&mut self, mode: ShutdownMode) {
        self.shutdown.begin(mode);
        drop(self.tx.take());
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
        // Joining the exporter last lets a scraper observe the final
        // not-ready state before the listener goes away.
        drop(self.metrics.take());
    }
}

impl Drop for ForecastService {
    fn drop(&mut self) {
        self.stop(ShutdownMode::Drain);
    }
}
