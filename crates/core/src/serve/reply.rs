//! One-shot reply delivery between the batch worker and a waiting caller.
//!
//! Earlier revisions carried replies on a per-request bounded channel — a
//! full MPMC structure (queue, capacity accounting, two condvars) allocated
//! and torn down for every single request, and the deadline wait degenerated
//! into repeated short-timeout polls. [`ReplySlot`] is the purpose-built
//! replacement: one `Mutex<Option<..>>` plus one `Condvar`. The waiter
//! parks on the condvar until the worker delivers or disconnects —
//! **no spinning, no timed re-polling** — so a queue-heavy load test with
//! thousands of outstanding waiters burns no CPU while parked, and the
//! per-request allocation drops to a single `Arc`.

use super::worker::BatchReply;
use crate::error::EnhanceNetError;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// What the worker half observes and the waiter half consumes.
struct SlotState {
    /// The reply, once delivered. Stays in place until the waiter takes it,
    /// so a late `wait` after a timely delivery still succeeds.
    value: Option<Result<BatchReply, EnhanceNetError>>,
    /// True once the worker half is gone (delivered or dropped); a closed
    /// slot with no value means the worker died before answering.
    closed: bool,
}

/// The shared one-shot cell; see the module docs.
pub(crate) struct ReplySlot {
    state: Mutex<SlotState>,
    delivered: Condvar,
}

impl ReplySlot {
    /// A fresh slot split into its worker half ([`ReplyHandle`]) and the
    /// shared cell the waiter parks on.
    pub(crate) fn pair() -> (ReplyHandle, Arc<ReplySlot>) {
        let slot = Arc::new(ReplySlot {
            state: Mutex::new(SlotState { value: None, closed: false }),
            delivered: Condvar::new(),
        });
        (ReplyHandle { slot: Arc::clone(&slot), sent: false }, slot)
    }

    fn deliver(&self, value: Result<BatchReply, EnhanceNetError>) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.value = Some(value);
        state.closed = true;
        drop(state);
        self.delivered.notify_all();
    }

    fn close(&self) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.closed = true;
        drop(state);
        self.delivered.notify_all();
    }

    /// Parks until a reply is delivered, the worker disconnects, or
    /// `remaining` elapses. An already-delivered reply is returned even
    /// when `remaining` is zero (the late-wait poll contract).
    fn wait_remaining(&self, remaining: Duration) -> Result<BatchReply, EnhanceNetError> {
        let deadline = Instant::now() + remaining;
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(value) = state.value.take() {
                return value;
            }
            if state.closed {
                return Err(EnhanceNetError::ServiceStopped);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(EnhanceNetError::DeadlineExceeded { deadline: remaining });
            }
            let (next, _timeout) = self
                .delivered
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            state = next;
        }
    }
}

/// The worker's sending half. Exactly one reply may be sent; dropping the
/// handle without sending closes the slot so the waiter observes
/// [`EnhanceNetError::ServiceStopped`] instead of parking forever.
pub(crate) struct ReplyHandle {
    slot: Arc<ReplySlot>,
    sent: bool,
}

impl ReplyHandle {
    /// Delivers the reply and wakes the waiter.
    pub(crate) fn send(mut self, value: Result<BatchReply, EnhanceNetError>) {
        self.sent = true;
        self.slot.deliver(value);
    }
}

impl Drop for ReplyHandle {
    fn drop(&mut self) {
        if !self.sent {
            self.slot.close();
        }
    }
}

impl std::fmt::Debug for ReplyHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplyHandle").field("sent", &self.sent).finish_non_exhaustive()
    }
}

/// Handle to an in-flight prediction submitted with
/// [`super::ForecastService::submit`] or [`super::FleetService::submit`].
pub struct PendingForecast {
    pub(crate) slot: Arc<ReplySlot>,
    /// When the request entered the queue. The deadline clock starts here,
    /// not at [`PendingForecast::wait`]: time spent queued behind other
    /// requests counts against the latency budget, matching what the caller
    /// actually experiences.
    pub(crate) submitted: Instant,
    pub(crate) id: u64,
}

impl std::fmt::Debug for PendingForecast {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PendingForecast")
            .field("id", &self.id)
            .field("submitted", &self.submitted)
            .finish_non_exhaustive()
    }
}

impl PendingForecast {
    /// The monotonic request id assigned at submission.
    pub fn request_id(&self) -> u64 {
        self.id
    }

    /// Waits until `deadline` *measured from submission* for the scaled
    /// `[F, N]` prediction.
    ///
    /// The budget starts when the submit call accepted the request, so
    /// queue time already spent is subtracted; calling `wait` after the
    /// deadline has lapsed still polls once for an already-delivered reply
    /// before giving up. The wait parks on the slot's condvar — it burns
    /// no CPU while the worker computes.
    ///
    /// Returns [`EnhanceNetError::DeadlineExceeded`] on timeout and
    /// [`EnhanceNetError::ServiceStopped`] when the worker is gone (or shed
    /// this request during a [`super::ShutdownMode::Now`] shutdown); a
    /// late-arriving reply after a timeout is dropped harmlessly.
    pub fn wait(&self, deadline: Duration) -> Result<enhancenet_tensor::Tensor, EnhanceNetError> {
        self.wait_reply(deadline).map(|reply| reply.values)
    }

    /// [`PendingForecast::wait`] keeping the worker-side timing breakdown.
    pub(crate) fn wait_reply(&self, deadline: Duration) -> Result<BatchReply, EnhanceNetError> {
        let remaining = deadline.saturating_sub(self.submitted.elapsed());
        match self.slot.wait_remaining(remaining) {
            Err(EnhanceNetError::DeadlineExceeded { .. }) => {
                Err(EnhanceNetError::DeadlineExceeded { deadline })
            }
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enhancenet_tensor::Tensor;

    #[test]
    fn delivered_reply_wakes_waiter() {
        let (handle, slot) = ReplySlot::pair();
        let waiter = std::thread::spawn(move || slot.wait_remaining(Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        handle.send(Ok(BatchReply {
            values: Tensor::zeros(&[2, 2]),
            queue_wait_ns: 1,
            forward_ns: 2,
        }));
        let reply = waiter.join().unwrap().unwrap();
        assert_eq!(reply.queue_wait_ns, 1);
        assert_eq!(reply.forward_ns, 2);
    }

    #[test]
    fn dropped_handle_reports_service_stopped() {
        let (handle, slot) = ReplySlot::pair();
        drop(handle);
        match slot.wait_remaining(Duration::from_secs(5)) {
            Err(EnhanceNetError::ServiceStopped) => {}
            other => panic!("expected ServiceStopped, got {other:?}"),
        }
    }

    #[test]
    fn timeout_expires_without_delivery() {
        let (_handle, slot) = ReplySlot::pair();
        let started = Instant::now();
        match slot.wait_remaining(Duration::from_millis(30)) {
            Err(EnhanceNetError::DeadlineExceeded { .. }) => {}
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert!(started.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn late_wait_still_collects_delivered_reply() {
        let (handle, slot) = ReplySlot::pair();
        handle.send(Ok(BatchReply {
            values: Tensor::zeros(&[1]),
            queue_wait_ns: 0,
            forward_ns: 0,
        }));
        // Zero budget left: the wait must still poll the delivered value.
        assert!(slot.wait_remaining(Duration::ZERO).is_ok());
    }
}
