//! Copy-on-write model snapshots and the epoch cell that publishes them.
//!
//! The fleet never mutates the model it serves. Instead, each worker loads
//! the *current snapshot* — an immutable [`ParamStore`] copy behind an
//! `Arc` — once per batch, and compiled plans resolve parameters live from
//! that store at execution time (see `enhancenet_autodiff::Plan`: params
//! are indexed by [`ParamId`], never baked into the plan). A background
//! trainer hot-swaps weights by handing [`SnapshotPublisher::publish`] a
//! new store: the cell swaps the `Arc` under a short lock and bumps the
//! epoch counter. In-flight batches finish on the `Arc` they already
//! cloned — zero downtime, no reader ever blocks on a writer for longer
//! than the pointer swap — and workers adopt the new epoch at their next
//! batch boundary, dropping plan executors compiled against the old
//! weights' values (the plan *structure* survives; only the arena state is
//! rebuilt).
//!
//! This is the `ArcSwap` idiom built from `std` primitives (the repo
//! vendors no atomics crate): load = lock, clone `Arc`, unlock — a few
//! nanoseconds, amortized to nothing against a batched forward.

use crate::error::EnhanceNetError;
use enhancenet_autodiff::{ParamId, ParamStore};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One immutable published model state.
pub(crate) struct Snapshot {
    /// Epoch 0 is the weights the fleet was spawned with; each publish
    /// increments.
    pub(crate) epoch: u64,
    /// The parameter values compiled plans resolve against.
    pub(crate) store: ParamStore,
}

/// The shared cell workers load from and the publisher swaps into.
pub(crate) struct SnapshotCell {
    current: Mutex<Arc<Snapshot>>,
    epoch: AtomicU64,
}

impl SnapshotCell {
    /// Seeds the cell at epoch 0 with the fleet model's own weights.
    pub(crate) fn new(base: &ParamStore) -> Self {
        let store = clone_store(base);
        Self {
            current: Mutex::new(Arc::new(Snapshot { epoch: 0, store })),
            epoch: AtomicU64::new(0),
        }
    }

    /// The currently published snapshot; a short-lock `Arc` clone.
    pub(crate) fn load(&self) -> Arc<Snapshot> {
        Arc::clone(&self.current.lock().unwrap_or_else(|poisoned| poisoned.into_inner()))
    }

    /// The epoch of the currently published snapshot, lock-free.
    pub(crate) fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Swaps in `store` as the new current snapshot; returns its epoch.
    pub(crate) fn publish(&self, store: ParamStore) -> u64 {
        let mut current = self.current.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        let epoch = current.epoch + 1;
        *current = Arc::new(Snapshot { epoch, store });
        // Epoch is advertised only after the snapshot is visible, so a
        // worker that observes the new epoch always loads the new store.
        self.epoch.store(epoch, Ordering::SeqCst);
        epoch
    }
}

/// A deep value copy of `base`: same [`ParamId`] assignment (ids are
/// allocated sequentially by insertion order), same names, same shapes —
/// exactly what a plan compiled against `base` needs to resolve against
/// the copy.
pub(crate) fn clone_store(base: &ParamStore) -> ParamStore {
    let mut store = ParamStore::new();
    for id in base.ids() {
        store.add(base.name(id), base.value(id).clone());
    }
    store
}

/// Handle a background trainer uses to hot-swap the fleet's weights; see
/// [`super::FleetService::publisher`]. Cloneable and `Send`, so it can
/// move to the training thread while the fleet keeps serving.
#[derive(Clone)]
pub struct SnapshotPublisher {
    pub(crate) cell: Arc<SnapshotCell>,
    /// `(id, shape)` contract the fleet's compiled plans assume; publishes
    /// are validated against it so a mismatched store fails typed instead
    /// of corrupting a forward pass.
    pub(crate) contract: Arc<Vec<(ParamId, Vec<usize>)>>,
}

impl std::fmt::Debug for SnapshotPublisher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotPublisher")
            .field("epoch", &self.cell.epoch())
            .field("params", &self.contract.len())
            .finish()
    }
}

impl SnapshotPublisher {
    /// Builds a publisher over `cell` whose contract is `base`'s layout.
    pub(crate) fn new(cell: Arc<SnapshotCell>, base: &ParamStore) -> Self {
        let contract = base.ids().map(|id| (id, base.value(id).shape().to_vec())).collect();
        Self { cell, contract: Arc::new(contract) }
    }

    /// The epoch of the currently published snapshot (0 = spawn weights).
    pub fn epoch(&self) -> u64 {
        self.cell.epoch()
    }

    /// Publishes `store`'s current values as the fleet's new weights and
    /// returns the new epoch.
    ///
    /// The store must match the serving model's parameter layout — same
    /// parameter count, same per-id shapes — because compiled plans index
    /// parameters by id. A trainer that trained a *fresh instance of the
    /// same architecture* satisfies this by construction; anything else
    /// fails with [`EnhanceNetError::InvalidConfig`] and leaves the
    /// current snapshot serving.
    ///
    /// In-flight batches finish on the old snapshot; workers pick the new
    /// one up at their next batch boundary (counted as
    /// `serve.swap.adopted`). Counters: `serve.swap.published`; gauge
    /// `serve.swap.epoch`.
    pub fn publish(&self, store: &ParamStore) -> Result<u64, EnhanceNetError> {
        let got: Vec<(ParamId, Vec<usize>)> =
            store.ids().map(|id| (id, store.value(id).shape().to_vec())).collect();
        if got != *self.contract {
            return Err(EnhanceNetError::InvalidConfig {
                field: "snapshot",
                reason: format!(
                    "published store layout ({} params) does not match the serving model ({} params with identical ids/shapes required)",
                    got.len(),
                    self.contract.len()
                ),
            });
        }
        let epoch = self.cell.publish(clone_store(store));
        enhancenet_telemetry::count("serve.swap.published", 1);
        enhancenet_telemetry::gauge("serve.swap.epoch", epoch as f64);
        Ok(epoch)
    }
}
