//! Property-based gradient verification: every differentiable op is checked
//! against central finite differences on random inputs.

use enhancenet_autodiff::check::{check_gradient, check_gradient2};
use enhancenet_autodiff::Graph;
use enhancenet_tensor::{CsrMatrix, Tensor, TopkPattern};
use proptest::prelude::*;
use std::sync::Arc;

const EPS: f32 = 1e-2;
const TOL: f32 = 5e-2;

fn tensor(shape: &'static [usize], lo: f32, hi: f32) -> impl Strategy<Value = Tensor> {
    let n: usize = shape.iter().product();
    prop::collection::vec(lo..hi, n).prop_map(move |data| Tensor::from_vec(data, shape))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn grad_add_broadcast(x in tensor(&[2, 3], -2.0, 2.0), y in tensor(&[3], -2.0, 2.0)) {
        let r = check_gradient2(|g, a, b| { let s = g.add(a, b); g.sum_all(s) }, &x, &y, EPS);
        prop_assert!(r.passes(TOL), "{r:?}");
    }

    #[test]
    fn grad_sub(x in tensor(&[4], -2.0, 2.0), y in tensor(&[4], -2.0, 2.0)) {
        let r = check_gradient2(|g, a, b| { let s = g.sub(a, b); g.sum_all(s) }, &x, &y, EPS);
        prop_assert!(r.passes(TOL), "{r:?}");
    }

    #[test]
    fn grad_mul_broadcast(x in tensor(&[2, 3], -2.0, 2.0), y in tensor(&[2, 1], -2.0, 2.0)) {
        let r = check_gradient2(|g, a, b| { let s = g.mul(a, b); g.sum_all(s) }, &x, &y, EPS);
        prop_assert!(r.passes(TOL), "{r:?}");
    }

    #[test]
    fn grad_div(x in tensor(&[4], -2.0, 2.0), y in tensor(&[4], 0.5, 2.0)) {
        let r = check_gradient2(|g, a, b| { let s = g.div(a, b); g.sum_all(s) }, &x, &y, EPS);
        prop_assert!(r.passes(TOL), "{r:?}");
    }

    #[test]
    fn grad_matmul(x in tensor(&[3, 2], -2.0, 2.0), y in tensor(&[2, 4], -2.0, 2.0)) {
        let r = check_gradient2(|g, a, b| { let m = g.matmul(a, b); g.sum_all(m) }, &x, &y, EPS);
        prop_assert!(r.passes(TOL), "{r:?}");
    }

    #[test]
    fn grad_bmm(x in tensor(&[2, 2, 3], -1.5, 1.5), y in tensor(&[2, 3, 2], -1.5, 1.5)) {
        let r = check_gradient2(|g, a, b| { let m = g.bmm(a, b); g.sum_all(m) }, &x, &y, EPS);
        prop_assert!(r.passes(TOL), "{r:?}");
    }

    #[test]
    fn grad_matmul_nt(x in tensor(&[3, 2], -2.0, 2.0), y in tensor(&[4, 2], -2.0, 2.0)) {
        let r = check_gradient2(|g, a, b| { let m = g.matmul_nt(a, b); g.sum_all(m) }, &x, &y, EPS);
        prop_assert!(r.passes(TOL), "{r:?}");
    }

    #[test]
    fn grad_bmm_nt(x in tensor(&[2, 2, 3], -1.5, 1.5), y in tensor(&[2, 4, 3], -1.5, 1.5)) {
        let r = check_gradient2(|g, a, b| { let m = g.bmm_nt(a, b); g.sum_all(m) }, &x, &y, EPS);
        prop_assert!(r.passes(TOL), "{r:?}");
    }

    #[test]
    fn grad_matmul_broadcast_right_rank4(
        x in tensor(&[2, 2, 3, 2], -1.5, 1.5),
        w in tensor(&[2, 3], -1.5, 1.5),
    ) {
        // The generalized shared-filter path folds rank-4 leading axes.
        let r = check_gradient2(
            |g, x, w| { let m = g.matmul_broadcast_right(x, w); g.sum_all(m) }, &x, &w, EPS);
        prop_assert!(r.passes(TOL), "{r:?}");
    }

    #[test]
    fn fused_backward_matches_transpose_materializing_path(
        x in tensor(&[3, 4], -2.0, 2.0),
        y in tensor(&[4, 5], -2.0, 2.0),
    ) {
        // The fused `_tn`/`_nt` gradient rules must agree with the seed
        // formulation that materialized transposes tensor-side.
        let mut g = Graph::new();
        let a = g.constant(x.clone());
        let b = g.constant(y.clone());
        let m = g.matmul(a, b);
        let loss = g.sum_all(m);
        g.backward(loss);
        let gy = Tensor::ones(&[3, 5]);
        let ga_ref = gy.matmul(&y.transpose());
        let gb_ref = x.transpose().matmul(&gy);
        prop_assert!(g.grad(a).unwrap().allclose(&ga_ref, 1e-5));
        prop_assert!(g.grad(b).unwrap().allclose(&gb_ref, 1e-5));
    }

    #[test]
    fn grad_matmul_broadcast_left(a in tensor(&[3, 3], -1.5, 1.5), x in tensor(&[2, 3, 2], -1.5, 1.5)) {
        let r = check_gradient2(
            |g, a, x| { let m = g.matmul_broadcast_left(a, x); g.sum_all(m) }, &a, &x, EPS);
        prop_assert!(r.passes(TOL), "{r:?}");
    }

    #[test]
    fn grad_matmul_broadcast_right(x in tensor(&[2, 3, 2], -1.5, 1.5), w in tensor(&[2, 4], -1.5, 1.5)) {
        let r = check_gradient2(
            |g, x, w| { let m = g.matmul_broadcast_right(x, w); g.sum_all(m) }, &x, &w, EPS);
        prop_assert!(r.passes(TOL), "{r:?}");
    }

    #[test]
    fn grad_sigmoid(x in tensor(&[5], -3.0, 3.0)) {
        let r = check_gradient(|g, v| { let s = g.sigmoid(v); g.sum_all(s) }, &x, EPS);
        prop_assert!(r.passes(TOL), "{r:?}");
    }

    #[test]
    fn grad_tanh(x in tensor(&[5], -3.0, 3.0)) {
        let r = check_gradient(|g, v| { let s = g.tanh(v); g.sum_all(s) }, &x, EPS);
        prop_assert!(r.passes(TOL), "{r:?}");
    }

    #[test]
    fn grad_relu_away_from_kink(x in tensor(&[5], 0.2, 3.0)) {
        let r = check_gradient(|g, v| { let s = g.relu(v); g.sum_all(s) }, &x, EPS);
        prop_assert!(r.passes(TOL), "{r:?}");
    }

    #[test]
    fn grad_exp(x in tensor(&[5], -1.5, 1.5)) {
        let r = check_gradient(|g, v| { let s = g.exp(v); g.sum_all(s) }, &x, EPS);
        prop_assert!(r.passes(TOL), "{r:?}");
    }

    #[test]
    fn grad_ln(x in tensor(&[5], 0.5, 3.0)) {
        let r = check_gradient(|g, v| { let s = g.ln(v); g.sum_all(s) }, &x, EPS);
        prop_assert!(r.passes(TOL), "{r:?}");
    }

    #[test]
    fn grad_sqrt(x in tensor(&[5], 0.5, 3.0)) {
        let r = check_gradient(|g, v| { let s = g.sqrt(v); g.sum_all(s) }, &x, EPS);
        prop_assert!(r.passes(TOL), "{r:?}");
    }

    #[test]
    fn grad_square(x in tensor(&[5], -2.0, 2.0)) {
        let r = check_gradient(|g, v| { let s = g.square(v); g.sum_all(s) }, &x, EPS);
        prop_assert!(r.passes(TOL), "{r:?}");
    }

    #[test]
    fn grad_abs_away_from_kink(x in tensor(&[5], 0.3, 3.0)) {
        let r = check_gradient(|g, v| { let s = g.abs(v); g.sum_all(s) }, &x, EPS);
        prop_assert!(r.passes(TOL), "{r:?}");
    }

    #[test]
    fn grad_softmax(x in tensor(&[2, 4], -2.0, 2.0)) {
        // Weighted sum of softmax outputs so the gradient is non-trivial.
        let r = check_gradient(|g, v| {
            let s = g.softmax(v, -1);
            let w = g.constant(Tensor::from_vec(vec![1.0, -2.0, 3.0, 0.5, 1.0, -2.0, 3.0, 0.5], &[2, 4]));
            let ws = g.mul(s, w);
            g.sum_all(ws)
        }, &x, EPS);
        prop_assert!(r.passes(TOL), "{r:?}");
    }

    #[test]
    fn grad_mean_all(x in tensor(&[2, 3], -2.0, 2.0)) {
        let r = check_gradient(|g, v| g.mean_all(v), &x, EPS);
        prop_assert!(r.passes(TOL), "{r:?}");
    }

    #[test]
    fn grad_sum_axis(x in tensor(&[2, 3], -2.0, 2.0)) {
        let r = check_gradient(|g, v| {
            let s = g.sum_axis(v, 1);
            let sq = g.square(s);
            g.sum_all(sq)
        }, &x, EPS);
        prop_assert!(r.passes(TOL), "{r:?}");
    }

    #[test]
    fn grad_mean_axis(x in tensor(&[2, 3], -2.0, 2.0)) {
        let r = check_gradient(|g, v| {
            let s = g.mean_axis(v, 0);
            let sq = g.square(s);
            g.sum_all(sq)
        }, &x, EPS);
        prop_assert!(r.passes(TOL), "{r:?}");
    }

    #[test]
    fn grad_reshape_permute(x in tensor(&[2, 3], -2.0, 2.0)) {
        let r = check_gradient(|g, v| {
            let rs = g.reshape(v, &[3, 2]);
            let p = g.permute(rs, &[1, 0]);
            let sq = g.square(p);
            g.sum_all(sq)
        }, &x, EPS);
        prop_assert!(r.passes(TOL), "{r:?}");
    }

    #[test]
    fn grad_concat_slice(x in tensor(&[2, 2], -2.0, 2.0), y in tensor(&[2, 2], -2.0, 2.0)) {
        let r = check_gradient2(|g, a, b| {
            let cat = g.concat(&[a, b], 1);
            let s = g.slice_axis(cat, 1, 1, 3);
            let sq = g.square(s);
            g.sum_all(sq)
        }, &x, &y, EPS);
        prop_assert!(r.passes(TOL), "{r:?}");
    }

    #[test]
    fn grad_pad_front(x in tensor(&[2, 3], -2.0, 2.0)) {
        let r = check_gradient(|g, v| {
            let p = g.pad_front(v, 1, 2);
            let sq = g.square(p);
            g.sum_all(sq)
        }, &x, EPS);
        prop_assert!(r.passes(TOL), "{r:?}");
    }

    #[test]
    fn grad_broadcast_to(x in tensor(&[3], -2.0, 2.0)) {
        let r = check_gradient(|g, v| {
            let b = g.broadcast_to(v, &[4, 3]);
            let sq = g.square(b);
            g.sum_all(sq)
        }, &x, EPS);
        prop_assert!(r.passes(TOL), "{r:?}");
    }

    #[test]
    fn grad_gru_like_composite(x in tensor(&[2, 3], -1.0, 1.0), h in tensor(&[2, 4], -1.0, 1.0)) {
        // A miniature GRU-style cell exercises many ops chained together.
        let r = check_gradient2(|g, x, h| {
            let wx = g.constant(Tensor::from_vec((0..12).map(|i| (i as f32 * 0.13).sin()).collect(), &[3, 4]));
            let uh = g.constant(Tensor::from_vec((0..16).map(|i| (i as f32 * 0.29).cos()).collect(), &[4, 4]));
            let xa = g.matmul(x, wx);
            let hb = g.matmul(h, uh);
            let pre = g.add(xa, hb);
            let rgate = g.sigmoid(pre);
            let rh = g.mul(rgate, h);
            let cand = g.tanh(rh);
            let one = g.constant(Tensor::ones(&[2, 4]));
            let inv = g.sub(one, rgate);
            let blend = g.mul(inv, cand);
            let keep = g.mul(rgate, h);
            let out = g.add(blend, keep);
            g.sum_all(out)
        }, &x, &h, EPS);
        prop_assert!(r.passes(TOL), "{r:?}");
    }
}

/// Deterministic score matrix used to fix the sparsity pattern across the
/// finite-difference perturbations (the pattern is structural, not
/// differentiable, so it must not move with the input).
fn fixed_pattern(n: usize, k: usize) -> Arc<TopkPattern> {
    let scores =
        Tensor::from_vec((0..n * n).map(|i| (i as f32 * 0.37).sin() + 0.1).collect(), &[n, n]);
    Arc::new(TopkPattern::from_dense_topk(&scores, k))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn grad_gather_dot_nt_rank2(a in tensor(&[5, 3], -1.5, 1.5), b in tensor(&[5, 3], -1.5, 1.5)) {
        let pat = fixed_pattern(5, 3);
        let r = check_gradient2(|g, a, b| {
            let s = g.gather_dot_nt(a, b, pat.clone());
            let sq = g.square(s);
            g.sum_all(sq)
        }, &a, &b, EPS);
        prop_assert!(r.passes(TOL), "{r:?}");
    }

    #[test]
    fn grad_gather_dot_nt_rank3(
        a in tensor(&[2, 4, 3], -1.5, 1.5),
        b in tensor(&[2, 4, 3], -1.5, 1.5),
    ) {
        let pat = fixed_pattern(4, 2);
        let r = check_gradient2(|g, a, b| {
            let s = g.gather_dot_nt(a, b, pat.clone());
            let sq = g.square(s);
            g.sum_all(sq)
        }, &a, &b, EPS);
        prop_assert!(r.passes(TOL), "{r:?}");
    }

    #[test]
    fn grad_spmm_topk_broadcast_vals(
        vals in tensor(&[4, 2], -1.5, 1.5),
        x in tensor(&[2, 4, 3], -1.5, 1.5),
    ) {
        // Rank-2 values broadcast over a batched signal: the vals gradient
        // must batch-sum through the reduce kernel.
        let pat = fixed_pattern(4, 2);
        let r = check_gradient2(|g, v, x| {
            let s = g.spmm_topk(v, x, pat.clone());
            let sq = g.square(s);
            g.sum_all(sq)
        }, &vals, &x, EPS);
        prop_assert!(r.passes(TOL), "{r:?}");
    }

    #[test]
    fn grad_spmm_topk_batched_vals(
        vals in tensor(&[2, 4, 2], -1.5, 1.5),
        x in tensor(&[2, 4, 3], -1.5, 1.5),
    ) {
        let pat = fixed_pattern(4, 2);
        let r = check_gradient2(|g, v, x| {
            let s = g.spmm_topk(v, x, pat.clone());
            let sq = g.square(s);
            g.sum_all(sq)
        }, &vals, &x, EPS);
        prop_assert!(r.passes(TOL), "{r:?}");
    }

    #[test]
    fn grad_spmm_topk_rank2(
        vals in tensor(&[5, 3], -1.5, 1.5),
        x in tensor(&[5, 2], -1.5, 1.5),
    ) {
        let pat = fixed_pattern(5, 3);
        let r = check_gradient2(|g, v, x| {
            let s = g.spmm_topk(v, x, pat.clone());
            let sq = g.square(s);
            g.sum_all(sq)
        }, &vals, &x, EPS);
        prop_assert!(r.passes(TOL), "{r:?}");
    }

    #[test]
    fn grad_masked_softmax(x in tensor(&[2, 5], -2.0, 2.0)) {
        // Fixed mask with pruned entries plus a weighted sum so the gradient
        // is non-trivial; the mask input itself gets no gradient.
        let mask = Tensor::from_vec(vec![1.0, 0.0, 1.0, 1.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0], &[2, 5]);
        let w = Tensor::from_vec(vec![1.0, -2.0, 3.0, 0.5, -1.0, 2.0, -0.5, 1.5, 1.0, -3.0], &[2, 5]);
        let r = check_gradient(|g, v| {
            let m = g.constant(mask.clone());
            let s = g.masked_softmax(v, m);
            let wc = g.constant(w.clone());
            let ws = g.mul(s, wc);
            g.sum_all(ws)
        }, &x, EPS);
        prop_assert!(r.passes(TOL), "{r:?}");
    }

    #[test]
    fn grad_spmm_csr_rank2(x in tensor(&[5, 3], -1.5, 1.5)) {
        let scores = Tensor::from_vec(
            (0..25).map(|i| (i as f32 * 0.53).cos()).collect(), &[5, 5]);
        let csr = Arc::new(CsrMatrix::from_topk(&scores, 2));
        let csr_t = Arc::new(csr.transpose());
        let r = check_gradient(|g, v| {
            let s = g.spmm_csr(csr.clone(), csr_t.clone(), v);
            let sq = g.square(s);
            g.sum_all(sq)
        }, &x, EPS);
        prop_assert!(r.passes(TOL), "{r:?}");
    }

    #[test]
    fn grad_spmm_csr_rank3(x in tensor(&[2, 4, 3], -1.5, 1.5)) {
        let scores = Tensor::from_vec(
            (0..16).map(|i| (i as f32 * 0.53).cos()).collect(), &[4, 4]);
        let csr = Arc::new(CsrMatrix::from_topk(&scores, 2));
        let csr_t = Arc::new(csr.transpose());
        let r = check_gradient(|g, v| {
            let s = g.spmm_csr(csr.clone(), csr_t.clone(), v);
            let sq = g.square(s);
            g.sum_all(sq)
        }, &x, EPS);
        prop_assert!(r.passes(TOL), "{r:?}");
    }
}

#[test]
fn masked_mae_gradient_checks() {
    let pred = Tensor::from_vec(vec![1.0, -2.0, 3.0, 0.5], &[4]);
    let target = Tensor::from_vec(vec![0.5, 0.5, 0.5, 0.5], &[4]);
    let mask = Tensor::from_vec(vec![1.0, 0.0, 1.0, 1.0], &[4]);
    let r = check_gradient(|g: &mut Graph, v| g.masked_mae(v, &target, &mask), &pred, 1e-3);
    assert!(r.passes(1e-2), "{r:?}");
}

#[test]
fn masked_mse_gradient_checks() {
    let pred = Tensor::from_vec(vec![1.0, -2.0, 3.0, 0.5], &[4]);
    let target = Tensor::from_vec(vec![0.5, 0.5, 0.5, 0.5], &[4]);
    let mask = Tensor::from_vec(vec![1.0, 0.0, 1.0, 1.0], &[4]);
    let r = check_gradient(|g: &mut Graph, v| g.masked_mse(v, &target, &mask), &pred, 1e-3);
    assert!(r.passes(1e-2), "{r:?}");
}
