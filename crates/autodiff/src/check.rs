//! Finite-difference gradient checking.
//!
//! Central differences on every input coordinate, compared against the
//! analytic gradient from the tape. Used extensively by this crate's
//! property tests and available to downstream crates that define composite
//! layers.

use crate::graph::{Graph, Var};
use enhancenet_tensor::Tensor;

/// Result of a gradient check: max absolute and max relative error over all
/// coordinates.
#[derive(Debug, Clone, Copy)]
pub struct CheckReport {
    /// Largest |analytic − numeric|.
    pub max_abs_err: f32,
    /// Largest |analytic − numeric| / max(1, |numeric|).
    pub max_rel_err: f32,
}

impl CheckReport {
    /// True when both errors are below `tol`.
    pub fn passes(&self, tol: f32) -> bool {
        self.max_abs_err <= tol || self.max_rel_err <= tol
    }
}

/// Checks the gradient of `f` (a scalar-valued function of one tensor input)
/// at `x` with central differences of step `eps`.
///
/// `f` is invoked with a fresh graph and the input bound as a constant, and
/// must return a **scalar** output var.
pub fn check_gradient<F>(f: F, x: &Tensor, eps: f32) -> CheckReport
where
    F: Fn(&mut Graph, Var) -> Var,
{
    // Analytic gradient.
    let mut g = Graph::new();
    let xv = g.constant(x.clone());
    let y = f(&mut g, xv);
    assert_eq!(g.value(y).numel(), 1, "check_gradient requires a scalar output");
    g.backward(y);
    let analytic = g.grad(xv).cloned().unwrap_or_else(|| Tensor::zeros(x.shape()));

    // Numeric gradient, one coordinate at a time.
    let eval = |t: &Tensor| -> f32 {
        let mut g = Graph::new();
        let xv = g.constant(t.clone());
        let y = f(&mut g, xv);
        g.value(y).item()
    };
    let mut max_abs = 0.0f32;
    let mut max_rel = 0.0f32;
    let mut probe = x.clone();
    for i in 0..x.numel() {
        let orig = probe.data()[i];
        probe.data_mut()[i] = orig + eps;
        let up = eval(&probe);
        probe.data_mut()[i] = orig - eps;
        let down = eval(&probe);
        probe.data_mut()[i] = orig;
        let numeric = (up - down) / (2.0 * eps);
        let a = analytic.data()[i];
        let abs = (a - numeric).abs();
        max_abs = max_abs.max(abs);
        max_rel = max_rel.max(abs / numeric.abs().max(1.0));
    }
    CheckReport { max_abs_err: max_abs, max_rel_err: max_rel }
}

/// Like [`check_gradient`] but for a function of two tensor inputs; checks
/// the gradient with respect to both.
pub fn check_gradient2<F>(f: F, x1: &Tensor, x2: &Tensor, eps: f32) -> CheckReport
where
    F: Fn(&mut Graph, Var, Var) -> Var,
{
    let r1 = check_gradient(
        |g, v| {
            let c2 = g.constant(x2.clone());
            f(g, v, c2)
        },
        x1,
        eps,
    );
    let r2 = check_gradient(
        |g, v| {
            let c1 = g.constant(x1.clone());
            f(g, c1, v)
        },
        x2,
        eps,
    );
    CheckReport {
        max_abs_err: r1.max_abs_err.max(r2.max_abs_err),
        max_rel_err: r1.max_rel_err.max(r2.max_rel_err),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_gradient_checks() {
        let x = Tensor::from_vec(vec![1.0, -2.0, 0.5], &[3]);
        let r = check_gradient(
            |g, v| {
                let sq = g.square(v);
                g.sum_all(sq)
            },
            &x,
            1e-3,
        );
        assert!(r.passes(1e-2), "{r:?}");
    }

    #[test]
    fn matmul_two_input_check() {
        let a = Tensor::from_vec(vec![0.5, -1.0, 2.0, 0.25], &[2, 2]);
        let b = Tensor::from_vec(vec![1.5, 0.5, -0.75, 1.0], &[2, 2]);
        let r = check_gradient2(
            |g, va, vb| {
                let y = g.matmul(va, vb);
                g.sum_all(y)
            },
            &a,
            &b,
            1e-3,
        );
        assert!(r.passes(1e-2), "{r:?}");
    }

    #[test]
    fn detects_wrong_gradient() {
        // exp has gradient exp(x); a deliberately wrong function built from
        // pieces whose true grad differs from exp must not "accidentally"
        // produce a tiny error report. Here we verify the checker's numeric
        // side: sum(2x) has gradient 2, so checking against sum(x) analytic
        // path would fail — emulate by comparing reports.
        let x = Tensor::from_vec(vec![0.3, 0.7], &[2]);
        let good = check_gradient(
            |g, v| {
                let e = g.exp(v);
                g.sum_all(e)
            },
            &x,
            1e-3,
        );
        assert!(good.passes(1e-2), "{good:?}");
        assert!(good.max_abs_err < 0.01);
    }
}
