//! Checkpointing: a compact binary format for [`ParamStore`] values.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic "ENPS" | u32 version | u32 param-count
//! per param: u32 name-len | name bytes | u32 rank | u32 dims… | f32 data…
//! ```
//!
//! Loading validates the layout against the live store (names, shapes and
//! order must match), so a checkpoint can only be restored into the model
//! architecture that produced it.

use crate::params::ParamStore;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use enhancenet_tensor::Tensor;

const MAGIC: &[u8; 4] = b"ENPS";
const FORMAT_VERSION: u32 = 1;

/// Errors from checkpoint loading.
#[derive(Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// Not an ENPS blob or truncated header.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// Parameter count does not match the store.
    CountMismatch { expected: usize, found: usize },
    /// A parameter's name differs from the store's.
    NameMismatch { index: usize },
    /// A parameter's shape differs from the store's.
    ShapeMismatch { index: usize },
    /// Blob ended early.
    Truncated,
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not an ENPS checkpoint"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::CountMismatch { expected, found } => {
                write!(f, "checkpoint has {found} params, store has {expected}")
            }
            CheckpointError::NameMismatch { index } => {
                write!(f, "parameter {index} name mismatch")
            }
            CheckpointError::ShapeMismatch { index } => {
                write!(f, "parameter {index} shape mismatch")
            }
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl ParamStore {
    /// Serializes all parameter values into a checkpoint blob.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(64 + self.num_scalars() * 4);
        buf.put_slice(MAGIC);
        buf.put_u32_le(FORMAT_VERSION);
        buf.put_u32_le(self.len() as u32);
        for id in self.ids() {
            let name = self.name(id).as_bytes();
            buf.put_u32_le(name.len() as u32);
            buf.put_slice(name);
            let value = self.value(id);
            buf.put_u32_le(value.rank() as u32);
            for &d in value.shape() {
                buf.put_u32_le(d as u32);
            }
            for &v in value.data() {
                buf.put_f32_le(v);
            }
        }
        buf.freeze()
    }

    /// Restores parameter values from a checkpoint produced by
    /// [`ParamStore::to_bytes`] on an identically-built store.
    pub fn load_bytes(&mut self, blob: &[u8]) -> Result<(), CheckpointError> {
        let mut buf = blob;
        if buf.remaining() < 12 || &buf.copy_to_bytes(4)[..] != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = buf.get_u32_le();
        if version != FORMAT_VERSION {
            return Err(CheckpointError::BadVersion(version));
        }
        let count = buf.get_u32_le() as usize;
        if count != self.len() {
            return Err(CheckpointError::CountMismatch { expected: self.len(), found: count });
        }
        let ids: Vec<_> = self.ids().collect();
        let mut staged: Vec<Tensor> = Vec::with_capacity(count);
        for (index, &id) in ids.iter().enumerate() {
            if buf.remaining() < 4 {
                return Err(CheckpointError::Truncated);
            }
            let name_len = buf.get_u32_le() as usize;
            if buf.remaining() < name_len {
                return Err(CheckpointError::Truncated);
            }
            let name = buf.copy_to_bytes(name_len);
            if name != self.name(id).as_bytes() {
                return Err(CheckpointError::NameMismatch { index });
            }
            if buf.remaining() < 4 {
                return Err(CheckpointError::Truncated);
            }
            let rank = buf.get_u32_le() as usize;
            if buf.remaining() < rank * 4 {
                return Err(CheckpointError::Truncated);
            }
            let shape: Vec<usize> = (0..rank).map(|_| buf.get_u32_le() as usize).collect();
            if shape != self.value(id).shape() {
                return Err(CheckpointError::ShapeMismatch { index });
            }
            let numel: usize = shape.iter().product();
            if buf.remaining() < numel * 4 {
                return Err(CheckpointError::Truncated);
            }
            let data: Vec<f32> = (0..numel).map(|_| buf.get_f32_le()).collect();
            staged.push(Tensor::from_vec(data, &shape));
        }
        // All validated — commit.
        for (id, value) in ids.into_iter().zip(staged) {
            *self.value_mut(id) = value;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enhancenet_tensor::TensorRng;

    fn store() -> ParamStore {
        let mut s = ParamStore::new();
        let mut rng = TensorRng::seed(1);
        s.add("layer.w", rng.normal(&[3, 4], 0.0, 1.0));
        s.add("layer.b", rng.normal(&[4], 0.0, 1.0));
        s.add("memory", rng.normal(&[5, 2], 0.0, 1.0));
        s
    }

    #[test]
    fn roundtrip_restores_exact_values() {
        let original = store();
        let blob = original.to_bytes();
        let mut fresh = store();
        // Perturb so restore must actually do something.
        fresh.for_each_mut(|_, v, _| v.map_inplace(|x| x + 7.0));
        fresh.load_bytes(&blob).unwrap();
        for (a, b) in original.ids().zip(fresh.ids()) {
            assert!(original.value(a).allclose(fresh.value(b), 0.0));
        }
    }

    #[test]
    fn rejects_garbage() {
        let mut s = store();
        assert_eq!(s.load_bytes(b"not a checkpoint"), Err(CheckpointError::BadMagic));
    }

    #[test]
    fn rejects_wrong_architecture() {
        let blob = store().to_bytes();
        let mut other = ParamStore::new();
        other.add("layer.w", Tensor::zeros(&[3, 4]));
        assert!(matches!(other.load_bytes(&blob), Err(CheckpointError::CountMismatch { .. })));
    }

    #[test]
    fn rejects_renamed_parameter() {
        let blob = store().to_bytes();
        let mut other = ParamStore::new();
        let mut rng = TensorRng::seed(1);
        other.add("layer.w", rng.normal(&[3, 4], 0.0, 1.0));
        other.add("layer.bias", rng.normal(&[4], 0.0, 1.0)); // renamed
        other.add("memory", rng.normal(&[5, 2], 0.0, 1.0));
        assert_eq!(other.load_bytes(&blob), Err(CheckpointError::NameMismatch { index: 1 }));
    }

    #[test]
    fn rejects_reshaped_parameter() {
        let blob = store().to_bytes();
        let mut other = ParamStore::new();
        let mut rng = TensorRng::seed(1);
        other.add("layer.w", rng.normal(&[4, 3], 0.0, 1.0)); // transposed shape
        other.add("layer.b", rng.normal(&[4], 0.0, 1.0));
        other.add("memory", rng.normal(&[5, 2], 0.0, 1.0));
        assert_eq!(other.load_bytes(&blob), Err(CheckpointError::ShapeMismatch { index: 0 }));
    }

    #[test]
    fn rejects_truncated_blob() {
        let blob = store().to_bytes();
        let mut s = store();
        assert_eq!(s.load_bytes(&blob[..blob.len() - 3]), Err(CheckpointError::Truncated));
        // And the store is untouched by the failed load.
        let pristine = store();
        for (a, b) in pristine.ids().zip(s.ids()) {
            assert!(pristine.value(a).allclose(s.value(b), 0.0));
        }
    }

    #[test]
    fn failed_load_is_atomic() {
        let mut target = store();
        let before = target.snapshot();
        // Corrupt the last parameter's payload length by cutting mid-data.
        let blob = store().to_bytes();
        let _ = target.load_bytes(&blob[..blob.len() / 2]);
        let after = target.snapshot();
        for (a, b) in before.iter().zip(&after) {
            assert!(a.allclose(b, 0.0), "partial load mutated the store");
        }
    }
}
