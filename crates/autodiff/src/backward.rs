//! The backward (vector–Jacobian) rules for every [`Op`].

#[cfg(test)]
use crate::graph::Var;
use crate::graph::{Graph, Op};
use enhancenet_tensor::{sparse, Tensor};

impl Graph {
    /// Propagates the output gradient `gy` of node `i` to its inputs.
    pub(crate) fn propagate(&mut self, i: usize, gy: &Tensor) {
        // Clone the small metadata up front so `self` can be reborrowed for
        // accumulation afterwards.
        let op = self.nodes[i].op.clone();
        let inputs = self.nodes[i].inputs.clone();
        match op {
            Op::Leaf => {}

            Op::Add => {
                let (a, b) = (inputs[0], inputs[1]);
                let ga = gy.reduce_to_shape(self.value(a).shape());
                let gb = gy.reduce_to_shape(self.value(b).shape());
                self.accumulate(a, ga);
                self.accumulate(b, gb);
            }
            Op::Sub => {
                let (a, b) = (inputs[0], inputs[1]);
                let ga = gy.reduce_to_shape(self.value(a).shape());
                let gb = (-gy).reduce_to_shape(self.value(b).shape());
                self.accumulate(a, ga);
                self.accumulate(b, gb);
            }
            Op::Mul => {
                let (a, b) = (inputs[0], inputs[1]);
                let ga = gy.mul_t(self.value(b)).reduce_to_shape(self.value(a).shape());
                let gb = gy.mul_t(self.value(a)).reduce_to_shape(self.value(b).shape());
                self.accumulate(a, ga);
                self.accumulate(b, gb);
            }
            Op::Div => {
                let (a, b) = (inputs[0], inputs[1]);
                let vb = self.value(b);
                let va = self.value(a);
                let ga = gy.div_t(vb).reduce_to_shape(va.shape());
                // d/db (a/b) = -a / b^2
                let gb = (-&gy.mul_t(va).div_t(&vb.mul_t(vb))).reduce_to_shape(vb.shape());
                self.accumulate(a, ga);
                self.accumulate(b, gb);
            }
            Op::Neg => self.accumulate(inputs[0], -gy),
            Op::AddScalar(_) => self.accumulate(inputs[0], gy.clone()),
            Op::MulScalar(c) => self.accumulate(inputs[0], gy.mul_scalar(c)),

            // Every matmul-family rule below uses the transpose-fused GEMM
            // entry points (`_tn` reads the left operand transposed, `_nt`
            // the right), so no gradient ever materializes a transpose.
            Op::MatMul => {
                // y[m,n] = a[m,k] @ b[k,n] ⇒ ga = gy·bᵀ, gb = aᵀ·gy
                let (a, b) = (inputs[0], inputs[1]);
                let ga = gy.matmul_nt(self.value(b));
                let gb = self.value(a).matmul_tn(gy);
                self.accumulate(a, ga);
                self.accumulate(b, gb);
            }
            Op::MatMulNT => {
                // y[m,n] = a[m,k] @ b[n,k]ᵀ ⇒ ga = gy·b, gb = gyᵀ·a
                let (a, b) = (inputs[0], inputs[1]);
                let ga = gy.matmul(self.value(b));
                let gb = gy.matmul_tn(self.value(a));
                self.accumulate(a, ga);
                self.accumulate(b, gb);
            }
            Op::Bmm => {
                // yᵦ = aᵦ @ bᵦ ⇒ gaᵦ = gyᵦ·bᵦᵀ, gbᵦ = aᵦᵀ·gyᵦ
                let (a, b) = (inputs[0], inputs[1]);
                let ga = gy.bmm_nt(self.value(b));
                let gb = self.value(a).bmm_tn(gy);
                self.accumulate(a, ga);
                self.accumulate(b, gb);
            }
            Op::BmmNT => {
                // yᵦ = aᵦ @ bᵦᵀ ⇒ gaᵦ = gyᵦ·bᵦ, gbᵦ = gyᵦᵀ·aᵦ
                let (a, b) = (inputs[0], inputs[1]);
                let ga = gy.bmm(self.value(b));
                let gb = gy.bmm_tn(self.value(a));
                self.accumulate(a, ga);
                self.accumulate(b, gb);
            }
            Op::MatMulBroadcastLeft => {
                // y[b,m,n] = a[m,k] @ x[b,k,n] ⇒ ga = Σᵦ gyᵦ·xᵦᵀ (one
                // batch-summed fused GEMM, no [b,m,k] intermediate),
                // gxᵦ = aᵀ·gyᵦ
                let (a, x) = (inputs[0], inputs[1]);
                let ga = gy.bmm_nt_reduce(self.value(x));
                let gx = self.value(a).matmul_broadcast_left_tn(gy);
                self.accumulate(a, ga);
                self.accumulate(x, gx);
            }
            Op::MatMulBroadcastRight => {
                // y[..,n] = x[..,k] @ w[k,n] ⇒ gx = gy·wᵀ,
                // gw = xᵀ_flat·gy_flat (leading axes fold in the kernel —
                // no reshape copies)
                let (x, w) = (inputs[0], inputs[1]);
                let gx = gy.matmul_broadcast_right_nt(self.value(w));
                let gw = self.value(x).matmul_tn_flat(gy);
                self.accumulate(x, gx);
                self.accumulate(w, gw);
            }

            Op::Sigmoid => {
                let y = &self.nodes[i].value;
                let g = gy.zip_with(y, |g, y| g * y * (1.0 - y));
                self.accumulate(inputs[0], g);
            }
            Op::Tanh => {
                let y = &self.nodes[i].value;
                let g = gy.zip_with(y, |g, y| g * (1.0 - y * y));
                self.accumulate(inputs[0], g);
            }
            Op::Relu => {
                let x = self.value(inputs[0]);
                let g = gy.zip_with(x, |g, x| if x > 0.0 { g } else { 0.0 });
                self.accumulate(inputs[0], g);
            }
            Op::Exp => {
                let y = &self.nodes[i].value;
                let g = gy.mul_t(y);
                self.accumulate(inputs[0], g);
            }
            Op::Ln => {
                let x = self.value(inputs[0]);
                let g = gy.div_t(x);
                self.accumulate(inputs[0], g);
            }
            Op::Sqrt => {
                let y = &self.nodes[i].value;
                let g = gy.zip_with(y, |g, y| 0.5 * g / y.max(1e-12));
                self.accumulate(inputs[0], g);
            }
            Op::Abs => {
                let x = self.value(inputs[0]);
                let g = gy.zip_with(x, |g, x| g * x.signum() * (x != 0.0) as i32 as f32);
                self.accumulate(inputs[0], g);
            }
            Op::Square => {
                let x = self.value(inputs[0]);
                let g = gy.zip_with(x, |g, x| 2.0 * g * x);
                self.accumulate(inputs[0], g);
            }

            Op::Softmax { axis } => {
                // dx = y ⊙ (gy − Σ_axis gy⊙y)
                let y = self.nodes[i].value.clone();
                let gy_y = gy.mul_t(&y);
                let rank = y.rank() as isize;
                let ax = if axis < 0 { axis + rank } else { axis };
                let s = gy_y.sum_axis_keepdim(ax);
                let g = y.mul_t(&gy.sub_t(&s));
                self.accumulate(inputs[0], g);
            }

            Op::SumAll => {
                let shape = self.value(inputs[0]).shape().to_vec();
                self.accumulate(inputs[0], Tensor::full(&shape, gy.item()));
            }
            Op::MeanAll => {
                let shape = self.value(inputs[0]).shape().to_vec();
                let n = self.value(inputs[0]).numel() as f32;
                self.accumulate(inputs[0], Tensor::full(&shape, gy.item() / n));
            }
            Op::SumAxis { axis } => {
                let shape = self.value(inputs[0]).shape().to_vec();
                let g = gy.unsqueeze(axis as isize).add_t(&Tensor::zeros(&shape));
                self.accumulate(inputs[0], g);
            }
            Op::MeanAxis { axis } => {
                let shape = self.value(inputs[0]).shape().to_vec();
                let len = shape[axis] as f32;
                let g =
                    gy.unsqueeze(axis as isize).mul_scalar(1.0 / len).add_t(&Tensor::zeros(&shape));
                self.accumulate(inputs[0], g);
            }

            Op::Reshape { from } => self.accumulate(inputs[0], gy.reshape(&from)),
            Op::Permute { perm } => {
                let mut inv = vec![0usize; perm.len()];
                for (j, &p) in perm.iter().enumerate() {
                    inv[p] = j;
                }
                self.accumulate(inputs[0], gy.permute(&inv));
            }
            Op::Concat { axis, sizes } => {
                let mut start = 0;
                for (part, &len) in inputs.iter().zip(&sizes) {
                    let g = gy.slice_axis(axis as isize, start, start + len);
                    self.accumulate(*part, g);
                    start += len;
                }
            }
            Op::Slice { axis, start, input_len } => {
                let g = scatter_slice(gy, axis, start, input_len);
                self.accumulate(inputs[0], g);
            }
            Op::PadFront { axis, count } => {
                let padded_len = self.nodes[i].value.shape()[axis];
                let g = gy.slice_axis(axis as isize, count, padded_len);
                self.accumulate(inputs[0], g);
            }
            Op::BroadcastTo { from } => {
                self.accumulate(inputs[0], gy.reduce_to_shape(&from));
            }

            Op::GatherDotNT { pattern } => {
                // y[..,i,j] = ⟨a[..,i,:], b[..,cols(i,j),:]⟩
                // ⇒ ga[..,i,:] = Σⱼ gy[..,i,j]·b[..,cols(i,j),:]  (spmm)
                //   gb[..,cols(i,j),:] += gy[..,i,j]·a[..,i,:]    (scatter)
                let (a, b) = (inputs[0], inputs[1]);
                let mut ga = Tensor::default();
                sparse::topk_spmm_into(gy, self.value(b), &pattern, &mut ga);
                let mut gb = Tensor::default();
                sparse::topk_scatter_into(gy, self.value(a), &pattern, &mut gb);
                self.accumulate(a, ga);
                self.accumulate(b, gb);
            }
            Op::MaskedSoftmax => {
                // Same rule as Softmax over the last axis: the output is
                // zero at masked entries, so y ⊙ (gy − Σ gy⊙y) already
                // routes nothing through them. The mask gets no gradient.
                let y = self.nodes[i].value.clone();
                let gy_y = gy.mul_t(&y);
                let s = gy_y.sum_axis_keepdim(y.rank() as isize - 1);
                let g = y.mul_t(&gy.sub_t(&s));
                self.accumulate(inputs[0], g);
            }
            Op::SpmmCsr { csr_t, .. } => {
                // y = A·x for constant A ⇒ gx = Aᵀ·gy, via the precomputed
                // transpose. A itself is non-differentiable structure.
                self.accumulate(inputs[0], csr_t.spmm(gy));
            }
            Op::SpmmTopk { pattern } => {
                // y[..,i,:] = Σⱼ vals[..,i,j]·x[..,cols(i,j),:]
                // ⇒ gvals[..,i,j] = ⟨gy[..,i,:], x[..,cols(i,j),:]⟩
                //   (batch-summed when vals were broadcast rank-2),
                //   gx[..,cols(i,j),:] += vals[..,i,j]·gy[..,i,:].
                // Dropped entries receive no gradient at all.
                let (vals, x) = (inputs[0], inputs[1]);
                let mut gvals = Tensor::default();
                if self.value(vals).rank() == 2 && gy.rank() == 3 {
                    sparse::topk_gather_dot_reduce_into(gy, self.value(x), &pattern, &mut gvals);
                } else {
                    sparse::topk_gather_dot_into(gy, self.value(x), &pattern, &mut gvals);
                }
                let mut gx = Tensor::default();
                sparse::topk_scatter_into(self.value(vals), gy, &pattern, &mut gx);
                self.accumulate(vals, gvals);
                self.accumulate(x, gx);
            }
        }
    }
}

/// Embeds `gy` (a gradient of a slice) back into a zero tensor whose `axis`
/// has length `input_len`, at offset `start` — the adjoint of slicing.
fn scatter_slice(gy: &Tensor, axis: usize, start: usize, input_len: usize) -> Tensor {
    let mut out_shape = gy.shape().to_vec();
    let slice_len = out_shape[axis];
    out_shape[axis] = input_len;
    let outer: usize = out_shape[..axis].iter().product();
    let inner: usize = out_shape[axis + 1..].iter().product();
    let mut out = Tensor::zeros(&out_shape);
    let dst = out.data_mut();
    let src = gy.data();
    for o in 0..outer {
        let src_base = o * slice_len * inner;
        let dst_base = (o * input_len + start) * inner;
        dst[dst_base..dst_base + slice_len * inner]
            .copy_from_slice(&src[src_base..src_base + slice_len * inner]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grad_of<F>(build: F, input: Tensor) -> (Tensor, Tensor)
    where
        F: Fn(&mut Graph, Var) -> Var,
    {
        let mut g = Graph::new();
        let x = g.constant(input);
        let y = build(&mut g, x);
        let loss = g.sum_all(y);
        g.backward(loss);
        (g.value(y).clone(), g.grad(x).unwrap().clone())
    }

    #[test]
    fn add_backward_broadcast_row() {
        let mut g = Graph::new();
        let a = g.constant(Tensor::ones(&[2, 3]));
        let b = g.constant(Tensor::ones(&[3]));
        let y = g.add(a, b);
        let loss = g.sum_all(y);
        g.backward(loss);
        assert_eq!(g.grad(a).unwrap().shape(), &[2, 3]);
        // b was broadcast over 2 rows, so its grad sums them.
        assert_eq!(g.grad(b).unwrap().data(), &[2.0, 2.0, 2.0]);
    }

    #[test]
    fn mul_backward_is_other_operand() {
        let mut g = Graph::new();
        let a = g.constant(Tensor::from_vec(vec![2.0, 3.0], &[2]));
        let b = g.constant(Tensor::from_vec(vec![5.0, 7.0], &[2]));
        let y = g.mul(a, b);
        let loss = g.sum_all(y);
        g.backward(loss);
        assert_eq!(g.grad(a).unwrap().data(), &[5.0, 7.0]);
        assert_eq!(g.grad(b).unwrap().data(), &[2.0, 3.0]);
    }

    #[test]
    fn div_backward() {
        let mut g = Graph::new();
        let a = g.constant(Tensor::from_vec(vec![6.0], &[1]));
        let b = g.constant(Tensor::from_vec(vec![3.0], &[1]));
        let y = g.div(a, b);
        let loss = g.sum_all(y);
        g.backward(loss);
        assert!((g.grad(a).unwrap().data()[0] - 1.0 / 3.0).abs() < 1e-6);
        assert!((g.grad(b).unwrap().data()[0] + 6.0 / 9.0).abs() < 1e-6);
    }

    #[test]
    fn matmul_backward_shapes_and_values() {
        let mut g = Graph::new();
        let a = g.constant(Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]));
        let b = g.constant(Tensor::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]));
        let y = g.matmul(a, b);
        let loss = g.sum_all(y);
        g.backward(loss);
        // d/dA sum(A@I) = ones @ I^T = ones
        assert_eq!(g.grad(a).unwrap().data(), &[1.0, 1.0, 1.0, 1.0]);
        // d/dB sum(A@B) = A^T @ ones: column sums of A replicated
        assert_eq!(g.grad(b).unwrap().data(), &[4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn sigmoid_backward_peak_at_zero() {
        let (_, grad) = grad_of(|g, x| g.sigmoid(x), Tensor::from_vec(vec![0.0], &[1]));
        assert!((grad.data()[0] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn tanh_backward_at_zero_is_one() {
        let (_, grad) = grad_of(|g, x| g.tanh(x), Tensor::from_vec(vec![0.0], &[1]));
        assert!((grad.data()[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn relu_backward_gates() {
        let (_, grad) = grad_of(|g, x| g.relu(x), Tensor::from_vec(vec![-1.0, 2.0], &[2]));
        assert_eq!(grad.data(), &[0.0, 1.0]);
    }

    #[test]
    fn abs_backward_sign() {
        let (_, grad) = grad_of(|g, x| g.abs(x), Tensor::from_vec(vec![-2.0, 3.0, 0.0], &[3]));
        assert_eq!(grad.data(), &[-1.0, 1.0, 0.0]);
    }

    #[test]
    fn exp_ln_chain_rule() {
        // d/dx ln(exp(x)) = 1
        let (_, grad) = grad_of(
            |g, x| {
                let e = g.exp(x);
                g.ln(e)
            },
            Tensor::from_vec(vec![0.7], &[1]),
        );
        assert!((grad.data()[0] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn softmax_backward_sums_to_zero() {
        // Softmax grad rows are orthogonal to the ones vector when the
        // upstream grad is uniform — here sum over a row must vanish.
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]));
        let s = g.softmax(x, -1);
        let pick = g.slice_axis(s, 1, 0, 1); // d(first prob)/dx
        let loss = g.sum_all(pick);
        g.backward(loss);
        let gx = g.grad(x).unwrap();
        assert!(gx.sum_all().abs() < 1e-6);
    }

    #[test]
    fn mean_axis_backward_divides() {
        let (_, grad) = grad_of(|g, x| g.mean_axis(x, 1), Tensor::ones(&[2, 4]));
        assert!(grad.allclose(&Tensor::full(&[2, 4], 0.25), 1e-6));
    }

    #[test]
    fn slice_backward_scatters() {
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]));
        let s = g.slice_axis(x, 0, 1, 3);
        let loss = g.sum_all(s);
        g.backward(loss);
        assert_eq!(g.grad(x).unwrap().data(), &[0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn concat_backward_splits() {
        let mut g = Graph::new();
        let a = g.constant(Tensor::ones(&[2]));
        let b = g.constant(Tensor::ones(&[3]));
        let cat = g.concat(&[a, b], 0);
        let doubled = g.mul_scalar(cat, 2.0);
        let loss = g.sum_all(doubled);
        g.backward(loss);
        assert_eq!(g.grad(a).unwrap().data(), &[2.0, 2.0]);
        assert_eq!(g.grad(b).unwrap().data(), &[2.0, 2.0, 2.0]);
    }

    #[test]
    fn pad_front_backward_drops_padding() {
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_vec(vec![1.0, 2.0], &[2]));
        let p = g.pad_front(x, 0, 3);
        let loss = g.sum_all(p);
        g.backward(loss);
        assert_eq!(g.grad(x).unwrap().data(), &[1.0, 1.0]);
    }

    #[test]
    fn permute_backward_inverts() {
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[2, 3]));
        let p = g.permute(x, &[1, 0]);
        let w = g.constant(Tensor::from_vec((0..6).map(|v| (v * v) as f32).collect(), &[3, 2]));
        let y = g.mul(p, w);
        let loss = g.sum_all(y);
        g.backward(loss);
        // grad of x must be w transposed back
        let gx = g.grad(x).unwrap();
        assert_eq!(gx.shape(), &[2, 3]);
        assert_eq!(gx.at(&[0, 1]), 4.0); // w[1,0] = (1*2)^2 = 4
    }

    #[test]
    fn matmul_nt_backward_matches_transpose_then_matmul() {
        // Same product built two ways — fused `a·bᵀ` node vs. explicit
        // permute + matmul — must produce identical values and gradients.
        let av = Tensor::from_vec((0..6).map(|v| v as f32 - 2.0).collect(), &[2, 3]);
        let bv = Tensor::from_vec((0..12).map(|v| (v % 5) as f32 - 1.0).collect(), &[4, 3]);

        let mut g = Graph::new();
        let a = g.constant(av.clone());
        let b = g.constant(bv.clone());
        let y = g.matmul_nt(a, b);
        let loss = g.sum_all(y);
        g.backward(loss);

        let mut g2 = Graph::new();
        let a2 = g2.constant(av);
        let b2 = g2.constant(bv);
        let bt = g2.permute(b2, &[1, 0]);
        let y2 = g2.matmul(a2, bt);
        let loss2 = g2.sum_all(y2);
        g2.backward(loss2);

        assert!(g.value(y).allclose(g2.value(y2), 1e-6));
        assert!(g.grad(a).unwrap().allclose(g2.grad(a2).unwrap(), 1e-6));
        assert!(g.grad(b).unwrap().allclose(g2.grad(b2).unwrap(), 1e-6));
    }

    #[test]
    fn bmm_nt_backward_matches_transpose_then_bmm() {
        let av = Tensor::from_vec((0..24).map(|v| (v % 7) as f32 - 3.0).collect(), &[2, 3, 4]);
        let bv = Tensor::from_vec((0..40).map(|v| (v % 5) as f32 - 2.0).collect(), &[2, 5, 4]);

        let mut g = Graph::new();
        let a = g.constant(av.clone());
        let b = g.constant(bv.clone());
        let y = g.bmm_nt(a, b);
        let loss = g.sum_all(y);
        g.backward(loss);

        let mut g2 = Graph::new();
        let a2 = g2.constant(av);
        let b2 = g2.constant(bv);
        let bt = g2.permute(b2, &[0, 2, 1]);
        let y2 = g2.bmm(a2, bt);
        let loss2 = g2.sum_all(y2);
        g2.backward(loss2);

        assert!(g.value(y).allclose(g2.value(y2), 1e-6));
        assert!(g.grad(a).unwrap().allclose(g2.grad(a2).unwrap(), 1e-6));
        assert!(g.grad(b).unwrap().allclose(g2.grad(b2).unwrap(), 1e-6));
    }

    #[test]
    fn fused_matmul_grads_match_materialized_transpose_reference() {
        // The fused rules must agree with the seed formulation that
        // materialized transposes: ga = gy·Bᵀ and gb = Aᵀ·gy computed
        // tensor-side with explicit transposes.
        let av = Tensor::from_vec((0..15).map(|v| (v % 4) as f32 - 1.5).collect(), &[3, 5]);
        let bv = Tensor::from_vec((0..20).map(|v| (v % 6) as f32 - 2.0).collect(), &[5, 4]);
        let mut g = Graph::new();
        let a = g.constant(av.clone());
        let b = g.constant(bv.clone());
        let y = g.matmul(a, b);
        let loss = g.sum_all(y);
        g.backward(loss);
        let gy = Tensor::ones(&[3, 4]);
        let ga_ref = gy.matmul(&bv.transpose());
        let gb_ref = av.transpose().matmul(&gy);
        assert!(g.grad(a).unwrap().allclose(&ga_ref, 1e-6));
        assert!(g.grad(b).unwrap().allclose(&gb_ref, 1e-6));
    }

    #[test]
    fn broadcast_right_backward_handles_rank_4() {
        // The generalized shared-filter op folds arbitrary leading axes;
        // its gradient must land back in the rank-4 input shape.
        let mut g = Graph::new();
        let x = g.constant(Tensor::ones(&[2, 3, 4, 5]));
        let w = g.constant(Tensor::ones(&[5, 6]));
        let y = g.matmul_broadcast_right(x, w);
        let loss = g.sum_all(y);
        g.backward(loss);
        assert_eq!(g.value(y).shape(), &[2, 3, 4, 6]);
        assert_eq!(g.grad(x).unwrap().shape(), &[2, 3, 4, 5]);
        // gw sums over 2*3*4 = 24 folded rows.
        assert!(g.grad(w).unwrap().allclose(&Tensor::full(&[5, 6], 24.0), 1e-5));
    }

    #[test]
    fn bmm_backward_shapes() {
        let mut g = Graph::new();
        let a = g.constant(Tensor::ones(&[2, 3, 4]));
        let b = g.constant(Tensor::ones(&[2, 4, 5]));
        let y = g.bmm(a, b);
        let loss = g.sum_all(y);
        g.backward(loss);
        assert_eq!(g.grad(a).unwrap().shape(), &[2, 3, 4]);
        assert_eq!(g.grad(b).unwrap().shape(), &[2, 4, 5]);
        // Every grad element of a is n=5 (sum over the 5 output cols).
        assert!(g.grad(a).unwrap().allclose(&Tensor::full(&[2, 3, 4], 5.0), 1e-5));
    }

    #[test]
    fn broadcast_matmul_backward_shapes() {
        let mut g = Graph::new();
        let a = g.constant(Tensor::ones(&[3, 3]));
        let x = g.constant(Tensor::ones(&[2, 3, 4]));
        let y = g.matmul_broadcast_left(a, x);
        let loss = g.sum_all(y);
        g.backward(loss);
        assert_eq!(g.grad(a).unwrap().shape(), &[3, 3]);
        assert_eq!(g.grad(x).unwrap().shape(), &[2, 3, 4]);

        let mut g2 = Graph::new();
        let x2 = g2.constant(Tensor::ones(&[2, 3, 4]));
        let w = g2.constant(Tensor::ones(&[4, 5]));
        let y2 = g2.matmul_broadcast_right(x2, w);
        let loss2 = g2.sum_all(y2);
        g2.backward(loss2);
        assert_eq!(g2.grad(x2).unwrap().shape(), &[2, 3, 4]);
        assert_eq!(g2.grad(w).unwrap().shape(), &[4, 5]);
        // grad of w sums over batch*rows = 6
        assert!(g2.grad(w).unwrap().allclose(&Tensor::full(&[4, 5], 6.0), 1e-5));
    }
}
