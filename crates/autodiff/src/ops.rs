//! Forward definitions of every differentiable operation.
//!
//! Each method computes the forward value eagerly with `enhancenet-tensor`
//! and records an [`Op`](crate::Op) tag for the backward sweep.

use crate::graph::{Graph, Op, Var};
use enhancenet_tensor::{broadcast_shapes, sparse, CsrMatrix, Tensor, TopkPattern};
use std::sync::Arc;

impl Graph {
    // ------------------------------------------------------------- binary

    /// Broadcast addition.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).add_t(self.value(b));
        self.push(v, Op::Add, vec![a, b])
    }

    /// Broadcast subtraction.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).sub_t(self.value(b));
        self.push(v, Op::Sub, vec![a, b])
    }

    /// Broadcast elementwise multiplication (⊙ in the paper).
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).mul_t(self.value(b));
        self.push(v, Op::Mul, vec![a, b])
    }

    /// Broadcast elementwise division.
    pub fn div(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).div_t(self.value(b));
        self.push(v, Op::Div, vec![a, b])
    }

    // -------------------------------------------------------------- unary

    /// Elementwise negation.
    pub fn neg(&mut self, a: Var) -> Var {
        let v = -self.value(a);
        self.push(v, Op::Neg, vec![a])
    }

    /// Adds a constant scalar.
    pub fn add_scalar(&mut self, a: Var, c: f32) -> Var {
        let v = self.value(a).add_scalar(c);
        self.push(v, Op::AddScalar(c), vec![a])
    }

    /// Multiplies by a constant scalar.
    pub fn mul_scalar(&mut self, a: Var, c: f32) -> Var {
        let v = self.value(a).mul_scalar(c);
        self.push(v, Op::MulScalar(c), vec![a])
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let v = self.value(a).sigmoid();
        self.push(v, Op::Sigmoid, vec![a])
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let v = self.value(a).tanh_t();
        self.push(v, Op::Tanh, vec![a])
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let v = self.value(a).relu();
        self.push(v, Op::Relu, vec![a])
    }

    /// Elementwise exponential.
    pub fn exp(&mut self, a: Var) -> Var {
        let v = self.value(a).exp_t();
        self.push(v, Op::Exp, vec![a])
    }

    /// Elementwise natural log. The input must be strictly positive.
    pub fn ln(&mut self, a: Var) -> Var {
        let v = self.value(a).ln_t();
        self.push(v, Op::Ln, vec![a])
    }

    /// Elementwise square root. The input must be non-negative.
    pub fn sqrt(&mut self, a: Var) -> Var {
        let v = self.value(a).sqrt_t();
        self.push(v, Op::Sqrt, vec![a])
    }

    /// Elementwise absolute value (subgradient 0 at the kink).
    pub fn abs(&mut self, a: Var) -> Var {
        let v = self.value(a).abs_t();
        self.push(v, Op::Abs, vec![a])
    }

    /// Elementwise square (cheaper than `mul(a, a)` — one node).
    pub fn square(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| x * x);
        self.push(v, Op::Square, vec![a])
    }

    // ------------------------------------------------------------- matmul

    /// 2-D matrix multiply.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).matmul(self.value(b));
        self.push(v, Op::MatMul, vec![a, b])
    }

    /// Transpose-fused 2-D multiply `a · bᵀ` for `b` stored `[n,k]`.
    ///
    /// Replaces the `transpose` + `matmul` node pair wherever a product
    /// against a transposed operand is needed (attention-style scores,
    /// similarity matrices): one node, no materialized transpose, and the
    /// backward rule is likewise transpose-free.
    pub fn matmul_nt(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).matmul_nt(self.value(b));
        self.push(v, Op::MatMulNT, vec![a, b])
    }

    /// Batched 3-D matrix multiply `[b,m,k] x [b,k,n]`.
    pub fn bmm(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).bmm(self.value(b));
        self.push(v, Op::Bmm, vec![a, b])
    }

    /// Batched transpose-fused multiply `aᵦ · bᵦᵀ` for `b` stored `[b,n,k]`.
    ///
    /// The batched analogue of [`Graph::matmul_nt`] — replaces
    /// `transpose_batched` + `bmm` (the dynamic-attention score pattern)
    /// with a single fused node.
    pub fn bmm_nt(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).bmm_nt(self.value(b));
        self.push(v, Op::BmmNT, vec![a, b])
    }

    /// `[m,k] x [b,k,n] -> [b,m,n]` (shared adjacency × batched signal).
    pub fn matmul_broadcast_left(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).matmul_broadcast_left(self.value(b));
        self.push(v, Op::MatMulBroadcastLeft, vec![a, b])
    }

    /// `[..., k] x [k,n] -> [..., n]` (signal of any rank × shared filter).
    ///
    /// Leading axes fold into one GEMM inside the kernel; no reshape nodes
    /// or data copies are needed on either the forward or backward pass.
    pub fn matmul_broadcast_right(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).matmul_broadcast_right(self.value(b));
        self.push(v, Op::MatMulBroadcastRight, vec![a, b])
    }

    // ------------------------------------------------------------ softmax

    /// Softmax along `axis`.
    pub fn softmax(&mut self, a: Var, axis: isize) -> Var {
        let v = self.value(a).softmax(axis);
        self.push(v, Op::Softmax { axis }, vec![a])
    }

    /// Masked, renormalized softmax over the last axis: entries with
    /// `mask > 0` get softmax weights renormalized over the surviving set;
    /// masked entries are exactly 0; fully masked slices collapse to zeros
    /// (callers add an explicit fallback such as a self-loop). The mask
    /// receives no gradient.
    pub fn masked_softmax(&mut self, logits: Var, mask: Var) -> Var {
        let mut v = Tensor::default();
        sparse::masked_softmax_into(self.value(logits), self.value(mask), &mut v);
        self.push(v, Op::MaskedSoftmax, vec![logits, mask])
    }

    // ------------------------------------------------------------- sparse

    /// Pattern-restricted attention scores
    /// `out[.., i, j] = ⟨a[.., i, :], b[.., cols(i,j), :]⟩` for a top-k
    /// column pattern. `a` is `[rows, e]` / `[batch, rows, e]`, `b` is
    /// `[cols, e]` / `[batch, cols, e]`; the output is `[.., rows, k]`.
    /// Only the retained dot products are computed — the dense `rows × cols`
    /// score matrix never materializes.
    pub fn gather_dot_nt(&mut self, a: Var, b: Var, pattern: Arc<TopkPattern>) -> Var {
        let mut v = Tensor::default();
        sparse::topk_gather_dot_into(self.value(a), self.value(b), &pattern, &mut v);
        self.push(v, Op::GatherDotNT { pattern }, vec![a, b])
    }

    /// Dense-out product of a **constant** CSR matrix with a (possibly
    /// batched) signal: `[.., cols, c] → [.., rows, c]`. `csr_t` must be
    /// the transpose of `csr` (build it once with
    /// [`CsrMatrix::transpose`]); the backward pass multiplies by it, and
    /// the matrix itself receives no gradient.
    pub fn spmm_csr(&mut self, csr: Arc<CsrMatrix>, csr_t: Arc<CsrMatrix>, x: Var) -> Var {
        debug_assert_eq!(
            (csr.rows(), csr.cols(), csr.nnz()),
            (csr_t.cols(), csr_t.rows(), csr_t.nnz()),
            "spmm_csr: csr_t is not the transpose of csr"
        );
        let v = csr.spmm(self.value(x));
        self.push(v, Op::SpmmCsr { csr, csr_t }, vec![x])
    }

    /// Dense-out product of top-k pattern values with a signal:
    /// `out[.., i, :] = Σⱼ vals[.., i, j] · x[.., cols(i,j), :]`. `vals` is
    /// `[rows, k]` (broadcast over a batched signal) or `[batch, rows, k]`.
    /// Gradients scatter **only** into the retained entries.
    pub fn spmm_topk(&mut self, vals: Var, x: Var, pattern: Arc<TopkPattern>) -> Var {
        let mut v = Tensor::default();
        sparse::topk_spmm_into(self.value(vals), self.value(x), &pattern, &mut v);
        self.push(v, Op::SpmmTopk { pattern }, vec![vals, x])
    }

    // --------------------------------------------------------- reductions

    /// Sum of all elements to a rank-0 scalar.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let v = Tensor::scalar(self.value(a).sum_all());
        self.push(v, Op::SumAll, vec![a])
    }

    /// Mean of all elements to a rank-0 scalar.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let v = Tensor::scalar(self.value(a).mean_all());
        self.push(v, Op::MeanAll, vec![a])
    }

    /// Sum along one axis (negative axes allowed), removing it.
    pub fn sum_axis(&mut self, a: Var, axis: isize) -> Var {
        let rank = self.value(a).rank() as isize;
        let ax = if axis < 0 { (axis + rank) as usize } else { axis as usize };
        let v = self.value(a).sum_axis(axis);
        self.push(v, Op::SumAxis { axis: ax }, vec![a])
    }

    /// Mean along one axis, removing it.
    pub fn mean_axis(&mut self, a: Var, axis: isize) -> Var {
        let rank = self.value(a).rank() as isize;
        let ax = if axis < 0 { (axis + rank) as usize } else { axis as usize };
        let v = self.value(a).mean_axis(axis);
        self.push(v, Op::MeanAxis { axis: ax }, vec![a])
    }

    // -------------------------------------------------------------- shape

    /// Reshape (element count preserved; `usize::MAX` infers one axis).
    pub fn reshape(&mut self, a: Var, shape: &[usize]) -> Var {
        let from = self.value(a).shape().to_vec();
        let v = self.value(a).reshape(shape);
        self.push(v, Op::Reshape { from }, vec![a])
    }

    /// Axis permutation.
    pub fn permute(&mut self, a: Var, perm: &[usize]) -> Var {
        let v = self.value(a).permute(perm);
        self.push(v, Op::Permute { perm: perm.to_vec() }, vec![a])
    }

    /// 2-D transpose (sugar over permute).
    pub fn transpose(&mut self, a: Var) -> Var {
        self.permute(a, &[1, 0])
    }

    /// Batched transpose of the last two axes of a rank-3 value.
    pub fn transpose_batched(&mut self, a: Var) -> Var {
        self.permute(a, &[0, 2, 1])
    }

    /// Concatenates along `axis` (negative allowed).
    pub fn concat(&mut self, parts: &[Var], axis: isize) -> Var {
        assert!(!parts.is_empty(), "concat of zero vars");
        let rank = self.value(parts[0]).rank() as isize;
        let ax = if axis < 0 { (axis + rank) as usize } else { axis as usize };
        let tensors: Vec<&Tensor> = parts.iter().map(|&p| self.value(p)).collect();
        let sizes: Vec<usize> = tensors.iter().map(|t| t.shape()[ax]).collect();
        let v = Tensor::concat(&tensors, axis);
        self.push(v, Op::Concat { axis: ax, sizes }, parts.to_vec())
    }

    /// Stacks same-shaped values along a new leading axis.
    pub fn stack(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "stack of zero vars");
        let unsqueezed: Vec<Var> = parts
            .iter()
            .map(|&p| {
                let mut shape = vec![1];
                shape.extend_from_slice(self.value(p).shape());
                self.reshape(p, &shape)
            })
            .collect();
        self.concat(&unsqueezed, 0)
    }

    /// Contiguous slice `[start, stop)` along `axis` (negative allowed).
    pub fn slice_axis(&mut self, a: Var, axis: isize, start: usize, stop: usize) -> Var {
        let rank = self.value(a).rank() as isize;
        let ax = if axis < 0 { (axis + rank) as usize } else { axis as usize };
        let input_len = self.value(a).shape()[ax];
        let v = self.value(a).slice_axis(axis, start, stop);
        self.push(v, Op::Slice { axis: ax, start, input_len }, vec![a])
    }

    /// Selects one index along `axis`, removing the axis.
    pub fn index_axis(&mut self, a: Var, axis: isize, index: usize) -> Var {
        let sliced = self.slice_axis(a, axis, index, index + 1);
        let mut shape = self.value(sliced).shape().to_vec();
        let rank = shape.len() as isize;
        let ax = if axis < 0 { (axis + rank) as usize } else { axis as usize };
        shape.remove(ax);
        self.reshape(sliced, &shape)
    }

    /// Front zero-padding along `axis` (causal padding).
    pub fn pad_front(&mut self, a: Var, axis: isize, count: usize) -> Var {
        let rank = self.value(a).rank() as isize;
        let ax = if axis < 0 { (axis + rank) as usize } else { axis as usize };
        let v = self.value(a).pad_axis_front(axis, count, 0.0);
        self.push(v, Op::PadFront { axis: ax, count }, vec![a])
    }

    /// Broadcasts `a` up to `shape` (which must be broadcast-compatible).
    pub fn broadcast_to(&mut self, a: Var, shape: &[usize]) -> Var {
        let from = self.value(a).shape().to_vec();
        let target = broadcast_shapes(&from, shape);
        assert_eq!(target, shape, "cannot broadcast {from:?} to {shape:?}");
        let v = self.value(a).broadcast_to(shape);
        self.push(v, Op::BroadcastTo { from }, vec![a])
    }

    // ----------------------------------------------------------- composed

    /// `a + b * c` (fused convenience used by gates).
    pub fn add_mul(&mut self, a: Var, b: Var, c: Var) -> Var {
        let bc = self.mul(b, c);
        self.add(a, bc)
    }

    /// Mean absolute error between `pred` and constant `target`, masked.
    ///
    /// `mask` must broadcast against `pred`; the loss is
    /// `Σ|pred-target|·mask / Σmask`. With an all-ones mask this is plain
    /// MAE. This is the training loss used throughout the paper's
    /// experimental setting (masked MAE, as in DCRNN / Graph WaveNet).
    pub fn masked_mae(&mut self, pred: Var, target: &Tensor, mask: &Tensor) -> Var {
        let mask_sum = mask.sum_all().max(1e-6);
        self.masked_mae_with_denom(pred, target, mask, mask_sum)
    }

    /// [`Graph::masked_mae`] with an explicit denominator:
    /// `Σ|pred-target|·mask / denom`.
    ///
    /// The sharded trainer scores each window on its own tape but normalizes
    /// by the *whole batch's* mask sum, so per-window losses sum to one
    /// batch loss whose value and gradients are independent of how windows
    /// are grouped into shards.
    pub fn masked_mae_with_denom(
        &mut self,
        pred: Var,
        target: &Tensor,
        mask: &Tensor,
        denom: f32,
    ) -> Var {
        let t = self.constant(target.clone());
        let m = self.constant(mask.clone());
        let diff = self.sub(pred, t);
        let a = self.abs(diff);
        let masked = self.mul(a, m);
        let s = self.sum_all(masked);
        self.mul_scalar(s, 1.0 / denom)
    }

    /// Masked mean squared error (same masking semantics as
    /// [`Graph::masked_mae`]).
    pub fn masked_mse(&mut self, pred: Var, target: &Tensor, mask: &Tensor) -> Var {
        let mask_sum = mask.sum_all().max(1e-6);
        let t = self.constant(target.clone());
        let m = self.constant(mask.clone());
        let diff = self.sub(pred, t);
        let sq = self.square(diff);
        let masked = self.mul(sq, m);
        let s = self.sum_all(masked);
        self.mul_scalar(s, 1.0 / mask_sum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(g: &mut Graph, data: &[f32], shape: &[usize]) -> Var {
        g.constant(Tensor::from_vec(data.to_vec(), shape))
    }

    #[test]
    fn forward_values_match_tensor_ops() {
        let mut g = Graph::new();
        let a = c(&mut g, &[1.0, 2.0], &[2]);
        let b = c(&mut g, &[3.0, 4.0], &[2]);
        let sum = g.add(a, b);
        let diff = g.sub(a, b);
        let prod = g.mul(a, b);
        let quot = g.div(b, a);
        assert_eq!(g.value(sum).data(), &[4.0, 6.0]);
        assert_eq!(g.value(diff).data(), &[-2.0, -2.0]);
        assert_eq!(g.value(prod).data(), &[3.0, 8.0]);
        assert_eq!(g.value(quot).data(), &[3.0, 2.0]);
    }

    #[test]
    fn stack_builds_leading_axis() {
        let mut g = Graph::new();
        let a = c(&mut g, &[1.0, 2.0], &[2]);
        let b = c(&mut g, &[3.0, 4.0], &[2]);
        let s = g.stack(&[a, b]);
        assert_eq!(g.value(s).shape(), &[2, 2]);
        assert_eq!(g.value(s).data(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn index_axis_removes_axis() {
        let mut g = Graph::new();
        let a = c(&mut g, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let row = g.index_axis(a, 0, 1);
        assert_eq!(g.value(row).shape(), &[3]);
        assert_eq!(g.value(row).data(), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn broadcast_to_expands() {
        let mut g = Graph::new();
        let a = c(&mut g, &[1.0, 2.0], &[2]);
        let b = g.broadcast_to(a, &[3, 2]);
        assert_eq!(g.value(b).shape(), &[3, 2]);
        assert_eq!(g.value(b).data(), &[1.0, 2.0, 1.0, 2.0, 1.0, 2.0]);
    }

    #[test]
    fn masked_mae_value() {
        let mut g = Graph::new();
        let pred = c(&mut g, &[1.0, 2.0, 3.0, 4.0], &[4]);
        let target = Tensor::from_vec(vec![0.0, 0.0, 0.0, 0.0], &[4]);
        let mask = Tensor::from_vec(vec![1.0, 1.0, 0.0, 1.0], &[4]);
        let loss = g.masked_mae(pred, &target, &mask);
        // (1 + 2 + 4) / 3
        assert!((g.value(loss).item() - 7.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn masked_mse_value() {
        let mut g = Graph::new();
        let pred = c(&mut g, &[1.0, 3.0], &[2]);
        let target = Tensor::zeros(&[2]);
        let mask = Tensor::ones(&[2]);
        let loss = g.masked_mse(pred, &target, &mask);
        assert!((g.value(loss).item() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn transpose_sugar() {
        let mut g = Graph::new();
        let a = c(&mut g, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let t = g.transpose(a);
        assert_eq!(g.value(t).shape(), &[3, 2]);
    }
}
