//! Arena execution of compiled [`Plan`](crate::Plan)s.
//!
//! A [`PlanExecutor`] owns a plan plus the preallocated buffers it runs
//! against: one arena [`Tensor`] per plan slot (sized to the slot's peak
//! element count) and a staging tensor for rank-promoting single-window
//! requests. Warm executions write every intermediate through the tensor
//! crate's `_into` kernels into these buffers — the whole forward performs
//! **zero heap allocations** (pinned by `crates/core/tests/plan_allocations.rs`).
//!
//! Parameters are resolved live from the [`ParamStore`] on every run, so an
//! executor never holds stale weights; staleness of *derived* trace-time
//! constants is handled by version keying in [`PlanCache`](crate::PlanCache).

use crate::graph::Op;
use crate::params::{ParamId, ParamStore};
use crate::plan::{Instr, Plan, Src};
use enhancenet_tensor::{sparse, Tensor};
use std::mem;

/// Static span label for one op tag (recorded on the first, profiling run).
fn op_label(op: &Op) -> &'static str {
    match op {
        Op::Leaf => "plan.op.leaf",
        Op::Add => "plan.op.add",
        Op::Sub => "plan.op.sub",
        Op::Mul => "plan.op.mul",
        Op::Div => "plan.op.div",
        Op::Neg => "plan.op.neg",
        Op::AddScalar(_) => "plan.op.add_scalar",
        Op::MulScalar(_) => "plan.op.mul_scalar",
        Op::MatMul => "plan.op.matmul",
        Op::MatMulNT => "plan.op.matmul_nt",
        Op::Bmm => "plan.op.bmm",
        Op::BmmNT => "plan.op.bmm_nt",
        Op::MatMulBroadcastLeft => "plan.op.mm_bcast_left",
        Op::MatMulBroadcastRight => "plan.op.mm_bcast_right",
        Op::Sigmoid => "plan.op.sigmoid",
        Op::Tanh => "plan.op.tanh",
        Op::Relu => "plan.op.relu",
        Op::Exp => "plan.op.exp",
        Op::Ln => "plan.op.ln",
        Op::Sqrt => "plan.op.sqrt",
        Op::Abs => "plan.op.abs",
        Op::Square => "plan.op.square",
        Op::Softmax { .. } => "plan.op.softmax",
        Op::SumAll => "plan.op.sum_all",
        Op::MeanAll => "plan.op.mean_all",
        Op::SumAxis { .. } => "plan.op.sum_axis",
        Op::MeanAxis { .. } => "plan.op.mean_axis",
        Op::Reshape { .. } => "plan.op.reshape",
        Op::Permute { .. } => "plan.op.permute",
        Op::Concat { .. } => "plan.op.concat",
        Op::Slice { .. } => "plan.op.slice",
        Op::PadFront { .. } => "plan.op.pad_front",
        Op::BroadcastTo { .. } => "plan.op.broadcast_to",
        Op::GatherDotNT { .. } => "plan.op.gather_dot_nt",
        Op::MaskedSoftmax => "plan.op.masked_softmax",
        Op::SpmmCsr { .. } => "plan.op.spmm_csr",
        Op::SpmmTopk { .. } => "plan.op.spmm_topk",
    }
}

/// Resolves an operand source to a tensor reference. A free function (not a
/// method) so the execute loop can borrow the arena immutably while the
/// destination tensor is temporarily moved out.
fn resolve<'a>(
    arena: &'a [Tensor],
    consts: &'a [Tensor],
    params: &'a [ParamId],
    store: &'a ParamStore,
    input: &'a Tensor,
    src: &Src,
) -> &'a Tensor {
    match src {
        Src::Slot(s) => &arena[*s],
        Src::Const(c) => &consts[*c],
        Src::Param(p) => store.value(params[*p]),
        Src::Input => input,
    }
}

/// Executes one instruction's kernel into `dst`. Every arm calls the same
/// `_into` kernel the tape's allocating op delegates to, so the plan output
/// is bitwise identical to the tape's.
#[allow(clippy::too_many_arguments)]
fn exec_instr(
    instr: &Instr,
    dst: &mut Tensor,
    arena: &[Tensor],
    consts: &[Tensor],
    params: &[ParamId],
    store: &ParamStore,
    input: &Tensor,
) {
    let src =
        |i: usize| -> &Tensor { resolve(arena, consts, params, store, input, &instr.srcs[i]) };
    match &instr.op {
        Op::Leaf => unreachable!("leaves are classified at compile time"),
        Op::Add => src(0).add_t_into(src(1), dst),
        Op::Sub => src(0).sub_t_into(src(1), dst),
        Op::Mul => src(0).mul_t_into(src(1), dst),
        Op::Div => src(0).div_t_into(src(1), dst),
        Op::Neg => src(0).map_into(|v| -v, dst),
        Op::AddScalar(c) => src(0).add_scalar_into(*c, dst),
        Op::MulScalar(c) => src(0).mul_scalar_into(*c, dst),
        Op::MatMul => src(0).matmul_into(src(1), dst),
        Op::MatMulNT => src(0).matmul_nt_into(src(1), dst),
        Op::Bmm => src(0).bmm_into(src(1), dst),
        Op::BmmNT => src(0).bmm_nt_into(src(1), dst),
        Op::MatMulBroadcastLeft => src(0).matmul_broadcast_left_into(src(1), dst),
        Op::MatMulBroadcastRight => src(0).matmul_broadcast_right_into(src(1), dst),
        Op::Sigmoid => src(0).sigmoid_into(dst),
        Op::Tanh => src(0).tanh_t_into(dst),
        Op::Relu => src(0).relu_into(dst),
        Op::Exp => src(0).exp_t_into(dst),
        Op::Ln => src(0).ln_t_into(dst),
        Op::Sqrt => src(0).sqrt_t_into(dst),
        Op::Abs => src(0).abs_t_into(dst),
        Op::Square => src(0).map_into(|x| x * x, dst),
        Op::Softmax { axis } => src(0).softmax_into(*axis, dst),
        Op::SumAll => dst.set_scalar(src(0).sum_all()),
        Op::MeanAll => dst.set_scalar(src(0).mean_all()),
        Op::SumAxis { axis } => src(0).sum_axis_into(*axis as isize, dst),
        Op::MeanAxis { axis } => src(0).mean_axis_into(*axis as isize, dst),
        Op::Reshape { .. } => src(0).reshape_into(&instr.out_shape, dst),
        Op::Permute { perm } => src(0).permute_into(perm, dst),
        Op::Concat { axis, .. } => {
            Tensor::concat_into(
                instr.srcs.iter().map(|s| resolve(arena, consts, params, store, input, s)),
                *axis as isize,
                dst,
            );
        }
        Op::Slice { axis, start, .. } => {
            let stop = start + instr.out_shape[*axis];
            src(0).slice_axis_into(*axis as isize, *start, stop, dst);
        }
        Op::PadFront { axis, count } => {
            src(0).pad_axis_front_into(*axis as isize, *count, 0.0, dst)
        }
        Op::BroadcastTo { .. } => src(0).broadcast_to_into(&instr.out_shape, dst),
        Op::GatherDotNT { pattern } => sparse::topk_gather_dot_into(src(0), src(1), pattern, dst),
        Op::MaskedSoftmax => sparse::masked_softmax_into(src(0), src(1), dst),
        Op::SpmmCsr { csr, .. } => csr.spmm_into(src(0), dst),
        Op::SpmmTopk { pattern } => sparse::topk_spmm_into(src(0), src(1), pattern, dst),
    }
}

/// A compiled plan plus its preallocated execution buffers. One executor
/// serves one `(input shape, store version)` key; the serving path takes it
/// from the model's [`PlanCache`](crate::PlanCache) behind a mutex, so a
/// single allocation-free instance is reused across requests.
pub struct PlanExecutor {
    plan: Plan,
    arena: Vec<Tensor>,
    /// Staging buffer for rank-promoting single-window requests into the
    /// traced batch shape without an `unsqueeze` clone.
    staged: Tensor,
    /// Whether the per-op profiling run has happened.
    profiled: bool,
}

impl PlanExecutor {
    /// Preallocates the arena for `plan`: one tensor per slot with capacity
    /// for the slot's peak element count.
    pub fn new(plan: Plan) -> Self {
        let arena = plan.slot_numel.iter().map(|&n| Tensor::with_capacity(n)).collect();
        let staged = Tensor::with_capacity(plan.input_shape.iter().product());
        Self { plan, arena, staged, profiled: false }
    }

    /// The compiled plan.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// Executes the plan against `input`, writing the forecast into `out`.
    ///
    /// `input` must either match the traced input shape exactly, or be the
    /// traced shape minus its leading batch axis of 1 (a single-window
    /// request against a batch-1 trace) — in that case the input is staged
    /// into the traced shape and the output is likewise returned without
    /// the leading axis. Warm calls are allocation-free.
    ///
    /// The first call additionally records per-op `plan.op.*` spans; every
    /// call runs under a `plan.execute` span.
    pub fn run(&mut self, store: &ParamStore, input: &Tensor, out: &mut Tensor) {
        let _timer = enhancenet_telemetry::span("plan.execute");
        let Self { plan, arena, staged, profiled } = self;
        let squeeze_out = input.shape() != plan.input_shape;
        let x: &Tensor = if squeeze_out {
            debug_assert_eq!(
                plan.input_shape.first(),
                Some(&1),
                "rank-promoting execute requires a batch-1 trace"
            );
            debug_assert_eq!(input.shape(), &plan.input_shape[1..]);
            staged.copy_from_with_shape(&plan.input_shape, input.data());
            staged
        } else {
            input
        };
        for instr in plan.instrs.iter() {
            let _op_timer = (!*profiled).then(|| enhancenet_telemetry::span(op_label(&instr.op)));
            let mut dst = mem::take(&mut arena[instr.dst]);
            exec_instr(instr, &mut dst, arena, &plan.consts, &plan.params, store, x);
            arena[instr.dst] = dst;
        }
        *profiled = true;
        let y = resolve(arena, &plan.consts, &plan.params, store, x, &plan.out);
        if squeeze_out {
            out.copy_from_with_shape(&plan.output_shape[1..], y.data());
        } else {
            out.copy_from_with_shape(&plan.output_shape, y.data());
        }
    }
}
