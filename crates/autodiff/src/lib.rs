//! # enhancenet-autodiff
//!
//! Reverse-mode, define-by-run automatic differentiation over
//! [`enhancenet_tensor::Tensor`].
//!
//! The design mirrors the tape used by mainstream deep-learning frameworks:
//!
//! * A [`Graph`] is an arena of nodes. Every operation appends a node holding
//!   its forward value, the operation tag, and the indices of its inputs.
//! * [`Var`] is a copyable handle (an index) into the graph.
//! * Trainable parameters live outside the graph in a [`ParamStore`]; each
//!   training step builds a fresh graph, binds parameter values as leaves
//!   with [`Graph::param`], runs [`Graph::backward`] from a scalar loss, and
//!   flushes leaf gradients back with [`Graph::write_grads`].
//!
//! Gradient correctness is enforced by the finite-difference checker in
//! [`check`] and by property tests over every operation.
//!
//! ```
//! use enhancenet_autodiff::{Graph, ParamStore};
//! use enhancenet_tensor::Tensor;
//!
//! let mut store = ParamStore::new();
//! let w = store.add("w", Tensor::from_vec(vec![2.0], &[1]));
//!
//! let mut g = Graph::new();
//! let wv = g.param(&store, w);
//! let x = g.constant(Tensor::from_vec(vec![3.0], &[1]));
//! let y = g.mul(wv, x);
//! let loss = g.sum_all(y); // d(loss)/dw = x = 3
//! g.backward(loss);
//! g.write_grads(&mut store);
//! assert_eq!(store.grad(w).data(), &[3.0]);
//! ```

mod backward;
pub mod check;
mod exec;
mod gradbuf;
mod graph;
mod ops;
mod params;
mod plan;
mod serialize;

pub use exec::PlanExecutor;
pub use gradbuf::GradBuffer;
pub use graph::{Graph, Op, Var};
pub use params::{ParamId, ParamStore};
pub use plan::{Plan, PlanCache, PlanError};
pub use serialize::CheckpointError;
