//! The parameter store: named trainable tensors with accumulated gradients.
//!
//! Parameters outlive the per-step tapes. Optimizers (in `enhancenet-nn`)
//! mutate values in place; `Graph::write_grads` accumulates into the grads.

use enhancenet_tensor::Tensor;

/// Handle to a parameter in a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) u32);

struct Param {
    name: String,
    value: Tensor,
    grad: Tensor,
    frozen: bool,
}

/// Collection of trainable parameters for one model.
#[derive(Default)]
pub struct ParamStore {
    params: Vec<Param>,
    /// Bumped whenever parameter *values* change; lets downstream caches
    /// (e.g. DFGN's prediction-phase generated filters) invalidate cheaply.
    version: u64,
}

impl ParamStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Monotone counter of value mutations. Equal versions imply unchanged
    /// parameter values.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Registers a parameter with an initial value; the gradient starts at
    /// zero. Names are for debugging/reporting and need not be unique,
    /// though scoped names (`"encoder.gru0.w_r"`) make reports readable.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let id = ParamId(self.params.len() as u32);
        let grad = Tensor::zeros(value.shape());
        self.params.push(Param { name: name.into(), value, grad, frozen: false });
        id
    }

    /// Current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.params[id.0 as usize].value
    }

    /// Mutable value (used by optimizers and by tests that perturb weights).
    /// Bumps the store version.
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        self.version += 1;
        &mut self.params[id.0 as usize].value
    }

    /// Accumulated gradient of a parameter.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.params[id.0 as usize].grad
    }

    /// Name given at registration.
    pub fn name(&self, id: ParamId) -> &str {
        &self.params[id.0 as usize].name
    }

    /// Adds `g` into the stored gradient (called by `Graph::write_grads`).
    pub fn accumulate_grad(&mut self, id: ParamId, g: &Tensor) {
        self.params[id.0 as usize].grad.add_assign_t(g);
    }

    /// Resets every gradient to zero. Call once per optimizer step.
    pub fn zero_grad(&mut self) {
        for p in &mut self.params {
            p.grad.data_mut().fill(0.0);
        }
    }

    /// Number of registered parameter tensors.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True when no parameter is registered.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of trainable scalars — the "# Para" column of the
    /// paper's Tables I and II.
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(|p| p.value.numel()).sum()
    }

    /// Iterates over all parameter ids.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.params.len() as u32).map(ParamId)
    }

    /// Global L2 norm of all gradients (for clipping and divergence checks).
    pub fn grad_norm(&self) -> f32 {
        self.params
            .iter()
            .map(|p| p.grad.data().iter().map(|v| v * v).sum::<f32>())
            .sum::<f32>()
            .sqrt()
    }

    /// Scales every gradient by `factor` (gradient clipping support).
    pub fn scale_grads(&mut self, factor: f32) {
        for p in &mut self.params {
            p.grad.map_inplace(|v| v * factor);
        }
    }

    /// Applies `f(value, grad)` to every **trainable** parameter (generic
    /// optimizer hook; frozen parameters are skipped). Bumps the store
    /// version.
    pub fn for_each_mut(&mut self, mut f: impl FnMut(usize, &mut Tensor, &Tensor)) {
        self.version += 1;
        for (i, p) in self.params.iter_mut().enumerate() {
            if !p.frozen {
                f(i, &mut p.value, &p.grad);
            }
        }
    }

    /// Freezes a parameter: optimizers skip it (its value stays at whatever
    /// it was set to). Used by ablations that pin, e.g., DAMGN's λ_C at 0.
    pub fn freeze(&mut self, id: ParamId) {
        self.params[id.0 as usize].frozen = true;
    }

    /// Re-enables training of a frozen parameter.
    pub fn unfreeze(&mut self, id: ParamId) {
        self.params[id.0 as usize].frozen = false;
    }

    /// Whether a parameter is frozen.
    pub fn is_frozen(&self, id: ParamId) -> bool {
        self.params[id.0 as usize].frozen
    }

    /// Snapshot of all values (for best-model checkpointing).
    pub fn snapshot(&self) -> Vec<Tensor> {
        self.params.iter().map(|p| p.value.clone()).collect()
    }

    /// Restores a snapshot taken by [`ParamStore::snapshot`].
    ///
    /// # Panics
    ///
    /// Panics when the snapshot does not match the store layout.
    pub fn restore(&mut self, snapshot: &[Tensor]) {
        assert_eq!(snapshot.len(), self.params.len(), "snapshot layout mismatch");
        self.version += 1;
        for (p, s) in self.params.iter_mut().zip(snapshot) {
            assert_eq!(p.value.shape(), s.shape(), "snapshot shape mismatch for {}", p.name);
            p.value = s.clone();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_read() {
        let mut s = ParamStore::new();
        let id = s.add("w", Tensor::ones(&[2, 3]));
        assert_eq!(s.value(id).shape(), &[2, 3]);
        assert_eq!(s.name(id), "w");
        assert_eq!(s.grad(id).sum_all(), 0.0);
    }

    #[test]
    fn num_scalars_counts_elements() {
        let mut s = ParamStore::new();
        s.add("a", Tensor::ones(&[2, 3]));
        s.add("b", Tensor::ones(&[4]));
        assert_eq!(s.num_scalars(), 10);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn zero_grad_resets() {
        let mut s = ParamStore::new();
        let id = s.add("w", Tensor::ones(&[2]));
        s.accumulate_grad(id, &Tensor::ones(&[2]));
        assert_eq!(s.grad(id).sum_all(), 2.0);
        s.zero_grad();
        assert_eq!(s.grad(id).sum_all(), 0.0);
    }

    #[test]
    fn grad_norm_and_scaling() {
        let mut s = ParamStore::new();
        let a = s.add("a", Tensor::zeros(&[2]));
        s.accumulate_grad(a, &Tensor::from_vec(vec![3.0, 4.0], &[2]));
        assert!((s.grad_norm() - 5.0).abs() < 1e-6);
        s.scale_grads(0.5);
        assert_eq!(s.grad(a).data(), &[1.5, 2.0]);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut s = ParamStore::new();
        let id = s.add("w", Tensor::ones(&[2]));
        let snap = s.snapshot();
        s.value_mut(id).data_mut()[0] = 99.0;
        s.restore(&snap);
        assert_eq!(s.value(id).data(), &[1.0, 1.0]);
    }

    #[test]
    fn frozen_params_are_skipped_by_for_each_mut() {
        let mut s = ParamStore::new();
        let a = s.add("a", Tensor::ones(&[1]));
        let b = s.add("b", Tensor::ones(&[1]));
        s.accumulate_grad(a, &Tensor::ones(&[1]));
        s.accumulate_grad(b, &Tensor::ones(&[1]));
        s.freeze(a);
        assert!(s.is_frozen(a) && !s.is_frozen(b));
        s.for_each_mut(|_, v, g| v.axpy(-1.0, g));
        assert_eq!(s.value(a).data(), &[1.0], "frozen param moved");
        assert_eq!(s.value(b).data(), &[0.0]);
        s.unfreeze(a);
        s.for_each_mut(|_, v, g| v.axpy(-1.0, g));
        assert_eq!(s.value(a).data(), &[0.0]);
    }

    #[test]
    fn ids_iterates_in_order() {
        let mut s = ParamStore::new();
        s.add("a", Tensor::ones(&[1]));
        s.add("b", Tensor::ones(&[1]));
        let names: Vec<&str> = s.ids().map(|id| s.name(id)).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
