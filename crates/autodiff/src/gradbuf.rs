//! Standalone gradient buffers for data-parallel training.
//!
//! A [`GradBuffer`] holds one gradient slot per parameter of a
//! [`ParamStore`], laid out by [`ParamId`] so reduction order is fixed by
//! construction. Worker threads export leaf gradients from their private
//! [`Graph`](crate::Graph)s with [`Graph::export_grads`](crate::Graph::export_grads)
//! — no `&mut ParamStore` required — and the reducing thread folds buffers
//! into the store in parameter order with [`GradBuffer::reduce_into`].
//!
//! Keeping the reduction a plain, ordered loop (rather than atomics or
//! first-come accumulation into the store) is what makes sharded training
//! bit-identical to serial training: float addition is not associative, so
//! determinism requires that the *order* of every `+=` is a function of the
//! data alone, never of thread scheduling.

use crate::params::{ParamId, ParamStore};
use enhancenet_tensor::Tensor;

/// Per-parameter gradient accumulator detached from any [`ParamStore`].
///
/// Slots start empty and are materialized on first accumulation; a buffer
/// reused across steps (after [`GradBuffer::reset`]) accumulates in place
/// without reallocating, which keeps the sharded hot loop allocation-free
/// at steady state.
#[derive(Default)]
pub struct GradBuffer {
    slots: Vec<Option<Tensor>>,
}

impl GradBuffer {
    /// A buffer with one (empty) slot per parameter of `store`.
    pub fn for_store(store: &ParamStore) -> Self {
        Self { slots: (0..store.len()).map(|_| None).collect() }
    }

    /// Number of parameter slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the buffer tracks no parameters.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The accumulated gradient for `id`, if anything was accumulated.
    pub fn grad(&self, id: ParamId) -> Option<&Tensor> {
        self.slots[id.0 as usize].as_ref()
    }

    /// Adds `g` into the slot for `id`. The first accumulation clones `g`;
    /// subsequent ones add in place.
    pub fn accumulate(&mut self, id: ParamId, g: &Tensor) {
        match &mut self.slots[id.0 as usize] {
            Some(acc) => acc.add_assign_t(g),
            slot @ None => *slot = Some(g.clone()),
        }
    }

    /// Folds `other` into `self`, slot by slot in parameter order.
    ///
    /// # Panics
    ///
    /// Panics when the buffers track different parameter counts.
    pub fn add_from(&mut self, other: &GradBuffer) {
        assert_eq!(self.slots.len(), other.slots.len(), "grad buffer layout mismatch");
        for (dst, src) in self.slots.iter_mut().zip(&other.slots) {
            if let Some(g) = src {
                match dst {
                    Some(acc) => acc.add_assign_t(g),
                    slot @ None => *slot = Some(g.clone()),
                }
            }
        }
    }

    /// Zeroes every materialized slot in place (allocation-free), readying
    /// the buffer for the next step. Empty slots stay empty.
    pub fn reset(&mut self) {
        for slot in self.slots.iter_mut().flatten() {
            slot.data_mut().fill(0.0);
        }
    }

    /// Accumulates every materialized slot into `store`, iterating
    /// parameters in [`ParamId`] order. The deterministic tail of the
    /// shard-reduce path: callers fold worker buffers in a fixed order and
    /// finish with one ordered flush into the store.
    ///
    /// # Panics
    ///
    /// Panics when the buffer does not match the store layout.
    pub fn reduce_into(&self, store: &mut ParamStore) {
        assert_eq!(self.slots.len(), store.len(), "grad buffer does not match store layout");
        for (i, slot) in self.slots.iter().enumerate() {
            if let Some(g) = slot {
                store.accumulate_grad(ParamId(i as u32), g);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    fn store_ab() -> (ParamStore, ParamId, ParamId) {
        let mut s = ParamStore::new();
        let a = s.add("a", Tensor::from_vec(vec![1.0, 2.0], &[2]));
        let b = s.add("b", Tensor::from_vec(vec![3.0], &[1]));
        (s, a, b)
    }

    #[test]
    fn accumulate_and_reduce_match_direct_store_writes() {
        let (mut s, a, b) = store_ab();
        let mut buf = GradBuffer::for_store(&s);
        buf.accumulate(a, &Tensor::from_vec(vec![0.5, 1.5], &[2]));
        buf.accumulate(a, &Tensor::from_vec(vec![0.5, 0.5], &[2]));
        buf.accumulate(b, &Tensor::from_vec(vec![2.0], &[1]));
        buf.reduce_into(&mut s);
        assert_eq!(s.grad(a).data(), &[1.0, 2.0]);
        assert_eq!(s.grad(b).data(), &[2.0]);
    }

    #[test]
    fn untouched_slots_do_not_reduce() {
        let (mut s, a, b) = store_ab();
        let mut buf = GradBuffer::for_store(&s);
        buf.accumulate(a, &Tensor::ones(&[2]));
        assert!(buf.grad(b).is_none());
        buf.reduce_into(&mut s);
        assert_eq!(s.grad(b).data(), &[0.0]);
    }

    #[test]
    fn add_from_folds_in_place() {
        let (s, a, b) = store_ab();
        let mut total = GradBuffer::for_store(&s);
        let mut shard = GradBuffer::for_store(&s);
        shard.accumulate(a, &Tensor::ones(&[2]));
        shard.accumulate(b, &Tensor::ones(&[1]));
        total.add_from(&shard);
        total.add_from(&shard);
        assert_eq!(total.grad(a).unwrap().data(), &[2.0, 2.0]);
        assert_eq!(total.grad(b).unwrap().data(), &[2.0]);
    }

    #[test]
    fn reset_zeroes_without_dropping() {
        let (s, a, _) = store_ab();
        let mut buf = GradBuffer::for_store(&s);
        buf.accumulate(a, &Tensor::ones(&[2]));
        buf.reset();
        assert_eq!(buf.grad(a).unwrap().data(), &[0.0, 0.0]);
        buf.accumulate(a, &Tensor::ones(&[2]));
        assert_eq!(buf.grad(a).unwrap().data(), &[1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "layout")]
    fn reduce_into_rejects_layout_mismatch() {
        let (mut s, _, _) = store_ab();
        let buf = GradBuffer::default();
        buf.reduce_into(&mut s);
    }

    #[test]
    fn export_grads_matches_write_grads() {
        let (mut s, a, b) = store_ab();
        let build = |s: &ParamStore| {
            let mut g = Graph::new();
            let av = g.param(s, a);
            let bv = g.param(s, b);
            let prod = g.mul(av, av);
            let sum = g.sum_all(prod);
            let sb = g.sum_all(bv);
            let loss = g.add(sum, sb);
            g.backward(loss);
            g
        };
        let g1 = build(&s);
        g1.write_grads(&mut s);
        let direct_a = s.grad(a).clone();
        let direct_b = s.grad(b).clone();

        let g2 = build(&s);
        let mut buf = GradBuffer::for_store(&s);
        g2.export_grads(&mut buf);
        assert_eq!(buf.grad(a).unwrap().data(), direct_a.data());
        assert_eq!(buf.grad(b).unwrap().data(), direct_b.data());
    }
}
