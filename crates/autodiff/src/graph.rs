//! The tape: node arena, operation tags, and the backward driver.

use crate::params::{ParamId, ParamStore};
use enhancenet_tensor::{CsrMatrix, Tensor, TopkPattern};
use std::sync::Arc;

/// Handle to a node in a [`Graph`]. Cheap to copy; only valid for the graph
/// that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(pub(crate) u32);

/// Operation tag recorded on each node. Inputs are stored separately on the
/// node; the tag carries only the attributes the backward pass needs.
#[derive(Debug, Clone)]
pub enum Op {
    /// Leaf: external input or bound parameter.
    Leaf,
    /// Elementwise broadcast addition.
    Add,
    /// Elementwise broadcast subtraction.
    Sub,
    /// Elementwise broadcast multiplication.
    Mul,
    /// Elementwise broadcast division.
    Div,
    /// Elementwise negation.
    Neg,
    /// `x + c` for a constant scalar.
    AddScalar(f32),
    /// `x * c` for a constant scalar.
    MulScalar(f32),
    /// 2-D matrix multiply.
    MatMul,
    /// 2-D transpose-fused multiply `a · bᵀ` (`[m,k] x [n,k]`).
    MatMulNT,
    /// Batched 3-D matrix multiply.
    Bmm,
    /// Batched transpose-fused multiply `aᵦ · bᵦᵀ` (`[b,m,k] x [b,n,k]`).
    BmmNT,
    /// `[m,k] x [b,k,n]` with a shared left operand.
    MatMulBroadcastLeft,
    /// `[b,m,k] x [k,n]` with a shared right operand.
    MatMulBroadcastRight,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Rectified linear unit.
    Relu,
    /// Elementwise exponential.
    Exp,
    /// Elementwise natural log (input must be positive).
    Ln,
    /// Elementwise square root.
    Sqrt,
    /// Elementwise absolute value (subgradient 0 at 0).
    Abs,
    /// Elementwise square.
    Square,
    /// Softmax along an axis.
    Softmax { axis: isize },
    /// Sum of all elements to a scalar.
    SumAll,
    /// Mean of all elements to a scalar.
    MeanAll,
    /// Sum along one axis (axis removed).
    SumAxis { axis: usize },
    /// Mean along one axis (axis removed).
    MeanAxis { axis: usize },
    /// Shape reinterpretation.
    Reshape { from: Vec<usize> },
    /// Axis permutation.
    Permute { perm: Vec<usize> },
    /// Concatenation along an axis; `sizes` are the per-input axis lengths.
    Concat { axis: usize, sizes: Vec<usize> },
    /// Contiguous slice `[start, stop)` along an axis.
    Slice { axis: usize, start: usize, input_len: usize },
    /// Causal (front) zero padding along an axis.
    PadFront { axis: usize, count: usize },
    /// Broadcasts a tensor to a larger shape (used by repeat/expand).
    BroadcastTo { from: Vec<usize> },
    /// Pattern-restricted attention scores `⟨a[.., i, :], b[.., cols(i,j), :]⟩`
    /// (rank-2 or batched rank-3 operands). The column pattern is
    /// non-differentiable structure; only the retained dot products are
    /// computed, so the score matrix never materializes densely.
    GatherDotNT { pattern: Arc<TopkPattern> },
    /// Renormalized softmax over the last axis restricted to entries whose
    /// mask is > 0; masked entries are exactly 0 and fully masked slices
    /// collapse to zeros (no dense uniform fallback). Inputs are
    /// `(logits, mask)`; the mask receives no gradient.
    MaskedSoftmax,
    /// Dense-out product of a **constant** CSR matrix with a (possibly
    /// batched) signal. `csr_t` is the precomputed transpose the backward
    /// pass multiplies by; the matrix itself receives no gradient.
    SpmmCsr { csr: Arc<CsrMatrix>, csr_t: Arc<CsrMatrix> },
    /// Dense-out product of pattern values (`[rows,k]` or `[b,rows,k]`)
    /// with a batched signal. Gradients scatter **only** into the retained
    /// entries — dropped entries stay exactly zero through training.
    SpmmTopk { pattern: Arc<TopkPattern> },
}

pub(crate) struct Node {
    pub value: Tensor,
    pub op: Op,
    pub inputs: Vec<Var>,
    /// Populated for leaves bound to a parameter; `write_grads` targets it.
    pub param: Option<ParamId>,
}

/// A define-by-run tape. See the [crate docs](crate) for the lifecycle.
#[derive(Default)]
pub struct Graph {
    pub(crate) nodes: Vec<Node>,
    pub(crate) grads: Vec<Option<Tensor>>,
    pub(crate) inputs: Vec<Var>,
}

impl Graph {
    /// An empty tape.
    pub fn new() -> Self {
        Self { nodes: Vec::new(), grads: Vec::new(), inputs: Vec::new() }
    }

    /// A tape with preallocated node capacity (RNN unrolls know their size).
    pub fn with_capacity(n: usize) -> Self {
        Self { nodes: Vec::with_capacity(n), grads: Vec::new(), inputs: Vec::new() }
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no node has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    pub(crate) fn push(&mut self, value: Tensor, op: Op, inputs: Vec<Var>) -> Var {
        let id = self.nodes.len() as u32;
        assert!(id < u32::MAX, "graph node limit exceeded");
        self.nodes.push(Node { value, op, inputs, param: None });
        Var(id)
    }

    /// Binds an external (non-trainable) tensor as a leaf.
    pub fn constant(&mut self, value: Tensor) -> Var {
        self.push(value, Op::Leaf, vec![])
    }

    /// Binds a **request input** as a leaf: like [`Graph::constant`], but
    /// the node is additionally marked as per-request data. The tape treats
    /// it identically; plan compilation ([`crate::Plan::compile`]) uses the
    /// mark to distinguish data that varies between executions (rebound on
    /// every run) from trace-time constants baked into the plan.
    pub fn input(&mut self, value: Tensor) -> Var {
        let v = self.constant(value);
        self.inputs.push(v);
        v
    }

    /// Binds a parameter's current value as a leaf; its gradient is routed
    /// back to the store by [`Graph::write_grads`].
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        let v = self.push(store.value(id).clone(), Op::Leaf, vec![]);
        self.nodes[v.0 as usize].param = Some(id);
        v
    }

    /// The forward value of a node.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0 as usize].value
    }

    /// The accumulated gradient of a node, if `backward` reached it.
    pub fn grad(&self, v: Var) -> Option<&Tensor> {
        self.grads.get(v.0 as usize).and_then(Option::as_ref)
    }

    /// Runs the reverse sweep from a **scalar** `loss` node, accumulating
    /// gradients for every node that (transitively) feeds it.
    ///
    /// # Panics
    ///
    /// Panics when `loss` is not a single-element tensor.
    pub fn backward(&mut self, loss: Var) {
        assert_eq!(
            self.value(loss).numel(),
            1,
            "backward() requires a scalar loss, got shape {:?}",
            self.value(loss).shape()
        );
        self.backward_seeded(loss, Tensor::ones(self.value(loss).shape()));
    }

    /// Reverse sweep with an explicit output gradient (vector–Jacobian
    /// product). `seed` must match the shape of `output`.
    pub fn backward_seeded(&mut self, output: Var, seed: Tensor) {
        assert_eq!(
            seed.shape(),
            self.value(output).shape(),
            "seed shape {:?} must match output shape {:?}",
            seed.shape(),
            self.value(output).shape()
        );
        let _timer = enhancenet_telemetry::span("autodiff.backward");
        if enhancenet_telemetry::enabled() {
            enhancenet_telemetry::count("autodiff.backward.sweeps", 1);
            enhancenet_telemetry::count("autodiff.tape.nodes", self.nodes.len() as u64);
        }
        self.grads = (0..self.nodes.len()).map(|_| None).collect();
        self.grads[output.0 as usize] = Some(seed);
        let mut visited = 0u64;
        for i in (0..=output.0 as usize).rev() {
            let Some(gy) = self.grads[i].take() else { continue };
            self.propagate(i, &gy);
            self.grads[i] = Some(gy);
            visited += 1;
        }
        if enhancenet_telemetry::enabled() {
            enhancenet_telemetry::count("autodiff.backward.nodes_visited", visited);
        }
    }

    pub(crate) fn accumulate(&mut self, v: Var, g: Tensor) {
        let slot = &mut self.grads[v.0 as usize];
        match slot {
            Some(existing) => existing.add_assign_t(&g),
            None => *slot = Some(g),
        }
    }

    /// Accumulates leaf gradients into their bound parameters. Call after
    /// [`Graph::backward`]. Leaves without gradients (not on the loss path)
    /// are skipped.
    pub fn write_grads(&self, store: &mut ParamStore) {
        for (i, node) in self.nodes.iter().enumerate() {
            if let (Some(pid), Some(g)) = (node.param, self.grads.get(i).and_then(Option::as_ref)) {
                store.accumulate_grad(pid, g);
            }
        }
    }

    /// Accumulates leaf gradients into a detached [`GradBuffer`](crate::GradBuffer) instead of
    /// the store. This is the worker-side half of sharded training: threads
    /// holding only `&ParamStore` export their gradients here, and the
    /// reducing thread folds buffers into the store in a fixed order
    /// ([`GradBuffer::reduce_into`](crate::GradBuffer::reduce_into)).
    pub fn export_grads(&self, buf: &mut crate::gradbuf::GradBuffer) {
        for (i, node) in self.nodes.iter().enumerate() {
            if let (Some(pid), Some(g)) = (node.param, self.grads.get(i).and_then(Option::as_ref)) {
                buf.accumulate(pid, g);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_roundtrip() {
        let mut g = Graph::new();
        let v = g.constant(Tensor::from_vec(vec![1.0, 2.0], &[2]));
        assert_eq!(g.value(v).data(), &[1.0, 2.0]);
        assert_eq!(g.len(), 1);
        assert!(!g.is_empty());
    }

    #[test]
    fn grad_is_none_before_backward() {
        let mut g = Graph::new();
        let v = g.constant(Tensor::ones(&[2]));
        assert!(g.grad(v).is_none());
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn backward_rejects_non_scalar() {
        let mut g = Graph::new();
        let v = g.constant(Tensor::ones(&[2]));
        g.backward(v);
    }

    #[test]
    fn backward_on_leaf_scalar() {
        let mut g = Graph::new();
        let v = g.constant(Tensor::scalar(5.0));
        g.backward(v);
        assert_eq!(g.grad(v).unwrap().item(), 1.0);
    }

    #[test]
    fn param_binding_reads_store_value() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::from_vec(vec![4.0], &[1]));
        let mut g = Graph::new();
        let v = g.param(&store, id);
        assert_eq!(g.value(v).data(), &[4.0]);
    }

    #[test]
    fn write_grads_accumulates_into_store() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::from_vec(vec![4.0, 5.0], &[2]));
        let mut g = Graph::new();
        let w = g.param(&store, id);
        let s = g.sum_all(w);
        g.backward(s);
        g.write_grads(&mut store);
        assert_eq!(store.grad(id).data(), &[1.0, 1.0]);
        // A second write accumulates.
        g.write_grads(&mut store);
        assert_eq!(store.grad(id).data(), &[2.0, 2.0]);
    }

    #[test]
    fn diamond_graph_accumulates_both_paths() {
        // y = x*x + x  => dy/dx = 2x + 1 (paths through mul twice + add)
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_vec(vec![3.0], &[1]));
        let sq = g.mul(x, x);
        let y = g.add(sq, x);
        let loss = g.sum_all(y);
        g.backward(loss);
        assert_eq!(g.grad(x).unwrap().data(), &[7.0]);
    }

    #[test]
    fn backward_seeded_scales_gradient() {
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_vec(vec![1.0, 2.0], &[2]));
        let y = g.mul_scalar(x, 3.0);
        g.backward_seeded(y, Tensor::from_vec(vec![10.0, 100.0], &[2]));
        assert_eq!(g.grad(x).unwrap().data(), &[30.0, 300.0]);
    }
}
