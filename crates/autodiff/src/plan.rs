//! Compiled inference plans: trace once, execute many.
//!
//! [`Plan::compile`] lowers one traced eval-mode forward (a [`Graph`] tape)
//! into a flat, topologically-ordered instruction list with static shapes
//! and a liveness-analyzed arena layout. The compiled plan is executed by
//! [`PlanExecutor`](crate::PlanExecutor) against preallocated buffers — no
//! tape, no per-node `Vec` growth, no output clone — while running the exact
//! same tensor kernels as the tape (every kernel's `_into` form), so plan
//! and tape outputs are bitwise identical.
//!
//! # Leaf classification
//!
//! Tape leaves fall into three classes with different lifetimes:
//!
//! * **Parameters** ([`Graph::param`]) — resolved live from the
//!   [`ParamStore`] on every execution; never copied into the plan.
//! * **Inputs** ([`Graph::input`]) — per-request data, rebound on every
//!   execution. Exactly one reachable input leaf is required; a trace with
//!   none (the model baked the window into constants) or several cannot be
//!   replayed against fresh data and fails compilation.
//! * **Constants** ([`Graph::constant`]) — trace-time values cloned into the
//!   plan once. Constants derived from *parameters* (folded supports,
//!   generated filters) are safe because plans are keyed by
//!   [`ParamStore::version`]; constants derived from the *input* are exactly
//!   what the input-leaf requirement rules out.
//!
//! # Caching
//!
//! [`PlanCache`] keys compiled executors by `(input shape, store version)`.
//! A hot parameter swap bumps the store version, so every cached plan for
//! the old weights is unreachable after the swap and is evicted on the next
//! insert. Models whose forward cannot be compiled (no marked input) are
//! remembered via the `unplannable` flag so the serving path does not
//! re-trace on every request just to fail again.

use crate::graph::{Graph, Op, Var};
use crate::params::{ParamId, ParamStore};
use enhancenet_tensor::Tensor;
use std::fmt;
use std::sync::{Arc, Mutex};

use crate::exec::PlanExecutor;

/// Where an instruction operand comes from at execution time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Src {
    /// An arena slot written by an earlier instruction.
    Slot(usize),
    /// A trace-time constant stored in the plan.
    Const(usize),
    /// A parameter, resolved live from the store (index into `Plan::params`).
    Param(usize),
    /// The per-request input tensor.
    Input,
}

/// One compiled operation: the tape [`Op`] tag, operand sources, the arena
/// slot receiving the result, and the statically-known output shape.
#[derive(Debug, Clone)]
pub(crate) struct Instr {
    pub(crate) op: Op,
    pub(crate) srcs: Vec<Src>,
    pub(crate) dst: usize,
    pub(crate) out_shape: Vec<usize>,
}

/// A compiled inference plan; see the `plan` module docs for the lifecycle.
pub struct Plan {
    pub(crate) instrs: Vec<Instr>,
    pub(crate) consts: Vec<Tensor>,
    pub(crate) params: Vec<ParamId>,
    pub(crate) out: Src,
    /// Peak element count per arena slot, for preallocation.
    pub(crate) slot_numel: Vec<usize>,
    pub(crate) input_shape: Vec<usize>,
    pub(crate) output_shape: Vec<usize>,
    /// Store version the trace (and its baked constants) was taken at.
    pub(crate) version: u64,
}

/// Why a trace could not be lowered to a [`Plan`]. Structural — retracing
/// the same model will fail the same way, so callers cache the failure
/// ([`PlanCache::mark_unplannable`]) and keep using the tape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// No reachable leaf was marked with [`Graph::input`]; the request data
    /// is baked into trace-time constants and cannot be rebound.
    NoInput,
    /// More than one reachable input leaf; the single-input execute contract
    /// cannot rebind them unambiguously.
    MultipleInputs(usize),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::NoInput => {
                write!(f, "trace has no input-marked leaf; request data cannot be rebound")
            }
            PlanError::MultipleInputs(n) => {
                write!(f, "trace has {n} input-marked leaves; expected exactly one")
            }
        }
    }
}

impl std::error::Error for PlanError {}

impl Plan {
    /// Lowers the traced forward ending at `output` into a plan.
    ///
    /// Walks the reachable subgraph in tape order (the tape is already
    /// topological), classifies leaves, assigns arena slots by liveness
    /// (last-use analysis with LIFO slot reuse), and records the store
    /// version for cache keying.
    pub fn compile(graph: &Graph, output: Var, store: &ParamStore) -> Result<Plan, PlanError> {
        let _timer = enhancenet_telemetry::span("plan.compile");
        let out_idx = output.0 as usize;

        // Reachability: which nodes feed the output.
        let mut reachable = vec![false; graph.nodes.len()];
        reachable[out_idx] = true;
        for i in (0..=out_idx).rev() {
            if !reachable[i] {
                continue;
            }
            for &inp in &graph.nodes[i].inputs {
                reachable[inp.0 as usize] = true;
            }
        }

        let input_set: Vec<usize> = graph.inputs.iter().map(|v| v.0 as usize).collect();

        // Classify every reachable node: leaves become Const/Param/Input
        // sources, interior nodes become instructions (sources still named
        // by node index; slots are assigned in the liveness pass below).
        #[derive(Clone)]
        enum NodeRef {
            Pending(usize), // interior node -> index into `instrs`
            Fixed(Src),     // leaf
        }
        let mut node_ref: Vec<Option<NodeRef>> = vec![None; graph.nodes.len()];
        let mut instrs: Vec<Instr> = Vec::new();
        let mut instr_node: Vec<usize> = Vec::new(); // instr index -> node index
        let mut consts: Vec<Tensor> = Vec::new();
        let mut params: Vec<ParamId> = Vec::new();
        let mut inputs_seen = 0usize;
        let mut input_shape: Vec<usize> = Vec::new();

        for (i, node) in graph.nodes.iter().enumerate().take(out_idx + 1) {
            if !reachable[i] {
                continue;
            }
            if matches!(node.op, Op::Leaf) {
                let src = if let Some(pid) = node.param {
                    let idx = params.iter().position(|&p| p == pid).unwrap_or_else(|| {
                        params.push(pid);
                        params.len() - 1
                    });
                    Src::Param(idx)
                } else if input_set.contains(&i) {
                    inputs_seen += 1;
                    input_shape = node.value.shape().to_vec();
                    Src::Input
                } else {
                    consts.push(node.value.clone());
                    Src::Const(consts.len() - 1)
                };
                node_ref[i] = Some(NodeRef::Fixed(src));
            } else {
                let srcs = node
                    .inputs
                    .iter()
                    .map(|v| match node_ref[v.0 as usize].as_ref().expect("tape is topological") {
                        NodeRef::Pending(instr_idx) => Src::Slot(*instr_idx), // rewritten below
                        NodeRef::Fixed(src) => src.clone(),
                    })
                    .collect();
                instrs.push(Instr {
                    op: node.op.clone(),
                    srcs,
                    dst: usize::MAX,
                    out_shape: node.value.shape().to_vec(),
                });
                instr_node.push(i);
                node_ref[i] = Some(NodeRef::Pending(instrs.len() - 1));
            }
        }

        match inputs_seen {
            0 => return Err(PlanError::NoInput),
            1 => {}
            n => return Err(PlanError::MultipleInputs(n)),
        }

        // Liveness: the last instruction consuming each instruction's
        // result. The output lives past the end of the plan.
        let mut last_use = vec![0usize; instrs.len()];
        for (i, instr) in instrs.iter().enumerate() {
            for src in &instr.srcs {
                if let Src::Slot(producer) = src {
                    last_use[*producer] = i;
                }
            }
        }
        let out_instr = match node_ref[out_idx].as_ref().expect("output is reachable") {
            NodeRef::Pending(idx) => {
                last_use[*idx] = usize::MAX;
                Some(*idx)
            }
            NodeRef::Fixed(_) => None,
        };

        // Slot assignment: LIFO reuse of dead slots. The destination is
        // allocated *before* dying sources are released, so an `_into`
        // kernel can never see its output buffer aliased to an input.
        let mut slot_of_instr = vec![usize::MAX; instrs.len()];
        let mut slot_numel: Vec<usize> = Vec::new();
        let mut free: Vec<usize> = Vec::new();
        for i in 0..instrs.len() {
            let slot = free.pop().unwrap_or_else(|| {
                slot_numel.push(0);
                slot_numel.len() - 1
            });
            slot_of_instr[i] = slot;
            let numel: usize = instrs[i].out_shape.iter().product();
            slot_numel[slot] = slot_numel[slot].max(numel);
            // Rewrite instruction-index sources to slots, then release the
            // slots of sources dying here (each at most once).
            let mut dying: Vec<usize> = Vec::new();
            for src in &mut instrs[i].srcs {
                if let Src::Slot(producer) = src {
                    let s = slot_of_instr[*producer];
                    if last_use[*producer] == i && !dying.contains(&s) {
                        dying.push(s);
                    }
                    *src = Src::Slot(s);
                }
            }
            free.extend(dying);
        }
        for (i, instr) in instrs.iter_mut().enumerate() {
            instr.dst = slot_of_instr[i];
        }

        let out = match node_ref[out_idx].as_ref().expect("output is reachable") {
            NodeRef::Pending(_) => Src::Slot(slot_of_instr[out_instr.expect("interior output")]),
            NodeRef::Fixed(src) => src.clone(),
        };
        let output_shape = graph.nodes[out_idx].value.shape().to_vec();

        Ok(Plan {
            instrs,
            consts,
            params,
            out,
            slot_numel,
            input_shape,
            output_shape,
            version: store.version(),
        })
    }

    /// Shape the plan's input leaf was traced with.
    pub fn input_shape(&self) -> &[usize] {
        &self.input_shape
    }

    /// Shape of the plan's output.
    pub fn output_shape(&self) -> &[usize] {
        &self.output_shape
    }

    /// Store version the plan was compiled against.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of compiled instructions.
    pub fn num_instrs(&self) -> usize {
        self.instrs.len()
    }

    /// Arena footprint in bytes: the sum of peak slot sizes.
    pub fn arena_bytes(&self) -> usize {
        self.slot_numel.iter().sum::<usize>() * std::mem::size_of::<f32>()
    }
}

struct CacheEntry {
    input_shape: Vec<usize>,
    version: u64,
    exec: Arc<Mutex<PlanExecutor>>,
}

struct CacheInner {
    entries: Vec<CacheEntry>,
    unplannable: bool,
}

/// Per-model cache of compiled executors, keyed by `(input shape, store
/// version)`. Stored inside each model, behind a `Mutex` so `&self`
/// prediction paths can populate it.
pub struct PlanCache {
    inner: Mutex<CacheInner>,
}

impl Default for PlanCache {
    fn default() -> Self {
        Self::new()
    }
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self { inner: Mutex::new(CacheInner { entries: Vec::new(), unplannable: false }) }
    }

    /// The cached executor for `(shape, version)`, if compiled. Counts
    /// `plan.cache.hits` / `plan.cache.misses`; the miss count excludes
    /// models already marked unplannable (those short-circuit in the
    /// caller via [`PlanCache::is_unplannable`]).
    pub fn lookup(&self, shape: &[usize], version: u64) -> Option<Arc<Mutex<PlanExecutor>>> {
        let inner = self.inner.lock().expect("plan cache poisoned");
        let hit = inner
            .entries
            .iter()
            .find(|e| e.version == version && e.input_shape == shape)
            .map(|e| Arc::clone(&e.exec));
        if enhancenet_telemetry::enabled() {
            if hit.is_some() {
                enhancenet_telemetry::count("plan.cache.hits", 1);
            } else {
                enhancenet_telemetry::count("plan.cache.misses", 1);
            }
        }
        hit
    }

    /// Caches a freshly compiled executor, evicting every entry compiled
    /// against an older store version (a hot swap makes them unreachable).
    pub fn insert(&self, exec: PlanExecutor) -> Arc<Mutex<PlanExecutor>> {
        let mut inner = self.inner.lock().expect("plan cache poisoned");
        let version = exec.plan().version;
        let input_shape = exec.plan().input_shape.clone();
        inner.entries.retain(|e| e.version >= version);
        let exec = Arc::new(Mutex::new(exec));
        inner.entries.push(CacheEntry { input_shape, version, exec: Arc::clone(&exec) });
        exec
    }

    /// Records that this model's trace cannot be compiled; future requests
    /// skip tracing and go straight to the tape.
    pub fn mark_unplannable(&self) {
        self.inner.lock().expect("plan cache poisoned").unplannable = true;
    }

    /// True when a previous compile failed structurally.
    pub fn is_unplannable(&self) -> bool {
        self.inner.lock().expect("plan cache poisoned").unplannable
    }

    /// Number of live cached plans (test hook).
    pub fn entry_count(&self) -> usize {
        self.inner.lock().expect("plan cache poisoned").entries.len()
    }
}
