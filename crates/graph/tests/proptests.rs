//! Property tests for the graph substrate: invariants that must hold for
//! arbitrary entity layouts.

use enhancenet_graph::{
    build_supports, gaussian_kernel_adjacency, khop_supports, normalize_rows, normalize_symmetric,
    pairwise_euclidean, AdjacencyConfig, SupportKind,
};
use enhancenet_tensor::Tensor;
use proptest::prelude::*;

fn coords(n: usize) -> impl Strategy<Value = Tensor> {
    prop::collection::vec(-50.0f32..50.0, n * 2)
        .prop_map(move |data| Tensor::from_vec(data, &[n, 2]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn distances_form_a_metric(c in coords(6)) {
        let d = pairwise_euclidean(&c);
        for i in 0..6 {
            prop_assert_eq!(d.at(&[i, i]), 0.0);
            for j in 0..6 {
                // Symmetry and non-negativity.
                prop_assert!(d.at(&[i, j]) >= 0.0);
                prop_assert!((d.at(&[i, j]) - d.at(&[j, i])).abs() < 1e-4);
                // Triangle inequality through any k.
                for k in 0..6 {
                    prop_assert!(d.at(&[i, j]) <= d.at(&[i, k]) + d.at(&[k, j]) + 1e-3);
                }
            }
        }
    }

    #[test]
    fn kernel_weights_bounded_and_monotone(c in coords(5)) {
        let d = pairwise_euclidean(&c);
        let a = gaussian_kernel_adjacency(&d, AdjacencyConfig { threshold: 0.0, self_loops: false });
        for i in 0..5 {
            for j in 0..5 {
                prop_assert!((0.0..=1.0).contains(&a.at(&[i, j])));
            }
        }
        // Monotonicity: if dist(i,j) < dist(i,k) then weight(i,j) >= weight(i,k).
        for i in 0..5 {
            for j in 0..5 {
                for k in 0..5 {
                    if i != j && i != k && d.at(&[i, j]) < d.at(&[i, k]) {
                        prop_assert!(a.at(&[i, j]) >= a.at(&[i, k]) - 1e-5);
                    }
                }
            }
        }
    }

    #[test]
    fn thresholding_only_removes_edges(c in coords(5)) {
        let d = pairwise_euclidean(&c);
        let dense = gaussian_kernel_adjacency(&d, AdjacencyConfig { threshold: 0.0, self_loops: false });
        let sparse = gaussian_kernel_adjacency(&d, AdjacencyConfig { threshold: 0.3, self_loops: false });
        for i in 0..5 {
            for j in 0..5 {
                let s = sparse.at(&[i, j]);
                prop_assert!(s == 0.0 || (s - dense.at(&[i, j])).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn row_normalization_is_stochastic_or_zero(c in coords(6)) {
        let d = pairwise_euclidean(&c);
        let a = gaussian_kernel_adjacency(&d, AdjacencyConfig::default());
        let p = normalize_rows(&a);
        for i in 0..6 {
            let row_sum: f32 = (0..6).map(|j| p.at(&[i, j])).sum();
            prop_assert!((row_sum - 1.0).abs() < 1e-4 || row_sum.abs() < 1e-6);
        }
    }

    #[test]
    fn symmetric_normalization_preserves_symmetry(c in coords(6)) {
        let d = pairwise_euclidean(&c);
        let a = gaussian_kernel_adjacency(&d, AdjacencyConfig { threshold: 0.0, self_loops: true });
        let s = normalize_symmetric(&a);
        for i in 0..6 {
            for j in 0..6 {
                prop_assert!((s.at(&[i, j]) - s.at(&[j, i])).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn double_transition_supports_are_row_stochastic(c in coords(6)) {
        let d = pairwise_euclidean(&c);
        let a = gaussian_kernel_adjacency(&d, AdjacencyConfig::default());
        for s in build_supports(&a, SupportKind::DoubleTransition) {
            for i in 0..6 {
                let sum: f32 = (0..6).map(|j| s.at(&[i, j])).sum();
                prop_assert!((sum - 1.0).abs() < 1e-4 || sum.abs() < 1e-6);
            }
        }
    }

    #[test]
    fn khop_powers_stay_row_stochastic(c in coords(5)) {
        let d = pairwise_euclidean(&c);
        let a = gaussian_kernel_adjacency(&d, AdjacencyConfig { threshold: 0.0, self_loops: true });
        let sup = build_supports(&a, SupportKind::SingleTransition);
        for hop in khop_supports(&sup, 3) {
            for i in 0..5 {
                let sum: f32 = (0..5).map(|j| hop.at(&[i, j])).sum();
                prop_assert!((sum - 1.0).abs() < 1e-3, "row {i} sums to {sum}");
            }
        }
    }
}
