//! # enhancenet-graph
//!
//! Graph substrate for correlated time series forecasting:
//!
//! * distance-based adjacency construction with a Gaussian kernel and
//!   sparsity threshold (the paper's §VI-A recipe, following DCRNN),
//! * normalizations (row-stochastic "random walk", symmetric),
//! * forward/backward transition matrices for directed diffusion
//!   (incoming vs outgoing neighbours, §V-A),
//! * k-hop support stacks for graph convolution `Z = A X S` (Eq. 12).

mod adjacency;
mod supports;

pub use adjacency::{gaussian_kernel_adjacency, pairwise_euclidean, AdjacencyConfig};
pub use supports::{
    build_supports, build_supports_csr, khop_supports, normalize_rows, normalize_rows_csr,
    normalize_symmetric, SupportKind,
};

use enhancenet_tensor::Tensor;

/// A static graph over `N` entities: the raw adjacency plus the support
/// matrices graph convolution consumes.
#[derive(Debug, Clone)]
pub struct Graph {
    /// Raw (weighted, possibly asymmetric) adjacency, `[N, N]`.
    pub adjacency: Tensor,
    /// Normalized support matrices (e.g. forward + backward transitions).
    pub supports: Vec<Tensor>,
}

impl Graph {
    /// Builds a graph from a raw adjacency with the requested support kind.
    pub fn from_adjacency(adjacency: Tensor, kind: SupportKind) -> Self {
        let supports = build_supports(&adjacency, kind);
        Self { adjacency, supports }
    }

    /// Number of entities.
    pub fn num_nodes(&self) -> usize {
        self.adjacency.shape()[0]
    }

    /// Number of (directed) edges with non-zero weight.
    pub fn num_edges(&self) -> usize {
        self.adjacency.data().iter().filter(|&&v| v != 0.0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_from_adjacency_counts() {
        let a = Tensor::from_rows(&[vec![0.0, 1.0, 0.0], vec![1.0, 0.0, 0.5], vec![0.0, 0.5, 0.0]]);
        let g = Graph::from_adjacency(a, SupportKind::DoubleTransition);
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.supports.len(), 2);
    }
}
