//! Support-matrix construction for graph convolution.
//!
//! Following DCRNN (the paper's GRNN base, [21]) we use random-walk
//! transition matrices: the forward transition `D_o⁻¹ A` models *outgoing*
//! influence, the backward transition `D_i⁻¹ Aᵀ` models *incoming* influence
//! (§V-A: "We can also use different adjacency matrices to represent
//! incoming neighbors and outgoing neighbors"). K-hop neighbourhoods come
//! from matrix powers of the supports (the "replace A with A^k" remark after
//! Eq. 12).

use enhancenet_tensor::{CsrMatrix, Tensor};

/// Which set of supports to derive from an adjacency matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SupportKind {
    /// A single row-normalized transition matrix `D⁻¹A`.
    SingleTransition,
    /// Forward and backward transitions (`D_o⁻¹A`, `D_i⁻¹Aᵀ`) — the paper's
    /// in/out-neighbour pair used by GRNN and GTCN.
    DoubleTransition,
    /// Symmetric normalization `D^{-1/2} (A + I) D^{-1/2}` (Kipf–Welling).
    SymmetricWithSelfLoops,
}

/// Row-normalizes a square matrix: each row sums to 1 (rows that are all
/// zero stay zero).
pub fn normalize_rows(a: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2, "normalize_rows expects a matrix");
    let (n, m) = (a.shape()[0], a.shape()[1]);
    let mut out = a.clone();
    for i in 0..n {
        let row_sum: f32 = (0..m).map(|j| a.at(&[i, j])).sum();
        if row_sum.abs() > 1e-12 {
            for j in 0..m {
                out.set(&[i, j], a.at(&[i, j]) / row_sum);
            }
        }
    }
    out
}

/// Symmetric normalization `D^{-1/2} A D^{-1/2}` of a square matrix
/// (degrees from row sums; zero-degree nodes stay zero).
pub fn normalize_symmetric(a: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2, "normalize_symmetric expects a matrix");
    let n = a.shape()[0];
    let inv_sqrt_deg: Vec<f32> = (0..n)
        .map(|i| {
            let d: f32 = (0..n).map(|j| a.at(&[i, j])).sum();
            if d > 1e-12 {
                1.0 / d.sqrt()
            } else {
                0.0
            }
        })
        .collect();
    let mut out = Tensor::zeros(&[n, n]);
    for i in 0..n {
        for j in 0..n {
            out.set(&[i, j], inv_sqrt_deg[i] * a.at(&[i, j]) * inv_sqrt_deg[j]);
        }
    }
    out
}

/// Derives the support matrices for `kind` from a raw adjacency.
pub fn build_supports(adjacency: &Tensor, kind: SupportKind) -> Vec<Tensor> {
    match kind {
        SupportKind::SingleTransition => vec![normalize_rows(adjacency)],
        SupportKind::DoubleTransition => {
            vec![normalize_rows(adjacency), normalize_rows(&adjacency.transpose())]
        }
        SupportKind::SymmetricWithSelfLoops => {
            let n = adjacency.shape()[0];
            let with_loops = adjacency.add_t(&Tensor::eye(n));
            vec![normalize_symmetric(&with_loops)]
        }
    }
}

/// Row-normalizes a CSR matrix in `O(nnz)` (zero rows stay zero) — the
/// sparse analogue of [`normalize_rows`].
pub fn normalize_rows_csr(a: &CsrMatrix) -> CsrMatrix {
    let ptr = a.row_ptr().to_vec();
    let mut out = a.clone();
    let vals = out.vals_mut();
    for i in 0..ptr.len() - 1 {
        let row = &mut vals[ptr[i]..ptr[i + 1]];
        let sum: f32 = row.iter().sum();
        if sum.abs() > 1e-12 {
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
    }
    out
}

/// CSR analogue of [`build_supports`] for large-`N` graphs: derives the
/// transition supports directly from a sparse adjacency without ever
/// materializing an `[N, N]` tensor. `O(nnz)` time and memory.
pub fn build_supports_csr(adjacency: &CsrMatrix, kind: SupportKind) -> Vec<CsrMatrix> {
    assert_eq!(adjacency.rows(), adjacency.cols(), "adjacency must be square");
    match kind {
        SupportKind::SingleTransition => vec![normalize_rows_csr(adjacency)],
        SupportKind::DoubleTransition => {
            vec![normalize_rows_csr(adjacency), normalize_rows_csr(&adjacency.transpose())]
        }
        SupportKind::SymmetricWithSelfLoops => {
            let n = adjacency.rows();
            // A + I in sparse row form, then D^{-1/2} (A+I) D^{-1/2}.
            let mut rows: Vec<Vec<(u32, f32)>> = (0..n)
                .map(|i| {
                    let mut row: Vec<(u32, f32)> =
                        adjacency.iter_row(i).map(|(j, v)| (j as u32, v)).collect();
                    match row.binary_search_by_key(&(i as u32), |&(c, _)| c) {
                        Ok(p) => row[p].1 += 1.0,
                        Err(p) => row.insert(p, (i as u32, 1.0)),
                    }
                    row
                })
                .collect();
            let inv_sqrt_deg: Vec<f32> = rows
                .iter()
                .map(|row| {
                    let d: f32 = row.iter().map(|&(_, v)| v).sum();
                    if d > 1e-12 {
                        1.0 / d.sqrt()
                    } else {
                        0.0
                    }
                })
                .collect();
            for (i, row) in rows.iter_mut().enumerate() {
                for (j, v) in row.iter_mut() {
                    *v *= inv_sqrt_deg[i] * inv_sqrt_deg[*j as usize];
                }
            }
            vec![CsrMatrix::from_rows(n, n, &rows)]
        }
    }
}

/// Expands supports to `max_hop` hops: for each support `S`, returns
/// `S¹, S², …, S^max_hop` (the identity hop is handled by the conv layer
/// concatenating the raw signal).
pub fn khop_supports(supports: &[Tensor], max_hop: usize) -> Vec<Tensor> {
    assert!(max_hop >= 1, "max_hop must be >= 1");
    let mut out = Vec::with_capacity(supports.len() * max_hop);
    for s in supports {
        let mut power = s.clone();
        out.push(power.clone());
        for _ in 1..max_hop {
            power = power.matmul(s);
            out.push(power.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn asym() -> Tensor {
        Tensor::from_rows(&[vec![0.0, 2.0, 0.0], vec![1.0, 0.0, 1.0], vec![0.0, 0.0, 0.0]])
    }

    #[test]
    fn normalize_rows_sums_to_one() {
        let t = normalize_rows(&asym());
        assert!((t.at(&[0, 1]) - 1.0).abs() < 1e-6);
        assert!(((0..3).map(|j| t.at(&[1, j])).sum::<f32>() - 1.0).abs() < 1e-6);
        // Zero row stays zero.
        assert_eq!((0..3).map(|j| t.at(&[2, j])).sum::<f32>(), 0.0);
    }

    #[test]
    fn double_transition_uses_transpose() {
        let sup = build_supports(&asym(), SupportKind::DoubleTransition);
        assert_eq!(sup.len(), 2);
        // Backward support row 2 should be non-zero: node 2 has an incoming
        // edge from node 1 (A[1,2] = 1 -> Aᵀ[2,1] = 1).
        assert!(sup[1].at(&[2, 1]) > 0.0);
    }

    #[test]
    fn symmetric_normalization_is_symmetric() {
        let a = Tensor::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let s = normalize_symmetric(&a.add_t(&Tensor::eye(2)));
        assert!((s.at(&[0, 1]) - s.at(&[1, 0])).abs() < 1e-6);
    }

    #[test]
    fn symmetric_with_self_loops_has_diagonal() {
        let a = Tensor::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let sup = build_supports(&a, SupportKind::SymmetricWithSelfLoops);
        assert_eq!(sup.len(), 1);
        assert!(sup[0].at(&[0, 0]) > 0.0);
    }

    #[test]
    fn row_normalized_is_stochastic_under_powers() {
        // Powers of a row-stochastic matrix remain row-stochastic — the
        // property k-hop diffusion relies on.
        let p = normalize_rows(&Tensor::from_rows(&[
            vec![0.0, 1.0, 1.0],
            vec![1.0, 0.0, 1.0],
            vec![1.0, 1.0, 0.0],
        ]));
        let p2 = p.matmul(&p);
        for i in 0..3 {
            let s: f32 = (0..3).map(|j| p2.at(&[i, j])).sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn khop_supports_count_and_first_power() {
        let sup = build_supports(&asym(), SupportKind::DoubleTransition);
        let hops = khop_supports(&sup, 2);
        assert_eq!(hops.len(), 4);
        assert!(hops[0].allclose(&sup[0], 0.0));
        assert!(hops[1].allclose(&sup[0].matmul(&sup[0]), 1e-6));
    }

    #[test]
    fn csr_supports_match_dense_for_all_kinds() {
        let a = Tensor::from_rows(&[
            vec![0.0, 2.0, 0.0, 1.0],
            vec![1.0, 0.0, 1.0, 0.0],
            vec![0.0, 0.0, 0.0, 0.0],
            vec![0.5, 0.0, 3.0, 0.0],
        ]);
        let sa = CsrMatrix::from_dense(&a);
        for kind in [
            SupportKind::SingleTransition,
            SupportKind::DoubleTransition,
            SupportKind::SymmetricWithSelfLoops,
        ] {
            let dense = build_supports(&a, kind);
            let sparse = build_supports_csr(&sa, kind);
            assert_eq!(dense.len(), sparse.len(), "{kind:?} support count");
            for (d, s) in dense.iter().zip(&sparse) {
                assert!(s.to_dense().allclose(d, 1e-6), "{kind:?} CSR support diverges from dense");
            }
        }
    }

    #[test]
    fn normalize_rows_csr_keeps_zero_rows_zero() {
        let a = CsrMatrix::from_dense(&asym());
        let norm = normalize_rows_csr(&a);
        let (_, vals) = norm.row(2);
        assert!(vals.is_empty() || vals.iter().all(|&v| v == 0.0));
        let (_, vals0) = norm.row(0);
        assert!((vals0.iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn two_hop_reaches_neighbors_of_neighbors() {
        // 0 -> 1 -> 2 with no direct 0 -> 2 edge.
        let a = Tensor::from_rows(&[vec![0.0, 1.0, 0.0], vec![0.0, 0.0, 1.0], vec![0.0, 0.0, 0.0]]);
        let sup = build_supports(&a, SupportKind::SingleTransition);
        let hops = khop_supports(&sup, 2);
        assert_eq!(hops[0].at(&[0, 2]), 0.0);
        assert!(hops[1].at(&[0, 2]) > 0.0);
    }
}
