//! Distance-based adjacency construction (§VI-A):
//!
//! `A_ij = exp(−dist(v_i, v_j)² / σ²)` where σ is the standard deviation of
//! all pairwise distances, thresholded to zero below `threshold` (0.1 in the
//! paper's experiments).

use enhancenet_tensor::Tensor;

/// Configuration for Gaussian-kernel adjacency construction.
#[derive(Debug, Clone, Copy)]
pub struct AdjacencyConfig {
    /// Weights below this value are zeroed (paper: 0.1).
    pub threshold: f32,
    /// Whether the diagonal (self-loops) is kept at 1.0 or zeroed.
    pub self_loops: bool,
}

impl Default for AdjacencyConfig {
    fn default() -> Self {
        Self { threshold: 0.1, self_loops: false }
    }
}

/// Pairwise Euclidean distances between rows of `coords` (`[N, D]`),
/// returned as `[N, N]`.
pub fn pairwise_euclidean(coords: &Tensor) -> Tensor {
    assert_eq!(coords.rank(), 2, "coords must be [N, D], got {:?}", coords.shape());
    let (n, d) = (coords.shape()[0], coords.shape()[1]);
    let mut out = Tensor::zeros(&[n, n]);
    let data = coords.data();
    for i in 0..n {
        for j in (i + 1)..n {
            let mut s = 0.0f32;
            for k in 0..d {
                let diff = data[i * d + k] - data[j * d + k];
                s += diff * diff;
            }
            let dist = s.sqrt();
            out.set(&[i, j], dist);
            out.set(&[j, i], dist);
        }
    }
    out
}

/// Builds the Gaussian-kernel adjacency from a `[N, N]` distance matrix.
///
/// σ² is the variance of the **off-diagonal** distances (the paper's "σ is
/// the standard deviation of distances"). Entries below
/// `config.threshold` are zeroed; the diagonal follows
/// `config.self_loops`.
pub fn gaussian_kernel_adjacency(distances: &Tensor, config: AdjacencyConfig) -> Tensor {
    assert_eq!(distances.rank(), 2, "distances must be [N, N]");
    let n = distances.shape()[0];
    assert_eq!(distances.shape()[1], n, "distances must be square");

    // Standard deviation over off-diagonal entries.
    let mut vals: Vec<f32> = Vec::with_capacity(n * n - n);
    for i in 0..n {
        for j in 0..n {
            if i != j {
                vals.push(distances.at(&[i, j]));
            }
        }
    }
    let mean = vals.iter().sum::<f32>() / vals.len().max(1) as f32;
    let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len().max(1) as f32;
    let sigma2 = var.max(1e-8);

    let mut a = Tensor::zeros(&[n, n]);
    for i in 0..n {
        for j in 0..n {
            if i == j {
                if config.self_loops {
                    a.set(&[i, j], 1.0);
                }
                continue;
            }
            let d = distances.at(&[i, j]);
            let w = (-d * d / sigma2).exp();
            if w >= config.threshold {
                a.set(&[i, j], w);
            }
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairwise_euclidean_known_points() {
        let coords = Tensor::from_rows(&[vec![0.0, 0.0], vec![3.0, 4.0], vec![0.0, 1.0]]);
        let d = pairwise_euclidean(&coords);
        assert_eq!(d.at(&[0, 1]), 5.0);
        assert_eq!(d.at(&[0, 2]), 1.0);
        assert_eq!(d.at(&[1, 0]), 5.0);
        assert_eq!(d.at(&[0, 0]), 0.0);
    }

    #[test]
    fn kernel_is_symmetric_for_symmetric_distances() {
        let coords = Tensor::from_rows(&[vec![0.0], vec![1.0], vec![5.0]]);
        let d = pairwise_euclidean(&coords);
        let a = gaussian_kernel_adjacency(&d, AdjacencyConfig::default());
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(a.at(&[i, j]), a.at(&[j, i]));
            }
        }
    }

    #[test]
    fn closer_pairs_get_larger_weights() {
        let coords = Tensor::from_rows(&[vec![0.0], vec![1.0], vec![3.0]]);
        let d = pairwise_euclidean(&coords);
        let a =
            gaussian_kernel_adjacency(&d, AdjacencyConfig { threshold: 0.0, self_loops: false });
        assert!(a.at(&[0, 1]) > a.at(&[0, 2]));
    }

    #[test]
    fn threshold_sparsifies() {
        let coords = Tensor::from_rows(&[vec![0.0], vec![0.1], vec![100.0]]);
        let d = pairwise_euclidean(&coords);
        let a =
            gaussian_kernel_adjacency(&d, AdjacencyConfig { threshold: 0.1, self_loops: false });
        assert!(a.at(&[0, 1]) > 0.0, "near pair kept");
        assert_eq!(a.at(&[0, 2]), 0.0, "far pair pruned");
    }

    #[test]
    fn self_loops_flag_controls_diagonal() {
        let coords = Tensor::from_rows(&[vec![0.0], vec![1.0]]);
        let d = pairwise_euclidean(&coords);
        let no_loops =
            gaussian_kernel_adjacency(&d, AdjacencyConfig { threshold: 0.0, self_loops: false });
        assert_eq!(no_loops.at(&[0, 0]), 0.0);
        let loops =
            gaussian_kernel_adjacency(&d, AdjacencyConfig { threshold: 0.0, self_loops: true });
        assert_eq!(loops.at(&[0, 0]), 1.0);
    }

    #[test]
    fn weights_bounded_by_one() {
        let coords =
            Tensor::from_rows(&[vec![0.0, 0.0], vec![2.0, 1.0], vec![4.0, 4.0], vec![1.0, 3.0]]);
        let d = pairwise_euclidean(&coords);
        let a = gaussian_kernel_adjacency(&d, AdjacencyConfig { threshold: 0.0, self_loops: true });
        assert!(a.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }
}
