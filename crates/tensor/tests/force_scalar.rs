//! The `ENHANCENET_FORCE_SCALAR` escape hatch, exercised end-to-end.
//!
//! Kernel selection is cached process-wide at first use, so this lives in
//! its own integration-test binary — its process sets the variable before
//! any GEMM runs, then drives the public API and checks both the selection
//! and the telemetry it leaves behind. Exactly one `#[test]` lives here:
//! `std::env::set_var` must not race other threads of this process.

use enhancenet_tensor::{kernel, Tensor};

#[test]
fn force_scalar_env_pins_dispatch_and_stays_correct() {
    std::env::set_var("ENHANCENET_FORCE_SCALAR", "1");
    assert!(kernel::force_scalar_requested());
    assert_eq!(
        kernel::selected_kernel().name(),
        "scalar",
        "ENHANCENET_FORCE_SCALAR=1 must pin dispatch to the scalar kernel"
    );

    // The forced engine still matches the naive reference on a shape with
    // ragged tiles in both dimensions (work is far above PACK_MIN_WORK, so
    // this runs the blocked path, not the small-product direct loops).
    let (m, k, n) = (67, 129, 65);
    let a = Tensor::from_vec((0..m * k).map(|v| ((v * 7 + 1) % 5) as f32 - 2.0).collect(), &[m, k]);
    let b = Tensor::from_vec((0..k * n).map(|v| ((v * 3 + 2) % 5) as f32 - 2.0).collect(), &[k, n]);
    let mut want = vec![0.0f32; m * n];
    for i in 0..m {
        for kk in 0..k {
            for j in 0..n {
                want[i * n + j] += a.data()[i * k + kk] * b.data()[kk * n + j];
            }
        }
    }

    enhancenet_telemetry::reset();
    enhancenet_telemetry::set_enabled(true);
    let got = a.matmul(&b);
    let scalar_dispatches = enhancenet_telemetry::counter_value("tensor.kernel.dispatch.scalar");
    let simd_dispatches = enhancenet_telemetry::counter_value("tensor.kernel.dispatch.avx2")
        + enhancenet_telemetry::counter_value("tensor.kernel.dispatch.neon");
    let simd_available = enhancenet_telemetry::counter_value("tensor.kernel.simd_available");
    enhancenet_telemetry::set_enabled(false);

    assert_eq!(got.data(), &want[..], "forced-scalar blocked path must match the reference");
    assert!(scalar_dispatches >= 1, "blocked dispatch must count the scalar kernel");
    assert_eq!(simd_dispatches, 0, "no vectorized kernel may run under the forced hatch");
    if kernel::simd_available() {
        // The capability counter keeps reporting the host's ability even
        // while forcing suppresses its use — this is what lets
        // `bench_summary --require-simd` flag a silently-disabled SIMD
        // path instead of passing vacuously.
        assert!(simd_available >= 1, "simd_available must reflect the host, not the forcing");
    } else {
        assert_eq!(simd_available, 0);
    }
}
