//! Proves the scratch pool's steady-state contract: once a thread's pool is
//! warm, acquiring pack buffers performs **zero heap allocations** while
//! telemetry is disabled, and a warm blocked GEMM allocates only its output
//! tensor. Runs as its own integration binary so the counting allocator
//! sees no interference from sibling tests.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use enhancenet_tensor::{with_scratch, Tensor};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// The allocation counter is process-global: serialize the tests so one
/// test's warm-up cannot leak allocations into the other's measured window.
fn lock_tests() -> std::sync::MutexGuard<'static, ()> {
    static GUARD: std::sync::OnceLock<std::sync::Mutex<()>> = std::sync::OnceLock::new();
    GUARD
        .get_or_init(|| std::sync::Mutex::new(()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[test]
fn warm_scratch_pool_is_allocation_free_when_disabled() {
    let _g = lock_tests();
    enhancenet_telemetry::set_enabled(false);

    // Warm this thread's pool with the GEMM engine's nesting pattern: an
    // A-panel acquisition inside the B-panel scope.
    let (b_panel, a_panel) = (256 * 512, 256 * 64);
    with_scratch(b_panel, |_| with_scratch(a_panel, |_| ()));

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..10_000 {
        with_scratch(b_panel, |outer| {
            outer[0] = 1.0;
            with_scratch(a_panel, |inner| inner[0] = 2.0);
        });
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "warm scratch acquisitions must not allocate ({} allocations observed)",
        after - before
    );
}

#[test]
fn warm_blocked_gemm_allocates_only_its_output() {
    let _g = lock_tests();
    enhancenet_telemetry::set_enabled(false);

    // 64^3 = 256 Ki multiply-adds: big enough for the blocked/packed path,
    // below the parallel threshold so no rayon bookkeeping is measured.
    let a = Tensor::from_vec((0..64 * 64).map(|v| (v % 5) as f32).collect(), &[64, 64]);
    let b = Tensor::from_vec((0..64 * 64).map(|v| (v % 3) as f32).collect(), &[64, 64]);
    let _warm = a.matmul(&b);

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let out = a.matmul(&b);
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(out.shape(), &[64, 64]);

    // Output data vec + shape vec(s); anything beyond a handful means a
    // pack buffer or gradient temporary slipped past the pool.
    assert!(
        after - before <= 4,
        "warm blocked GEMM should only allocate its output, saw {} allocations",
        after - before
    );
}
