//! Property-based tests for the tensor substrate: algebraic identities that
//! must hold for arbitrary shapes and contents.

use enhancenet_tensor::kernel::available_kernels;
use enhancenet_tensor::matmul::matmul_with_kernel;
use enhancenet_tensor::{broadcast_shapes, Tensor};
use proptest::prelude::*;

/// Strategy: a tensor with 1–3 axes of size 1–6 and values in ±10.
fn small_tensor() -> impl Strategy<Value = Tensor> {
    prop::collection::vec(1usize..6, 1..4).prop_flat_map(|shape| {
        let n: usize = shape.iter().product();
        prop::collection::vec(-10.0f32..10.0, n)
            .prop_map(move |data| Tensor::from_vec(data, &shape))
    })
}

/// Strategy: a square matrix of side 1–8.
fn square_matrix() -> impl Strategy<Value = Tensor> {
    (1usize..8).prop_flat_map(|n| {
        prop::collection::vec(-5.0f32..5.0, n * n)
            .prop_map(move |data| Tensor::from_vec(data, &[n, n]))
    })
}

/// Strategy: one GEMM dimension, biased toward the odd/prime sizes that
/// stress the engine's ragged micro-tile edges and block boundaries
/// (MR = 4, NR = 8, MC = 64, KC = 256).
fn gemm_dim() -> impl Strategy<Value = usize> {
    prop_oneof![
        Just(1usize),
        Just(2),
        Just(3),
        Just(5),
        Just(7),
        Just(13),
        Just(17),
        Just(31),
        Just(65),
        Just(67),
    ]
}

/// Strategy: a small-integer-valued tensor. Products and sums of these stay
/// exactly representable in f32, so kernel comparisons can demand bitwise
/// equality regardless of accumulation order.
fn int_valued(shape: Vec<usize>) -> impl Strategy<Value = Tensor> {
    let n: usize = shape.iter().product();
    prop::collection::vec(-3i32..4, n)
        .prop_map(move |data| Tensor::from_vec(data.iter().map(|&v| v as f32).collect(), &shape))
}

/// Naive triple-loop reference GEMM: the semantics every engine path
/// (direct, blocked/packed, parallel, transpose-fused) must reproduce.
fn reference_mm(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let n = b.shape()[1];
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for kk in 0..k {
            for j in 0..n {
                out[i * n + j] += a.data()[i * k + kk] * b.data()[kk * n + j];
            }
        }
    }
    Tensor::from_vec(out, &[m, n])
}

proptest! {
    #[test]
    fn add_is_commutative(t in small_tensor()) {
        let u = t.map(|v| v * 0.5 + 1.0);
        prop_assert!(t.add_t(&u).allclose(&u.add_t(&t), 1e-5));
    }

    #[test]
    fn add_zero_is_identity(t in small_tensor()) {
        let z = Tensor::zeros(t.shape());
        prop_assert!(t.add_t(&z).allclose(&t, 0.0));
    }

    #[test]
    fn mul_by_one_is_identity(t in small_tensor()) {
        prop_assert!(t.mul_t(&Tensor::ones(t.shape())).allclose(&t, 0.0));
    }

    #[test]
    fn sub_self_is_zero(t in small_tensor()) {
        prop_assert!(t.sub_t(&t).allclose(&Tensor::zeros(t.shape()), 0.0));
    }

    #[test]
    fn broadcast_shape_is_symmetric(
        a in prop::collection::vec(1usize..5, 0..4),
        b in prop::collection::vec(1usize..5, 0..4),
    ) {
        // Make shapes compatible by replacing mismatches with 1 on one side.
        let rank = a.len().max(b.len());
        let mut a2 = vec![1; rank - a.len()]; a2.extend(&a);
        let mut b2 = vec![1; rank - b.len()]; b2.extend(&b);
        for i in 0..rank {
            if a2[i] != b2[i] && a2[i] != 1 && b2[i] != 1 { b2[i] = 1; }
        }
        prop_assert_eq!(broadcast_shapes(&a2, &b2), broadcast_shapes(&b2, &a2));
    }

    #[test]
    fn matmul_identity_right(m in square_matrix()) {
        let i = Tensor::eye(m.shape()[0]);
        prop_assert!(m.matmul(&i).allclose(&m, 1e-4));
    }

    #[test]
    fn matmul_distributes_over_add(a in square_matrix()) {
        let b = a.map(|v| v - 1.0);
        let c = a.map(|v| 0.5 * v + 2.0);
        let lhs = a.matmul(&b.add_t(&c));
        let rhs = a.matmul(&b).add_t(&a.matmul(&c));
        prop_assert!(lhs.allclose(&rhs, 1e-2));
    }

    #[test]
    fn transpose_of_matmul(a in square_matrix()) {
        let b = a.map(|v| v * 0.25 - 1.0);
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!(lhs.allclose(&rhs, 1e-3));
    }

    #[test]
    fn softmax_rows_are_distributions(t in small_tensor()) {
        let s = t.softmax(-1);
        let sums = s.sum_axis(-1);
        prop_assert!(sums.data().iter().all(|&v| (v - 1.0).abs() < 1e-4));
        prop_assert!(s.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn sum_axis_total_matches_sum_all(t in small_tensor()) {
        let total: f32 = t.sum_all();
        let via_axis: f32 = t.sum_axis(0).sum_all();
        prop_assert!((total - via_axis).abs() < 1e-3 * (1.0 + total.abs()));
    }

    #[test]
    fn reduce_to_shape_preserves_total(t in small_tensor()) {
        // Reducing a broadcast gradient must conserve the total mass.
        let target: Vec<usize> = t.shape().iter().map(|_| 1).collect();
        let r = t.reduce_to_shape(&target);
        prop_assert!((r.sum_all() - t.sum_all()).abs() < 1e-3 * (1.0 + t.sum_all().abs()));
    }

    #[test]
    fn concat_then_slice_roundtrips(t in small_tensor()) {
        let c = Tensor::concat(&[&t, &t], 0);
        let first = c.slice_axis(0, 0, t.shape()[0]);
        prop_assert!(first.allclose(&t, 0.0));
    }

    #[test]
    fn permute_is_invertible(t in small_tensor()) {
        let rank = t.rank();
        let perm: Vec<usize> = (0..rank).rev().collect();
        let mut inv = vec![0; rank];
        for (i, &p) in perm.iter().enumerate() { inv[p] = i; }
        prop_assert!(t.permute(&perm).permute(&inv).allclose(&t, 0.0));
    }

    #[test]
    fn sigmoid_bounded_and_monotone(t in small_tensor()) {
        let s = t.sigmoid();
        prop_assert!(s.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        // σ(x) + σ(-x) = 1
        let s_neg = (-&t).sigmoid();
        prop_assert!(s.add_t(&s_neg).allclose(&Tensor::ones(t.shape()), 1e-5));
    }

    #[test]
    fn pad_then_slice_recovers(t in small_tensor()) {
        let padded = t.pad_axis_front(0, 2, 7.5);
        let tail = padded.slice_axis(0, 2, padded.shape()[0]);
        prop_assert!(tail.allclose(&t, 0.0));
    }
}

proptest! {
    // GEMM-engine properties run fewer, larger cases: each case multiplies
    // matrices up to 67³ against the naive reference.
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matmul_matches_naive_reference(
        (a, b) in (gemm_dim(), gemm_dim(), gemm_dim()).prop_flat_map(|(m, k, n)| {
            (int_valued(vec![m, k]), int_valued(vec![k, n]))
        })
    ) {
        let got = a.matmul(&b);
        let want = reference_mm(&a, &b);
        prop_assert_eq!(got.data(), want.data());
    }

    #[test]
    fn matmul_tn_matches_materialized_transpose(
        (a, b) in (gemm_dim(), gemm_dim(), gemm_dim()).prop_flat_map(|(m, k, n)| {
            (int_valued(vec![m, k]), int_valued(vec![k, n]))
        })
    ) {
        // Store aᵀ as [k,m]; the fused kernel must recover a·b exactly.
        let want = reference_mm(&a, &b);
        prop_assert_eq!(a.transpose().matmul_tn(&b).data(), want.data());
    }

    #[test]
    fn matmul_nt_matches_materialized_transpose(
        (a, b) in (gemm_dim(), gemm_dim(), gemm_dim()).prop_flat_map(|(m, k, n)| {
            (int_valued(vec![m, k]), int_valued(vec![k, n]))
        })
    ) {
        // Store bᵀ as [n,k]; the fused kernel must recover a·b exactly.
        let want = reference_mm(&a, &b);
        prop_assert_eq!(a.matmul_nt(&b.transpose()).data(), want.data());
    }

    #[test]
    fn bmm_tn_nt_match_per_batch_reference(
        (a, b) in (1usize..4, gemm_dim(), gemm_dim(), gemm_dim()).prop_flat_map(|(bs, m, k, n)| {
            (int_valued(vec![bs, m, k]), int_valued(vec![bs, k, n]))
        })
    ) {
        let (bs, m, k) = (a.shape()[0], a.shape()[1], a.shape()[2]);
        let n = b.shape()[2];
        let want = a.bmm(&b);
        for bi in 0..bs {
            let ai = Tensor::from_vec(a.data()[bi * m * k..(bi + 1) * m * k].to_vec(), &[m, k]);
            let bi_t = Tensor::from_vec(b.data()[bi * k * n..(bi + 1) * k * n].to_vec(), &[k, n]);
            let per = reference_mm(&ai, &bi_t);
            prop_assert_eq!(&want.data()[bi * m * n..(bi + 1) * m * n], per.data());
        }
        prop_assert_eq!(a.transpose_batched().bmm_tn(&b).data(), want.data());
        prop_assert_eq!(a.bmm_nt(&b.transpose_batched()).data(), want.data());
    }

    #[test]
    fn broadcast_left_kernels_match_unfused_formulations(
        (a, x) in (1usize..4, gemm_dim(), gemm_dim(), gemm_dim()).prop_flat_map(|(bs, m, k, n)| {
            (int_valued(vec![m, k]), int_valued(vec![bs, k, n]))
        })
    ) {
        let y = a.matmul_broadcast_left(&x); // [bs, m, n]
        // The _tn gradient twin vs. an explicit materialized transpose.
        prop_assert_eq!(
            a.matmul_broadcast_left_tn(&y).data(),
            a.transpose().matmul_broadcast_left(&y).data()
        );
        // Batch-summed nt-reduce (the adjacency gradient) vs. bmm_nt + sum.
        prop_assert_eq!(
            y.bmm_nt_reduce(&x).data(),
            y.bmm_nt(&x).sum_axis(0).data()
        );
    }

    #[test]
    fn every_dispatch_kernel_matches_naive_reference(
        (a, b) in (gemm_dim(), gemm_dim(), gemm_dim()).prop_flat_map(|(m, k, n)| {
            (int_valued(vec![m, k]), int_valued(vec![k, n]))
        })
    ) {
        // Every micro-kernel the host can run (scalar fallback + detected
        // SIMD variants), serial and intra-GEMM-parallel, forced through
        // the blocked engine even below its work threshold. gemm_dim()
        // includes the degenerate sizes — m or n below any kernel's MR/NR,
        // and k = 1 — that stress ragged tiles and zero padding. Integer
        // values keep products exact under FMA, so the comparison is
        // bitwise for the SIMD kernels too.
        let want = reference_mm(&a, &b);
        for kernel in available_kernels() {
            for parallel in [false, true] {
                let got = matmul_with_kernel(&a, &b, kernel, parallel);
                prop_assert_eq!(
                    got.data(),
                    want.data(),
                    "kernel {} parallel={} on {:?}x{:?}",
                    kernel.name(),
                    parallel,
                    a.shape(),
                    b.shape()
                );
            }
        }
    }

    #[test]
    fn broadcast_right_kernels_match_unfused_formulations(
        (x, w) in (1usize..4, gemm_dim(), gemm_dim(), gemm_dim()).prop_flat_map(|(bs, m, k, p)| {
            (int_valued(vec![bs, m, k]), int_valued(vec![k, p]))
        })
    ) {
        let (bs, m, k) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        let p = w.shape()[1];
        let z = x.matmul_broadcast_right(&w); // [bs, m, p]
        // Shared-right fold vs. explicit flatten + matmul.
        prop_assert_eq!(z.data(), x.reshape(&[bs * m, k]).matmul(&w).reshape(&[bs, m, p]).data());
        // The _nt gradient twin vs. a materialized transpose.
        prop_assert_eq!(z.data(), x.matmul_broadcast_right_nt(&w.transpose()).data());
        // Weight-grad fold: xᵀ_flat · z_flat in one fused call.
        prop_assert_eq!(
            x.matmul_tn_flat(&z).data(),
            x.reshape(&[bs * m, k]).transpose().matmul(&z.reshape(&[bs * m, p])).data()
        );
    }
}

/// Compares two results entry-wise under IEEE special-value semantics:
/// NaN positions must match, and every non-NaN entry (finite or ±∞) must
/// be identical.
fn assert_special_parity(got: &Tensor, want: &Tensor, label: &str) {
    assert_eq!(got.shape(), want.shape(), "{label}: shape mismatch");
    for (i, (&g, &w)) in got.data().iter().zip(want.data()).enumerate() {
        if w.is_nan() {
            assert!(g.is_nan(), "{label}: entry {i} should be NaN, got {g}");
        } else {
            assert_eq!(g, w, "{label}: entry {i} differs ({g} vs {w})");
        }
    }
}

#[test]
fn nan_and_inf_propagate_identically_across_kernels() {
    // Both kernels consume the same packed panels in the same depth
    // order, so a NaN or ±∞ operand must poison exactly the same output
    // entries: NaN rows/columns stay NaN, ∞ rows produce ±∞ (or NaN where
    // an ∞·0 product arises), and untouched entries stay bit-equal. The
    // blocked engine has no zero-skip (unlike the small-product direct
    // path), so scalar multiply-add and SIMD FMA agree on every special
    // case; integer-valued finite entries keep the rest exact.
    let (m, k, n) = (9, 17, 21);
    let mut a: Vec<f32> = (0..m * k).map(|v| ((v * 7 + 1) % 5) as f32 - 2.0).collect();
    let mut b: Vec<f32> = (0..k * n).map(|v| ((v * 11 + 2) % 5) as f32 - 2.0).collect();
    a[3] = f32::NAN; // row 0 of a -> output row 0 all NaN
    a[k + 2] = f32::INFINITY; // row 1 -> ±∞ or NaN depending on b's column
    a[2 * k + 5] = f32::NEG_INFINITY;
    b[4 * n + 7] = f32::INFINITY; // column 7 of b
    b[5 * n] = 0.0; // guarantees an ∞·0 -> NaN pairing with row 2's -∞? no:
                    // row 1 col 0 sees a[1][5]·b[5][0]; make that pair ∞·0.
    let a = Tensor::from_vec(a, &[m, k]);
    let b = Tensor::from_vec(b, &[k, n]);
    let kernels = available_kernels();
    let (scalar, rest) = kernels.split_first().expect("scalar fallback always available");
    assert_eq!(scalar.name(), "scalar");
    for parallel in [false, true] {
        let want = matmul_with_kernel(&a, &b, *scalar, parallel);
        // The poisoned lanes really are special, so parity is non-vacuous.
        assert!(want.data().iter().any(|v| v.is_nan()));
        assert!(want.data().iter().any(|v| v.is_infinite()));
        for kernel in rest {
            let got = matmul_with_kernel(&a, &b, *kernel, parallel);
            assert_special_parity(&got, &want, kernel.name());
        }
    }
}

#[test]
fn degenerate_shapes_hit_every_kernel_exactly() {
    // m or n smaller than any kernel's tile, and k = 1: the pure
    // ragged-edge regime where only zero padding keeps tiles full.
    for &(m, k, n) in &[(1, 1, 1), (2, 1, 3), (3, 1, 15), (1, 64, 1), (5, 257, 2)] {
        let a = Tensor::from_vec((0..m * k).map(|v| (v % 5) as f32 - 2.0).collect(), &[m, k]);
        let b = Tensor::from_vec((0..k * n).map(|v| (v % 7) as f32 - 3.0).collect(), &[k, n]);
        let want = reference_mm(&a, &b);
        for kernel in available_kernels() {
            let got = matmul_with_kernel(&a, &b, kernel, false);
            assert_eq!(got.data(), want.data(), "kernel {} at ({m},{k},{n})", kernel.name());
        }
    }
}
