//! Seeded random tensor construction (uniform, normal, Xavier/Glorot).
//!
//! Every stochastic component in the reproduction draws from a [`TensorRng`]
//! seeded explicitly, so experiments are reproducible bit-for-bit.

use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded random source for tensor initialization.
///
/// Thin wrapper over `StdRng` so downstream crates do not each depend on the
/// `rand` API surface.
pub struct TensorRng {
    rng: StdRng,
}

impl TensorRng {
    /// Creates a generator from an explicit seed.
    pub fn seed(seed: u64) -> Self {
        Self { rng: StdRng::seed_from_u64(seed) }
    }

    /// Uniform samples in `[lo, hi)`.
    pub fn uniform(&mut self, shape: &[usize], lo: f32, hi: f32) -> Tensor {
        let n = shape.iter().product();
        let data = (0..n).map(|_| self.rng.gen_range(lo..hi)).collect();
        Tensor::from_vec(data, shape)
    }

    /// Standard-normal samples scaled by `std` around `mean`
    /// (Box–Muller, deterministic given the seed).
    pub fn normal(&mut self, shape: &[usize], mean: f32, std: f32) -> Tensor {
        let n: usize = shape.iter().product();
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1: f32 = self.rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = self.rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let (s, c) = (2.0 * std::f32::consts::PI * u2).sin_cos();
            data.push(mean + std * r * c);
            if data.len() < n {
                data.push(mean + std * r * s);
            }
        }
        Tensor::from_vec(data, shape)
    }

    /// Xavier/Glorot uniform initialization for a weight of logical fan
    /// `(fan_in, fan_out)`: uniform in `±sqrt(6/(fan_in+fan_out))`.
    pub fn xavier(&mut self, shape: &[usize], fan_in: usize, fan_out: usize) -> Tensor {
        let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
        self.uniform(shape, -bound, bound)
    }

    /// A single uniform scalar in `[lo, hi)`.
    pub fn scalar(&mut self, lo: f32, hi: f32) -> f32 {
        self.rng.gen_range(lo..hi)
    }

    /// A uniform integer in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        self.rng.gen_range(0..n)
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn bernoulli(&mut self, p: f32) -> bool {
        self.rng.gen_range(0.0..1.0f32) < p
    }

    /// Fisher–Yates shuffle of indices `0..n` (for batch shuffling).
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut v: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = self.rng.gen_range(0..=i);
            v.swap(i, j);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let a = TensorRng::seed(7).uniform(&[32], 0.0, 1.0);
        let b = TensorRng::seed(7).uniform(&[32], 0.0, 1.0);
        assert!(a.allclose(&b, 0.0));
    }

    #[test]
    fn different_seeds_differ() {
        let a = TensorRng::seed(1).uniform(&[32], 0.0, 1.0);
        let b = TensorRng::seed(2).uniform(&[32], 0.0, 1.0);
        assert!(!a.allclose(&b, 1e-9));
    }

    #[test]
    fn uniform_respects_bounds() {
        let t = TensorRng::seed(3).uniform(&[1000], -2.0, 3.0);
        assert!(t.data().iter().all(|&v| (-2.0..3.0).contains(&v)));
    }

    #[test]
    fn normal_moments_are_plausible() {
        let t = TensorRng::seed(4).normal(&[20000], 1.0, 2.0);
        let mean = t.mean_all();
        let var = t.map(|v| (v - mean) * (v - mean)).mean_all();
        assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn normal_odd_length() {
        // Exercises the Box–Muller leftover path.
        let t = TensorRng::seed(5).normal(&[7], 0.0, 1.0);
        assert_eq!(t.numel(), 7);
        assert!(!t.has_non_finite());
    }

    #[test]
    fn xavier_bound_shrinks_with_fan() {
        let wide = TensorRng::seed(6).xavier(&[1000], 10, 10);
        let narrow = TensorRng::seed(6).xavier(&[1000], 1000, 1000);
        assert!(wide.max_all() > narrow.max_all());
        let bound = (6.0f32 / 20.0).sqrt();
        assert!(wide.data().iter().all(|&v| v.abs() <= bound));
    }

    #[test]
    fn permutation_is_a_permutation() {
        let p = TensorRng::seed(9).permutation(100);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn bernoulli_rate() {
        let mut rng = TensorRng::seed(11);
        let hits = (0..10000).filter(|_| rng.bernoulli(0.3)).count();
        assert!((hits as f32 / 10000.0 - 0.3).abs() < 0.03);
    }
}
