//! Reductions (sum / mean / max / min) over all elements or a single axis,
//! plus softmax and the broadcast-gradient helper `reduce_to_shape`.

#![allow(clippy::needless_range_loop)] // index loops mirror the matrix math

use crate::shape::normalize_axis;
use crate::tensor::Tensor;

impl Tensor {
    /// Sum of every element.
    pub fn sum_all(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of every element.
    pub fn mean_all(&self) -> f32 {
        self.sum_all() / self.numel() as f32
    }

    /// Maximum element. Returns `-inf` for empty tensors.
    pub fn max_all(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element. Returns `+inf` for empty tensors.
    pub fn min_all(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Sums along `axis` (negative axes count from the back), removing it.
    pub fn sum_axis(&self, axis: isize) -> Tensor {
        self.reduce_axis(axis, 0.0, |acc, v| acc + v)
    }

    /// [`Tensor::sum_axis`] into `out` (buffers reused).
    pub fn sum_axis_into(&self, axis: isize, out: &mut Tensor) {
        self.reduce_axis_into(axis, 0.0, |acc, v| acc + v, out)
    }

    /// Mean along `axis`, removing it.
    pub fn mean_axis(&self, axis: isize) -> Tensor {
        let mut out = Tensor::default();
        self.mean_axis_into(axis, &mut out);
        out
    }

    /// [`Tensor::mean_axis`] into `out` (buffers reused; same sum-then-scale
    /// order as the allocating version, so the two are bitwise identical).
    pub fn mean_axis_into(&self, axis: isize, out: &mut Tensor) {
        let ax = normalize_axis(axis, self.rank());
        let n = self.shape[ax] as f32;
        self.sum_axis_into(axis, out);
        out.map_inplace(|v| v / n);
    }

    /// Maximum along `axis`, removing it.
    pub fn max_axis(&self, axis: isize) -> Tensor {
        self.reduce_axis(axis, f32::NEG_INFINITY, f32::max)
    }

    /// Generic single-axis fold. `axis` is removed from the output shape.
    pub fn reduce_axis(&self, axis: isize, init: f32, f: impl Fn(f32, f32) -> f32) -> Tensor {
        let mut out = Tensor::default();
        self.reduce_axis_into(axis, init, f, &mut out);
        out
    }

    /// [`Tensor::reduce_axis`] into `out` (buffers reused).
    pub fn reduce_axis_into(
        &self,
        axis: isize,
        init: f32,
        f: impl Fn(f32, f32) -> f32,
        out: &mut Tensor,
    ) {
        let ax = normalize_axis(axis, self.rank());
        let outer: usize = self.shape[..ax].iter().product();
        let axis_len = self.shape[ax];
        let inner: usize = self.shape[ax + 1..].iter().product();
        out.data.clear();
        out.data.resize(outer * inner, init);
        out.reset_shape(&self.shape);
        out.shape.remove(ax);
        for o in 0..outer {
            for a in 0..axis_len {
                let base = (o * axis_len + a) * inner;
                let obase = o * inner;
                for i in 0..inner {
                    out.data[obase + i] = f(out.data[obase + i], self.data[base + i]);
                }
            }
        }
    }

    /// Sums along `axis`, keeping it with length 1 (for broadcasting back).
    pub fn sum_axis_keepdim(&self, axis: isize) -> Tensor {
        let ax = normalize_axis(axis, self.rank());
        let mut s = self.sum_axis(axis);
        s.shape.insert(ax, 1);
        s
    }

    /// Softmax along `axis`, numerically stabilized by the row max.
    ///
    /// Every slice along `axis` sums to 1.
    pub fn softmax(&self, axis: isize) -> Tensor {
        let mut out = Tensor::default();
        self.softmax_into(axis, &mut out);
        out
    }

    /// [`Tensor::softmax`] into `out` (buffers reused).
    pub fn softmax_into(&self, axis: isize, out: &mut Tensor) {
        let ax = normalize_axis(axis, self.rank());
        let outer: usize = self.shape[..ax].iter().product();
        let axis_len = self.shape[ax];
        let inner: usize = self.shape[ax + 1..].iter().product();
        out.data.clear();
        out.data.resize(self.numel(), 0.0);
        out.reset_shape(&self.shape);
        for o in 0..outer {
            for i in 0..inner {
                let idx = |a: usize| (o * axis_len + a) * inner + i;
                let mut mx = f32::NEG_INFINITY;
                for a in 0..axis_len {
                    mx = mx.max(self.data[idx(a)]);
                }
                let mut denom = 0.0f32;
                for a in 0..axis_len {
                    let e = (self.data[idx(a)] - mx).exp();
                    out.data[idx(a)] = e;
                    denom += e;
                }
                for a in 0..axis_len {
                    out.data[idx(a)] /= denom;
                }
            }
        }
    }

    /// Reduces `self` (a gradient in a broadcast shape) back to `target`
    /// by summing over the axes that were expanded.
    ///
    /// This is the adjoint of broadcasting and is used by every binary
    /// backward pass in the autodiff crate.
    pub fn reduce_to_shape(&self, target: &[usize]) -> Tensor {
        if self.shape == target {
            return self.clone();
        }
        let mut t = self.clone();
        // Collapse prepended axes first.
        while t.rank() > target.len() {
            t = t.sum_axis(0);
        }
        // Then sum the axes that were expanded from 1.
        for ax in 0..target.len() {
            if target[ax] == 1 && t.shape[ax] != 1 {
                t = t.sum_axis_keepdim(ax as isize);
            }
        }
        assert_eq!(
            t.shape, target,
            "reduce_to_shape: {:?} cannot reduce to {:?}",
            self.shape, target
        );
        t
    }

    /// Shannon entropy of each slice along the last axis, in nats,
    /// treating the slice as a probability distribution. Non-positive
    /// entries contribute zero (the `p ln p → 0` limit), so the helper is
    /// safe on softmax outputs with exact zeros. Output drops the last
    /// axis.
    ///
    /// Used by the DAMGN graph-health probe: the row entropy of the
    /// learned static adjacency `B` (Eq. 15) measures how far each row is
    /// from a uniform (uninformative) neighborhood — `ln N` nats means
    /// uniform, 0 nats means one-hot.
    pub fn row_entropy(&self) -> Tensor {
        assert!(self.rank() >= 1, "row_entropy requires rank >= 1, got {:?}", self.shape);
        let inner = self.shape[self.rank() - 1];
        let outer: usize = self.shape[..self.rank() - 1].iter().product();
        let mut out = vec![0.0f32; outer];
        for o in 0..outer {
            let mut h = 0.0f32;
            for i in 0..inner {
                let p = self.data[o * inner + i];
                if p > 0.0 {
                    h -= p * p.ln();
                }
            }
            out[o] = h;
        }
        Tensor::from_vec(out, &self.shape[..self.rank() - 1])
    }

    /// Number of elements strictly greater than `thresh`.
    ///
    /// Used by the graph-health probe to measure effective sparsity of a
    /// learned adjacency: the fraction of weights above the uniform level
    /// `1/N`.
    pub fn count_greater(&self, thresh: f32) -> usize {
        self.data.iter().filter(|&&v| v > thresh).count()
    }

    /// Index of the maximum element (ties resolve to the first).
    pub fn argmax_all(&self) -> usize {
        let mut best = 0;
        for (i, v) in self.data.iter().enumerate() {
            if *v > self.data[best] {
                best = i;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t123456() -> Tensor {
        Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3])
    }

    #[test]
    fn sum_and_mean_all() {
        assert_eq!(t123456().sum_all(), 21.0);
        assert_eq!(t123456().mean_all(), 3.5);
    }

    #[test]
    fn sum_axis0_collapses_rows() {
        let s = t123456().sum_axis(0);
        assert_eq!(s.shape(), &[3]);
        assert_eq!(s.data(), &[5.0, 7.0, 9.0]);
    }

    #[test]
    fn sum_axis1_collapses_cols() {
        let s = t123456().sum_axis(1);
        assert_eq!(s.shape(), &[2]);
        assert_eq!(s.data(), &[6.0, 15.0]);
    }

    #[test]
    fn negative_axis() {
        assert_eq!(t123456().sum_axis(-1).data(), &[6.0, 15.0]);
    }

    #[test]
    fn mean_axis_divides() {
        assert_eq!(t123456().mean_axis(1).data(), &[2.0, 5.0]);
    }

    #[test]
    fn max_axis_picks_largest() {
        assert_eq!(t123456().max_axis(0).data(), &[4.0, 5.0, 6.0]);
        assert_eq!(t123456().max_all(), 6.0);
        assert_eq!(t123456().min_all(), 1.0);
    }

    #[test]
    fn keepdim_keeps_rank() {
        let s = t123456().sum_axis_keepdim(1);
        assert_eq!(s.shape(), &[2, 1]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let s = t123456().softmax(-1);
        for r in 0..2 {
            let sum: f32 = (0..3).map(|c| s.at(&[r, c])).sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // Monotone: larger logits get larger probabilities.
        assert!(s.at(&[0, 2]) > s.at(&[0, 0]));
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let a = Tensor::from_vec(vec![1000.0, 1001.0, 1002.0], &[3]);
        let s = a.softmax(0);
        assert!(!s.has_non_finite());
        let b = Tensor::from_vec(vec![0.0, 1.0, 2.0], &[3]).softmax(0);
        assert!(s.allclose(&b, 1e-6));
    }

    #[test]
    fn softmax_middle_axis() {
        let t = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[2, 3, 2]);
        let s = t.softmax(1);
        for b in 0..2 {
            for i in 0..2 {
                let sum: f32 = (0..3).map(|a| s.at(&[b, a, i])).sum();
                assert!((sum - 1.0).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn reduce_to_shape_sums_broadcast_axes() {
        let g = Tensor::ones(&[2, 3]);
        let r = g.reduce_to_shape(&[3]);
        assert_eq!(r.data(), &[2.0, 2.0, 2.0]);
        let r2 = g.reduce_to_shape(&[2, 1]);
        assert_eq!(r2.data(), &[3.0, 3.0]);
        let r3 = g.reduce_to_shape(&[]);
        assert_eq!(r3.item(), 6.0);
    }

    #[test]
    fn reduce_to_same_shape_is_identity() {
        let g = t123456();
        assert!(g.reduce_to_shape(&[2, 3]).allclose(&g, 0.0));
    }

    #[test]
    fn row_entropy_uniform_onehot_and_zeros() {
        // Uniform row: ln 4 nats. One-hot row: 0 nats. Zeros are ignored.
        let t = Tensor::from_vec(vec![0.25, 0.25, 0.25, 0.25, 1.0, 0.0, 0.0, 0.0], &[2, 4]);
        let h = t.row_entropy();
        assert_eq!(h.shape(), &[2]);
        assert!((h.data()[0] - 4.0f32.ln()).abs() < 1e-6, "uniform row: {}", h.data()[0]);
        assert!(h.data()[1].abs() < 1e-9, "one-hot row: {}", h.data()[1]);
    }

    #[test]
    fn row_entropy_rank3_reduces_last_axis() {
        let t = Tensor::from_vec(vec![0.5, 0.5, 1.0, 0.0, 0.25, 0.75, 0.5, 0.5], &[2, 2, 2]);
        let h = t.row_entropy();
        assert_eq!(h.shape(), &[2, 2]);
        assert!((h.at(&[0, 0]) - 2.0f32.ln()).abs() < 1e-6);
        assert_eq!(h.at(&[0, 1]), 0.0);
    }

    #[test]
    fn count_greater_counts_strictly() {
        let t = Tensor::from_vec(vec![0.1, 0.5, 0.5, 0.9], &[2, 2]);
        assert_eq!(t.count_greater(0.5), 1);
        assert_eq!(t.count_greater(0.0), 4);
        assert_eq!(t.count_greater(1.0), 0);
    }

    #[test]
    fn argmax_all_first_tie() {
        let t = Tensor::from_vec(vec![1.0, 3.0, 3.0, 0.0], &[4]);
        assert_eq!(t.argmax_all(), 1);
    }
}
