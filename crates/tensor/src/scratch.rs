//! Thread-local scratch-buffer pool for kernel temporaries.
//!
//! The GEMM engine packs operand panels into contiguous buffers before the
//! micro-kernel runs. Those buffers are the same handful of sizes on every
//! training step, so allocating them fresh per call would dominate small
//! products and churn the allocator on large ones. Instead each thread keeps
//! a small stack of retired buffers and [`with_scratch`] hands the top one
//! back out, growing it only when the request exceeds anything pooled.
//!
//! Telemetry: every acquisition records `tensor.scratch.hit` (a pooled
//! buffer's capacity covered the request) or `tensor.scratch.miss` (the pool
//! was empty or too small and the buffer grew). Both are gated on
//! [`enhancenet_telemetry::enabled`], so the disabled path stays a single
//! relaxed atomic load and — once the pool is warm — allocation-free.

use std::cell::RefCell;

/// Buffers retired back to the pool beyond this depth are dropped instead.
/// The GEMM engine nests at most two live buffers per thread (a B panel and
/// an A panel); a little slack covers callers stacking their own temporary.
const MAX_POOLED: usize = 8;

thread_local! {
    static POOL: RefCell<Vec<Vec<f32>>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` with a scratch buffer of exactly `len` elements.
///
/// The buffer's contents are **unspecified** on entry — callers must write
/// every element they read back (the pack routines overwrite their whole
/// panel, padding included). The buffer returns to this thread's pool when
/// `f` finishes, so steady-state acquisition performs no allocation.
///
/// Re-entrant: the pool borrow is released before `f` runs, so `f` may call
/// [`with_scratch`] again (the engine does: an A-panel pack inside the
/// B-panel scope) or run on rayon workers that maintain their own pools.
pub fn with_scratch<R>(len: usize, f: impl FnOnce(&mut [f32]) -> R) -> R {
    let mut buf = POOL.with(|pool| pool.borrow_mut().pop()).unwrap_or_default();
    if enhancenet_telemetry::enabled() {
        let label =
            if buf.capacity() >= len { "tensor.scratch.hit" } else { "tensor.scratch.miss" };
        enhancenet_telemetry::count(label, 1);
    }
    // Grow-only: `resize` zero-fills new tail capacity but never shrinks, so
    // a warm buffer is reused without touching its contents.
    if buf.len() < len {
        buf.resize(len, 0.0);
    }
    let result = f(&mut buf[..len]);
    POOL.with(|pool| {
        let mut pool = pool.borrow_mut();
        if pool.len() < MAX_POOLED {
            pool.push(buf);
        }
    });
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// Telemetry counters are process-global; serialize the tests that
    /// enable collection so concurrent kernels can't pollute assertions.
    /// (Other test threads may still record while collection is on, so the
    /// assertions below are lower bounds, not exact counts.)
    fn lock_telemetry() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(Mutex::default).lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn scratch_returns_requested_len() {
        with_scratch(17, |buf| assert_eq!(buf.len(), 17));
    }

    #[test]
    fn scratch_is_reentrant() {
        let total = with_scratch(8, |outer| {
            outer.fill(1.0);
            let inner_sum: f32 = with_scratch(4, |inner| {
                inner.fill(2.0);
                inner.iter().sum()
            });
            outer.iter().sum::<f32>() + inner_sum
        });
        assert_eq!(total, 16.0);
    }

    #[test]
    fn scratch_counts_hits_and_misses() {
        let _g = lock_telemetry();
        // Warm this thread's pool so the next same-size request is a hit.
        with_scratch(1024, |_| ());
        enhancenet_telemetry::reset();
        enhancenet_telemetry::set_enabled(true);
        with_scratch(1024, |_| ());
        // Larger than anything pooled on this thread: must grow.
        with_scratch(1 << 22, |_| ());
        let hits = enhancenet_telemetry::counter_value("tensor.scratch.hit");
        let misses = enhancenet_telemetry::counter_value("tensor.scratch.miss");
        enhancenet_telemetry::set_enabled(false);
        assert!(hits >= 1, "warm same-size request must hit the pool");
        assert!(misses >= 1, "oversized request must report a miss");
    }
}
