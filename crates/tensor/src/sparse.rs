//! Sparse graph kernels: a CSR matrix for constant adjacencies and a
//! fixed-width per-row column pattern (ELL layout) for top-k sparsified
//! attention.
//!
//! DAMGN's dense `N×N` adjacency mixes are O(N²) in time and memory. The
//! sub-quadratic path stores only `k` retained columns per row:
//!
//! * [`CsrMatrix`] — classic compressed-sparse-row storage for *constant*
//!   matrices (distance-based supports, k-NN graphs). `spmm`/`spmm_into`
//!   produce dense output, parallelized over row bands.
//! * [`TopkPattern`] — the retained column indices of a top-k row
//!   sparsification, shared by every tensor that lives on that pattern.
//!   Values ride in ordinary dense tensors of shape `[rows, k]` (or
//!   `[batch, rows, k]`), so they flow through the autodiff tape unchanged;
//!   only the gather/scatter kernels below consult the pattern.
//!
//! Column indices are stored **ascending within each row**. Ascending order
//! makes the `k = cols` degenerate pattern reproduce the dense summation
//! order exactly, which is what pins the sparse-vs-dense parity suite
//! bitwise at `top_k = N`.
//!
//! The kernels reuse the thread-local [`crate::scratch`] pool (top-k
//! selection scores) and fan out over row bands with rayon once the
//! arithmetic work clears `SPARSE_PAR_MIN_WORK`. Counters (gated on
//! [`enhancenet_telemetry::enabled`]): `graph.sparse.rows` and
//! `graph.sparse.nnz` (rows / stored entries processed by the spmm-family
//! kernels, batch included) and `graph.sparse.spmm_ns` (wall nanoseconds
//! inside those kernels).

use crate::scratch::with_scratch;
use crate::tensor::Tensor;
use rayon::prelude::*;
use std::time::Instant;

/// At or above this many multiply-adds a sparse kernel forks to rayon.
/// Mirrors the blocked GEMM engine's threshold.
const SPARSE_PAR_MIN_WORK: usize = 1 << 20;
/// Rows per parallel band. Small enough to load-balance ragged rows.
const ROW_BAND: usize = 64;

/// Records one spmm-family dispatch: output rows and stored entries
/// processed (batch included) plus wall time. A single relaxed atomic load
/// when telemetry is disabled.
#[inline]
fn record_spmm(rows: usize, nnz: usize, started: Option<Instant>) {
    if let Some(t0) = started {
        enhancenet_telemetry::count("graph.sparse.rows", rows as u64);
        enhancenet_telemetry::count("graph.sparse.nnz", nnz as u64);
        enhancenet_telemetry::count("graph.sparse.spmm_ns", t0.elapsed().as_nanos() as u64);
    }
}

#[inline]
fn spmm_clock() -> Option<Instant> {
    enhancenet_telemetry::enabled().then(Instant::now)
}

// ===================================================================== CSR

/// A compressed-sparse-row `f32` matrix.
///
/// Used for *constant* sparse operands: distance-based supports, k-NN
/// adjacencies, and their row-normalized transition matrices. Learned
/// (differentiable) sparse values use [`TopkPattern`] + dense value tensors
/// instead, so they stay on the autodiff tape.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// `rows + 1` offsets into `col_idx`/`vals`.
    row_ptr: Vec<usize>,
    /// Column index per stored entry, ascending within each row.
    col_idx: Vec<u32>,
    vals: Vec<f32>,
}

impl CsrMatrix {
    /// Builds from per-row entry lists. Entries are sorted by column;
    /// duplicate columns within a row are rejected.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range or duplicate column indices.
    pub fn from_rows(rows: usize, cols: usize, row_entries: &[Vec<(u32, f32)>]) -> Self {
        assert_eq!(
            row_entries.len(),
            rows,
            "from_rows: {} row lists for {rows} rows",
            row_entries.len()
        );
        let nnz: usize = row_entries.iter().map(Vec::len).sum();
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::with_capacity(nnz);
        let mut vals = Vec::with_capacity(nnz);
        row_ptr.push(0);
        let mut sorted: Vec<(u32, f32)> = Vec::new();
        for (i, entries) in row_entries.iter().enumerate() {
            sorted.clear();
            sorted.extend_from_slice(entries);
            sorted.sort_unstable_by_key(|&(c, _)| c);
            for w in sorted.windows(2) {
                assert_ne!(w[0].0, w[1].0, "duplicate column {} in row {i}", w[0].0);
            }
            for &(c, v) in &sorted {
                assert!(
                    (c as usize) < cols,
                    "column {c} out of range for {cols} columns in row {i}"
                );
                col_idx.push(c);
                vals.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        Self { rows, cols, row_ptr, col_idx, vals }
    }

    /// Builds from a dense matrix, keeping every nonzero entry.
    pub fn from_dense(t: &Tensor) -> Self {
        assert_eq!(t.rank(), 2, "from_dense requires rank 2, got {:?}", t.shape());
        let (rows, cols) = (t.shape()[0], t.shape()[1]);
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut vals = Vec::new();
        row_ptr.push(0);
        for i in 0..rows {
            for j in 0..cols {
                let v = t.data()[i * cols + j];
                if v != 0.0 {
                    col_idx.push(j as u32);
                    vals.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        Self { rows, cols, row_ptr, col_idx, vals }
    }

    /// Builds from the top-`k` entries of each dense row (largest values
    /// first, ties broken toward the smaller column), dropping exact zeros.
    /// Stored columns end up ascending, so `k = cols` reproduces the dense
    /// matrix entry-for-entry.
    pub fn from_topk(t: &Tensor, k: usize) -> Self {
        assert_eq!(t.rank(), 2, "from_topk requires rank 2, got {:?}", t.shape());
        let (rows, cols) = (t.shape()[0], t.shape()[1]);
        let pat = TopkPattern::from_dense_topk(t, k);
        let mut row_entries = Vec::with_capacity(rows);
        for i in 0..rows {
            let entries: Vec<(u32, f32)> = pat
                .row_cols(i)
                .iter()
                .map(|&c| (c, t.data()[i * cols + c as usize]))
                .filter(|&(_, v)| v != 0.0)
                .collect();
            row_entries.push(entries);
        }
        Self::from_rows(rows, cols, &row_entries)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of (logical, dense) columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// The columns and values of row `i` as parallel slices.
    pub fn row(&self, i: usize) -> (&[u32], &[f32]) {
        let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
        (&self.col_idx[lo..hi], &self.vals[lo..hi])
    }

    /// Iterates row `i` as `(column, value)` pairs, ascending by column.
    pub fn iter_row(&self, i: usize) -> impl Iterator<Item = (usize, f32)> + '_ {
        let (cols, vals) = self.row(i);
        cols.iter().zip(vals).map(|(&c, &v)| (c as usize, v))
    }

    /// Mutable view of the stored values (pattern fixed). Used by the graph
    /// crate's row normalization.
    pub fn vals_mut(&mut self) -> &mut [f32] {
        &mut self.vals
    }

    /// The stored values.
    pub fn vals(&self) -> &[f32] {
        &self.vals
    }

    /// The row-pointer array (`rows + 1` offsets).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// The transpose as a new CSR matrix (columns stay ascending).
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.cols + 1];
        for &c in &self.col_idx {
            counts[c as usize + 1] += 1;
        }
        for i in 0..self.cols {
            counts[i + 1] += counts[i];
        }
        let row_ptr = counts.clone();
        let mut col_idx = vec![0u32; self.nnz()];
        let mut vals = vec![0.0f32; self.nnz()];
        let mut next = counts;
        // Row-major scan keeps the transposed columns ascending per row.
        for i in 0..self.rows {
            for (c, v) in self.iter_row(i) {
                let slot = next[c];
                next[c] += 1;
                col_idx[slot] = i as u32;
                vals[slot] = v;
            }
        }
        CsrMatrix { rows: self.cols, cols: self.rows, row_ptr, col_idx, vals }
    }

    /// Materializes the dense `[rows, cols]` matrix.
    pub fn to_dense(&self) -> Tensor {
        let mut out = Tensor::zeros(&[self.rows, self.cols]);
        for i in 0..self.rows {
            for (c, v) in self.iter_row(i) {
                out.data_mut()[i * self.cols + c] = v;
            }
        }
        out
    }

    /// Dense-out sparse × dense product: `x` is `[cols, c]` or
    /// `[b, cols, c]`; the output replaces `cols` with `rows`.
    pub fn spmm(&self, x: &Tensor) -> Tensor {
        let mut out = Tensor::default();
        self.spmm_into(x, &mut out);
        out
    }

    /// [`CsrMatrix::spmm`] into `out` (buffers reused). Parallelizes over
    /// row bands once the work is large enough.
    pub fn spmm_into(&self, x: &Tensor, out: &mut Tensor) {
        let t0 = spmm_clock();
        let (batch, c) = match x.shape() {
            [n, c] => {
                assert_eq!(*n, self.cols, "spmm: {:?} against {} columns", x.shape(), self.cols);
                (1, *c)
            }
            [b, n, c] => {
                assert_eq!(*n, self.cols, "spmm: {:?} against {} columns", x.shape(), self.cols);
                (*b, *c)
            }
            s => panic!("spmm requires rank 2 or 3 signal, got {s:?}"),
        };
        let out_shape: Vec<usize> =
            if x.rank() == 2 { vec![self.rows, c] } else { vec![batch, self.rows, c] };
        out.data.clear();
        out.data.resize(batch * self.rows * c, 0.0);
        out.reset_shape(&out_shape);
        let parallel = batch * self.nnz() * c >= SPARSE_PAR_MIN_WORK;
        for b in 0..batch {
            let xb = &x.data()[b * self.cols * c..(b + 1) * self.cols * c];
            let ob = &mut out.data[b * self.rows * c..(b + 1) * self.rows * c];
            let body = |band_idx: usize, band: &mut [f32]| {
                let r0 = band_idx * ROW_BAND;
                for (r, row_out) in band.chunks_mut(c).enumerate() {
                    for (col, v) in self.iter_row(r0 + r) {
                        let xr = &xb[col * c..col * c + c];
                        for (o, &xv) in row_out.iter_mut().zip(xr) {
                            *o += v * xv;
                        }
                    }
                }
            };
            if parallel {
                ob.par_chunks_mut(ROW_BAND * c).enumerate().for_each(|(bi, band)| body(bi, band));
            } else {
                ob.chunks_mut(ROW_BAND * c).enumerate().for_each(|(bi, band)| body(bi, band));
            }
        }
        record_spmm(batch * self.rows, batch * self.nnz(), t0);
    }
}

// ============================================================ top-k (ELL)

/// The retained column indices of a top-k row sparsification: `k` columns
/// per row, ascending within the row.
///
/// A pattern is built once (per weight version) and shared — via `Arc` —
/// by every tape op that gathers or scatters along it. Values live in
/// ordinary dense tensors `[rows, k]` / `[batch, rows, k]`.
#[derive(Debug, Clone, PartialEq)]
pub struct TopkPattern {
    rows: usize,
    cols: usize,
    k: usize,
    /// `rows * k` column indices, ascending within each row.
    col_idx: Vec<u32>,
}

impl TopkPattern {
    /// Builds the exact top-`k` pattern of a score matrix produced row by
    /// row: `fill(i, buf)` must write all `cols` scores of row `i` into
    /// `buf`. Selection keeps the `k` largest scores (ties break toward the
    /// smaller column), then stores the survivors ascending.
    ///
    /// **Dead rows** — rows whose maximum score is ≤ 0 (everything pruned
    /// by an upstream ReLU) — retain their own diagonal column plus the
    /// smallest filler columns, so the masked-softmax self-loop fallback
    /// always has a slot to land in.
    ///
    /// Score buffers come from the thread-local scratch pool; rows are
    /// processed in parallel bands when the total work is large.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ k ≤ cols` and `rows ≤ cols` (the diagonal
    /// fallback needs column `i` to exist for every row `i`).
    pub fn from_scores(
        rows: usize,
        cols: usize,
        k: usize,
        fill: impl Fn(usize, &mut [f32]) + Sync,
    ) -> Self {
        assert!(k >= 1 && k <= cols, "top_k must be in 1..={cols}, got {k}");
        assert!(rows <= cols, "top-k pattern requires rows ({rows}) <= cols ({cols})");
        let mut col_idx = vec![0u32; rows * k];
        let parallel = rows.saturating_mul(cols) >= SPARSE_PAR_MIN_WORK;
        let body = |band_idx: usize, band: &mut [u32]| {
            let r0 = band_idx * ROW_BAND;
            let mut order: Vec<u32> = Vec::with_capacity(cols);
            with_scratch(cols, |scores| {
                for (r, out_cols) in band.chunks_mut(k).enumerate() {
                    let i = r0 + r;
                    fill(i, scores);
                    select_topk_row(i, scores, k, &mut order, out_cols);
                }
            });
        };
        if parallel {
            col_idx.par_chunks_mut(ROW_BAND * k).enumerate().for_each(|(bi, band)| body(bi, band));
        } else {
            col_idx.chunks_mut(ROW_BAND * k).enumerate().for_each(|(bi, band)| body(bi, band));
        }
        Self { rows, cols, k, col_idx }
    }

    /// Top-`k` pattern of a dense score matrix.
    pub fn from_dense_topk(t: &Tensor, k: usize) -> Self {
        assert_eq!(t.rank(), 2, "from_dense_topk requires rank 2, got {:?}", t.shape());
        let (rows, cols) = (t.shape()[0], t.shape()[1]);
        let data = t.data();
        Self::from_scores(rows, cols, k, |i, buf| {
            buf.copy_from_slice(&data[i * cols..(i + 1) * cols]);
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of (logical, dense) columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Retained columns per row.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Total retained entries (`rows * k`).
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// The retained columns of row `i`, ascending.
    pub fn row_cols(&self, i: usize) -> &[u32] {
        &self.col_idx[i * self.k..(i + 1) * self.k]
    }

    /// A `[rows, k]` tensor with 1 where the retained column equals the row
    /// index (a self-loop slot) and 0 elsewhere. Multiplying it by
    /// `1 − rowsum(masked_softmax)` realizes the dead-row self-loop
    /// fallback without leaving the tape.
    pub fn self_indicator(&self) -> Tensor {
        let mut out = Tensor::zeros(&[self.rows, self.k]);
        for i in 0..self.rows {
            for (j, &c) in self.row_cols(i).iter().enumerate() {
                if c as usize == i {
                    out.data_mut()[i * self.k + j] = 1.0;
                }
            }
        }
        out
    }

    /// Scatters pattern values (`[rows, k]` or `[batch, rows, k]`) into a
    /// dense `[.., rows, cols]` tensor — the densified sparse operand, used
    /// by parity tests and the probe.
    pub fn scatter_to_dense(&self, vals: &Tensor) -> Tensor {
        let batch = match vals.shape() {
            [r, k] => {
                assert_eq!((*r, *k), (self.rows, self.k), "vals {:?} off-pattern", vals.shape());
                1
            }
            [b, r, k] => {
                assert_eq!((*r, *k), (self.rows, self.k), "vals {:?} off-pattern", vals.shape());
                *b
            }
            s => panic!("scatter_to_dense requires rank 2 or 3 values, got {s:?}"),
        };
        let mut shape = vals.shape().to_vec();
        *shape.last_mut().unwrap() = self.cols;
        let mut out = Tensor::zeros(&shape);
        for b in 0..batch {
            for i in 0..self.rows {
                for (j, &c) in self.row_cols(i).iter().enumerate() {
                    out.data_mut()[(b * self.rows + i) * self.cols + c as usize] =
                        vals.data()[(b * self.rows + i) * self.k + j];
                }
            }
        }
        out
    }
}

/// Exact top-k selection for one row of scores. Keeps the `k` largest
/// (value descending, ties toward the smaller column), except for dead rows
/// (max ≤ 0) which keep the diagonal plus smallest fillers. Output columns
/// are ascending.
fn select_topk_row(row: usize, scores: &[f32], k: usize, order: &mut Vec<u32>, out: &mut [u32]) {
    let n = scores.len();
    let dead = scores.iter().all(|&s| s <= 0.0);
    if dead {
        // Diagonal first, then the smallest other columns.
        let mut w = 0;
        out[w] = row as u32;
        w += 1;
        let mut c = 0u32;
        while w < k {
            if c as usize != row {
                out[w] = c;
                w += 1;
            }
            c += 1;
        }
    } else {
        order.clear();
        order.extend(0..n as u32);
        let cmp = |&a: &u32, &b: &u32| {
            scores[b as usize]
                .partial_cmp(&scores[a as usize])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        };
        if k < n {
            order.select_nth_unstable_by(k - 1, cmp);
        }
        out.copy_from_slice(&order[..k]);
    }
    out.sort_unstable();
}

// ==================================================== pattern kernels

/// Asserts `t` is `[.., rows, inner]` on `pat`'s rows, returning the batch.
fn pattern_batch(t: &Tensor, pat: &TopkPattern, inner: usize, what: &str) -> usize {
    match t.shape() {
        [r, i] if *r == pat.rows() && *i == inner => 1,
        [b, r, i] if *r == pat.rows() && *i == inner => *b,
        s => panic!("{what}: shape {s:?} does not match pattern rows {} × {inner}", pat.rows()),
    }
}

/// Pattern-restricted score gather: `out[.., i, j] = ⟨a[.., i, :], b[.., cols(i,j), :]⟩`.
///
/// `a` is `[rows, e]` / `[batch, rows, e]`, `b` is `[cols, e]` /
/// `[batch, cols, e]` (ranks must match); `out` is `[.., rows, k]`. This is
/// both the forward of the pattern-restricted attention scores and the
/// value-gradient of [`topk_spmm_into`].
pub fn topk_gather_dot_into(a: &Tensor, b: &Tensor, pat: &TopkPattern, out: &mut Tensor) {
    let e = *a.shape().last().expect("gather: scalar operand");
    assert_eq!(a.rank(), b.rank(), "gather: rank {} vs {}", a.rank(), b.rank());
    let batch = pattern_batch(a, pat, e, "topk_gather_dot a");
    let bn = b.shape()[b.rank() - 2];
    assert_eq!(bn, pat.cols(), "gather: b has {bn} rows for pattern cols {}", pat.cols());
    assert_eq!(*b.shape().last().unwrap(), e, "gather: inner dims differ");
    let (rows, k) = (pat.rows(), pat.k());
    let mut shape = a.shape().to_vec();
    *shape.last_mut().unwrap() = k;
    out.data.clear();
    out.data.resize(batch * rows * k, 0.0);
    out.reset_shape(&shape);
    let parallel = batch * rows * k * e >= SPARSE_PAR_MIN_WORK;
    for bt in 0..batch {
        let ab = &a.data()[bt * rows * e..(bt + 1) * rows * e];
        let bb = &b.data()[bt * pat.cols() * e..(bt + 1) * pat.cols() * e];
        let ob = &mut out.data[bt * rows * k..(bt + 1) * rows * k];
        let body = |band_idx: usize, band: &mut [f32]| {
            let r0 = band_idx * ROW_BAND;
            for (r, row_out) in band.chunks_mut(k).enumerate() {
                let i = r0 + r;
                let ai = &ab[i * e..(i + 1) * e];
                for (j, &c) in pat.row_cols(i).iter().enumerate() {
                    let bc = &bb[c as usize * e..(c as usize + 1) * e];
                    row_out[j] = ai.iter().zip(bc).map(|(&x, &y)| x * y).sum();
                }
            }
        };
        if parallel {
            ob.par_chunks_mut(ROW_BAND * k).enumerate().for_each(|(bi, band)| body(bi, band));
        } else {
            ob.chunks_mut(ROW_BAND * k).enumerate().for_each(|(bi, band)| body(bi, band));
        }
    }
}

/// Batch-summed variant of [`topk_gather_dot_into`]: `a`/`b` are rank 3,
/// `out` is `[rows, k]` with the batch axis reduced. This is the
/// value-gradient of a broadcast (rank-2 values) [`topk_spmm_into`].
pub fn topk_gather_dot_reduce_into(a: &Tensor, b: &Tensor, pat: &TopkPattern, out: &mut Tensor) {
    assert_eq!(a.rank(), 3, "gather_reduce: rank-3 operands required, got {:?}", a.shape());
    let e = *a.shape().last().unwrap();
    let batch = pattern_batch(a, pat, e, "topk_gather_dot_reduce a");
    let (rows, k) = (pat.rows(), pat.k());
    out.data.clear();
    out.data.resize(rows * k, 0.0);
    out.reset_shape(&[rows, k]);
    for bt in 0..batch {
        let ab = &a.data()[bt * rows * e..(bt + 1) * rows * e];
        let bb = &b.data()[bt * pat.cols() * e..(bt + 1) * pat.cols() * e];
        for i in 0..rows {
            let ai = &ab[i * e..(i + 1) * e];
            for (j, &c) in pat.row_cols(i).iter().enumerate() {
                let bc = &bb[c as usize * e..(c as usize + 1) * e];
                let dot: f32 = ai.iter().zip(bc).map(|(&x, &y)| x * y).sum();
                out.data[i * k + j] += dot;
            }
        }
    }
}

/// Dense-out product of pattern values with a dense signal:
/// `out[.., i, :] = Σⱼ vals[.., i, j] · x[.., cols(i,j), :]`.
///
/// `vals` is `[rows, k]` or `[batch, rows, k]`; `x` is `[cols, c]` or
/// `[batch, cols, c]`. Rank-2 values broadcast over a batched signal. This
/// is both the forward sparse support application and the left-gradient of
/// [`topk_gather_dot_into`].
pub fn topk_spmm_into(vals: &Tensor, x: &Tensor, pat: &TopkPattern, out: &mut Tensor) {
    let t0 = spmm_clock();
    let k = pat.k();
    let vals_batch = pattern_batch(vals, pat, k, "topk_spmm vals");
    let c = *x.shape().last().expect("spmm: scalar signal");
    let (batch, x3) = match x.shape() {
        [n, cc] if *n == pat.cols() && *cc == c => (1, false),
        [b, n, cc] if *n == pat.cols() && *cc == c => (*b, true),
        s => panic!("topk_spmm: signal {s:?} does not match pattern cols {}", pat.cols()),
    };
    assert!(
        vals_batch == 1 || vals_batch == batch,
        "topk_spmm: values batch {vals_batch} vs signal batch {batch}"
    );
    let rows = pat.rows();
    let out_shape: Vec<usize> = if x3 { vec![batch, rows, c] } else { vec![rows, c] };
    out.data.clear();
    out.data.resize(batch * rows * c, 0.0);
    out.reset_shape(&out_shape);
    let parallel = batch * rows * k * c >= SPARSE_PAR_MIN_WORK;
    for bt in 0..batch {
        let vb = if vals_batch == 1 {
            vals.data()
        } else {
            &vals.data()[bt * rows * k..(bt + 1) * rows * k]
        };
        let xb = &x.data()[bt * pat.cols() * c..(bt + 1) * pat.cols() * c];
        let ob = &mut out.data[bt * rows * c..(bt + 1) * rows * c];
        let body = |band_idx: usize, band: &mut [f32]| {
            let r0 = band_idx * ROW_BAND;
            for (r, row_out) in band.chunks_mut(c).enumerate() {
                let i = r0 + r;
                for (j, &col) in pat.row_cols(i).iter().enumerate() {
                    let v = vb[i * k + j];
                    let xr = &xb[col as usize * c..(col as usize + 1) * c];
                    for (o, &xv) in row_out.iter_mut().zip(xr) {
                        *o += v * xv;
                    }
                }
            }
        };
        if parallel {
            ob.par_chunks_mut(ROW_BAND * c).enumerate().for_each(|(bi, band)| body(bi, band));
        } else {
            ob.chunks_mut(ROW_BAND * c).enumerate().for_each(|(bi, band)| body(bi, band));
        }
    }
    record_spmm(batch * rows, batch * rows * k, t0);
}

/// Scatter-adjoint of [`topk_spmm_into`]:
/// `out[.., cols(i,j), :] += vals[.., i, j] · src[.., i, :]`, `out` zeroed
/// first to shape `[.., pat.cols, c]`.
///
/// This is the signal-gradient of the sparse support application and the
/// right-gradient of [`topk_gather_dot_into`] — gradients land **only** in
/// the retained entries' columns. Rows race on the output, so the kernel
/// stays serial over rows and parallelizes over the batch.
pub fn topk_scatter_into(vals: &Tensor, src: &Tensor, pat: &TopkPattern, out: &mut Tensor) {
    let k = pat.k();
    let vals_batch = pattern_batch(vals, pat, k, "topk_scatter vals");
    let c = *src.shape().last().expect("scatter: scalar source");
    let batch = pattern_batch(src, pat, c, "topk_scatter src");
    assert!(
        vals_batch == 1 || vals_batch == batch,
        "topk_scatter: values batch {vals_batch} vs source batch {batch}"
    );
    let rows = pat.rows();
    let mut out_shape = src.shape().to_vec();
    out_shape[src.rank() - 2] = pat.cols();
    out.data.clear();
    out.data.resize(batch * pat.cols() * c, 0.0);
    out.reset_shape(&out_shape);
    let parallel = batch > 1 && batch * rows * k * c >= SPARSE_PAR_MIN_WORK;
    let body = |bt: usize, ob: &mut [f32]| {
        let vb = if vals_batch == 1 {
            vals.data()
        } else {
            &vals.data()[bt * rows * k..(bt + 1) * rows * k]
        };
        let sb = &src.data()[bt * rows * c..(bt + 1) * rows * c];
        for i in 0..rows {
            let sr = &sb[i * c..(i + 1) * c];
            for (j, &col) in pat.row_cols(i).iter().enumerate() {
                let v = vb[i * k + j];
                let or = &mut ob[col as usize * c..(col as usize + 1) * c];
                for (o, &sv) in or.iter_mut().zip(sr) {
                    *o += v * sv;
                }
            }
        }
    };
    if parallel {
        out.data.par_chunks_mut(pat.cols() * c).enumerate().for_each(|(bt, ob)| body(bt, ob));
    } else {
        out.data.chunks_mut(pat.cols() * c).enumerate().for_each(|(bt, ob)| body(bt, ob));
    }
}

/// Masked, renormalized softmax over the **last axis**: entries whose mask
/// is > 0 get `exp(logit − max)` renormalized over the surviving set;
/// masked entries are exactly 0; fully masked slices collapse to all
/// zeros (callers add an explicit fallback, e.g. a self-loop).
///
/// `logits` and `mask` must share a shape. This replaces the plain softmax
/// in `Damgn::static_b`, where a ReLU-pruned row previously densified into
/// a uniform `1/N` row.
pub fn masked_softmax_into(logits: &Tensor, mask: &Tensor, out: &mut Tensor) {
    assert_eq!(
        logits.shape(),
        mask.shape(),
        "masked_softmax: logits {:?} vs mask {:?}",
        logits.shape(),
        mask.shape()
    );
    assert!(logits.rank() >= 1, "masked_softmax requires rank >= 1");
    let inner = *logits.shape().last().unwrap();
    let outer = logits.numel() / inner.max(1);
    out.data.clear();
    out.data.resize(logits.numel(), 0.0);
    out.reset_shape(logits.shape());
    for o in 0..outer {
        let base = o * inner;
        let lg = &logits.data()[base..base + inner];
        let mk = &mask.data()[base..base + inner];
        let ot = &mut out.data[base..base + inner];
        let mut mx = f32::NEG_INFINITY;
        for (l, m) in lg.iter().zip(mk) {
            if *m > 0.0 {
                mx = mx.max(*l);
            }
        }
        if mx == f32::NEG_INFINITY {
            continue; // fully masked slice: all zeros
        }
        let mut denom = 0.0f32;
        for ((l, m), v) in lg.iter().zip(mk).zip(ot.iter_mut()) {
            if *m > 0.0 {
                let e = (l - mx).exp();
                *v = e;
                denom += e;
            }
        }
        for v in ot.iter_mut() {
            *v /= denom;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense(rows: &[&[f32]]) -> Tensor {
        Tensor::from_rows(&rows.iter().map(|r| r.to_vec()).collect::<Vec<_>>())
    }

    #[test]
    fn csr_from_dense_roundtrip() {
        let d = dense(&[&[0.0, 2.0, 0.0], &[1.0, 0.0, 3.0], &[0.0, 0.0, 0.0]]);
        let s = CsrMatrix::from_dense(&d);
        assert_eq!(s.nnz(), 3);
        assert_eq!(s.rows(), 3);
        assert_eq!(s.cols(), 3);
        assert!(s.to_dense().allclose(&d, 0.0));
        assert_eq!(s.iter_row(1).collect::<Vec<_>>(), vec![(0, 1.0), (2, 3.0)]);
    }

    #[test]
    fn csr_transpose_matches_dense_transpose() {
        let d = dense(&[&[0.0, 2.0, 0.0, 5.0], &[1.0, 0.0, 3.0, 0.0]]);
        let t = CsrMatrix::from_dense(&d).transpose();
        assert_eq!(t.rows(), 4);
        assert_eq!(t.cols(), 2);
        assert!(t.to_dense().allclose(&d.transpose(), 0.0));
    }

    #[test]
    fn csr_spmm_matches_dense_matmul() {
        let d = dense(&[&[0.0, 2.0, 0.0], &[1.0, 0.0, 3.0]]);
        let x = Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[3, 2]);
        let s = CsrMatrix::from_dense(&d);
        assert!(s.spmm(&x).allclose(&d.matmul(&x), 0.0));
        // Batched signal.
        let xb = Tensor::from_vec((0..12).map(|v| v as f32 - 5.0).collect(), &[2, 3, 2]);
        let yb = s.spmm(&xb);
        assert_eq!(yb.shape(), &[2, 2, 2]);
        assert!(yb.allclose(&d.matmul_broadcast_left(&xb), 0.0));
    }

    #[test]
    fn csr_from_rows_sorts_and_rejects_duplicates() {
        let s = CsrMatrix::from_rows(1, 4, &[vec![(3, 1.0), (0, 2.0)]]);
        assert_eq!(s.row(0).0, &[0, 3]);
        let bad =
            std::panic::catch_unwind(|| CsrMatrix::from_rows(1, 4, &[vec![(1, 1.0), (1, 2.0)]]));
        assert!(bad.is_err());
    }

    #[test]
    fn topk_selects_largest_with_ascending_columns() {
        let d = dense(&[&[0.1, 5.0, 3.0, 4.0], &[9.0, 0.2, 8.0, 0.3]]);
        let p = TopkPattern::from_dense_topk(&d, 2);
        assert_eq!(p.row_cols(0), &[1, 3]);
        assert_eq!(p.row_cols(1), &[0, 2]);
    }

    #[test]
    fn topk_ties_break_toward_smaller_column() {
        let d = dense(&[&[2.0, 2.0, 2.0, 1.0]]);
        let p = TopkPattern::from_dense_topk(&d, 2);
        assert_eq!(p.row_cols(0), &[0, 1]);
    }

    #[test]
    fn topk_dead_row_keeps_diagonal() {
        let d = dense(&[&[0.0, 0.0, 0.0], &[0.0, 0.0, 7.0], &[0.0, 0.0, 0.0]]);
        let p = TopkPattern::from_dense_topk(&d, 2);
        assert_eq!(p.row_cols(0), &[0, 1]);
        assert_eq!(p.row_cols(2), &[0, 2]); // diagonal 2 retained
        assert_eq!(p.self_indicator().at(&[2, 1]), 1.0);
        assert_eq!(p.self_indicator().at(&[0, 0]), 1.0);
    }

    #[test]
    fn topk_full_width_is_identity_pattern() {
        let d = dense(&[&[3.0, 1.0, 2.0], &[0.5, 0.25, 0.75], &[1.0, 1.0, 1.0]]);
        let p = TopkPattern::from_dense_topk(&d, 3);
        for i in 0..3 {
            assert_eq!(p.row_cols(i), &[0, 1, 2]);
        }
        let s = CsrMatrix::from_topk(&d, 3);
        assert!(s.to_dense().allclose(&d, 0.0));
    }

    #[test]
    fn gather_dot_matches_dense_scores() {
        let a = Tensor::from_vec((0..8).map(|v| v as f32 - 3.0).collect(), &[4, 2]);
        let b = Tensor::from_vec((0..8).map(|v| (v % 3) as f32).collect(), &[4, 2]);
        let scores = a.matmul_nt(&b); // [4, 4]
        let p = TopkPattern::from_dense_topk(&scores, 4);
        let mut out = Tensor::default();
        topk_gather_dot_into(&a, &b, &p, &mut out);
        assert!(out.allclose(&scores, 0.0));
    }

    #[test]
    fn gather_dot_batched_matches_bmm_nt() {
        let a = Tensor::from_vec((0..12).map(|v| v as f32 - 5.0).collect(), &[2, 3, 2]);
        let b = Tensor::from_vec((0..12).map(|v| (v % 4) as f32).collect(), &[2, 3, 2]);
        let scores = a.bmm_nt(&b); // [2, 3, 3]
        let p = TopkPattern::from_scores(3, 3, 3, |i, buf| {
            buf.copy_from_slice(&scores.data()[i * 3..(i + 1) * 3]);
        });
        let mut out = Tensor::default();
        topk_gather_dot_into(&a, &b, &p, &mut out);
        assert!(out.allclose(&scores, 0.0));
    }

    #[test]
    fn spmm_full_pattern_matches_dense_bitwise() {
        // Integer-valued inputs: both paths compute exact sums, so the
        // full-width pattern must reproduce the dense product bitwise.
        let w = dense(&[&[1.0, -2.0, 3.0], &[0.0, 4.0, -1.0], &[2.0, 2.0, 2.0]]);
        let x = Tensor::from_vec((0..6).map(|v| v as f32 - 2.0).collect(), &[3, 2]);
        let p = TopkPattern::from_dense_topk(&w, 3);
        let vals = {
            let mut v = Tensor::zeros(&[3, 3]);
            for i in 0..3 {
                for (j, &c) in p.row_cols(i).iter().enumerate() {
                    v.data_mut()[i * 3 + j] = w.at(&[i, c as usize]);
                }
            }
            v
        };
        let mut out = Tensor::default();
        topk_spmm_into(&vals, &x, &p, &mut out);
        let reference = w.matmul(&x);
        assert_eq!(out.data(), reference.data());
    }

    #[test]
    fn spmm_broadcast_vals_over_batched_signal() {
        let w = dense(&[&[1.0, 0.0], &[3.0, -1.0]]);
        let p = TopkPattern::from_dense_topk(&w, 2);
        let vals = Tensor::from_vec(vec![1.0, 0.0, 3.0, -1.0], &[2, 2]);
        let x = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[3, 2, 2]);
        let mut out = Tensor::default();
        topk_spmm_into(&vals, &x, &p, &mut out);
        assert!(out.allclose(&w.matmul_broadcast_left(&x), 0.0));
    }

    #[test]
    fn scatter_is_adjoint_of_spmm() {
        // ⟨spmm(vals, x), s⟩ == ⟨x, scatter(vals, s)⟩ for any s.
        let w = dense(&[&[1.0, 2.0, 0.0], &[0.0, -1.0, 3.0], &[4.0, 0.0, 1.0]]);
        let p = TopkPattern::from_dense_topk(&w, 2);
        let vals = Tensor::from_vec((1..=6).map(|v| v as f32).collect(), &[3, 2]);
        let x = Tensor::from_vec((0..6).map(|v| v as f32 - 2.0).collect(), &[3, 2]);
        let s = Tensor::from_vec((0..6).map(|v| (v % 3) as f32 + 1.0).collect(), &[3, 2]);
        let mut y = Tensor::default();
        topk_spmm_into(&vals, &x, &p, &mut y);
        let mut xt = Tensor::default();
        topk_scatter_into(&vals, &s, &p, &mut xt);
        let lhs: f32 = y.data().iter().zip(s.data()).map(|(a, b)| a * b).sum();
        let rhs: f32 = x.data().iter().zip(xt.data()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-4, "{lhs} vs {rhs}");
    }

    #[test]
    fn gather_reduce_sums_batches() {
        let a = Tensor::ones(&[2, 3, 2]);
        let b = Tensor::ones(&[2, 3, 2]);
        let p = TopkPattern::from_dense_topk(&Tensor::ones(&[3, 3]), 2);
        let mut out = Tensor::default();
        topk_gather_dot_reduce_into(&a, &b, &p, &mut out);
        assert_eq!(out.shape(), &[3, 2]);
        // Each dot is 2 (inner dim), summed over 2 batches = 4.
        assert!(out.allclose(&Tensor::full(&[3, 2], 4.0), 0.0));
    }

    #[test]
    fn masked_softmax_renormalizes_over_survivors() {
        let lg = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 4]);
        let mk = Tensor::from_vec(vec![1.0, 0.0, 1.0, 0.0], &[1, 4]);
        let mut out = Tensor::default();
        masked_softmax_into(&lg, &mk, &mut out);
        assert_eq!(out.data()[1], 0.0);
        assert_eq!(out.data()[3], 0.0);
        let sum = out.data()[0] + out.data()[2];
        assert!((sum - 1.0).abs() < 1e-6);
        // Survivors keep softmax ratios: e^1 / e^3.
        assert!((out.data()[0] / out.data()[2] - (-2.0f32).exp()).abs() < 1e-6);
    }

    #[test]
    fn masked_softmax_fully_masked_row_is_zero_not_uniform() {
        let lg = Tensor::from_vec(vec![0.0, 0.0, 0.0, 5.0, 1.0, 0.0], &[2, 3]);
        let mk = lg.clone();
        let mut out = Tensor::default();
        masked_softmax_into(&lg, &mk, &mut out);
        assert_eq!(&out.data()[..3], &[0.0, 0.0, 0.0], "dead row must stay empty");
        let live: f32 = out.data()[3..].iter().sum();
        assert!((live - 1.0).abs() < 1e-6);
        assert_eq!(out.data()[5], 0.0);
    }

    #[test]
    fn masked_softmax_unmasked_matches_plain_softmax() {
        let lg = Tensor::from_vec(vec![0.5, 1.5, -1.0, 2.0, 0.0, 1.0], &[2, 3]);
        let mk = Tensor::ones(&[2, 3]);
        let mut out = Tensor::default();
        masked_softmax_into(&lg, &mk, &mut out);
        assert!(out.allclose(&lg.softmax(-1), 1e-7));
    }

    #[test]
    fn scatter_to_dense_inverts_gather() {
        let w = dense(&[&[0.0, 7.0, 0.0], &[5.0, 0.0, 6.0], &[0.0, 0.0, 9.0]]);
        let p = TopkPattern::from_dense_topk(&w, 1);
        let mut vals = Tensor::zeros(&[3, 1]);
        for i in 0..3 {
            vals.data_mut()[i] = w.at(&[i, p.row_cols(i)[0] as usize]);
        }
        let d = p.scatter_to_dense(&vals);
        assert_eq!(d.at(&[0, 1]), 7.0);
        assert_eq!(d.at(&[1, 2]), 6.0);
        assert_eq!(d.at(&[2, 2]), 9.0);
        assert_eq!(d.at(&[0, 0]), 0.0);
    }
}
