//! Shape manipulation: reshape, transpose, permute, concat, slice, stack,
//! padding, and axis selection. All operations materialize a new tensor.

use crate::shape::{broadcast_strides_array, normalize_axis, Shape, MAX_RANK};
use crate::tensor::Tensor;

impl Tensor {
    /// Reinterprets the buffer with a new shape of equal element count.
    ///
    /// One axis may be `usize::MAX` to mean "infer this dimension".
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        let mut dims = shape.to_vec();
        if let Some(pos) = dims.iter().position(|&d| d == usize::MAX) {
            let known: usize = dims.iter().filter(|&&d| d != usize::MAX).product();
            assert!(
                known > 0 && self.numel() % known == 0,
                "cannot infer axis: numel {} not divisible by {:?}",
                self.numel(),
                shape
            );
            dims[pos] = self.numel() / known;
        }
        assert_eq!(
            Shape::numel(&dims),
            self.numel(),
            "reshape {:?} -> {:?} changes element count",
            self.shape,
            shape
        );
        Tensor { shape: dims, data: self.data.clone() }
    }

    /// [`Tensor::reshape`] into `out` (buffers reused, allocation-free when
    /// warm). One axis may be `usize::MAX` to mean "infer this dimension".
    pub fn reshape_into(&self, shape: &[usize], out: &mut Tensor) {
        assert!(shape.len() <= MAX_RANK, "reshape rank {} exceeds {MAX_RANK}", shape.len());
        let mut dims = [0usize; MAX_RANK];
        dims[..shape.len()].copy_from_slice(shape);
        let dims = &mut dims[..shape.len()];
        if let Some(pos) = dims.iter().position(|&d| d == usize::MAX) {
            let known: usize = dims.iter().filter(|&&d| d != usize::MAX).product();
            assert!(
                known > 0 && self.numel() % known == 0,
                "cannot infer axis: numel {} not divisible by {:?}",
                self.numel(),
                shape
            );
            dims[pos] = self.numel() / known;
        }
        assert_eq!(
            Shape::numel(dims),
            self.numel(),
            "reshape {:?} -> {:?} changes element count",
            self.shape,
            shape
        );
        out.copy_from_with_shape(dims, &self.data);
    }

    /// 2-D transpose.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "transpose expects rank 2, got {:?}", self.shape);
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor::from_vec(out, &[n, m])
    }

    /// General axis permutation (`perm` is a permutation of `0..rank`).
    pub fn permute(&self, perm: &[usize]) -> Tensor {
        let mut out = Tensor::default();
        self.permute_into(perm, &mut out);
        out
    }

    /// [`Tensor::permute`] into `out`; the index walk uses stack buffers so
    /// warm executions stay allocation-free.
    pub fn permute_into(&self, perm: &[usize], out: &mut Tensor) {
        assert_eq!(perm.len(), self.rank(), "permute rank mismatch");
        let rank = perm.len();
        assert!(rank <= MAX_RANK, "permute rank {rank} exceeds {MAX_RANK}");
        let mut seen = [false; MAX_RANK];
        for &p in perm {
            assert!(p < rank && !seen[p], "invalid permutation {perm:?}");
            seen[p] = true;
        }
        let mut out_shape = [0usize; MAX_RANK];
        let mut in_strides = [1usize; MAX_RANK];
        for i in (0..rank.saturating_sub(1)).rev() {
            in_strides[i] = in_strides[i + 1] * self.shape[i + 1];
        }
        let mut perm_strides = [0usize; MAX_RANK];
        for (ax, &p) in perm.iter().enumerate() {
            out_shape[ax] = self.shape[p];
            perm_strides[ax] = in_strides[p];
        }
        let numel = self.numel();
        out.reset_for(&out_shape[..rank]);
        let mut idx = [0usize; MAX_RANK];
        let mut off = 0usize;
        for _ in 0..numel {
            out.data.push(self.data[off]);
            for ax in (0..rank).rev() {
                idx[ax] += 1;
                off += perm_strides[ax];
                if idx[ax] < out_shape[ax] {
                    break;
                }
                off -= perm_strides[ax] * idx[ax];
                idx[ax] = 0;
            }
        }
    }

    /// Batched transpose of the last two axes of a rank-3 tensor.
    pub fn transpose_batched(&self) -> Tensor {
        assert_eq!(self.rank(), 3, "transpose_batched expects rank 3");
        self.permute(&[0, 2, 1])
    }

    /// Concatenates tensors along `axis`. All other axes must agree.
    pub fn concat(parts: &[&Tensor], axis: isize) -> Tensor {
        let mut out = Tensor::default();
        Tensor::concat_into(parts.iter().copied(), axis, &mut out);
        out
    }

    /// [`Tensor::concat`] into `out`, taking the parts as a re-iterable
    /// (`Clone`) iterator so hot callers need not materialize a `Vec<&Tensor>`.
    pub fn concat_into<'a, I>(parts: I, axis: isize, out: &mut Tensor)
    where
        I: Iterator<Item = &'a Tensor> + Clone,
    {
        let first = parts.clone().next().expect("concat of zero tensors");
        let rank = first.rank();
        assert!(rank <= MAX_RANK, "concat rank {rank} exceeds {MAX_RANK}");
        let ax = normalize_axis(axis, rank);
        let mut out_shape = [0usize; MAX_RANK];
        out_shape[..rank].copy_from_slice(&first.shape);
        let mut axis_total = 0usize;
        for p in parts.clone() {
            assert_eq!(p.rank(), rank, "concat rank mismatch");
            for d in 0..rank {
                if d != ax {
                    assert_eq!(
                        p.shape[d],
                        out_shape[d],
                        "concat shape mismatch on axis {d}: {:?} vs {:?}",
                        p.shape,
                        &out_shape[..rank]
                    );
                }
            }
            axis_total += p.shape[ax];
        }
        out_shape[ax] = axis_total;
        let out_shape = &out_shape[..rank];
        let outer: usize = out_shape[..ax].iter().product();
        let inner: usize = out_shape[ax + 1..].iter().product();
        out.reset_for(out_shape);
        for o in 0..outer {
            for p in parts.clone() {
                let len = p.shape[ax] * inner;
                out.data.extend_from_slice(&p.data[o * len..(o + 1) * len]);
            }
        }
    }

    /// Stacks same-shaped tensors along a new leading axis.
    pub fn stack(parts: &[&Tensor]) -> Tensor {
        let mut out = Tensor::default();
        Tensor::stack_into(parts.iter().copied(), &mut out);
        out
    }

    /// [`Tensor::stack`] into `out` from a re-iterable iterator of parts —
    /// the serving worker assembles request batches through this without
    /// allocating when warm.
    pub fn stack_into<'a, I>(parts: I, out: &mut Tensor)
    where
        I: Iterator<Item = &'a Tensor> + Clone,
    {
        let first = parts.clone().next().expect("stack of zero tensors");
        let rank = first.rank();
        assert!(rank < MAX_RANK, "stack rank {} exceeds {MAX_RANK}", rank + 1);
        let mut shape = [0usize; MAX_RANK];
        shape[1..=rank].copy_from_slice(&first.shape);
        let mut count = 0usize;
        for p in parts.clone() {
            assert_eq!(p.shape, first.shape, "stack requires identical shapes");
            count += 1;
        }
        shape[0] = count;
        out.reset_for(&shape[..=rank]);
        for p in parts {
            out.data.extend_from_slice(&p.data);
        }
    }

    /// Copies the half-open range `[start, stop)` along `axis`.
    pub fn slice_axis(&self, axis: isize, start: usize, stop: usize) -> Tensor {
        let mut out = Tensor::default();
        self.slice_axis_into(axis, start, stop, &mut out);
        out
    }

    /// [`Tensor::slice_axis`] into `out` (buffers reused).
    pub fn slice_axis_into(&self, axis: isize, start: usize, stop: usize, out: &mut Tensor) {
        let ax = normalize_axis(axis, self.rank());
        assert!(
            start <= stop && stop <= self.shape[ax],
            "slice [{start},{stop}) out of bounds for axis {ax} with size {}",
            self.shape[ax]
        );
        let rank = self.rank();
        assert!(rank <= MAX_RANK, "slice rank {rank} exceeds {MAX_RANK}");
        let outer: usize = self.shape[..ax].iter().product();
        let inner: usize = self.shape[ax + 1..].iter().product();
        let axis_len = self.shape[ax];
        let mut out_shape = [0usize; MAX_RANK];
        out_shape[..rank].copy_from_slice(&self.shape);
        out_shape[ax] = stop - start;
        out.reset_for(&out_shape[..rank]);
        for o in 0..outer {
            let base = (o * axis_len + start) * inner;
            out.data.extend_from_slice(&self.data[base..base + (stop - start) * inner]);
        }
    }

    /// Selects a single index along `axis`, removing that axis.
    pub fn index_axis(&self, axis: isize, index: usize) -> Tensor {
        let ax = normalize_axis(axis, self.rank());
        let mut t = self.slice_axis(axis, index, index + 1);
        t.shape.remove(ax);
        t
    }

    /// Adds a new axis of length 1 at `axis`.
    pub fn unsqueeze(&self, axis: isize) -> Tensor {
        let rank = self.rank();
        let ax = if axis < 0 { (axis + rank as isize + 1) as usize } else { axis as usize };
        assert!(ax <= rank, "unsqueeze axis {axis} out of range for rank {rank}");
        let mut shape = self.shape.clone();
        shape.insert(ax, 1);
        Tensor { shape, data: self.data.clone() }
    }

    /// Removes an axis of length 1 at `axis`.
    pub fn squeeze(&self, axis: isize) -> Tensor {
        let ax = normalize_axis(axis, self.rank());
        assert_eq!(self.shape[ax], 1, "squeeze axis {ax} has size {}", self.shape[ax]);
        let mut shape = self.shape.clone();
        shape.remove(ax);
        Tensor { shape, data: self.data.clone() }
    }

    /// Left-pads `axis` with `count` copies of `value` (causal padding for
    /// dilated convolutions).
    pub fn pad_axis_front(&self, axis: isize, count: usize, value: f32) -> Tensor {
        let mut out = Tensor::default();
        self.pad_axis_front_into(axis, count, value, &mut out);
        out
    }

    /// [`Tensor::pad_axis_front`] into `out` (buffers reused).
    pub fn pad_axis_front_into(&self, axis: isize, count: usize, value: f32, out: &mut Tensor) {
        let ax = normalize_axis(axis, self.rank());
        let rank = self.rank();
        assert!(rank <= MAX_RANK, "pad rank {rank} exceeds {MAX_RANK}");
        let mut padded_shape = [0usize; MAX_RANK];
        padded_shape[..rank].copy_from_slice(&self.shape);
        padded_shape[ax] += count;
        let outer: usize = self.shape[..ax].iter().product();
        let inner: usize = self.shape[ax + 1..].iter().product();
        let axis_len = self.shape[ax];
        out.reset_for(&padded_shape[..rank]);
        for o in 0..outer {
            out.data.extend(std::iter::repeat_n(value, count * inner));
            let base = o * axis_len * inner;
            out.data.extend_from_slice(&self.data[base..base + axis_len * inner]);
        }
    }

    /// Materializes the NumPy-style broadcast of `self` to `shape` — a pure
    /// gather (no arithmetic), so `-0.0`, NaN payloads, and infinities are
    /// preserved exactly. This is the forward kernel behind the autodiff
    /// `BroadcastTo` op on both the tape and the compiled-plan executor.
    pub fn broadcast_to(&self, shape: &[usize]) -> Tensor {
        let mut out = Tensor::default();
        self.broadcast_to_into(shape, &mut out);
        out
    }

    /// [`Tensor::broadcast_to`] into `out` (buffers reused).
    ///
    /// # Panics
    ///
    /// Panics when `self.shape` does not broadcast to `shape`.
    pub fn broadcast_to_into(&self, shape: &[usize], out: &mut Tensor) {
        let rank = shape.len();
        assert!(rank <= MAX_RANK, "broadcast rank {rank} exceeds {MAX_RANK}");
        assert!(rank >= self.rank(), "cannot broadcast {:?} to lower-rank {:?}", self.shape, shape);
        let pad = rank - self.rank();
        for (i, &d) in self.shape.iter().enumerate() {
            assert!(
                d == shape[pad + i] || d == 1,
                "shapes {:?} and {shape:?} are not broadcast-compatible",
                self.shape
            );
        }
        let mut strides = [0usize; MAX_RANK];
        broadcast_strides_array(&self.shape, shape, &mut strides);
        let numel = Shape::numel(shape);
        out.reset_for(shape);
        let mut idx = [0usize; MAX_RANK];
        let mut off = 0usize;
        for _ in 0..numel {
            out.data.push(self.data[off]);
            for ax in (0..rank).rev() {
                idx[ax] += 1;
                off += strides[ax];
                if idx[ax] < shape[ax] {
                    break;
                }
                off -= strides[ax] * idx[ax];
                idx[ax] = 0;
            }
        }
    }

    /// Repeats the whole tensor `n` times along a new leading axis.
    pub fn repeat_leading(&self, n: usize) -> Tensor {
        let mut shape = vec![n];
        shape.extend_from_slice(&self.shape);
        let mut data = Vec::with_capacity(self.numel() * n);
        for _ in 0..n {
            data.extend_from_slice(&self.data);
        }
        Tensor::from_vec(data, &shape)
    }

    /// Flattens to rank 1.
    pub fn flatten(&self) -> Tensor {
        Tensor { shape: vec![self.numel()], data: self.data.clone() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t234() -> Tensor {
        Tensor::from_vec((0..24).map(|v| v as f32).collect(), &[2, 3, 4])
    }

    #[test]
    fn reshape_preserves_data() {
        let t = t234().reshape(&[6, 4]);
        assert_eq!(t.shape(), &[6, 4]);
        assert_eq!(t.at(&[5, 3]), 23.0);
    }

    #[test]
    fn reshape_infers_axis() {
        let t = t234().reshape(&[2, usize::MAX]);
        assert_eq!(t.shape(), &[2, 12]);
    }

    #[test]
    #[should_panic(expected = "changes element count")]
    fn reshape_rejects_bad_count() {
        t234().reshape(&[5, 5]);
    }

    #[test]
    fn transpose_2d() {
        let t = Tensor::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let tt = t.transpose();
        assert_eq!(tt.shape(), &[3, 2]);
        assert_eq!(tt.data(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }

    #[test]
    fn double_transpose_is_identity() {
        let t = Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[2, 3]);
        assert!(t.transpose().transpose().allclose(&t, 0.0));
    }

    #[test]
    fn permute_matches_transpose() {
        let t = Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[2, 3]);
        assert!(t.permute(&[1, 0]).allclose(&t.transpose(), 0.0));
    }

    #[test]
    fn permute_3d_moves_axes() {
        let t = t234();
        let p = t.permute(&[2, 0, 1]);
        assert_eq!(p.shape(), &[4, 2, 3]);
        assert_eq!(p.at(&[3, 1, 2]), t.at(&[1, 2, 3]));
    }

    #[test]
    fn transpose_batched_swaps_last_two() {
        let t = t234();
        let b = t.transpose_batched();
        assert_eq!(b.shape(), &[2, 4, 3]);
        assert_eq!(b.at(&[1, 3, 0]), t.at(&[1, 0, 3]));
    }

    #[test]
    fn concat_axis0() {
        let a = Tensor::ones(&[1, 2]);
        let b = Tensor::zeros(&[2, 2]);
        let c = Tensor::concat(&[&a, &b], 0);
        assert_eq!(c.shape(), &[3, 2]);
        assert_eq!(c.data(), &[1.0, 1.0, 0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn concat_axis1() {
        let a = Tensor::from_rows(&[vec![1.0], vec![2.0]]);
        let b = Tensor::from_rows(&[vec![3.0, 4.0], vec![5.0, 6.0]]);
        let c = Tensor::concat(&[&a, &b], 1);
        assert_eq!(c.shape(), &[2, 3]);
        assert_eq!(c.data(), &[1.0, 3.0, 4.0, 2.0, 5.0, 6.0]);
    }

    #[test]
    fn concat_last_axis_of_3d() {
        let t = t234();
        let left = t.slice_axis(-1, 0, 2);
        let right = t.slice_axis(-1, 2, 4);
        assert!(Tensor::concat(&[&left, &right], -1).allclose(&t, 0.0));
    }

    #[test]
    fn stack_adds_leading_axis() {
        let a = Tensor::ones(&[2]);
        let b = Tensor::zeros(&[2]);
        let s = Tensor::stack(&[&a, &b]);
        assert_eq!(s.shape(), &[2, 2]);
        assert_eq!(s.data(), &[1.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn slice_axis_middle() {
        let t = t234();
        let s = t.slice_axis(1, 1, 3);
        assert_eq!(s.shape(), &[2, 2, 4]);
        assert_eq!(s.at(&[0, 0, 0]), t.at(&[0, 1, 0]));
        assert_eq!(s.at(&[1, 1, 3]), t.at(&[1, 2, 3]));
    }

    #[test]
    fn index_axis_removes_axis() {
        let t = t234();
        let s = t.index_axis(0, 1);
        assert_eq!(s.shape(), &[3, 4]);
        assert_eq!(s.at(&[2, 3]), 23.0);
    }

    #[test]
    fn unsqueeze_squeeze_roundtrip() {
        let t = Tensor::ones(&[2, 3]);
        let u = t.unsqueeze(1);
        assert_eq!(u.shape(), &[2, 1, 3]);
        assert!(u.squeeze(1).allclose(&t, 0.0));
        assert_eq!(t.unsqueeze(-1).shape(), &[2, 3, 1]);
    }

    #[test]
    fn pad_axis_front_causal() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let p = t.pad_axis_front(0, 2, 0.0);
        assert_eq!(p.data(), &[0.0, 0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn pad_axis_front_inner_axis() {
        let t = Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let p = t.pad_axis_front(1, 1, 9.0);
        assert_eq!(p.shape(), &[2, 3]);
        assert_eq!(p.data(), &[9.0, 1.0, 2.0, 9.0, 3.0, 4.0]);
    }

    #[test]
    fn repeat_leading_copies() {
        let t = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let r = t.repeat_leading(3);
        assert_eq!(r.shape(), &[3, 2]);
        assert_eq!(r.data(), &[1.0, 2.0, 1.0, 2.0, 1.0, 2.0]);
    }

    #[test]
    fn flatten_to_rank1() {
        assert_eq!(t234().flatten().shape(), &[24]);
    }
}
